//! # spothost
//!
//! Facade crate re-exporting the full `spothost` system: a reproduction of
//! *"Cutting the Cost of Hosting Online Services Using Cloud Spot Markets"*
//! (HPDC 2015). See the README for the architecture overview and DESIGN.md
//! for the experiment inventory.

pub use spothost_analysis as analysis;
pub use spothost_cloudsim as cloudsim;
pub use spothost_core as core;
pub use spothost_eventstore as eventstore;
pub use spothost_fleet as fleet;
pub use spothost_jobs as jobs;
pub use spothost_market as market;
pub use spothost_virt as virt;
pub use spothost_workload as workload;
