//! Property-based tests of the billing engine and price traces.

use proptest::prelude::*;
use spothost::cloudsim::{on_demand_lease_charge, spot_lease_charge};
use spothost::market::prelude::*;

/// Build an arbitrary valid price trace from (gap, price) pairs.
fn arb_trace() -> impl Strategy<Value = PriceTrace> {
    (
        prop::collection::vec((1u64..3_600_000u64, 1u64..5_000u64), 1..40),
        1u64..100u64,
    )
        .prop_map(|(steps, extra_hours)| {
            let mut points = Vec::with_capacity(steps.len());
            let mut t = 0u64;
            for (i, (gap, millidollars)) in steps.into_iter().enumerate() {
                if i > 0 {
                    t += gap;
                }
                points.push(PricePoint {
                    at: SimTime::millis(t),
                    price: millidollars as f64 / 1_000.0,
                });
            }
            let end = SimTime::millis(t) + SimDuration::hours(extra_hours);
            PriceTrace::new(points, end)
        })
}

proptest! {
    #[test]
    fn spot_charge_nonnegative_and_bounded(trace in arb_trace(), start_h in 0u64..24, len_min in 0u64..2_000) {
        let start = SimTime::hours(start_h);
        let end = start + SimDuration::minutes(len_min);
        for revoked in [false, true] {
            let c = spot_lease_charge(&trace, start, end, revoked);
            prop_assert!(c >= 0.0);
            // Bounded by max price times started hours.
            let bound = trace.max_price() * (end - start).started_hours() as f64;
            prop_assert!(c <= bound + 1e-9);
        }
    }

    #[test]
    fn revoked_never_costs_more_than_voluntary(trace in arb_trace(), start_h in 0u64..24, len_min in 0u64..2_000) {
        let start = SimTime::hours(start_h);
        let end = start + SimDuration::minutes(len_min);
        let revoked = spot_lease_charge(&trace, start, end, true);
        let voluntary = spot_lease_charge(&trace, start, end, false);
        prop_assert!(revoked <= voluntary + 1e-12);
    }

    #[test]
    fn spot_charge_monotone_in_duration(trace in arb_trace(), start_h in 0u64..24, a_min in 0u64..2_000, b_min in 0u64..2_000) {
        let start = SimTime::hours(start_h);
        let (short, long) = if a_min <= b_min { (a_min, b_min) } else { (b_min, a_min) };
        let c_short = spot_lease_charge(&trace, start, start + SimDuration::minutes(short), false);
        let c_long = spot_lease_charge(&trace, start, start + SimDuration::minutes(long), false);
        prop_assert!(c_short <= c_long + 1e-12);
    }

    #[test]
    fn on_demand_charge_is_started_hours(pon_millis in 1u64..10_000, len_min in 0u64..10_000) {
        let pon = pon_millis as f64 / 1_000.0;
        let start = SimTime::ZERO;
        let end = start + SimDuration::minutes(len_min);
        let c = on_demand_lease_charge(pon, start, end);
        let expect = len_min.div_ceil(60) as f64 * pon;
        prop_assert!((c - expect).abs() < 1e-9);
    }

    #[test]
    fn price_at_matches_segment_walk(trace in arb_trace(), probe_min in 0u64..10_000) {
        // price_at (binary search) must agree with a linear scan.
        let t = SimTime::minutes(probe_min);
        let linear = trace
            .points()
            .iter()
            .rev()
            .find(|p| p.at <= t)
            .map(|p| p.price)
            .unwrap();
        prop_assert_eq!(trace.price_at(t), linear);
    }

    #[test]
    fn time_weighted_mean_within_price_range(trace in arb_trace()) {
        let mean = trace.time_weighted_mean();
        prop_assert!(mean >= trace.min_price() - 1e-12);
        prop_assert!(mean <= trace.max_price() + 1e-12);
    }

    #[test]
    fn fraction_above_is_complement_consistent(trace in arb_trace(), threshold_millis in 1u64..5_000) {
        let thr = threshold_millis as f64 / 1_000.0;
        let above = trace.fraction_above(thr);
        prop_assert!((0.0..=1.0).contains(&above));
        // Above min price, the fraction is 1 unless some segment sits at
        // or below the threshold.
        if thr < trace.min_price() {
            prop_assert!((above - 1.0).abs() < 1e-12);
        }
        if thr >= trace.max_price() {
            prop_assert!(above.abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_respects_segments(trace in arb_trace()) {
        let dt = SimDuration::minutes(7);
        let samples = trace.sample(dt);
        for (i, &s) in samples.iter().enumerate() {
            let t = SimTime::millis(i as u64 * dt.as_millis());
            prop_assert_eq!(s, trace.price_at(t));
        }
    }
}
