//! Deterministic multi-market scenarios: hand-authored two-market traces
//! drive the hop, escape, and degraded-window logic.

use spothost::cloudsim::StartupModel;
use spothost::core::prelude::*;
use spothost::core::SimRun;
use spothost::market::prelude::*;

const PON_SMALL: f64 = 0.06;

fn small() -> MarketId {
    MarketId::new(Zone::UsEast1a, InstanceType::Small)
}

fn medium() -> MarketId {
    MarketId::new(Zone::UsEast1a, InstanceType::Medium)
}

/// Build a 2-market trace set from (minutes, price) step lists.
fn two_market_set(
    small_pts: Vec<(u64, f64)>,
    medium_pts: Vec<(u64, f64)>,
    horizon_hours: u64,
) -> TraceSet {
    let catalog = Catalog::ec2_2015();
    let horizon = SimDuration::hours(horizon_hours);
    let mk = |pts: Vec<(u64, f64)>| {
        PriceTrace::new(
            pts.into_iter()
                .map(|(mins, price)| PricePoint {
                    at: SimTime::minutes(mins),
                    price,
                })
                .collect(),
            SimTime::ZERO + horizon,
        )
    };
    TraceSet::from_traces(
        &catalog,
        vec![(small(), mk(small_pts)), (medium(), mk(medium_pts))],
        horizon,
    )
}

fn cfg() -> SchedulerConfig {
    // Service of 2 units: fits on 2 smalls or 1 medium.
    SchedulerConfig::multi(MarketScope::MultiMarket(Zone::UsEast1a)).with_capacity_units(2)
}

fn run(ts: &TraceSet, cfg: &SchedulerConfig) -> spothost::core::RunReport {
    SimRun::new(ts, cfg, 0)
        .with_startup_model(StartupModel::deterministic())
        .run()
}

#[test]
fn starts_in_the_cheaper_market() {
    // Small aggregate: 2 servers x 0.012 = 0.024/h. Medium: 1 x 0.03.
    let ts = two_market_set(vec![(0, PON_SMALL * 0.2)], vec![(0, 0.12 * 0.25)], 100);
    let report = run(&ts, &cfg());
    assert_eq!(report.total_migrations(), 0);
    // Cost ~ 0.024 / 0.12 baseline = 20%.
    assert!(
        (report.normalized_cost - 0.2).abs() < 0.02,
        "{}",
        report.normalized_cost
    );
}

#[test]
fn hops_when_the_other_market_gets_much_cheaper() {
    // Small starts cheap, then triples (still below on-demand); medium
    // becomes clearly cheaper -> one planned hop, no on-demand time.
    let ts = two_market_set(
        vec![(0, PON_SMALL * 0.2), (300, PON_SMALL * 0.6)],
        vec![(0, 0.12 * 0.25)],
        100,
    );
    let report = run(&ts, &cfg());
    // After the rise: small aggregate 0.072 vs medium 0.03 -> hop (margin
    // 25% easily met).
    assert_eq!(report.planned_migrations, 1, "exactly one hop");
    assert_eq!(report.forced_migrations, 0);
    assert_eq!(report.spot_fraction, 1.0, "never touched on-demand");
    // Sub-second live-migration downtime only.
    assert!(report.downtime < SimDuration::secs(1));
}

#[test]
fn stays_put_within_the_hysteresis_band() {
    // Medium becomes only ~15% cheaper than small: inside the 25% margin,
    // no hop.
    let ts = two_market_set(
        vec![(0, PON_SMALL * 0.2)], // aggregate 0.024
        vec![(0, 0.12 * 0.17)],     // aggregate 0.0204: 15% cheaper
        100,
    );
    let report = run(&ts, &cfg());
    assert_eq!(report.total_migrations(), 0, "hysteresis must hold");
}

#[test]
fn escapes_to_other_spot_market_not_on_demand_when_current_spikes() {
    // Small spikes above on-demand for 6 hours; medium stays cheap. The
    // multi-market scheduler must move to medium (planned), not to
    // on-demand, then hop back when small recovers far below medium.
    let ts = two_market_set(
        vec![
            (0, PON_SMALL * 0.2),
            (240, PON_SMALL * 2.0),
            (600, PON_SMALL * 0.2),
        ],
        vec![(0, 0.12 * 0.4)],
        100,
    );
    let report = run(&ts, &cfg());
    assert_eq!(
        report.forced_migrations, 0,
        "2x on-demand is below the 4x bid"
    );
    assert!(report.planned_migrations >= 2, "escape and return");
    assert_eq!(report.reverse_migrations, 0, "never went to on-demand");
    assert_eq!(report.spot_fraction, 1.0);
}

#[test]
fn forced_migration_goes_to_on_demand_even_with_spot_alternatives() {
    // Small spikes past the 4x bid instantly: revocation. Per §3.1 the
    // forced step replaces with an on-demand server; the scheduler then
    // reverse-migrates to the cheapest spot market at the next boundary.
    let ts = two_market_set(
        vec![
            (0, PON_SMALL * 0.2),
            (240, PON_SMALL * 6.0),
            (360, PON_SMALL * 0.2),
        ],
        vec![(0, 0.12 * 0.4)],
        100,
    );
    let report = run(&ts, &cfg());
    assert_eq!(report.forced_migrations, 1);
    assert!(report.reverse_migrations >= 1, "returns to spot");
    assert!(report.spot_fraction < 1.0, "spent forced time on on-demand");
}

#[test]
fn degraded_window_appears_only_with_lazy_restore() {
    let mk = || {
        two_market_set(
            vec![
                (0, PON_SMALL * 0.2),
                (240, PON_SMALL * 6.0),
                (360, PON_SMALL * 0.2),
            ],
            vec![(0, 0.12 * 0.4)],
            50,
        )
    };
    let lazy = run(&mk(), &cfg().with_mechanism(MechanismCombo::CKPT_LR));
    let eager = run(&mk(), &cfg().with_mechanism(MechanismCombo::CKPT));
    assert!(
        lazy.degraded_fraction > 0.0,
        "lazy restore must run degraded"
    );
    // The eager path's only degradation could come from pre-staged planned
    // moves; the forced migration itself contributes none.
    assert!(
        lazy.degraded_fraction > eager.degraded_fraction,
        "lazy {} vs eager {}",
        lazy.degraded_fraction,
        eager.degraded_fraction
    );
    // And eager pays for it with more downtime.
    assert!(eager.downtime > lazy.downtime);
}

#[test]
fn stability_weight_blocks_the_hop_to_a_risky_market() {
    // Medium is cheaper but historically risky (spends 10% of time above
    // its on-demand price). Greedy hops; stability-weighted stays.
    let mut medium_pts = vec![(0u64, 0.12 * 0.15)];
    // Past risk: spikes during the first two days.
    for d in 0..2u64 {
        medium_pts.push((d * 1440 + 600, 0.12 * 2.0));
        medium_pts.push((d * 1440 + 744, 0.12 * 0.15)); // 2.4h spike
    }
    let ts = two_market_set(vec![(0, PON_SMALL * 0.3)], medium_pts, 120);
    let greedy = run(&ts, &cfg());
    let stable = run(&ts, &cfg().with_stability_weight(32.0));
    assert!(
        stable.planned_migrations <= greedy.planned_migrations,
        "stable {} vs greedy {}",
        stable.planned_migrations,
        greedy.planned_migrations
    );
}
