//! Property-based tests of the scheduler across randomly drawn (but valid)
//! market conditions: whatever the price weather, the run must satisfy the
//! accounting invariants.

use proptest::prelude::*;
use spothost::core::prelude::*;
use spothost::core::SimRun;
use spothost::market::model::SpotModelParams;
use spothost::market::prelude::*;

fn market() -> MarketId {
    MarketId::new(Zone::UsEast1a, InstanceType::Small)
}

/// Random but valid spot-market weather.
fn arb_params() -> impl Strategy<Value = SpotModelParams> {
    (
        0.05f64..0.6, // base_ratio
        0.02f64..0.4, // sigma
        0.0f64..5.0,  // spike rate per day
        1.1f64..3.0,  // pareto alpha
        5u64..60,     // spike duration minutes
        1.2f64..2.5,  // elevated mult (bounded so base stays < 1)
    )
        .prop_map(|(base, sigma, spikes, alpha, dur, elev)| {
            let mut p = SpotModelParams::default_market();
            p.base_ratio = base;
            p.sigma = sigma;
            p.spike_rate_per_day = spikes;
            p.spike_pareto_alpha = alpha;
            p.spike_duration_mean = SimDuration::minutes(dur);
            p.elevated_base_mult = if base * elev < 0.95 { elev } else { 1.2 };
            p.zone_spike_rate_per_day = 0.05;
            p
        })
        .prop_filter("valid params", |p| p.validate().is_ok())
}

fn arb_policy() -> impl Strategy<Value = BiddingPolicy> {
    prop_oneof![
        Just(BiddingPolicy::OnDemandOnly),
        Just(BiddingPolicy::PureSpot),
        Just(BiddingPolicy::Reactive),
        Just(BiddingPolicy::proactive_default()),
        (1.5f64..4.0).prop_map(|m| BiddingPolicy::Proactive { bid_mult: m }),
    ]
}

fn arb_mechanism() -> impl Strategy<Value = MechanismCombo> {
    prop_oneof![
        Just(MechanismCombo::CKPT),
        Just(MechanismCombo::CKPT_LR),
        Just(MechanismCombo::CKPT_LIVE),
        Just(MechanismCombo::CKPT_LR_LIVE),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn run_invariants_hold_under_any_weather(
        params in arb_params(),
        policy in arb_policy(),
        mechanism in arb_mechanism(),
        seed in 0u64..1_000,
    ) {
        let catalog = Catalog::ec2_2015();
        let horizon = SimDuration::days(14);
        let traces = TraceSet::generate_with(&catalog, &[(market(), params)], seed, horizon);
        let cfg = SchedulerConfig::single_market(market())
            .with_policy(policy)
            .with_mechanism(mechanism);
        let report = SimRun::new(&traces, &cfg, seed).run();

        prop_assert!(report.cost >= 0.0);
        prop_assert!((0.0..=1.0).contains(&report.unavailability),
            "unavailability {}", report.unavailability);
        prop_assert!((0.0..=1.0).contains(&report.spot_fraction));
        prop_assert!(report.downtime <= report.active_span);
        // Spot servers cost at most the bid; with the 4x cap and overlap
        // during migrations, total cost stays within a loose multiple of
        // the baseline.
        prop_assert!(report.normalized_cost < 4.5,
            "normalized cost {}", report.normalized_cost);
        // Policies without planned migrations never record them.
        if !policy.plans_migrations() {
            prop_assert_eq!(report.planned_migrations, 0);
        }
        if matches!(policy, BiddingPolicy::OnDemandOnly) {
            prop_assert_eq!(report.forced_migrations, 0);
            prop_assert_eq!(report.unavailability, 0.0);
        }
        if matches!(policy, BiddingPolicy::PureSpot) {
            // Pure spot never buys on-demand time.
            prop_assert!(report.spot_fraction == 1.0 || report.active_span == SimDuration::ZERO);
        }
    }

    #[test]
    fn determinism_under_any_weather(
        params in arb_params(),
        policy in arb_policy(),
        seed in 0u64..1_000,
    ) {
        let catalog = Catalog::ec2_2015();
        let horizon = SimDuration::days(7);
        let traces = TraceSet::generate_with(&catalog, &[(market(), params)], seed, horizon);
        let cfg = SchedulerConfig::single_market(market()).with_policy(policy);
        let a = SimRun::new(&traces, &cfg, seed).run();
        let b = SimRun::new(&traces, &cfg, seed).run();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn quiet_markets_never_migrate(
        base in 0.05f64..0.5,
        seed in 0u64..1_000,
    ) {
        // With no spikes and a stable baseline below on-demand, a
        // proactive scheduler must sit on its spot server untouched.
        let mut p = SpotModelParams::default_market();
        p.base_ratio = base;
        p.sigma = 0.02;
        p.spike_rate_per_day = 0.0;
        p.zone_spike_rate_per_day = 0.0;
        p.elevated_base_mult = 1.0001;
        let catalog = Catalog::ec2_2015();
        let traces = TraceSet::generate_with(&catalog, &[(market(), p)], seed, SimDuration::days(7));
        let cfg = SchedulerConfig::single_market(market());
        let report = SimRun::new(&traces, &cfg, seed).run();
        prop_assert_eq!(report.forced_migrations, 0);
        prop_assert_eq!(report.planned_migrations, 0);
        prop_assert_eq!(report.unavailability, 0.0);
        prop_assert!(report.spot_fraction > 0.99);
    }
}
