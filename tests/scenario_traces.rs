//! Deterministic scenario tests: hand-authored price traces drive the
//! scheduler through each §3.1 transition exactly once, and the outcome is
//! checked step by step (migration kind, downtime, billing).

use spothost::cloudsim::StartupModel;
use spothost::core::prelude::*;
use spothost::core::SimRun;
use spothost::market::prelude::*;

fn market() -> MarketId {
    MarketId::new(Zone::UsEast1a, InstanceType::Small)
}

const PON: f64 = 0.06;

fn trace_set(points: Vec<(u64, f64)>, horizon_hours: u64) -> TraceSet {
    let catalog = Catalog::ec2_2015();
    let horizon = SimDuration::hours(horizon_hours);
    let pts = points
        .into_iter()
        .map(|(mins, price)| PricePoint {
            at: SimTime::minutes(mins),
            price,
        })
        .collect();
    let trace = PriceTrace::new(pts, SimTime::ZERO + horizon);
    TraceSet::from_traces(&catalog, vec![(market(), trace)], horizon)
}

fn run(ts: &TraceSet, cfg: &SchedulerConfig) -> spothost::core::RunReport {
    SimRun::new(ts, cfg, 0)
        .with_startup_model(StartupModel::deterministic())
        .run()
}

#[test]
fn flat_cheap_market_costs_exactly_the_ratio() {
    // Price pinned at 20% of on-demand, no spikes: the proactive scheduler
    // boots once and never moves; cost is within rounding of 20%.
    let ts = trace_set(vec![(0, PON * 0.2)], 200);
    let report = run(&ts, &SchedulerConfig::single_market(market()));
    assert_eq!(report.forced_migrations, 0);
    assert_eq!(report.planned_migrations + report.reverse_migrations, 0);
    assert_eq!(report.unavailability, 0.0);
    assert!(
        (report.normalized_cost - 0.2).abs() < 0.01,
        "{}",
        report.normalized_cost
    );
}

#[test]
fn sustained_price_rise_triggers_exactly_one_planned_migration() {
    // Price rises above on-demand (but below the 4x bid) at t=90min and
    // stays there: the proactive scheduler must leave at the next billing
    // boundary — voluntarily, with no revocation and no downtime beyond
    // the migration switchover.
    let ts = trace_set(vec![(0, PON * 0.2), (90, PON * 2.0)], 100);
    let cfg = SchedulerConfig::single_market(market()).with_mechanism(MechanismCombo::CKPT_LR_LIVE);
    let report = run(&ts, &cfg);
    assert_eq!(
        report.forced_migrations, 0,
        "price never crossed the 4x bid"
    );
    assert_eq!(report.planned_migrations, 1);
    assert_eq!(report.reverse_migrations, 0, "price never came back down");
    // Live migration downtime only: well under a second of downtime.
    assert!(
        report.downtime < SimDuration::secs(1),
        "{}",
        report.downtime
    );
    // Mostly on-demand time after the migration.
    assert!(report.spot_fraction < 0.15, "{}", report.spot_fraction);
}

#[test]
fn spike_above_bid_forces_a_migration_with_bounded_downtime() {
    // Price jumps straight past the 4x bid at t=10h and stays for an hour:
    // the provider revokes; downtime = final flush + wait + lazy restore.
    let ts = trace_set(
        vec![(0, PON * 0.2), (600, PON * 6.0), (660, PON * 0.2)],
        100,
    );
    let cfg = SchedulerConfig::single_market(market()).with_mechanism(MechanismCombo::CKPT_LR);
    let report = run(&ts, &cfg);
    assert_eq!(report.forced_migrations, 1);
    // Downtime: 5s flush + 20s lazy restore, with the deterministic 95s
    // on-demand startup fitting inside the 120s grace -> ~25s.
    let dt = report.downtime.as_secs_f64();
    assert!((20.0..35.0).contains(&dt), "downtime {dt}s");
    // The service returns to spot once the spike ends.
    assert_eq!(report.reverse_migrations, 1);
    assert!(report.spot_fraction > 0.9);
}

#[test]
fn short_mid_hour_spike_is_free_for_proactive() {
    // A 10-minute excursion to 2x on-demand in the middle of a billing
    // hour: below the 4x bid, gone before the boundary check. The
    // proactive scheduler must ride it out at zero cost and zero moves
    // (§2.1: hours bill at their start price).
    let ts = trace_set(vec![(0, PON * 0.2), (95, PON * 2.0), (105, PON * 0.2)], 50);
    let report = run(&ts, &SchedulerConfig::single_market(market()));
    assert_eq!(report.forced_migrations, 0);
    assert_eq!(report.planned_migrations, 0);
    assert_eq!(report.unavailability, 0.0);
    assert!((report.normalized_cost - 0.2).abs() < 0.01);
}

#[test]
fn same_spike_revokes_reactive() {
    // The same mid-hour excursion revokes a reactive bidder (bid = pon).
    let ts = trace_set(vec![(0, PON * 0.2), (95, PON * 2.0), (105, PON * 0.2)], 50);
    let cfg = SchedulerConfig::single_market(market()).with_policy(BiddingPolicy::Reactive);
    let report = run(&ts, &cfg);
    assert_eq!(report.forced_migrations, 1);
    assert!(report.unavailability > 0.0);
    assert_eq!(report.reverse_migrations, 1, "returns to spot afterwards");
}

#[test]
fn pure_spot_downtime_spans_the_whole_outage() {
    // Price sits above on-demand for 5 hours: a pure-spot service is down
    // for the excursion plus re-acquisition (spot startup ~4.7 min) and
    // restore.
    let ts = trace_set(
        vec![(0, PON * 0.2), (600, PON * 2.0), (900, PON * 0.2)],
        100,
    );
    let cfg = SchedulerConfig::single_market(market()).with_policy(BiddingPolicy::PureSpot);
    let report = run(&ts, &cfg);
    assert_eq!(report.forced_migrations, 1);
    let dt = report.downtime.as_secs_f64();
    // ~5h minus the grace window, plus startup (281s) and restore (20s).
    let expect = 5.0 * 3600.0 - 120.0 + 281.47 + 20.0 + 5.0;
    assert!(
        (dt - expect).abs() < 120.0,
        "downtime {dt}s, expected ~{expect}s"
    );
}

#[test]
fn planned_migration_lands_before_the_billing_boundary() {
    // With a sustained rise starting at minute 90, the first decision
    // point is one lead before the 2h lease boundary; the old lease must
    // be billed exactly 2 started hours (we leave at/before the boundary).
    let ts = trace_set(vec![(0, PON * 0.5), (90, PON * 1.5)], 30);
    let cfg = SchedulerConfig::single_market(market()).with_mechanism(MechanismCombo::CKPT_LR_LIVE);
    let report = run(&ts, &cfg);
    assert_eq!(report.planned_migrations, 1);
    // Cost: ~2 spot hours at 0.5*pon (billed at hour-start prices: 0.5,
    // 0.5) + the remaining ~28h on demand, plus the overlap hour.
    let expected_od_hours = 28.0;
    let max_cost = PON * 0.5 * 2.0 + PON * (expected_od_hours + 2.0);
    assert!(
        report.cost <= max_cost,
        "cost {} > {}",
        report.cost,
        max_cost
    );
}

#[test]
fn stability_weight_prefers_calm_markets() {
    // Two markets: small is cheaper on average but spends 10% of its time
    // above on-demand (spiky); medium is pricier but never spikes. With a
    // large stability weight the scheduler should sit in medium.
    let catalog = Catalog::ec2_2015();
    let horizon = SimDuration::hours(24 * 21);
    let small = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let medium = MarketId::new(Zone::UsEast1a, InstanceType::Medium);
    // Small: cheap but a 2.4h spike every day.
    let mut pts = vec![PricePoint {
        at: SimTime::ZERO,
        price: PON * 0.10,
    }];
    for day in 0..21 {
        pts.push(PricePoint {
            at: SimTime::hours(day * 24 + 10),
            price: PON * 2.0,
        });
        pts.push(PricePoint {
            at: SimTime::hours(day * 24 + 12) + SimDuration::minutes(24),
            price: PON * 0.10,
        });
    }
    let small_trace = PriceTrace::new(pts, SimTime::ZERO + horizon);
    // Medium (2x capacity, pon 0.12): flat at 30% of its on-demand price.
    let medium_trace = PriceTrace::constant(0.12 * 0.30, SimTime::ZERO + horizon);
    let ts = TraceSet::from_traces(
        &catalog,
        vec![(small, small_trace), (medium, medium_trace)],
        horizon,
    );

    let greedy_cfg =
        SchedulerConfig::multi(MarketScope::MultiMarket(Zone::UsEast1a)).with_capacity_units(2);
    let greedy = SimRun::new(&ts, &greedy_cfg, 0)
        .with_startup_model(StartupModel::deterministic())
        .run();
    let stable_cfg = greedy_cfg.clone().with_stability_weight(32.0);
    let stable = SimRun::new(&ts, &stable_cfg, 0)
        .with_startup_model(StartupModel::deterministic())
        .run();

    // Greedy chases the cheap spiky market and pays in migrations.
    assert!(
        stable.planned_migrations + stable.reverse_migrations
            < greedy.planned_migrations + greedy.reverse_migrations,
        "stable {} vs greedy {} voluntary migrations",
        stable.planned_migrations + stable.reverse_migrations,
        greedy.planned_migrations + greedy.reverse_migrations
    );
    // And the stable scheduler pays a bounded premium for the calm market.
    assert!(stable.normalized_cost <= greedy.normalized_cost * 2.5);
}
