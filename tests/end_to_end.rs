//! Cross-crate integration: traces -> provider -> scheduler -> report,
//! checking consistency between layers and the paper's headline claims.

use spothost::cloudsim::{CloudProvider, StartupModel, TerminationReason};
use spothost::core::prelude::*;
use spothost::market::prelude::*;
use spothost::workload::slo;

fn small_east() -> MarketId {
    MarketId::new(Zone::UsEast1a, InstanceType::Small)
}

#[test]
fn headline_claim_one_third_to_one_fifth_of_on_demand_cost() {
    // Abstract: "one-third to one-fifth the cost of hosting the same
    // service ... using dedicated non-revocable servers".
    let horizon = SimDuration::days(45);
    for size in InstanceType::ALL {
        let cfg = SchedulerConfig::single_market(MarketId::new(Zone::UsEast1a, size));
        let agg = run_many(&cfg, 0, 6, horizon);
        assert!(
            (0.12..0.40).contains(&agg.normalized_cost.mean),
            "{size}: normalized cost {}",
            agg.normalized_cost.mean
        );
    }
}

#[test]
fn headline_claim_four_nines_with_best_mechanism() {
    let cfg =
        SchedulerConfig::single_market(small_east()).with_mechanism(MechanismCombo::CKPT_LR_LIVE);
    let agg = run_many(&cfg, 0, 6, SimDuration::days(45));
    assert!(
        slo::meets_nines(agg.unavailability.mean, 4),
        "unavailability {} misses four nines",
        agg.unavailability.mean
    );
}

#[test]
fn scheduler_cost_matches_provider_ledger() {
    // The scheduler's accounted cost must equal the provider ledger's
    // charges scaled by the service's server count (1x for single-market).
    let catalog = Catalog::ec2_2015();
    let traces = TraceSet::generate(&catalog, &[small_east()], 3, SimDuration::days(30));
    let cfg = SchedulerConfig::single_market(small_east());
    let report = spothost::core::SimRun::new(&traces, &cfg, 3).run();
    // Re-run, extracting accounting directly.
    let run = spothost::core::SimRun::new(&traces, &cfg, 3);
    let report2 = run.run();
    assert_eq!(report, report2, "deterministic replay");
    assert!(report.cost > 0.0);
    // Sanity: cost per hour bounded by the on-demand price.
    let pon = catalog.on_demand_price(small_east());
    let max_possible = pon * 4.0 * report.active_span.as_hours_f64() * 1.2;
    assert!(report.cost < max_possible);
}

#[test]
fn provider_and_scheduler_agree_on_prices() {
    let catalog = Catalog::ec2_2015();
    let traces = TraceSet::generate(&catalog, &[small_east()], 9, SimDuration::days(7));
    let provider = CloudProvider::new(&traces, 9);
    let trace = traces.trace(small_east()).unwrap();
    for hour in 0..(7 * 24) {
        let t = SimTime::hours(hour);
        assert_eq!(
            provider.spot_price(small_east(), t).unwrap(),
            trace.price_at(t)
        );
    }
}

#[test]
fn revocation_grace_is_two_minutes_end_to_end() {
    // Build a provider over a trace guaranteed to spike, and check the
    // warning-to-termination gap equals the paper's two minutes.
    let catalog = Catalog::ec2_2015();
    let traces = TraceSet::generate(&catalog, &[small_east()], 1, SimDuration::days(30));
    let mut provider =
        CloudProvider::new(&traces, 1).with_startup_model(StartupModel::deterministic());
    let pon = provider.on_demand_price(small_east());
    let (id, ready) = provider
        .request_spot(small_east(), pon, SimTime::ZERO)
        .unwrap();
    if provider.activate(id, ready) {
        if let Some(sched) = provider.revocation_schedule(id, ready) {
            let warning_at = sched.warning_at.expect("no faults: warning always sent");
            assert_eq!(sched.terminate_at - warning_at, SimDuration::secs(120));
            let charge = provider.terminate(id, sched.terminate_at, TerminationReason::Revoked);
            assert!(charge >= 0.0);
        }
    }
}

#[test]
fn on_demand_only_is_the_baseline() {
    let cfg = SchedulerConfig::single_market(small_east()).with_policy(BiddingPolicy::OnDemandOnly);
    let report = run_one(&cfg, 5, SimDuration::days(30));
    assert!((report.normalized_cost - 1.0).abs() < 0.01);
    assert_eq!(report.unavailability, 0.0);
    assert_eq!(report.forced_migrations, 0);
}

#[test]
fn policies_order_as_the_paper_says() {
    // Cost: pure-spot <= proactive <= reactive <= on-demand.
    // Unavailability: proactive <= reactive <= pure-spot.
    let horizon = SimDuration::days(45);
    let run = |p: BiddingPolicy| {
        let cfg = SchedulerConfig::single_market(small_east()).with_policy(p);
        run_many(&cfg, 0, 6, horizon)
    };
    let od = run(BiddingPolicy::OnDemandOnly);
    let pure = run(BiddingPolicy::PureSpot);
    let reactive = run(BiddingPolicy::Reactive);
    let proactive = run(BiddingPolicy::proactive_default());

    assert!(pure.normalized_cost.mean <= proactive.normalized_cost.mean * 1.05);
    assert!(proactive.normalized_cost.mean <= reactive.normalized_cost.mean * 1.05);
    assert!(reactive.normalized_cost.mean < od.normalized_cost.mean);

    assert!(proactive.unavailability.mean < reactive.unavailability.mean);
    assert!(reactive.unavailability.mean < pure.unavailability.mean);
}

#[test]
fn widening_scope_reduces_cost() {
    let horizon = SimDuration::days(45);
    let single = run_many(
        &SchedulerConfig::single_market(MarketId::new(Zone::UsEast1a, InstanceType::XLarge))
            .with_mechanism(MechanismCombo::CKPT_LR_LIVE),
        0,
        6,
        horizon,
    );
    let multi_market = run_many(
        &SchedulerConfig::multi(MarketScope::MultiMarket(Zone::UsEast1a)),
        0,
        6,
        horizon,
    );
    let multi_region = run_many(
        &SchedulerConfig::multi(MarketScope::MultiRegion(vec![
            Zone::UsEast1a,
            Zone::UsEast1b,
        ])),
        0,
        6,
        horizon,
    );
    assert!(multi_market.normalized_cost.mean < single.normalized_cost.mean);
    assert!(multi_region.normalized_cost.mean < multi_market.normalized_cost.mean);
}

#[test]
fn identical_traces_for_shared_markets_across_scopes() {
    // The paired-comparison property: a market's trace is identical no
    // matter which scope generated it.
    let catalog = Catalog::ec2_2015();
    let horizon = SimDuration::days(10);
    let solo = TraceSet::generate(&catalog, &[small_east()], 77, horizon);
    let zone = TraceSet::generate(
        &catalog,
        &MarketId::all_in_zone(Zone::UsEast1a),
        77,
        horizon,
    );
    assert_eq!(
        solo.trace(small_east()).unwrap(),
        zone.trace(small_east()).unwrap()
    );
}
