//! A SpotCheck-style derivative cloud: a provider hosts 40 tenants'
//! nested VMs on spot servers, sells them "always-on" hosting, and pockets
//! the difference to on-demand pricing (the system the paper's §7 assumes).
//!
//! ```text
//! cargo run --release --example derivative_cloud
//! ```

use spothost::core::prelude::*;
use spothost::fleet::{run_fleet, CustomerVm, FleetConfig};
use spothost::market::prelude::*;
use spothost::workload::slo;

fn tenants() -> Vec<CustomerVm> {
    // 40 tenants: web shops, APIs, a few fat databases.
    (0..40)
        .map(|i| {
            let units = match i % 10 {
                0..=5 => 1, // small web heads
                6..=7 => 2, // mid-tier services
                8 => 4,     // databases
                _ => 8,     // one whale per ten tenants
            };
            CustomerVm::new(i, units)
        })
        .collect()
}

fn main() {
    let horizon = SimDuration::days(60);
    let vms = tenants();
    let demanded: u32 = vms.iter().map(|v| v.units).sum();

    println!(
        "derivative cloud: {} tenant VMs, {} capacity units, 60 days\n",
        vms.len(),
        demanded
    );

    for (label, cfg) in [
        (
            "on-demand fleet (what tenants would pay AWS)",
            FleetConfig {
                policy: BiddingPolicy::OnDemandOnly,
                ..FleetConfig::default()
            },
        ),
        ("spot fleet, greedy multi-market", FleetConfig::default()),
        (
            "spot fleet, multi-region + stability-aware",
            FleetConfig {
                zones: vec![Zone::UsEast1a, Zone::UsEast1b],
                stability_weight: 8.0,
                ..FleetConfig::default()
            },
        ),
    ] {
        let report = run_fleet(&vms, &cfg, 42, horizon);
        let (forced, planned, reverse) = report.total_migrations();
        println!("{label}:");
        println!(
            "  groups: {} ({}% capacity lost to fragmentation)",
            report.total_groups(),
            (report.waste_fraction() * 100.0).round()
        );
        println!(
            "  cost: ${:.0} vs ${:.0} on-demand ({:.0}%)",
            report.total_cost(),
            report.baseline_cost(),
            report.normalized_cost() * 100.0
        );
        println!(
            "  tenant unavailability: mean {:.5}%, worst group {:.5}% -> {}",
            report.vm_weighted_unavailability() * 100.0,
            report.worst_group_unavailability() * 100.0,
            if slo::meets_nines(report.worst_group_unavailability(), 3) {
                "every tenant gets 3+ nines"
            } else {
                "some tenants below 3 nines"
            }
        );
        println!("  migrations: {forced} forced, {planned} planned, {reverse} reverse\n");
    }

    println!("the margin between the on-demand fleet and the spot fleets is the");
    println!("derivative cloud's gross profit — the business case the paper opens.");
}
