//! Market-scope arbitrage: how widening the bidding scope from one market
//! to a zone to a pair of regions lowers cost — and when chasing cheap
//! volatile markets backfires on availability (the paper's §4.4–4.5).
//!
//! ```text
//! cargo run --release --example multi_region_arbitrage
//! ```

use spothost::core::prelude::*;
use spothost::market::prelude::*;
use spothost::market::stats;

fn main() {
    let horizon = SimDuration::days(60);
    let seeds = 8;
    let units = 8; // an xlarge-equivalent service

    // --- price correlations: why arbitrage works ----------------------------
    let catalog = Catalog::ec2_2015();
    let set = TraceSet::generate(&catalog, &MarketId::all(), 7, horizon);
    println!("why arbitrage works: spot markets move independently\n");
    for zone in Zone::ALL {
        println!(
            "  intra-zone correlation {:<12} {:>6.3}",
            zone.name(),
            stats::avg_intra_zone_correlation(&set, zone)
        );
    }
    println!(
        "  cross-region us-east-1a/eu-west-1a {:>6.3}\n",
        stats::avg_cross_zone_correlation(&set, Zone::UsEast1a, Zone::EuWest1a)
    );

    // --- widening the scope --------------------------------------------------
    println!("scope                                   cost%   unavail%  migrations/hr");
    let run_scope = |label: &str, scope: MarketScope| {
        let cfg = SchedulerConfig::multi(scope).with_capacity_units(units);
        let agg = run_many(&cfg, 0, seeds, horizon);
        println!(
            "{:<38} {:>6.1}   {:>8.5}   {:.4}",
            label,
            agg.normalized_cost_pct(),
            agg.unavailability_pct(),
            agg.forced_per_hour.mean + agg.planned_reverse_per_hour.mean
        );
        agg
    };

    run_scope(
        "single market (us-east-1a xlarge)",
        MarketScope::Single(MarketId::new(Zone::UsEast1a, InstanceType::XLarge)),
    );
    run_scope(
        "multi-market (us-east-1a, all sizes)",
        MarketScope::MultiMarket(Zone::UsEast1a),
    );
    run_scope(
        "multi-region (us-east-1a + us-east-1b)",
        MarketScope::MultiRegion(vec![Zone::UsEast1a, Zone::UsEast1b]),
    );
    let stable = run_scope(
        "multi-region (eu-west-1a alone)",
        MarketScope::MultiMarket(Zone::EuWest1a),
    );
    let chased = run_scope(
        "multi-region (us-east-1b + eu-west-1a)",
        MarketScope::MultiRegion(vec![Zone::UsEast1b, Zone::EuWest1a]),
    );

    println!("\nthe catch: pairing stable eu-west with cheap-but-volatile us-east-1b");
    println!(
        "cut cost but raised unavailability {:.5}% -> {:.5}% — the greedy scheduler",
        stable.unavailability_pct(),
        chased.unavailability_pct()
    );
    println!("chases the cheapest market regardless of its stability (Figure 9(c));");
    println!("the paper leaves stability-aware bidding as future work.");
}
