//! A dry run of the OS mechanisms themselves (§3.2): what actually happens
//! in the two minutes after a revocation warning, and why the paper's
//! combination of bounded checkpointing + lazy restore + live migration is
//! the one that works.
//!
//! ```text
//! cargo run --release --example migration_drill
//! ```

use spothost::cloudsim::REVOCATION_GRACE;
use spothost::market::types::Region;
use spothost::virt::wan::{disk_copy_duration, wan_live_migration};
use spothost::virt::*;

fn main() {
    let vm = VmSpec::paper_2gib();
    let params = VirtParams::typical();

    // --- bounded checkpointing: making the 2-minute warning survivable -----
    let ckpt = BoundedCheckpointer::new(&vm, &params);
    println!(
        "Yank-style bounded checkpointing of a {} GiB nested VM:",
        vm.memory_gib
    );
    println!(
        "  full checkpoint:          {}",
        ckpt.full_checkpoint_duration()
    );
    println!(
        "  background period:        {} (keeps increments under tau = {})",
        ckpt.checkpoint_period().unwrap(),
        ckpt.tau
    );
    println!(
        "  final flush on warning:   <= {} — fits the {} grace window",
        ckpt.tau, REVOCATION_GRACE
    );
    println!(
        "  write-bandwidth overhead: {:.1}%",
        ckpt.background_write_utilization() * 100.0
    );

    // --- live migration: the voluntary path ---------------------------------
    let live = live_migration(&vm, &params);
    println!("\nlive (pre-copy) migration within a region:");
    println!(
        "  total {} over {} rounds, {:.2} GiB on the wire, downtime {}",
        live.total, live.rounds, live.transferred_gib, live.downtime
    );

    // --- restore choices: what the service feels ----------------------------
    println!("\nrestore after a forced migration (downtime felt by users):");
    for (label, combo) in [
        ("standard restore", MechanismCombo::CKPT),
        ("lazy restore", MechanismCombo::CKPT_LR),
    ] {
        let ctx = MigrationContext::local(vm, Region::UsEast1);
        let t = plan_migration(combo, MigrationKind::Forced, &ctx, &params);
        println!(
            "  {:<17} downtime {} (+{} degraded)",
            label, t.downtime, t.degraded
        );
    }

    // --- the full decision table ---------------------------------------------
    println!("\nper-migration timing by mechanism combo (local moves):");
    println!("  combo             kind      prepare      downtime   degraded");
    for combo in MechanismCombo::ALL {
        for kind in [MigrationKind::Forced, MigrationKind::Planned] {
            let ctx = MigrationContext::local(vm, Region::UsEast1);
            let t = plan_migration(combo, kind, &ctx, &params);
            println!(
                "  {:<16} {:<8} {:>10} {:>12} {:>10}",
                combo.name(),
                kind.name(),
                t.prepare.to_string(),
                t.downtime.to_string(),
                t.degraded.to_string()
            );
        }
    }

    // --- WAN: why cross-region moves are a different animal -----------------
    println!("\ncross-region (WAN) live migration of the same VM + 8 GiB disk:");
    for (a, b) in [
        (Region::UsEast1, Region::UsWest1),
        (Region::UsEast1, Region::EuWest1),
        (Region::UsWest1, Region::EuWest1),
    ] {
        let pair = RegionPair::new(a, b);
        let out = wan_live_migration(&vm, &params, pair);
        println!(
            "  {:>9} <-> {:<9} live {} + disk copy {}",
            a.name(),
            b.name(),
            out.total,
            disk_copy_duration(pair, 8.0)
        );
    }

    // --- pessimistic view ------------------------------------------------------
    let worst = VirtParams::pessimistic();
    let ctx = MigrationContext::local(vm, Region::UsEast1);
    let typical = plan_migration(
        MechanismCombo::CKPT_LR_LIVE,
        MigrationKind::Forced,
        &ctx,
        &params,
    );
    let pess = plan_migration(
        MechanismCombo::CKPT_LR_LIVE,
        MigrationKind::Forced,
        &ctx,
        &worst,
    );
    println!(
        "\nforced-migration downtime, best combo: typical {} vs pessimistic {}",
        typical.downtime, pess.downtime
    );
}
