//! An e-commerce operator's decision walkthrough: which hosting scheme
//! keeps a TPC-W-class store under its availability SLO at the lowest
//! cost, and what nested virtualization does to capacity planning.
//!
//! ```text
//! cargo run --release --example ecommerce_hosting
//! ```

use spothost::core::prelude::*;
use spothost::market::prelude::*;
use spothost::virt::NestedOverheadModel;
use spothost::workload::response::{response_curve, FIGURE12_EBS};
use spothost::workload::slo;
use spothost::workload::tpcw::TpcwConfig;

fn main() {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Large);
    let horizon = SimDuration::days(60);
    let seeds = 8;

    println!("E-commerce store, {} capacity, 60-day horizon\n", market);

    // --- Step 1: pick a hosting scheme --------------------------------------
    println!("scheme                   cost%   unavail%   downtime/month   4-nines?");
    for (name, policy) in [
        ("on-demand only", BiddingPolicy::OnDemandOnly),
        ("pure spot", BiddingPolicy::PureSpot),
        ("reactive + migration", BiddingPolicy::Reactive),
        ("proactive + migration", BiddingPolicy::proactive_default()),
    ] {
        let cfg = SchedulerConfig::single_market(market)
            .with_policy(policy)
            .with_mechanism(MechanismCombo::CKPT_LR_LIVE);
        let agg = run_many(&cfg, 0, seeds, horizon);
        let monthly_downtime = slo::downtime_per_month(agg.unavailability.mean);
        println!(
            "{:<24} {:>5.1}   {:>8.5}   {:>9.1}s        {}",
            name,
            agg.normalized_cost_pct(),
            agg.unavailability_pct(),
            monthly_downtime,
            if slo::meets_nines(agg.unavailability.mean, 4) {
                "yes"
            } else {
                "NO"
            }
        );
    }

    // --- Step 2: pick migration mechanisms ----------------------------------
    println!("\nmechanism combo effect (proactive bidding):");
    for combo in MechanismCombo::ALL {
        let cfg = SchedulerConfig::single_market(market).with_mechanism(combo);
        let agg = run_many(&cfg, 0, seeds, horizon);
        println!(
            "  {:<16} unavailability {:.5}%",
            combo.name(),
            agg.unavailability_pct()
        );
    }

    // --- Step 3: capacity planning under nested virtualization --------------
    // The store's dynamic pages are CPU-bound once images move to a CDN;
    // check the response-time penalty and the §6.3 cost impact.
    println!("\nTPC-W response time, images on CDN (CPU-bound):");
    println!("  EBs    native(ms)  nested(ms)  ratio");
    for p in response_curve(TpcwConfig::NoImages, &FIGURE12_EBS) {
        println!(
            "  {:>4}   {:>9.0}   {:>9.0}   {:.2}x",
            p.ebs,
            p.native_ms,
            p.nested_ms,
            p.overhead_ratio()
        );
    }

    let overhead = NestedOverheadModel::xen_blanket();
    let cfg = SchedulerConfig::single_market(market);
    let base = run_many(&cfg, 0, seeds, horizon).normalized_cost.mean;
    println!(
        "\ncost after capacity inflation (base {:.1}%):",
        base * 100.0
    );
    for cpu_fraction in [0.0, 0.5, 1.0] {
        println!(
            "  {:>3.0}% CPU-bound -> effective cost {:.1}% of on-demand",
            cpu_fraction * 100.0,
            overhead.effective_cost_ratio(base, cpu_fraction) * 100.0
        );
    }
    println!("\nconclusion: proactive bidding + CKPT/LR/Live meets four nines at a");
    println!("fraction of on-demand cost, even with worst-case nested CPU overhead.");
}
