//! Quickstart: host an always-on service on the spot market and compare
//! against the on-demand baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spothost::core::prelude::*;
use spothost::market::prelude::*;

fn main() {
    // The service: one small server's worth of capacity in us-east-1a.
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);

    // The paper's recommended setup: proactive bidding (bid = 4x the
    // on-demand price), checkpointing + lazy restore + live migration.
    let cfg = SchedulerConfig::single_market(market)
        .with_policy(BiddingPolicy::proactive_default())
        .with_mechanism(MechanismCombo::CKPT_LR_LIVE);

    // Simulate 60 days against a generated spot-price history.
    let report = run_one(&cfg, 42, SimDuration::days(60));

    println!("hosting {} for 60 days:", market);
    println!("  cost:            ${:.2}", report.cost);
    println!(
        "  on-demand cost:  ${:.2}  (normalized: {:.1}%)",
        report.baseline_cost,
        report.normalized_cost_pct()
    );
    println!(
        "  unavailability:  {:.5}%  ({} total downtime)",
        report.unavailability_pct(),
        report.downtime
    );
    println!(
        "  migrations:      {} forced, {} planned, {} reverse",
        report.forced_migrations, report.planned_migrations, report.reverse_migrations
    );
    println!("  time on spot:    {:.1}%", report.spot_fraction * 100.0);
    println!(
        "  meets four nines: {}",
        if report.meets_nines(4) { "yes" } else { "no" }
    );

    // Monte-Carlo over 12 price histories for confidence.
    let agg = run_many(&cfg, 0, 12, SimDuration::days(60));
    println!(
        "\nover 12 simulated histories: cost {:.1}% +- {:.1}pp, unavailability {:.5}%",
        agg.normalized_cost_pct(),
        agg.normalized_cost.std * 100.0,
        agg.unavailability_pct()
    );
}
