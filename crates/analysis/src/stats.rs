//! Scalar sample statistics.

/// Arithmetic mean; 0 for an empty sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Mean and sample standard deviation in one pass over the data
/// (Welford's algorithm — numerically stable for long accumulations).
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let mut n = 0.0f64;
    let mut m = 0.0f64;
    let mut m2 = 0.0f64;
    for &x in xs {
        n += 1.0;
        let d = x - m;
        m += d / n;
        m2 += d * (x - m);
    }
    if n < 2.0 {
        (m, 0.0)
    } else {
        (m, (m2 / (n - 1.0)).sqrt())
    }
}

/// Linear-interpolated percentile, `p` in `[0, 100]`. Sorts a copy.
///
/// NaN handling: inputs are ordered by IEEE 754 `totalOrder` (`total_cmp`),
/// which places NaN above every finite value (and -NaN below), so the
/// function never panics on NaN — a NaN in the sample surfaces as the top
/// percentiles going NaN rather than as a crash mid-report. Callers that
/// must exclude NaN should filter before calling.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    if v.len() == 1 {
        return v[0];
    }
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] + (v[hi] - v[lo]) * frac
}

/// Pinball (quantile) loss of predicting `pred` for quantile level `q`
/// when `target` is realized. The proper scoring rule for quantile
/// forecasts: under-prediction is weighted by `q`, over-prediction by
/// `1 - q`, so the expected loss is minimized by the true `q`-quantile.
pub fn pinball_loss(target: f64, pred: f64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let d = target - pred;
    if d >= 0.0 {
        q * d
    } else {
        (q - 1.0) * d
    }
}

/// Fraction of `(target, pred)` pairs with `target <= pred` — the
/// empirical coverage of a `q`-quantile forecast, which should be close
/// to `q` when the forecaster is calibrated. 0 for an empty sample.
pub fn empirical_coverage(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let covered = pairs.iter().filter(|(t, p)| t <= p).count();
    covered as f64 / pairs.len() as f64
}

/// First `x` at which a sampled curve `(xs, ys)` reaches `threshold`,
/// linearly interpolated between adjacent samples; `None` if it never
/// does. `xs` must be sorted ascending and the same length as `ys`.
/// Used by sensitivity sweeps to answer "at what fault rate does the SLO
/// break" without re-running the sweep at finer granularity.
pub fn first_crossing(xs: &[f64], ys: &[f64], threshold: f64) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "first_crossing needs paired samples");
    for i in 0..xs.len() {
        if ys[i] >= threshold {
            if i == 0 {
                return Some(xs[0]);
            }
            let (x0, y0) = (xs[i - 1], ys[i - 1]);
            let (x1, y1) = (xs[i], ys[i]);
            if y1 <= y0 {
                return Some(x1);
            }
            return Some(x0 + (threshold - y0) / (y1 - y0) * (x1 - x0));
        }
    }
    None
}

/// First `x` past which a sampled curve `(xs, ys)` stays at or above
/// `threshold` for the rest of the sweep — the *sustained* counterpart
/// of [`first_crossing`], robust to a single noisy sample poking above
/// the bar and dipping back. Linearly interpolated off the last
/// below-threshold sample; `Some(xs[0])` if the whole curve sits at or
/// above; `None` if the curve ends below (it never breaks for good).
/// `xs` must be sorted ascending and the same length as `ys`.
pub fn first_sustained_crossing(xs: &[f64], ys: &[f64], threshold: f64) -> Option<f64> {
    assert_eq!(
        xs.len(),
        ys.len(),
        "first_sustained_crossing needs paired samples"
    );
    if *ys.last()? < threshold {
        return None;
    }
    match ys.iter().rposition(|&y| y < threshold) {
        None => Some(xs[0]),
        Some(i) => {
            let (x0, y0) = (xs[i], ys[i]);
            let (x1, y1) = (xs[i + 1], ys[i + 1]);
            Some(x0 + (threshold - y0) / (y1 - y0) * (x1 - x0))
        }
    }
}

/// Trapezoidal area under a sampled curve `(xs, ys)`. `xs` must be
/// sorted ascending and the same length as `ys`; fewer than two samples
/// have no area. Sensitivity sweeps use the area *difference* between
/// two curves over the same grid as a single scalar for "how much better
/// is strategy A than B across the whole sweep" (e.g. the diversification
/// win in `repro storms`).
pub fn auc(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "auc needs paired samples");
    xs.windows(2)
        .zip(ys.windows(2))
        .map(|(x, y)| (x[1] - x[0]) * 0.5 * (y[0] + y[1]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
        let (m, s) = mean_std(&xs);
        assert!((m - mean(&xs)).abs() < 1e-12);
        assert!((s - std_dev(&xs)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn auc_is_trapezoidal() {
        // Unit square under y=1, then a triangle under y=x.
        assert_eq!(auc(&[0.0, 1.0], &[1.0, 1.0]), 1.0);
        assert!((auc(&[0.0, 0.5, 1.0], &[0.0, 0.5, 1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(auc(&[3.0], &[9.0]), 0.0);
        assert_eq!(auc(&[], &[]), 0.0);
        // Non-uniform grid.
        assert!((auc(&[0.0, 1.0, 4.0], &[2.0, 2.0, 2.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn sustained_crossing_ignores_transient_spikes() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        // A transient spike above the bar at x=1 dips back at x=2: the
        // sustained crossing interpolates between x=2 and x=3, where
        // `first_crossing` would report the noise at x<1.
        let ys = [0.0, 5.0, 1.0, 3.0];
        let sustained = first_sustained_crossing(&xs, &ys, 2.0).unwrap();
        assert!((sustained - 2.5).abs() < 1e-12, "got {sustained}");
        assert!(first_crossing(&xs, &ys, 2.0).unwrap() < 1.0);
        // Ends below the bar: never breaks for good.
        assert_eq!(
            first_sustained_crossing(&xs, &[0.0, 5.0, 1.0, 1.9], 2.0),
            None
        );
        // Entirely above: breaks from the start.
        assert_eq!(
            first_sustained_crossing(&xs, &[3.0, 4.0, 5.0, 6.0], 2.0),
            Some(0.0)
        );
        assert_eq!(first_sustained_crossing(&[], &[], 2.0), None);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        // Unsorted input is handled.
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_tolerates_nan_without_panicking() {
        // Regression: `partial_cmp().expect(..)` used to panic here.
        let xs = [2.0, f64::NAN, 1.0, 3.0];
        // total_cmp sorts NaN above the finite values: low/mid percentiles
        // stay finite, the max percentile reads NaN.
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!(percentile(&xs, 100.0).is_nan());
        // An all-NaN sample is NaN at every level, still no panic.
        assert!(percentile(&[f64::NAN], 50.0).is_nan());
    }

    #[test]
    fn percentile_single_element_and_extreme_p() {
        let one = [42.5];
        assert_eq!(percentile(&one, 0.0), 42.5);
        assert_eq!(percentile(&one, 50.0), 42.5);
        assert_eq!(percentile(&one, 100.0), 42.5);
        // Extreme p on a larger sample pins to min/max exactly.
        let xs = [5.0, -1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), -1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0,100]")]
    fn percentile_rejects_out_of_range_p() {
        percentile(&[1.0], 100.5);
    }

    #[test]
    fn first_crossing_interpolates() {
        let xs = [0.0, 0.1, 0.2, 0.5];
        let ys = [0.0, 0.0, 0.4, 1.0];
        // Crosses 0.2 halfway between x=0.1 (y=0) and x=0.2 (y=0.4).
        let x = first_crossing(&xs, &ys, 0.2).expect("crosses");
        assert!((x - 0.15).abs() < 1e-12);
        // Never reaches 2.0.
        assert_eq!(first_crossing(&xs, &ys, 2.0), None);
        // Already at/above threshold at the first sample.
        assert_eq!(first_crossing(&xs, &ys, 0.0), Some(0.0));
        // Flat segment at the threshold: report the sample itself.
        let ys = [0.0, 0.3, 0.3, 0.3];
        assert_eq!(first_crossing(&xs, &ys, 0.3), Some(0.1));
    }

    #[test]
    fn first_crossing_empty_series() {
        assert_eq!(first_crossing(&[], &[], 0.5), None);
    }

    #[test]
    fn first_crossing_never_reached() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.1, 0.2, 0.3];
        assert_eq!(first_crossing(&xs, &ys, 0.4), None);
    }

    #[test]
    fn first_crossing_at_first_point() {
        // At-or-above at index 0 returns the first x, even when the
        // series later dips back below the threshold.
        let xs = [3.0, 4.0, 5.0];
        let ys = [0.9, 0.1, 0.95];
        assert_eq!(first_crossing(&xs, &ys, 0.5), Some(3.0));
    }

    #[test]
    fn first_crossing_on_descending_series() {
        // A step down *onto* the threshold (y1 <= y0 with y1 >= t) must
        // report the sample itself, not extrapolate through the step.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.2, 0.1, 0.8, 0.6];
        // First at-or-above sample is i=2; rising segment interpolates.
        let x = first_crossing(&xs, &ys, 0.8).expect("crosses");
        assert!((x - 2.0).abs() < 1e-12);
        // Threshold below the whole descending tail: crossing happens on
        // the rising edge into i=2, interpolated between 0.1 and 0.8.
        let x = first_crossing(&xs, &ys, 0.45).expect("crosses");
        assert!((x - 1.5).abs() < 1e-12);
        // A strictly descending series that starts above the threshold
        // crosses at its first sample.
        let ys = [0.9, 0.7, 0.5, 0.3];
        assert_eq!(first_crossing(&xs, &ys, 0.6), Some(0.0));
        // ...and never crosses a threshold above its start.
        assert_eq!(first_crossing(&xs, &ys, 1.0), None);
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn first_crossing_rejects_mismatched_lengths() {
        first_crossing(&[0.0, 1.0], &[0.5], 0.2);
    }

    #[test]
    fn pinball_loss_is_a_proper_quantile_score() {
        // Exact prediction costs nothing.
        assert_eq!(pinball_loss(2.0, 2.0, 0.9), 0.0);
        // Under-prediction weighted by q, over-prediction by 1-q.
        assert!((pinball_loss(3.0, 2.0, 0.9) - 0.9).abs() < 1e-12);
        assert!((pinball_loss(1.0, 2.0, 0.9) - 0.1).abs() < 1e-12);
        // For q=0.9 on U{1..10}, loss over the sample is minimized near
        // the 9th value, not the median.
        let sample: Vec<f64> = (1..=10).map(f64::from).collect();
        let loss_at =
            |p: f64| -> f64 { sample.iter().map(|&t| pinball_loss(t, p, 0.9)).sum::<f64>() };
        assert!(loss_at(9.0) < loss_at(5.0));
        assert!(loss_at(9.0) < loss_at(8.0));
        assert!(loss_at(9.0) <= loss_at(10.0));
    }

    #[test]
    fn empirical_coverage_counts_covered_targets() {
        assert_eq!(empirical_coverage(&[]), 0.0);
        let pairs = [(1.0, 2.0), (3.0, 2.0), (2.0, 2.0), (0.5, 2.0)];
        assert!((empirical_coverage(&pairs) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_naive_on_large_sample() {
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 100.0).collect();
        let (m, s) = mean_std(&xs);
        assert!((m - mean(&xs)).abs() < 1e-9);
        assert!((s - std_dev(&xs)).abs() < 1e-9);
    }
}
