//! # spothost-analysis
//!
//! Statistics, Monte-Carlo execution, and table/CSV rendering shared by the
//! `spothost` experiment harness. Keeps the experiment code (one module per
//! paper table/figure in `spothost-bench`) free of formatting and
//! aggregation boilerplate.

// Library code must not unwrap (see DESIGN.md "Failure semantics").
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod hist;
pub mod mc;
pub mod series;
pub mod stats;
pub mod table;

pub use hist::FixedHistogram;
pub use mc::{mc_run, Summary};
pub use series::{LabeledSeries, SeriesSet};
pub use stats::{empirical_coverage, mean, mean_std, percentile, pinball_loss, std_dev};
pub use table::TextTable;
