//! # spothost-analysis
//!
//! Statistics, Monte-Carlo execution, and table/CSV rendering shared by the
//! `spothost` experiment harness. Keeps the experiment code (one module per
//! paper table/figure in `spothost-bench`) free of formatting and
//! aggregation boilerplate.

pub mod hist;
pub mod mc;
pub mod series;
pub mod stats;
pub mod table;

pub use hist::FixedHistogram;
pub use mc::{mc_run, Summary};
pub use series::{LabeledSeries, SeriesSet};
pub use stats::{mean, mean_std, percentile, std_dev};
pub use table::TextTable;
