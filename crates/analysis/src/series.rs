//! Labeled data series for figure reproduction.
//!
//! A paper figure is a set of named series over shared x-labels (e.g.
//! Figure 6(a): x = {small, medium, large, xlarge}, series = {Reactive,
//! Proactive}). `SeriesSet` holds exactly that and renders to text or CSV.

use std::fmt::Write as _;

/// One named series of y-values.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSeries {
    pub label: String,
    pub values: Vec<f64>,
}

impl LabeledSeries {
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        LabeledSeries {
            label: label.into(),
            values,
        }
    }
}

/// A figure's worth of series over common x-labels.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    pub x_labels: Vec<String>,
    pub series: Vec<LabeledSeries>,
}

impl SeriesSet {
    pub fn new<S: Into<String>>(x_labels: impl IntoIterator<Item = S>) -> Self {
        SeriesSet {
            x_labels: x_labels.into_iter().map(Into::into).collect(),
            series: Vec::new(),
        }
    }

    /// Add a series; its length must match the x-labels.
    pub fn push(&mut self, series: LabeledSeries) -> &mut Self {
        assert_eq!(
            series.values.len(),
            self.x_labels.len(),
            "series '{}' length mismatch",
            series.label
        );
        self.series.push(series);
        self
    }

    pub fn get(&self, label: &str) -> Option<&LabeledSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as an aligned text block (one row per x-label).
    pub fn to_text(&self, value_fmt: impl Fn(f64) -> String) -> String {
        let mut out = String::new();
        let xw = self
            .x_labels
            .iter()
            .map(|l| l.len())
            .max()
            .unwrap_or(1)
            .max(4);
        // Header.
        let _ = write!(out, "{:<xw$}", "x");
        let widths: Vec<usize> = self
            .series
            .iter()
            .map(|s| {
                s.label.len().max(
                    s.values
                        .iter()
                        .map(|&v| value_fmt(v).len())
                        .max()
                        .unwrap_or(0),
                ) + 2
            })
            .collect();
        for (s, w) in self.series.iter().zip(&widths) {
            let _ = write!(out, "{:>w$}", s.label, w = *w);
        }
        out.push('\n');
        for (i, x) in self.x_labels.iter().enumerate() {
            let _ = write!(out, "{x:<xw$}");
            for (s, w) in self.series.iter().zip(&widths) {
                let _ = write!(out, "{:>w$}", value_fmt(s.values[i]), w = *w);
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV with an `x` column followed by one column per series.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x");
        for s in &self.series {
            out.push(',');
            out.push_str(&csv_escape(&s.label));
        }
        out.push('\n');
        for (i, x) in self.x_labels.iter().enumerate() {
            out.push_str(&csv_escape(x));
            for s in &self.series {
                let _ = write!(out, ",{}", s.values[i]);
            }
            out.push('\n');
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> SeriesSet {
        let mut s = SeriesSet::new(["small", "medium"]);
        s.push(LabeledSeries::new("Reactive", vec![0.25, 0.28]));
        s.push(LabeledSeries::new("Proactive", vec![0.22, 0.26]));
        s
    }

    #[test]
    fn lookup_by_label() {
        let s = set();
        assert_eq!(s.get("Reactive").unwrap().values, vec![0.25, 0.28]);
        assert!(s.get("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        let mut s = SeriesSet::new(["a", "b", "c"]);
        s.push(LabeledSeries::new("bad", vec![1.0]));
    }

    #[test]
    fn text_render_contains_all_cells() {
        let txt = set().to_text(|v| format!("{v:.2}"));
        for needle in ["small", "medium", "Reactive", "Proactive", "0.25", "0.26"] {
            assert!(txt.contains(needle), "missing {needle} in:\n{txt}");
        }
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = set().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "x,Reactive,Proactive");
        assert!(lines[1].starts_with("small,0.25,"));
    }

    #[test]
    fn csv_escaping() {
        let mut s = SeriesSet::new(["a,b"]);
        s.push(LabeledSeries::new("se\"ries", vec![1.0]));
        let csv = s.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"se\"\"ries\""));
    }
}
