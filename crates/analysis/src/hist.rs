//! Fixed-bucket histograms for aggregating per-event observations
//! (downtime durations, migration latencies, lease lengths, ...) without
//! keeping the raw samples around.
//!
//! The bucket edges are fixed at construction, so merging two histograms
//! built from the same edges is exact and the memory footprint is
//! independent of the number of samples — the property the telemetry
//! `Metrics` sink needs to stay O(1) per event.

/// A histogram over `[edges[0], edges[n-1])` with one bucket per
/// consecutive pair of edges, plus underflow and overflow buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl FixedHistogram {
    /// Build a histogram from strictly increasing bucket edges.
    ///
    /// Panics if fewer than two edges are given or they are not strictly
    /// increasing (a caller bug, not a data condition).
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two bucket edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "bucket edges must be strictly increasing"
        );
        let n = edges.len() - 1;
        FixedHistogram {
            edges,
            counts: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// `n` equal-width buckets spanning `[lo, hi)`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 1 && hi > lo, "invalid linear histogram spec");
        let w = (hi - lo) / n as f64;
        FixedHistogram::new((0..=n).map(|i| lo + w * i as f64).collect())
    }

    /// Record one observation. Non-finite values are counted (in
    /// `count`/`min`/`max` they are ignored) into overflow/underflow by
    /// sign; NaN is dropped entirely.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x < self.edges[0] {
            self.underflow += 1;
            return;
        }
        let last = self.edges[self.edges.len() - 1];
        if x >= last {
            self.overflow += 1;
            return;
        }
        // Binary search for the bucket whose left edge is <= x.
        let idx = match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&x).expect("edges are finite"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        // idx is within [0, n-1] because x < last edge.
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Total number of recorded (non-NaN) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Smallest recorded observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Observations below the first edge / at-or-above the last edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The bucket edges this histogram was built from.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bucket counts (`edges().len() - 1` entries).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Iterate `(lo, hi, count)` per bucket, in order.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.edges
            .windows(2)
            .zip(self.counts.iter())
            .map(|(w, &c)| (w[0], w[1], c))
    }

    /// Approximate quantile (0..=1) by linear interpolation inside the
    /// containing bucket. `None` when empty. Underflow mass is attributed
    /// to the first edge, overflow mass to the last.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut acc = self.underflow as f64;
        if target <= acc {
            return Some(self.edges[0]);
        }
        for (lo, hi, c) in self.buckets() {
            let next = acc + c as f64;
            if target <= next && c > 0 {
                let frac = (target - acc) / c as f64;
                return Some(lo + (hi - lo) * frac);
            }
            acc = next;
        }
        Some(self.edges[self.edges.len() - 1])
    }

    /// Merge another histogram built from identical edges into this one.
    ///
    /// Panics when the edges differ — merging incompatible histograms is
    /// a caller bug.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert_eq!(self.edges, other.edges, "cannot merge: bucket edges differ");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Render as `lo..hi: count` lines with a proportional bar, for quick
    /// terminal inspection.
    pub fn render(&self, width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!("{:>22}  {}\n", "< first edge", self.underflow));
        }
        for (lo, hi, c) in self.buckets() {
            let bar = "#".repeat((c as usize * width).div_ceil(peak as usize).min(width));
            let bar = if c == 0 { String::new() } else { bar };
            out.push_str(&format!("{lo:>10.2}..{hi:<10.2}  {c:>8}  {bar}\n"));
        }
        if self.overflow > 0 {
            out.push_str(&format!("{:>22}  {}\n", ">= last edge", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_buckets() {
        let mut h = FixedHistogram::linear(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let mut h = FixedHistogram::linear(0.0, 1.0, 2);
        h.record(-0.5);
        h.record(1.0); // right edge is exclusive
        h.record(42.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(-0.5));
        assert_eq!(h.max(), Some(42.0));
    }

    #[test]
    fn nan_is_dropped() {
        let mut h = FixedHistogram::linear(0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn merge_adds_counts_exactly() {
        let mut a = FixedHistogram::linear(0.0, 10.0, 5);
        let mut b = FixedHistogram::linear(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.0);
        b.record(7.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.counts(), &[2, 0, 0, 1, 0]);
        assert_eq!(a.sum(), 9.0);
    }

    #[test]
    fn quantile_interpolates() {
        let mut h = FixedHistogram::linear(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let med = h.quantile(0.5).expect("non-empty");
        assert!((med - 5.0).abs() < 1.0, "median {med}");
        assert_eq!(h.quantile(0.0), Some(0.0));
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = FixedHistogram::linear(0.0, 1.0, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }
}
