//! Plain-text table rendering for the repro binary's output.

use std::fmt::Write as _;

/// A simple aligned text table with a header row.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", cell, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", cell, w = widths[i]);
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["Instance", "US east (s)"]);
        t.row(["On-demand", "94.85"]);
        t.row(["Spot", "281.47"]);
        let s = t.render();
        assert!(s.contains("On-demand"));
        assert!(s.contains("281.47"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Separator under header.
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns aligned: all lines equal length.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn num_rows_counts() {
        let mut t = TextTable::new(["x"]);
        assert_eq!(t.num_rows(), 0);
        t.row(["1"]);
        t.row(["2"]);
        assert_eq!(t.num_rows(), 2);
    }
}
