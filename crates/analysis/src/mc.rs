//! Monte-Carlo execution over seeds, parallelised with rayon.
//!
//! Every paper figure is an average over simulation runs ("we sampled the
//! empirically observed distributions and used a different sample for each
//! simulation run", §4.1). `mc_run` fans one closure out over a seed range
//! on the rayon thread pool and summarises.

use rayon::prelude::*;

/// Mean/std/min/max summary over Monte-Carlo repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub n: usize,
}

impl Summary {
    /// An explicit all-zero summary of no observations. `Summary::of(&[])`
    /// returns this instead of the NaN/±infinity that naive fold
    /// identities would produce, so an accidentally empty Monte-Carlo
    /// sweep shows up as zeros with `n = 0` in report tables rather than
    /// silently propagating NaN.
    pub const EMPTY: Summary = Summary {
        mean: 0.0,
        std: 0.0,
        min: 0.0,
        max: 0.0,
        n: 0,
    };

    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Summary::EMPTY;
        }
        let (mean, std) = crate::stats::mean_std(xs);
        Summary {
            mean,
            std,
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            n: xs.len(),
        }
    }
}

/// Map `f` over arbitrary work items on the rayon pool, preserving item
/// order in the output (deterministic regardless of thread scheduling).
/// This is the primitive under [`mc_run`]; sweep drivers use it directly
/// to flatten a whole seed x configuration grid into **one** parallel
/// pass instead of a fork/join barrier per grid cell.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync + Send,
{
    items.into_par_iter().map(f).collect()
}

/// Map a batch function over `items` split into contiguous chunks of (at
/// most) `chunk` items, in parallel, flattening the per-chunk outputs back
/// into item order. `f` receives each chunk as a slice and must return one
/// output per input, in order.
///
/// The point of chunking is worker-local state amortisation: within a
/// chunk, `f` runs sequentially on one thread and can carry scratch
/// buffers (event queues, forecaster state) from item to item, while
/// chunks still spread across the pool. Results must not depend on the
/// chunk boundaries — callers guarantee that by resetting any carried
/// state per item — so the output is identical for every `chunk` value.
pub fn par_map_chunks<I, T, F>(items: Vec<I>, chunk: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(&[I]) -> Vec<T> + Sync + Send,
{
    assert!(chunk > 0, "chunk size must be positive");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(n.div_ceil(chunk));
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    let out: Vec<Vec<T>> = par_map(chunks, |c| f(&c));
    let flat: Vec<T> = out.into_iter().flatten().collect();
    assert_eq!(flat.len(), n, "chunk fn must return one output per input");
    flat
}

/// Run `f(seed)` for `seeds` consecutive seeds starting at `seed0`, in
/// parallel, and return the per-seed results in seed order (deterministic
/// regardless of thread scheduling).
pub fn mc_run<T, F>(seed0: u64, seeds: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync + Send,
{
    par_map((seed0..seed0 + seeds).collect(), f)
}

/// Convenience: Monte-Carlo over a scalar metric, summarised.
pub fn mc_summary<F>(seed0: u64, seeds: u64, f: F) -> Summary
where
    F: Fn(u64) -> f64 + Sync + Send,
{
    let xs = mc_run(seed0, seeds, f);
    Summary::of(&xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_seed_order() {
        let out = mc_run(10, 100, |s| s * 2);
        let expect: Vec<u64> = (10..110).map(|s| s * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn summary_of_empty_is_zeroed_not_nan() {
        let s = Summary::of(&[]);
        assert_eq!(s, Summary::EMPTY);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        // The whole point: nothing NaN/infinite leaks into tables.
        assert!(s.mean.is_finite() && s.min.is_finite() && s.max.is_finite());
    }

    #[test]
    fn summary_of_constant() {
        let s = Summary::of(&[3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn mc_summary_is_deterministic() {
        let f = |seed: u64| (seed as f64).sqrt();
        let a = mc_summary(0, 64, f);
        let b = mc_summary(0, 64, f);
        assert_eq!(a, b);
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<(u64, u64)> = (0..13).flat_map(|a| (0..7).map(move |b| (a, b))).collect();
        let out = par_map(items.clone(), |(a, b)| a * 100 + b);
        let expect: Vec<u64> = items.iter().map(|&(a, b)| a * 100 + b).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_chunks_is_chunk_size_invariant() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for chunk in [1, 2, 5, 16, 64] {
            let out = par_map_chunks(items.clone(), chunk, |c| {
                c.iter().map(|x| x * 3 + 1).collect()
            });
            assert_eq!(out, serial, "chunk={chunk}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let f = |seed: u64| (seed as f64 * 1.5).cos();
        let par = mc_run(0, 200, f);
        let ser: Vec<f64> = (0..200).map(f).collect();
        assert_eq!(par, ser);
    }
}
