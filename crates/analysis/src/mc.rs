//! Monte-Carlo execution over seeds, parallelised with rayon.
//!
//! Every paper figure is an average over simulation runs ("we sampled the
//! empirically observed distributions and used a different sample for each
//! simulation run", §4.1). `mc_run` fans one closure out over a seed range
//! on the rayon thread pool and summarises.

use rayon::prelude::*;

/// Mean/std/min/max summary over Monte-Carlo repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub n: usize,
}

impl Summary {
    pub fn of(xs: &[f64]) -> Self {
        let (mean, std) = crate::stats::mean_std(xs);
        Summary {
            mean,
            std,
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            n: xs.len(),
        }
    }
}

/// Run `f(seed)` for `seeds` consecutive seeds starting at `seed0`, in
/// parallel, and return the per-seed results in seed order (deterministic
/// regardless of thread scheduling).
pub fn mc_run<T, F>(seed0: u64, seeds: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync + Send,
{
    (seed0..seed0 + seeds)
        .into_par_iter()
        .map(f)
        .collect()
}

/// Convenience: Monte-Carlo over a scalar metric, summarised.
pub fn mc_summary<F>(seed0: u64, seeds: u64, f: F) -> Summary
where
    F: Fn(u64) -> f64 + Sync + Send,
{
    let xs = mc_run(seed0, seeds, f);
    Summary::of(&xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_seed_order() {
        let out = mc_run(10, 100, |s| s * 2);
        let expect: Vec<u64> = (10..110).map(|s| s * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn summary_of_constant() {
        let s = Summary::of(&[3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn mc_summary_is_deterministic() {
        let f = |seed: u64| (seed as f64).sqrt();
        let a = mc_summary(0, 64, f);
        let b = mc_summary(0, 64, f);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_serial() {
        let f = |seed: u64| (seed as f64 * 1.5).cos();
        let par = mc_run(0, 200, f);
        let ser: Vec<f64> = (0..200).map(f).collect();
        assert_eq!(par, ser);
    }
}
