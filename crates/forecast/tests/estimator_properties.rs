//! Property-based tests of the forecast estimators: whatever price
//! history is drawn, the quantile estimator must be monotone in `q` and
//! bounded by the observed extremes, the excursion model must be
//! monotone in the bid and a proper probability, both must be
//! deterministic, and feeding a history in one pass must equal feeding
//! it cut at arbitrary points (the scheduler feeds incrementally; the
//! backtest feeds in bulk — they must agree).

use proptest::prelude::*;
use spothost_forecast::{ExcursionModel, ForecastParams, MarketForecaster, WindowQuantile};
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::trace::Segment;

/// A price history as (duration seconds, price) runs starting at t=0.
fn arb_history() -> impl Strategy<Value = Vec<(u64, f64)>> {
    prop::collection::vec((60u64..20_000, 0.01f64..5.0), 1..40)
}

/// Materialize a history into contiguous segments.
fn segments(history: &[(u64, f64)]) -> Vec<Segment> {
    let mut t = 0u64;
    history
        .iter()
        .map(|&(d, p)| {
            let s = Segment {
                start: SimTime::secs(t),
                end: SimTime::secs(t + d),
                price: p,
            };
            t += d;
            s
        })
        .collect()
}

/// Split every segment at `frac` of its length (where that makes a
/// non-degenerate cut), yielding a different segmentation of the same
/// price function.
fn resegment(segs: &[Segment], frac: f64) -> Vec<Segment> {
    let mut out = Vec::new();
    for s in segs {
        let d = s.duration().as_millis();
        let cut = (d as f64 * frac) as u64;
        if cut == 0 || cut >= d {
            out.push(*s);
        } else {
            let mid = s.start + SimDuration::millis(cut);
            out.push(Segment {
                start: s.start,
                end: mid,
                price: s.price,
            });
            out.push(Segment {
                start: mid,
                end: s.end,
                price: s.price,
            });
        }
    }
    out
}

fn quantile_window() -> SimDuration {
    SimDuration::hours(6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantile_monotone_and_bounded(history in arb_history()) {
        let mut w = WindowQuantile::new(quantile_window(), 4096);
        for s in segments(&history) {
            w.feed(s);
        }
        let lo = w.min().expect("fed");
        let hi = w.max().expect("fed");
        prop_assert!(lo <= hi);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = w.quantile(q).expect("fed");
            prop_assert!(v >= last, "q={} gave {} after {}", q, v, last);
            prop_assert!((lo..=hi).contains(&v), "q={} gave {} outside [{}, {}]", q, v, lo, hi);
            last = v;
        }
    }

    #[test]
    fn quantile_one_pass_equals_split_feed(history in arb_history(), frac in 0.05f64..0.95) {
        let segs = segments(&history);
        let mut one = WindowQuantile::new(quantile_window(), 4096);
        let mut two = WindowQuantile::new(quantile_window(), 4096);
        for s in &segs {
            one.feed(*s);
        }
        for s in resegment(&segs, frac) {
            two.feed(s);
        }
        prop_assert_eq!(one.len(), two.len(), "storage must be canonical");
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            prop_assert_eq!(one.quantile(q), two.quantile(q), "q={}", q);
        }
    }

    #[test]
    fn excursion_monotone_probability(history in arb_history()) {
        let mut m = ExcursionModel::new(SimDuration::hours(6), SimDuration::hours(1), 4096);
        for s in segments(&history) {
            m.feed(s);
        }
        let mut last = f64::INFINITY;
        for i in 0..=25 {
            let bid = i as f64 * 0.2;
            let p = m.prob_above(bid);
            prop_assert!((0.0..=1.0).contains(&p), "bid {} gave {}", bid, p);
            prop_assert!(p <= last, "bid {} gave {} after {}", bid, p, last);
            last = p;
        }
        // Above the global maximum nothing is ever at risk; at zero the
        // whole (positive-priced) window is.
        prop_assert_eq!(m.prob_above(5.1), 0.0);
        prop_assert_eq!(m.prob_above(0.0), 1.0);
    }

    #[test]
    fn excursion_one_pass_equals_split_feed(history in arb_history(), frac in 0.05f64..0.95) {
        let segs = segments(&history);
        let mut one = ExcursionModel::new(SimDuration::hours(6), SimDuration::hours(1), 4096);
        let mut two = ExcursionModel::new(SimDuration::hours(6), SimDuration::hours(1), 4096);
        for s in &segs {
            one.feed(*s);
        }
        for s in resegment(&segs, frac) {
            two.feed(s);
        }
        for i in 0..=25 {
            let bid = i as f64 * 0.2;
            prop_assert_eq!(one.prob_above(bid), two.prob_above(bid), "bid {}", bid);
        }
    }

    #[test]
    fn forecaster_is_deterministic(history in arb_history()) {
        let build = || {
            let mut f = MarketForecaster::new(ForecastParams::default());
            for s in segments(&history) {
                f.feed(s);
            }
            f
        };
        let (a, b) = (build(), build());
        prop_assert_eq!(a.mean(), b.mean());
        prop_assert_eq!(a.quantile(0.9), b.quantile(0.9));
        prop_assert_eq!(a.prob_above(1.0), b.prob_above(1.0));
        prop_assert_eq!(
            a.decide_bid(1.0, 4.0, 0.01),
            b.decide_bid(1.0, 4.0, 0.01)
        );
    }
}
