//! # spothost-forecast
//!
//! Online per-market spot-price forecasting for adaptive bidding.
//!
//! The paper fixes its proactive bid multiple at k=4 by inspecting the
//! February-2015 traces by hand (§3.1, footnote 1) and ranks candidate
//! markets by current price alone. This crate learns per-market price
//! dynamics *online* — from exactly the piecewise-constant price history a
//! real scheduler could observe — and feeds the scheduler:
//!
//! * [`Ewma`] — a time-decayed mean/variance of the price,
//! * [`WindowQuantile`] — a bounded sliding-window, duration-weighted
//!   quantile estimator,
//! * [`ExcursionModel`] — an excursion-frequency estimate of
//!   P(price > b within the next lookahead) for a candidate bid b,
//!
//! combined per market by [`MarketForecaster`], which also implements the
//! adaptive bid rule ([`MarketForecaster::decide_bid`]): the *cheapest*
//! ladder bid whose predicted revocation probability clears a configured
//! risk budget, clamped to the provider cap.
//!
//! [`backtest`] is a walk-forward evaluation harness (train on a trace
//! prefix, score on the suffix) reporting pinball loss and empirical
//! coverage for quantile calibration; `spothost-bench`'s `adaptive`
//! experiment renders its summary.
//!
//! Everything here is deterministic: estimators are pure functions of the
//! fed segment sequence (no wall clock, no hashing, no RNG), so runs are
//! reproducible per seed and the workspace's byte-identity guarantees
//! extend to forecast-driven experiments.

// Library code must not unwrap (see DESIGN.md "Failure semantics").
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod backtest;
pub mod ewma;
pub mod excursion;
pub mod forecaster;
pub mod quantile;

pub use backtest::{walk_forward, BacktestParams, BacktestReport, QuantileScore};
pub use ewma::Ewma;
pub use excursion::ExcursionModel;
pub use forecaster::{BidDecision, ForecastParams, MarketForecaster};
pub use quantile::WindowQuantile;
