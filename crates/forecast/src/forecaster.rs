//! Per-market forecaster: the estimators bundled together, plus the
//! adaptive bid rule.
//!
//! A [`MarketForecaster`] is fed the market's price history incrementally
//! (each segment exactly once, in order) and answers the scheduler's
//! question at a billing boundary: *what is the cheapest bid that is
//! predicted to survive the next hour with probability ≥ 1 − risk
//! budget?* Bidding lower than the paper's fixed cap cannot reduce the
//! price paid (spot bills at the hour-start price regardless of the bid),
//! but it converts price spikes into *revocations*, whose partial final
//! hour is free — provided they stay rare enough that forced on-demand
//! fallback doesn't eat the savings. Hence a small risk budget and a
//! conservative fallback to the cap whenever the model lacks data.

use crate::ewma::Ewma;
use crate::excursion::ExcursionModel;
use crate::quantile::WindowQuantile;
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::trace::Segment;

/// Tuning knobs for a [`MarketForecaster`]. The defaults are sized for
/// the workspace's generated traces (multi-week horizons, hour-scale
/// price dynamics).
#[derive(Debug, Clone, Copy)]
pub struct ForecastParams {
    /// Half-life of the EWMA mean/variance estimate.
    pub ewma_half_life: SimDuration,
    /// Trailing window for the quantile estimator.
    pub quantile_window: SimDuration,
    /// Trailing window for the excursion-frequency model.
    pub excursion_window: SimDuration,
    /// Excursion lookahead — "within the next hour" per the bid question.
    pub lookahead: SimDuration,
    /// Minimum observed history before the model's answers are trusted;
    /// until then the adaptive rule bids the provider cap.
    pub warmup: SimDuration,
    /// Headroom the chosen bid must keep over the highest price observed
    /// in the excursion window. The window is short, and a spike that
    /// beats its recent record is exactly the event that forces a
    /// migration — the excursion frequency alone cannot see it coming,
    /// so the margin buys tail room the history cannot testify to.
    pub tail_margin: f64,
    /// Hard cap on stored runs per estimator.
    pub max_runs: usize,
}

impl Default for ForecastParams {
    fn default() -> Self {
        ForecastParams {
            ewma_half_life: SimDuration::hours(12),
            quantile_window: SimDuration::days(2),
            excursion_window: SimDuration::days(3),
            lookahead: SimDuration::hours(1),
            warmup: SimDuration::days(1),
            tail_margin: 1.5,
            max_runs: 4096,
        }
    }
}

/// The adaptive bid rule's answer for one market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidDecision {
    /// The bid to place (≤ the provider cap).
    pub bid: f64,
    /// Predicted P(revocation within the lookahead) at that bid; `None`
    /// while the model is still warming up (the bid is then the cap).
    pub predicted_risk: Option<f64>,
}

/// Candidate bids tried by [`MarketForecaster::decide_bid`], as multiples
/// of the on-demand price, cheapest first. The provider cap is always
/// appended as the last resort, so the rule degrades to the paper's
/// fixed-cap policy when nothing cheaper clears the risk budget.
pub const BID_LADDER: [f64; 7] = [1.1, 1.3, 1.6, 2.0, 2.5, 3.0, 4.0];

/// Online forecaster for one spot market.
#[derive(Debug, Clone)]
pub struct MarketForecaster {
    params: ForecastParams,
    ewma: Ewma,
    quantile: WindowQuantile,
    excursion: ExcursionModel,
    /// How far the price history has been fed, so callers can request
    /// exactly the missing `[fed_to, now)` span next time.
    fed_to: SimTime,
}

impl MarketForecaster {
    pub fn new(params: ForecastParams) -> Self {
        MarketForecaster {
            ewma: Ewma::new(params.ewma_half_life),
            quantile: WindowQuantile::new(params.quantile_window, params.max_runs),
            excursion: ExcursionModel::new(
                params.excursion_window,
                params.lookahead,
                params.max_runs,
            ),
            params,
            fed_to: SimTime::ZERO,
        }
    }

    /// Reinitialise in place to the state of `MarketForecaster::new(params)`,
    /// keeping the estimators' grown buffers. A reset forecaster answers
    /// every query bit-identically to a fresh one, which is what lets
    /// sweep workers reuse forecaster scratch across simulation runs.
    pub fn reset(&mut self, params: ForecastParams) {
        self.ewma.reset(params.ewma_half_life);
        self.quantile.reset(params.quantile_window, params.max_runs);
        self.excursion
            .reset(params.excursion_window, params.lookahead, params.max_runs);
        self.params = params;
        self.fed_to = SimTime::ZERO;
    }

    /// Fold one constant-price segment into every estimator. Segments
    /// must arrive in time order and must not overlap previously fed
    /// history (each observation counts once).
    pub fn feed(&mut self, seg: Segment) {
        if seg.end <= seg.start {
            return;
        }
        self.ewma.feed(seg);
        self.quantile.feed(seg);
        self.excursion.feed(seg);
        self.fed_to = self.fed_to.max(seg.end);
    }

    /// End of the fed history; the caller owes the span `[fed_to, now)`.
    pub fn fed_to(&self) -> SimTime {
        self.fed_to
    }

    pub fn params(&self) -> &ForecastParams {
        &self.params
    }

    /// Has enough history accumulated to trust the model?
    pub fn warmed_up(&self) -> bool {
        self.excursion.observed() >= self.params.warmup
    }

    /// Time-decayed mean price; `None` before the first segment.
    pub fn mean(&self) -> Option<f64> {
        self.ewma.mean()
    }

    /// Time-decayed price standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.ewma.std_dev()
    }

    /// Duration-weighted price quantile over the trailing window.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile.quantile(q)
    }

    /// Estimated P(price > bid within the next lookahead).
    pub fn prob_above(&self, bid: f64) -> f64 {
        self.excursion.prob_above(bid)
    }

    /// Adaptive bid rule: the cheapest ladder bid whose predicted
    /// revocation probability is within `risk_budget` *and* that keeps
    /// `tail_margin` headroom over the window's observed maximum price,
    /// clamped to `max_bid`; the cap itself is the last resort. Until the
    /// model is warmed up, bids the cap outright (matching the paper's
    /// fixed policy) and reports no risk estimate.
    pub fn decide_bid(&self, on_demand_price: f64, max_bid: f64, risk_budget: f64) -> BidDecision {
        if !self.warmed_up() {
            return BidDecision {
                bid: max_bid,
                predicted_risk: None,
            };
        }
        let floor = self
            .excursion
            .max_price()
            .map_or(0.0, |m| m * self.params.tail_margin);
        let mut prev = f64::NAN;
        for mult in BID_LADDER {
            let bid = (mult * on_demand_price).min(max_bid);
            if bid == prev {
                continue; // clamped duplicates collapse onto the cap
            }
            prev = bid;
            if bid < floor {
                continue; // not enough headroom over the recent record
            }
            let risk = self.prob_above(bid);
            if risk <= risk_budget {
                return BidDecision {
                    bid,
                    predicted_risk: Some(risk),
                };
            }
        }
        BidDecision {
            bid: max_bid,
            predicted_risk: Some(self.prob_above(max_bid)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(start_s: u64, end_s: u64, price: f64) -> Segment {
        Segment {
            start: SimTime::secs(start_s),
            end: SimTime::secs(end_s),
            price,
        }
    }

    fn warmed_calm() -> MarketForecaster {
        let mut f = MarketForecaster::new(ForecastParams::default());
        // Two days of a flat 0.25 price: fully warmed, zero risk above it.
        f.feed(seg(0, 2 * 24 * 3600, 0.25));
        f
    }

    #[test]
    fn cold_model_bids_the_cap() {
        let f = MarketForecaster::new(ForecastParams::default());
        let d = f.decide_bid(1.0, 4.0, 0.01);
        assert_eq!(d.bid, 4.0);
        assert_eq!(d.predicted_risk, None);
    }

    #[test]
    fn calm_market_gets_the_cheapest_ladder_bid() {
        let f = warmed_calm();
        assert!(f.warmed_up());
        let d = f.decide_bid(1.0, 4.0, 0.01);
        assert_eq!(d.bid, 1.1);
        assert_eq!(d.predicted_risk, Some(0.0));
    }

    #[test]
    fn risky_ladder_rungs_are_skipped() {
        let spiky = |params: ForecastParams| {
            let mut f = MarketForecaster::new(params);
            // Two days at 0.25 with hourly spikes to 1.4 every 6 hours:
            // low bids are frequently exceeded.
            let mut t = 0u64;
            while t < 2 * 24 * 3600 {
                f.feed(seg(t, t + 5 * 3600, 0.25));
                f.feed(seg(t + 5 * 3600, t + 6 * 3600, 1.4));
                t += 6 * 3600;
            }
            f
        };
        // With the default 1.5x tail margin, the bid must clear
        // 1.5 * 1.4 = 2.1: the first tall-enough rung is 2.5.
        let d = spiky(ForecastParams::default()).decide_bid(1.0, 4.0, 0.01);
        assert_eq!(d.bid, 2.5);
        assert_eq!(d.predicted_risk, Some(0.0));
        // With the margin disabled, the excursion frequency alone
        // decides: 1.6 clears the spikes, and a generous budget even
        // tolerates the frequently-exceeded cheapest rung.
        let flat = spiky(ForecastParams {
            tail_margin: 0.0,
            ..ForecastParams::default()
        });
        let d = flat.decide_bid(1.0, 4.0, 0.01);
        assert_eq!(d.bid, 1.6);
        assert_eq!(d.predicted_risk, Some(0.0));
        let loose = flat.decide_bid(1.0, 4.0, 0.5);
        assert_eq!(loose.bid, 1.1);
    }

    #[test]
    fn ladder_clamps_to_a_low_provider_cap() {
        let mut f = MarketForecaster::new(ForecastParams::default());
        // Constant price just above every affordable rung.
        f.feed(seg(0, 2 * 24 * 3600, 1.7));
        let d = f.decide_bid(1.0, 1.5, 0.01);
        assert_eq!(d.bid, 1.5);
        assert_eq!(d.predicted_risk, Some(1.0));
    }

    #[test]
    fn fed_to_tracks_the_frontier() {
        let mut f = MarketForecaster::new(ForecastParams::default());
        assert_eq!(f.fed_to(), SimTime::ZERO);
        f.feed(seg(0, 3600, 0.2));
        assert_eq!(f.fed_to(), SimTime::secs(3600));
        f.feed(seg(3600, 3600, 0.2)); // zero-length: ignored
        assert_eq!(f.fed_to(), SimTime::secs(3600));
    }

    #[test]
    fn reset_matches_fresh_bit_for_bit() {
        let mut reused = MarketForecaster::new(ForecastParams::default());
        // Dirty it with an arbitrary history, then reset.
        let mut t = 0u64;
        while t < 3 * 24 * 3600 {
            reused.feed(seg(t, t + 3600, 0.2 + (t % 7) as f64 * 0.1));
            t += 3600;
        }
        reused.reset(ForecastParams::default());
        let mut fresh = MarketForecaster::new(ForecastParams::default());
        assert_eq!(reused.fed_to(), fresh.fed_to());
        assert!(!reused.warmed_up());
        // Feed both the same history and compare every estimate bitwise.
        let mut t = 0u64;
        while t < 2 * 24 * 3600 {
            let s = seg(t, t + 1800, 0.1 + ((t / 1800) % 5) as f64 * 0.3);
            reused.feed(s);
            fresh.feed(s);
            t += 1800;
        }
        assert_eq!(reused.mean(), fresh.mean());
        assert_eq!(reused.std_dev(), fresh.std_dev());
        assert_eq!(reused.quantile(0.9), fresh.quantile(0.9));
        for bid in [0.1, 0.4, 0.9, 1.3] {
            assert_eq!(
                reused.prob_above(bid).to_bits(),
                fresh.prob_above(bid).to_bits(),
                "bid {bid}"
            );
        }
        assert_eq!(
            reused.decide_bid(1.0, 4.0, 0.01),
            fresh.decide_bid(1.0, 4.0, 0.01)
        );
    }

    #[test]
    fn decide_is_deterministic() {
        let (a, b) = (warmed_calm(), warmed_calm());
        assert_eq!(a.decide_bid(1.0, 4.0, 0.01), b.decide_bid(1.0, 4.0, 0.01));
    }
}
