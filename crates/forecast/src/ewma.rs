//! Time-decayed (exponentially weighted) mean and variance of a
//! piecewise-constant price signal.
//!
//! Spot prices are published as change events, so observations are
//! *segments* (a price held for a duration), not equally spaced samples.
//! The estimator therefore decays continuously in time: a segment of
//! duration `d` contributes the integral of the decay kernel over `d`,
//! which makes the estimate independent of how finely the history is cut
//! into segments (up to floating-point rounding).

use spothost_market::time::SimDuration;
use spothost_market::trace::Segment;

/// Continuous-time EWMA of mean and variance.
#[derive(Debug, Clone)]
pub struct Ewma {
    /// Decay rate per millisecond (`ln 2 / half_life`).
    lambda: f64,
    /// Decayed total weight (milliseconds of kernel mass).
    w: f64,
    /// Decayed weighted sum of prices.
    s1: f64,
    /// Decayed weighted sum of squared prices.
    s2: f64,
}

impl Ewma {
    /// An estimator whose weight halves every `half_life` of elapsed time.
    pub fn new(half_life: SimDuration) -> Self {
        let hl = half_life.as_millis().max(1) as f64;
        Ewma {
            lambda: std::f64::consts::LN_2 / hl,
            w: 0.0,
            s1: 0.0,
            s2: 0.0,
        }
    }

    /// Reinitialise in place to the state of `Ewma::new(half_life)`.
    pub fn reset(&mut self, half_life: SimDuration) {
        *self = Ewma::new(half_life);
    }

    /// Fold one constant-price segment into the estimate. Segments must be
    /// fed in time order; the estimate's reference point moves to the
    /// segment's end.
    pub fn feed(&mut self, seg: Segment) {
        let d = seg.duration().as_millis() as f64;
        if d <= 0.0 {
            return;
        }
        // Existing mass ages by d; the new segment contributes
        // ∫_0^d e^(-λt) dt = (1 - e^(-λd)) / λ of kernel mass at its price.
        let k = (-self.lambda * d).exp();
        let g = (1.0 - k) / self.lambda;
        self.w = self.w * k + g;
        self.s1 = self.s1 * k + g * seg.price;
        self.s2 = self.s2 * k + g * seg.price * seg.price;
    }

    /// Has anything been fed yet?
    pub fn is_empty(&self) -> bool {
        self.w == 0.0
    }

    /// Decayed mean price; `None` before the first segment.
    pub fn mean(&self) -> Option<f64> {
        (self.w > 0.0).then(|| self.s1 / self.w)
    }

    /// Decayed population variance; `None` before the first segment.
    /// Clamped at zero (catastrophic cancellation on near-constant prices
    /// can produce tiny negative values).
    pub fn variance(&self) -> Option<f64> {
        let m = self.mean()?;
        Some((self.s2 / self.w - m * m).max(0.0))
    }

    /// Decayed standard deviation; `None` before the first segment.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_market::time::SimTime;

    fn seg(start_s: u64, end_s: u64, price: f64) -> Segment {
        Segment {
            start: SimTime::secs(start_s),
            end: SimTime::secs(end_s),
            price,
        }
    }

    #[test]
    fn empty_estimator_has_no_estimates() {
        let e = Ewma::new(SimDuration::hours(1));
        assert!(e.is_empty());
        assert_eq!(e.mean(), None);
        assert_eq!(e.variance(), None);
    }

    #[test]
    fn constant_price_converges_to_it() {
        let mut e = Ewma::new(SimDuration::hours(1));
        e.feed(seg(0, 3600 * 10, 0.25));
        let m = e.mean().expect("fed");
        assert!((m - 0.25).abs() < 1e-12, "{m}");
        assert!(e.variance().expect("fed") < 1e-12);
    }

    #[test]
    fn recent_prices_dominate() {
        let mut e = Ewma::new(SimDuration::hours(1));
        e.feed(seg(0, 3600 * 24, 0.1));
        e.feed(seg(3600 * 24, 3600 * 24 + 6 * 3600, 0.9));
        // Six half-lives of 0.9 on top of a day of 0.1: mean is near 0.9.
        let m = e.mean().expect("fed");
        assert!(m > 0.85, "{m}");
        assert!(e.std_dev().expect("fed") < 0.2);
    }

    #[test]
    fn splitting_a_segment_changes_nothing() {
        let mut one = Ewma::new(SimDuration::hours(2));
        let mut two = Ewma::new(SimDuration::hours(2));
        one.feed(seg(0, 7200, 0.3));
        one.feed(seg(7200, 9000, 0.7));
        two.feed(seg(0, 3600, 0.3));
        two.feed(seg(3600, 7200, 0.3));
        two.feed(seg(7200, 8000, 0.7));
        two.feed(seg(8000, 9000, 0.7));
        let (a, b) = (one.mean().expect("fed"), two.mean().expect("fed"));
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        let (va, vb) = (one.variance().expect("fed"), two.variance().expect("fed"));
        assert!((va - vb).abs() < 1e-9, "{va} vs {vb}");
    }

    #[test]
    fn zero_length_segments_are_ignored() {
        let mut e = Ewma::new(SimDuration::hours(1));
        e.feed(seg(5, 5, 10.0));
        assert!(e.is_empty());
    }
}
