//! Walk-forward backtest: how well do the online quantile forecasts
//! actually calibrate on a price trace?
//!
//! The harness replays a trace the way the scheduler would see it: feed
//! the forecaster the training prefix, then march an evaluation grid
//! across the suffix — at each grid point predict the price quantiles,
//! score them against the price realized one step later, and only then
//! reveal that step's history to the model. No future data ever reaches
//! an estimator before it is scored against it.
//!
//! Scoring follows standard quantile-forecast practice: pinball loss
//! (the proper scoring rule for quantiles) plus empirical coverage (a
//! `q`-quantile forecast should cover the target a `q` fraction of the
//! time when calibrated).

use crate::forecaster::{ForecastParams, MarketForecaster};
use spothost_analysis::{empirical_coverage, mean, pinball_loss};
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::trace::PriceTrace;

/// Walk-forward evaluation settings.
#[derive(Debug, Clone)]
pub struct BacktestParams {
    /// Forecaster configuration under test.
    pub forecast: ForecastParams,
    /// Trace prefix fed to the model before any scoring.
    pub train: SimDuration,
    /// Evaluation grid spacing; also the prediction horizon (predict at
    /// `t`, score against the price at `t + step`).
    pub step: SimDuration,
    /// Quantile levels to score.
    pub quantiles: Vec<f64>,
}

impl Default for BacktestParams {
    fn default() -> Self {
        BacktestParams {
            forecast: ForecastParams::default(),
            train: SimDuration::days(3),
            step: SimDuration::hours(1),
            quantiles: vec![0.5, 0.9, 0.99],
        }
    }
}

/// Calibration of one quantile level over the evaluation suffix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileScore {
    /// The quantile level scored.
    pub q: f64,
    /// Mean pinball loss (lower is better; comparable across models on
    /// the same trace, not across traces).
    pub mean_pinball: f64,
    /// Fraction of targets at or below the forecast; calibrated ≈ `q`.
    pub coverage: f64,
}

/// Result of one walk-forward run.
#[derive(Debug, Clone, PartialEq)]
pub struct BacktestReport {
    /// Number of scored grid points.
    pub samples: usize,
    /// One entry per requested quantile level, in request order.
    pub scores: Vec<QuantileScore>,
}

impl BacktestReport {
    /// Worst absolute calibration gap `|coverage − q|` across levels.
    pub fn worst_coverage_gap(&self) -> f64 {
        self.scores
            .iter()
            .map(|s| (s.coverage - s.q).abs())
            .fold(0.0, f64::max)
    }
}

/// Run a walk-forward backtest of the quantile forecaster over `trace`.
///
/// Returns `None` when the trace is too short to score even one grid
/// point after the training prefix.
pub fn walk_forward(trace: &PriceTrace, params: &BacktestParams) -> Option<BacktestReport> {
    let mut model = MarketForecaster::new(params.forecast);
    let train_end = SimTime::ZERO + params.train;
    if train_end + params.step > trace.end() {
        return None;
    }
    for seg in trace.segments_in_iter(SimTime::ZERO, train_end) {
        model.feed(seg);
    }
    // Per quantile level: pinball losses and (target, prediction) pairs.
    let mut losses: Vec<Vec<f64>> = vec![Vec::new(); params.quantiles.len()];
    let mut pairs: Vec<Vec<(f64, f64)>> = vec![Vec::new(); params.quantiles.len()];
    let mut samples = 0usize;
    let mut t = train_end;
    while t + params.step <= trace.end() {
        let horizon = t + params.step;
        let target = trace.price_at(horizon);
        for (i, &q) in params.quantiles.iter().enumerate() {
            // The training prefix is non-empty, so estimates exist.
            if let Some(pred) = model.quantile(q) {
                losses[i].push(pinball_loss(target, pred, q));
                pairs[i].push((target, pred));
            }
        }
        samples += 1;
        // Only now reveal the step we just scored against.
        for seg in trace.segments_in_iter(t, horizon) {
            model.feed(seg);
        }
        t = horizon;
    }
    let scores = params
        .quantiles
        .iter()
        .enumerate()
        .map(|(i, &q)| QuantileScore {
            q,
            mean_pinball: mean(&losses[i]),
            coverage: empirical_coverage(&pairs[i]),
        })
        .collect();
    Some(BacktestReport { samples, scores })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_market::trace::PricePoint;

    fn pt(t_s: u64, price: f64) -> PricePoint {
        PricePoint {
            at: SimTime::secs(t_s),
            price,
        }
    }

    /// A week alternating 4h at 0.2 and 4h at 0.6.
    fn square_wave() -> PriceTrace {
        let mut points = Vec::new();
        let mut t = 0u64;
        while t < 7 * 24 * 3600 {
            points.push(pt(t, 0.2));
            points.push(pt(t + 4 * 3600, 0.6));
            t += 8 * 3600;
        }
        PriceTrace::new(points, SimTime::secs(7 * 24 * 3600))
    }

    #[test]
    fn too_short_a_trace_yields_nothing() {
        let trace = PriceTrace::constant(0.3, SimTime::secs(3600));
        assert_eq!(walk_forward(&trace, &BacktestParams::default()), None);
    }

    #[test]
    fn constant_price_is_perfectly_calibrated() {
        let trace = PriceTrace::constant(0.3, SimTime::secs(7 * 24 * 3600));
        let report = walk_forward(&trace, &BacktestParams::default()).expect("long enough");
        assert!(report.samples > 90);
        for s in &report.scores {
            assert!(s.mean_pinball < 1e-12, "q={}: {}", s.q, s.mean_pinball);
            // Every forecast equals the constant price, so every target
            // is covered at every level.
            assert_eq!(s.coverage, 1.0);
        }
    }

    #[test]
    fn square_wave_quantiles_calibrate_roughly() {
        let report = walk_forward(&square_wave(), &BacktestParams::default()).expect("long");
        // The p99 forecast sits at the high level (0.6), covering every
        // target; the median covers only the low half.
        let p99 = report.scores.last().expect("levels");
        assert_eq!(p99.q, 0.99);
        assert!(p99.coverage > 0.95, "{}", p99.coverage);
        let p50 = &report.scores[0];
        assert!(
            (0.3..=0.7).contains(&p50.coverage),
            "median coverage {}",
            p50.coverage
        );
        assert!(report.worst_coverage_gap() <= 0.25);
    }

    #[test]
    fn backtest_is_deterministic() {
        let trace = square_wave();
        let a = walk_forward(&trace, &BacktestParams::default());
        let b = walk_forward(&trace, &BacktestParams::default());
        assert_eq!(a, b);
    }
}
