//! Bounded sliding-window, duration-weighted quantile estimator.
//!
//! Keeps the constant-price runs observed over a trailing time window and
//! answers "what price was exceeded for a (1-q) fraction of the recent
//! past". Weighting by duration matters: a one-minute spike must not count
//! the same as a six-hour plateau.
//!
//! Storage is canonical — adjacent same-price segments merge into maximal
//! runs — so feeding a history in one pass and feeding it cut into
//! arbitrary contiguous pieces produce *identical* state, and every
//! estimate is a deterministic function of the observed price history.

use spothost_market::time::{SimDuration, SimTime};
use spothost_market::trace::Segment;
use std::collections::VecDeque;

/// One maximal constant-price run kept in the window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Run {
    start: SimTime,
    end: SimTime,
    price: f64,
}

/// Sliding-window quantile estimator over piecewise-constant prices.
#[derive(Debug, Clone)]
pub struct WindowQuantile {
    window: SimDuration,
    /// Hard cap on stored runs; the oldest runs are dropped beyond it.
    max_runs: usize,
    runs: VecDeque<Run>,
    /// End of the last fed segment (the observation frontier).
    frontier: SimTime,
}

impl WindowQuantile {
    /// Estimator over a trailing `window`, holding at most `max_runs`
    /// constant-price runs (oldest dropped first).
    pub fn new(window: SimDuration, max_runs: usize) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        assert!(max_runs > 0, "need room for at least one run");
        WindowQuantile {
            window,
            max_runs,
            runs: VecDeque::new(),
            frontier: SimTime::ZERO,
        }
    }

    /// Reinitialise in place to the state of `new(window, max_runs)`,
    /// keeping the run buffer's grown capacity. Observably identical to a
    /// fresh estimator (capacity is not observable through any estimate).
    pub fn reset(&mut self, window: SimDuration, max_runs: usize) {
        assert!(window > SimDuration::ZERO, "window must be positive");
        assert!(max_runs > 0, "need room for at least one run");
        self.window = window;
        self.max_runs = max_runs;
        self.runs.clear();
        self.frontier = SimTime::ZERO;
    }

    /// Fold one constant-price segment into the window. Segments must
    /// arrive in time order; a segment contiguous with the last run at the
    /// same price extends it (canonical storage).
    pub fn feed(&mut self, seg: Segment) {
        if seg.end <= seg.start {
            return;
        }
        self.frontier = self.frontier.max(seg.end);
        match self.runs.back_mut() {
            Some(last) if last.end == seg.start && last.price == seg.price => {
                last.end = seg.end;
            }
            _ => self.runs.push_back(Run {
                start: seg.start,
                end: seg.end,
                price: seg.price,
            }),
        }
        self.evict();
    }

    /// Drop runs that fell entirely out of the window, and enforce the
    /// hard cap.
    fn evict(&mut self) {
        let cutoff = self.frontier.saturating_sub(self.window);
        while let Some(front) = self.runs.front() {
            if front.end <= cutoff {
                self.runs.pop_front();
            } else {
                break;
            }
        }
        while self.runs.len() > self.max_runs {
            self.runs.pop_front();
        }
    }

    /// Number of stored runs (bounded by the cap).
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The observation frontier (end of the last fed segment).
    pub fn frontier(&self) -> SimTime {
        self.frontier
    }

    /// Duration-weighted quantile of the price over the trailing window,
    /// `q` in `[0, 1]`; `None` before any observation. Returns an observed
    /// price (no interpolation), monotone non-decreasing in `q`, bounded
    /// by the window's min/max price.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let cutoff = self.frontier.saturating_sub(self.window);
        // (price, clipped duration in ms) for every run still overlapping
        // the window.
        let mut weighted: Vec<(f64, u64)> = self
            .runs
            .iter()
            .filter_map(|r| {
                let start = r.start.max(cutoff);
                (r.end > start).then(|| (r.price, (r.end - start).as_millis()))
            })
            .collect();
        if weighted.is_empty() {
            return None;
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = weighted.iter().map(|(_, d)| d).sum();
        // Smallest observed price p with weight{price <= p} >= q * total.
        let target = q * total as f64;
        let mut acc = 0u64;
        for (price, d) in &weighted {
            acc += d;
            if acc as f64 >= target {
                return Some(*price);
            }
        }
        weighted.last().map(|(p, _)| *p)
    }

    /// Duration-weighted median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest price observed in the window.
    pub fn min(&self) -> Option<f64> {
        self.quantile(0.0)
    }

    /// Largest price observed in the window.
    pub fn max(&self) -> Option<f64> {
        self.quantile(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(start_s: u64, end_s: u64, price: f64) -> Segment {
        Segment {
            start: SimTime::secs(start_s),
            end: SimTime::secs(end_s),
            price,
        }
    }

    #[test]
    fn empty_window_has_no_quantiles() {
        let w = WindowQuantile::new(SimDuration::hours(1), 64);
        assert_eq!(w.quantile(0.5), None);
        assert!(w.is_empty());
    }

    #[test]
    fn duration_weighting() {
        let mut w = WindowQuantile::new(SimDuration::hours(10), 64);
        // 9 hours at 0.1, 1 hour at 1.0.
        w.feed(seg(0, 9 * 3600, 0.1));
        w.feed(seg(9 * 3600, 10 * 3600, 1.0));
        assert_eq!(w.median(), Some(0.1));
        assert_eq!(w.quantile(0.89), Some(0.1));
        assert_eq!(w.quantile(0.95), Some(1.0));
        assert_eq!(w.min(), Some(0.1));
        assert_eq!(w.max(), Some(1.0));
    }

    #[test]
    fn old_runs_fall_out_of_the_window() {
        let mut w = WindowQuantile::new(SimDuration::hours(1), 64);
        w.feed(seg(0, 3600, 5.0));
        w.feed(seg(3600, 2 * 3600, 0.2));
        // The 5.0 run ended exactly one window before the frontier: gone.
        assert_eq!(w.max(), Some(0.2));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn partial_overlap_is_clipped() {
        let mut w = WindowQuantile::new(SimDuration::hours(2), 64);
        w.feed(seg(0, 2 * 3600, 1.0));
        w.feed(seg(2 * 3600, 3 * 3600 + 1800, 0.5));
        // Window is [1.5h, 3.5h): 0.5h of 1.0, 1.5h of 0.5.
        assert_eq!(w.median(), Some(0.5));
        assert_eq!(w.quantile(0.81), Some(1.0));
    }

    #[test]
    fn split_feed_equals_one_pass() {
        let mut one = WindowQuantile::new(SimDuration::hours(3), 64);
        let mut two = WindowQuantile::new(SimDuration::hours(3), 64);
        one.feed(seg(0, 7200, 0.3));
        one.feed(seg(7200, 9000, 0.7));
        two.feed(seg(0, 100, 0.3));
        two.feed(seg(100, 7200, 0.3));
        two.feed(seg(7200, 8000, 0.7));
        two.feed(seg(8000, 9000, 0.7));
        assert_eq!(one.len(), two.len());
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(one.quantile(q), two.quantile(q), "q={q}");
        }
    }

    #[test]
    fn hard_cap_drops_oldest() {
        let mut w = WindowQuantile::new(SimDuration::days(10), 4);
        for i in 0..10u64 {
            w.feed(seg(i * 60, (i + 1) * 60, i as f64 + 1.0));
        }
        assert_eq!(w.len(), 4);
        // Only prices 7..=10 survive.
        assert_eq!(w.min(), Some(7.0));
        assert_eq!(w.max(), Some(10.0));
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut w = WindowQuantile::new(SimDuration::hours(5), 64);
        for (i, p) in [0.4, 0.1, 0.9, 0.2, 0.6].iter().enumerate() {
            let s = i as u64 * 600;
            w.feed(seg(s, s + 600, *p));
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = w.quantile(q).expect("fed");
            assert!(v >= last, "q={q}: {v} < {last}");
            last = v;
        }
    }
}
