//! Excursion-frequency model: how often does the price exceed a candidate
//! bid "soon"?
//!
//! For a candidate bid `b`, the quantity the scheduler cares about is the
//! probability that the spot price rises above `b` at some point within
//! the next lookahead (one hour by default — one billing period), because
//! that is what revokes the instance. The empirical analogue over the
//! trailing window: the fraction of instants `t` for which some
//! above-`b` excursion intersects `(t, t + lookahead]`. An instant `t` is
//! "at risk" exactly when `t ∈ [seg.start − lookahead, seg.end)` for some
//! stored run with `price > b`, so the estimate is the measure of the
//! union of those shifted intervals, clipped to the observed window.
//!
//! Runs are stored canonically (adjacent equal-price segments merge), so
//! one-pass and segment-by-segment feeding give identical state, and the
//! estimate is a deterministic function of the fed history.

use spothost_market::time::{SimDuration, SimTime};
use spothost_market::trace::Segment;
use std::collections::VecDeque;

/// One maximal constant-price run kept in the window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Run {
    start: SimTime,
    end: SimTime,
    price: f64,
}

/// Sliding-window estimator of P(price > b within the next `lookahead`).
#[derive(Debug, Clone)]
pub struct ExcursionModel {
    window: SimDuration,
    lookahead: SimDuration,
    max_runs: usize,
    runs: VecDeque<Run>,
    /// Start of the first fed segment (for clipping the observed span).
    first_fed: Option<SimTime>,
    /// End of the last fed segment (the observation frontier).
    frontier: SimTime,
}

impl ExcursionModel {
    /// Model over a trailing `window`, asking about excursions within
    /// `lookahead`, holding at most `max_runs` runs (oldest dropped first).
    pub fn new(window: SimDuration, lookahead: SimDuration, max_runs: usize) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        assert!(lookahead > SimDuration::ZERO, "lookahead must be positive");
        assert!(max_runs > 0, "need room for at least one run");
        ExcursionModel {
            window,
            lookahead,
            max_runs,
            runs: VecDeque::new(),
            first_fed: None,
            frontier: SimTime::ZERO,
        }
    }

    /// Reinitialise in place to the state of `new(window, lookahead,
    /// max_runs)`, keeping the run buffer's grown capacity. Observably
    /// identical to a fresh model.
    pub fn reset(&mut self, window: SimDuration, lookahead: SimDuration, max_runs: usize) {
        assert!(window > SimDuration::ZERO, "window must be positive");
        assert!(lookahead > SimDuration::ZERO, "lookahead must be positive");
        assert!(max_runs > 0, "need room for at least one run");
        self.window = window;
        self.lookahead = lookahead;
        self.max_runs = max_runs;
        self.runs.clear();
        self.first_fed = None;
        self.frontier = SimTime::ZERO;
    }

    /// Fold one constant-price segment in. Segments must arrive in time
    /// order; contiguous equal-price segments extend the last run.
    pub fn feed(&mut self, seg: Segment) {
        if seg.end <= seg.start {
            return;
        }
        if self.first_fed.is_none() {
            self.first_fed = Some(seg.start);
        }
        self.frontier = self.frontier.max(seg.end);
        match self.runs.back_mut() {
            Some(last) if last.end == seg.start && last.price == seg.price => {
                last.end = seg.end;
            }
            _ => self.runs.push_back(Run {
                start: seg.start,
                end: seg.end,
                price: seg.price,
            }),
        }
        // A run whose end fell out of the window can no longer put any
        // instant at risk (its risk interval ends at run.end).
        let cutoff = self.frontier.saturating_sub(self.window);
        while let Some(front) = self.runs.front() {
            if front.end <= cutoff {
                self.runs.pop_front();
            } else {
                break;
            }
        }
        while self.runs.len() > self.max_runs {
            self.runs.pop_front();
        }
    }

    /// Has anything been fed yet?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The observation frontier (end of the last fed segment).
    pub fn frontier(&self) -> SimTime {
        self.frontier
    }

    /// How much history the estimate currently rests on (capped at the
    /// window length).
    pub fn observed(&self) -> SimDuration {
        match self.first_fed {
            Some(first) => self.frontier.since(first).min(self.window),
            None => SimDuration::ZERO,
        }
    }

    /// Highest price observed in the trailing window; `None` with no
    /// data. Every retained run intersects the window (eviction keeps
    /// exactly those), so the retained maximum is the window maximum.
    pub fn max_price(&self) -> Option<f64> {
        self.runs.iter().map(|r| r.price).reduce(f64::max)
    }

    /// Estimated probability that the price exceeds `bid` at some point
    /// within the next `lookahead`. Monotone non-increasing in `bid`.
    /// With no observations yet, returns 1.0 — "don't know" must read as
    /// risky, never as safe.
    pub fn prob_above(&self, bid: f64) -> f64 {
        let span = self.observed();
        if span == SimDuration::ZERO {
            return 1.0;
        }
        let lo = self.frontier.saturating_sub(span);
        // Measure of ∪ [run.start − lookahead, run.end) over runs with
        // price > bid, clipped to [lo, frontier). Runs are time-ordered
        // and the shift is uniform, so a single covered-watermark sweep
        // suffices.
        let mut at_risk = 0u64;
        let mut covered = lo;
        for r in &self.runs {
            if r.price <= bid {
                continue;
            }
            let s = r.start.saturating_sub(self.lookahead).max(covered);
            let e = r.end.min(self.frontier);
            if e > s {
                at_risk += (e - s).as_millis();
                covered = e;
            } else if e > covered {
                covered = e;
            }
        }
        (at_risk as f64 / span.as_millis() as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(start_s: u64, end_s: u64, price: f64) -> Segment {
        Segment {
            start: SimTime::secs(start_s),
            end: SimTime::secs(end_s),
            price,
        }
    }

    fn model() -> ExcursionModel {
        ExcursionModel::new(SimDuration::hours(10), SimDuration::hours(1), 256)
    }

    #[test]
    fn no_data_is_maximally_risky() {
        let m = model();
        assert_eq!(m.prob_above(100.0), 1.0);
        assert_eq!(m.observed(), SimDuration::ZERO);
    }

    #[test]
    fn calm_history_is_safe_above_the_price() {
        let mut m = model();
        m.feed(seg(0, 10 * 3600, 0.2));
        assert_eq!(m.prob_above(0.3), 0.0);
        // Bidding below the constant price is always at risk.
        assert_eq!(m.prob_above(0.1), 1.0);
    }

    #[test]
    fn spike_exposure_includes_the_lookahead_approach() {
        let mut m = model();
        // 10h observed: a single 1h spike to 1.0 in hours [5, 6).
        m.feed(seg(0, 5 * 3600, 0.2));
        m.feed(seg(5 * 3600, 6 * 3600, 1.0));
        m.feed(seg(6 * 3600, 10 * 3600, 0.2));
        // At risk for bid 0.5: [4h, 6h) → 2 of 10 observed hours.
        let p = m.prob_above(0.5);
        assert!((p - 0.2).abs() < 1e-9, "{p}");
        // Above the spike, nothing is at risk.
        assert_eq!(m.prob_above(1.5), 0.0);
    }

    #[test]
    fn overlapping_risk_intervals_are_not_double_counted() {
        let mut m = model();
        // Two spikes 30 min apart: their shifted intervals overlap.
        m.feed(seg(0, 5 * 3600, 0.2));
        m.feed(seg(5 * 3600, 5 * 3600 + 600, 1.0));
        m.feed(seg(5 * 3600 + 600, 5 * 3600 + 1800, 0.2));
        m.feed(seg(5 * 3600 + 1800, 5 * 3600 + 2400, 1.0));
        m.feed(seg(5 * 3600 + 2400, 10 * 3600, 0.2));
        // Union of [4h, 5h10m) and [4h30m, 5h40m) = [4h, 5h40m) = 100 min.
        let p = m.prob_above(0.5);
        let want = 100.0 * 60.0 / (10.0 * 3600.0);
        assert!((p - want).abs() < 1e-9, "{p} vs {want}");
    }

    #[test]
    fn monotone_non_increasing_in_bid() {
        let mut m = model();
        for (i, p) in [0.3, 0.9, 0.2, 1.4, 0.5, 0.2].iter().enumerate() {
            let s = i as u64 * 3600;
            m.feed(seg(s, s + 3600, *p));
        }
        let mut last = f64::INFINITY;
        for b in [0.0, 0.1, 0.25, 0.4, 0.6, 1.0, 1.5, 2.0] {
            let p = m.prob_above(b);
            assert!(p <= last, "bid {b}: {p} > {last}");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn split_feed_equals_one_pass() {
        let mut one = model();
        let mut two = model();
        one.feed(seg(0, 7200, 0.3));
        one.feed(seg(7200, 9000, 0.7));
        two.feed(seg(0, 1000, 0.3));
        two.feed(seg(1000, 7200, 0.3));
        two.feed(seg(7200, 8000, 0.7));
        two.feed(seg(8000, 9000, 0.7));
        for b in [0.1, 0.3, 0.5, 0.7, 0.9] {
            assert_eq!(one.prob_above(b), two.prob_above(b), "bid {b}");
        }
    }

    #[test]
    fn old_spikes_age_out() {
        let mut m = ExcursionModel::new(SimDuration::hours(2), SimDuration::hours(1), 256);
        m.feed(seg(0, 3600, 9.0));
        m.feed(seg(3600, 4 * 3600, 0.2));
        // The spike ended 3h before the frontier; window is 2h.
        assert_eq!(m.prob_above(0.5), 0.0);
        // ...and it no longer counts towards the window maximum either.
        assert_eq!(m.max_price(), Some(0.2));
    }

    #[test]
    fn max_price_tracks_the_window() {
        let mut m = model();
        assert_eq!(m.max_price(), None);
        m.feed(seg(0, 3600, 0.2));
        assert_eq!(m.max_price(), Some(0.2));
        m.feed(seg(3600, 7200, 1.3));
        m.feed(seg(7200, 9000, 0.4));
        assert_eq!(m.max_price(), Some(1.3));
    }
}
