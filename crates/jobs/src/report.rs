//! Aggregate results of one batch-job simulation run.

use spothost_market::time::{SimDuration, SimTime};

use crate::config::JobPolicy;
use crate::sim::JobOutcome;

/// Aggregate metrics over every job of one run: the paper-style
/// cost/availability trade-off restated for batch work as $/job,
/// deadline-miss rate, and the wasted-work fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct JobsReport {
    /// Policy rung the run was made under.
    pub policy: JobPolicy,
    /// Jobs submitted.
    pub jobs: u32,
    /// Jobs that completed all their work before the horizon.
    pub finished: u32,
    /// Jobs that missed their deadline (including any cut off by the
    /// horizon before finishing).
    pub missed: u32,
    /// Total dollars billed across every lease of every job.
    pub total_cost: f64,
    /// Compute that counted toward job completion.
    pub useful: SimDuration,
    /// Compute billed but thrown away: boots, checkpoint/restore
    /// overhead, and progress lost to revocations.
    pub wasted: SimDuration,
    /// Spot leases lost to price crossings, mass revocations, or
    /// injected capacity faults.
    pub revocations: u32,
    /// Successful checkpoints written (periodic and final flushes).
    pub checkpoints: u32,
    /// Jobs that escalated to an on-demand server.
    pub escalations: u32,
    /// First arrival to last completion.
    pub makespan: SimDuration,
}

impl JobsReport {
    /// Fold per-job outcomes into the aggregate report.
    pub fn from_outcomes(policy: JobPolicy, outcomes: &[JobOutcome]) -> Self {
        let mut r = JobsReport {
            policy,
            jobs: outcomes.len() as u32,
            finished: 0,
            missed: 0,
            total_cost: 0.0,
            useful: SimDuration::ZERO,
            wasted: SimDuration::ZERO,
            revocations: 0,
            checkpoints: 0,
            escalations: 0,
            makespan: SimDuration::ZERO,
        };
        let mut first_arrival = SimTime::MAX;
        let mut last_completion = SimTime::ZERO;
        for o in outcomes {
            r.finished += u32::from(o.finished);
            r.missed += u32::from(o.missed);
            r.total_cost += o.cost;
            r.useful += o.useful;
            r.wasted += o.wasted;
            r.revocations += o.revocations;
            r.checkpoints += o.checkpoints;
            r.escalations += u32::from(o.escalated);
            first_arrival = first_arrival.min(o.spec.arrival);
            last_completion = last_completion.max(o.completion);
        }
        if !outcomes.is_empty() {
            r.makespan = last_completion.since(first_arrival);
        }
        r
    }

    /// Dollars billed per submitted job.
    pub fn cost_per_job(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_cost / f64::from(self.jobs)
        }
    }

    /// Percentage of jobs that missed their deadline.
    pub fn miss_rate_pct(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            100.0 * f64::from(self.missed) / f64::from(self.jobs)
        }
    }

    /// Fraction of billed compute that was thrown away.
    pub fn wasted_fraction(&self) -> f64 {
        let total = self.useful + self.wasted;
        if total == SimDuration::ZERO {
            0.0
        } else {
            self.wasted.as_secs_f64() / total.as_secs_f64()
        }
    }
}

impl std::fmt::Display for JobsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<18} jobs={:<3} $/job={:<7.3} miss={:>5.1}% wasted={:>4.1}% revocations={:<3} \
             checkpoints={:<4} escalations={:<3} makespan={:.1}h",
            self.policy.name(),
            self.jobs,
            self.cost_per_job(),
            self.miss_rate_pct(),
            100.0 * self.wasted_fraction(),
            self.revocations,
            self.checkpoints,
            self.escalations,
            self.makespan.as_hours_f64(),
        )
    }
}
