//! Configuration of a batch-job simulation: the policy ladder, the
//! workload shape, and the fault/storm environment.

use spothost_core::BiddingPolicy;
use spothost_faults::{FaultConfig, StormConfig};
use spothost_market::time::SimDuration;
use spothost_market::types::{InstanceType, MarketId, Zone};

/// The batch-scheduling policy ladder (Voorsluys & Buyya regime): how a
/// job's spot leases are bid for and what happens when one is revoked.
///
/// All three rungs reuse [`BiddingPolicy`] for bid selection rather than
/// forking it — see [`JobPolicy::bidding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPolicy {
    /// Bid the cheapest ladder bid and restart revoked jobs from
    /// scratch. Cheapest per compute-hour, but every revocation throws
    /// away all progress.
    GreedySpot,
    /// Periodic checkpoints to a network volume, with the interval
    /// chosen from the forecaster's predicted revocation risk (Young's
    /// formula). Revocations lose only the progress since the last
    /// successful checkpoint; warned revocations flush a final bounded
    /// increment inside the grace window.
    CheckpointSpot,
    /// Greedy spot bidding, but a job escalates to an on-demand server
    /// the moment its remaining deadline slack no longer covers its
    /// predicted restart loss.
    OnDemandFallback,
}

impl JobPolicy {
    /// Every rung, ladder order.
    pub const ALL: [JobPolicy; 3] = [
        JobPolicy::GreedySpot,
        JobPolicy::CheckpointSpot,
        JobPolicy::OnDemandFallback,
    ];

    /// Short lowercase label used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            JobPolicy::GreedySpot => "greedy-spot",
            JobPolicy::CheckpointSpot => "checkpoint-spot",
            JobPolicy::OnDemandFallback => "on-demand-fallback",
        }
    }

    /// Parse a CLI label (inverse of [`JobPolicy::name`]).
    pub fn parse(s: &str) -> Option<JobPolicy> {
        JobPolicy::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The [`BiddingPolicy`] this rung places its spot bids with.
    ///
    /// Greedy rungs bid the cheapest rung of the forecast bid ladder (a
    /// low bid converts price spikes into revocations, whose partial
    /// final hour is free); the checkpointing rung uses the adaptive
    /// forecast policy so the bid itself already reflects predicted
    /// revocation risk.
    pub fn bidding(self) -> BiddingPolicy {
        match self {
            JobPolicy::GreedySpot | JobPolicy::OnDemandFallback => {
                BiddingPolicy::Proactive { bid_mult: 1.1 }
            }
            JobPolicy::CheckpointSpot => BiddingPolicy::Adaptive { risk_budget: 0.02 },
        }
    }
}

impl std::fmt::Display for JobPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one batch-job simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobsConfig {
    /// The spot market the worker fleet bids in.
    pub market: MarketId,
    /// The policy rung under test.
    pub policy: JobPolicy,
    /// Concurrent worker slots (one running job per slot).
    pub workers: u32,
    /// Mean job inter-arrival time (exponential; arrivals stop at half
    /// the horizon so late jobs can still finish inside it).
    pub mean_interarrival: SimDuration,
    /// Mean job runtime (exponential, clamped to `[10 min, 48 h]`).
    pub mean_runtime: SimDuration,
    /// Mean deadline slack as a fraction of the job's runtime: the
    /// deadline is `arrival + runtime * (1 + slack_factor * u)` with
    /// `u ~ U[0.5, 1.5]`.
    pub slack_factor: f64,
    /// Fraction of jobs that can be checkpointed at all; the rest always
    /// restart from scratch regardless of policy.
    pub checkpointable_fraction: f64,
    /// Injected fault rates (capacity denials, boot failures, warning
    /// and checkpoint-write faults).
    pub faults: FaultConfig,
    /// Correlated-failure storm model (fault-rate modulation and
    /// mass revocations).
    pub storms: StormConfig,
}

impl JobsConfig {
    /// Default single-market configuration for a policy rung:
    /// 4 workers, ~4 h jobs arriving every ~2 h, slack of one runtime,
    /// 75% checkpointable, no injected faults, no storms.
    pub fn new(policy: JobPolicy) -> Self {
        JobsConfig {
            market: MarketId::new(Zone::UsEast1a, InstanceType::Large),
            policy,
            workers: 4,
            mean_interarrival: SimDuration::hours(2),
            mean_runtime: SimDuration::hours(4),
            slack_factor: 1.0,
            checkpointable_fraction: 0.75,
            faults: FaultConfig::none(),
            storms: StormConfig::none(),
        }
    }

    /// Builder: replace the fault configuration.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Builder: replace the storm configuration.
    pub fn with_storms(mut self, storms: StormConfig) -> Self {
        self.storms = storms;
        self
    }

    /// Builder: replace the market.
    pub fn with_market(mut self, market: MarketId) -> Self {
        self.market = market;
        self
    }

    /// Builder: replace the worker-slot count.
    pub fn with_workers(mut self, workers: u32) -> Self {
        self.workers = workers;
        self
    }

    /// Check every parameter, returning a human-readable error for
    /// out-of-range values (mirrors `SchedulerConfig::validate`).
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("at least one worker slot required".into());
        }
        if self.mean_interarrival == SimDuration::ZERO {
            return Err("mean inter-arrival must be positive".into());
        }
        if self.mean_runtime == SimDuration::ZERO {
            return Err("mean runtime must be positive".into());
        }
        if !self.slack_factor.is_finite() || self.slack_factor < 0.0 {
            return Err(format!(
                "slack factor must be finite and >= 0, got {}",
                self.slack_factor
            ));
        }
        if !(0.0..=1.0).contains(&self.checkpointable_fraction) {
            return Err(format!(
                "checkpointable fraction must be in [0, 1], got {}",
                self.checkpointable_fraction
            ));
        }
        self.policy.bidding().validate()?;
        self.faults.validate()?;
        self.storms.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_roundtrip() {
        for p in JobPolicy::ALL {
            assert_eq!(JobPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(JobPolicy::parse("nope"), None);
    }

    #[test]
    fn default_config_validates() {
        for p in JobPolicy::ALL {
            assert!(JobsConfig::new(p).validate().is_ok());
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut c = JobsConfig::new(JobPolicy::GreedySpot);
        c.workers = 0;
        assert!(c.validate().is_err());
        let mut c = JobsConfig::new(JobPolicy::GreedySpot);
        c.slack_factor = -1.0;
        assert!(c.validate().is_err());
        let mut c = JobsConfig::new(JobPolicy::GreedySpot);
        c.checkpointable_fraction = 1.5;
        assert!(c.validate().is_err());
    }
}
