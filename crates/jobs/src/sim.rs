//! The deterministic batch-job simulator.
//!
//! Jobs are scheduled in arrival order onto a fixed pool of worker
//! slots, each slot one spot server in the configured market. A job
//! runs as a sequence of leases: spot leases end at price crossings,
//! storm mass revocations, or injected capacity faults at billing-hour
//! boundaries; escalated jobs run one uninterrupted on-demand lease.
//! Everything is driven by seeded streams ([`derive_seed`]) and the
//! arena-backed price traces, so a `(config, seed)` pair replays
//! bit-identically.
//!
//! Jobs are simulated one at a time, to completion, in start order.
//! That is sound because a job's start time is `max(arrival, earliest
//! worker free time)`: arrivals are sorted and the earliest free time
//! only ever grows, so job starts are monotone and the forecaster can
//! be fed price history causally — each job's bid decision sees exactly
//! the history up to its own start, never the future.

use spothost_cloudsim::{on_demand_lease_charge, spot_lease_charge};
use spothost_core::BiddingPolicy;
use spothost_faults::{FaultPlan, StormSchedule, WarningFault};
use spothost_forecast::{ForecastParams, MarketForecaster};
use spothost_market::gen::derive_seed;
use spothost_market::time::{
    SimDuration, SimTime, MILLIS_PER_DAY, MILLIS_PER_HOUR, MILLIS_PER_MINUTE, MILLIS_PER_SECOND,
};
use spothost_market::types::Zone;
use spothost_market::{Catalog, PriceTrace, TraceSet};
use spothost_telemetry::{NullSink, Sink, TelemetryEvent};
use spothost_virt::{BoundedCheckpointer, VirtParams, VmSpec};

use crate::config::{JobPolicy, JobsConfig};
use crate::report::JobsReport;
use crate::workload::{generate_jobs, JobSpec};

/// Simulation horizon used by [`run_jobs`] when the caller does not
/// supply traces of their own.
pub const DEFAULT_HORIZON: SimDuration = SimDuration(14 * MILLIS_PER_DAY);

/// Server boot time before a lease does useful work.
const BOOT: SimDuration = SimDuration(60 * MILLIS_PER_SECOND);
/// The provider's revocation warning lead (EC2's two minutes).
const GRACE: SimDuration = SimDuration(120 * MILLIS_PER_SECOND);
/// Base backoff after a denied server request.
const ACQUIRE_BACKOFF: SimDuration = SimDuration(60 * MILLIS_PER_SECOND);
/// Clamp range for the Young-formula checkpoint interval.
const TAU_MIN: SimDuration = SimDuration(10 * MILLIS_PER_MINUTE);
const TAU_MAX: SimDuration = SimDuration(6 * MILLIS_PER_HOUR);
/// Revocation-hazard floor (per hour) when neither the forecaster nor
/// fleet observation has evidence yet. Keeps Young's MTBF finite and
/// the escalation rule mildly cautious instead of blind.
const HAZARD_FLOOR_PER_H: f64 = 0.005;

/// What one job went through, for property checks and aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// The job as submitted.
    pub spec: JobSpec,
    /// First successful server acquisition; `None` if the job never got
    /// a server before the horizon.
    pub started: Option<SimTime>,
    /// When the job finished — or the horizon, for jobs cut off by it.
    pub completion: SimTime,
    /// Did all of the job's work complete before the horizon?
    pub finished: bool,
    /// Did it finish after its deadline (or not at all)?
    pub missed: bool,
    /// Dollars billed across every lease of the job.
    pub cost: f64,
    /// Dollars attributable to useful compute: each lease's charge
    /// scaled by its useful share. Always `<= cost`.
    pub useful_cost: f64,
    /// Leased wall-clock that counted toward completion.
    pub useful: SimDuration,
    /// Leased wall-clock thrown away: boots, checkpoint/restore
    /// overhead, grace windows, and progress lost to revocations.
    /// `useful + wasted` equals [`JobOutcome::compute`] exactly.
    pub wasted: SimDuration,
    /// Total leased wall-clock across all of the job's leases.
    pub compute: SimDuration,
    /// Spot leases lost to price crossings, mass revocations, or
    /// injected capacity faults.
    pub revocations: u32,
    /// Durable checkpoints written (periodic and warned final flushes).
    pub checkpoints: u32,
    /// Did the job escalate to an on-demand server?
    pub escalated: bool,
}

/// Reusable buffers for [`run_jobs_on`]: the forecaster's grown
/// estimator storage survives across runs. A reused scratch produces
/// bit-identical reports to a fresh one.
#[derive(Debug, Clone)]
pub struct JobsScratch {
    forecaster: MarketForecaster,
    events: Vec<(SimTime, TelemetryEvent)>,
}

impl JobsScratch {
    /// Fresh scratch.
    pub fn new() -> Self {
        JobsScratch {
            forecaster: MarketForecaster::new(ForecastParams::default()),
            events: Vec::new(),
        }
    }
}

impl Default for JobsScratch {
    fn default() -> Self {
        JobsScratch::new()
    }
}

/// Everything [`run_jobs_on`] produced: the aggregate report plus the
/// per-job outcomes it was folded from.
#[derive(Debug, Clone)]
pub struct JobsRunResult {
    /// Aggregate metrics.
    pub report: JobsReport,
    /// Per-job detail, in arrival order.
    pub outcomes: Vec<JobOutcome>,
}

/// Run the job simulation on arena-backed calibrated traces over
/// [`DEFAULT_HORIZON`], without telemetry.
pub fn run_jobs(cfg: &JobsConfig, master_seed: u64) -> JobsReport {
    run_jobs_with(cfg, master_seed, &mut NullSink, &mut JobsScratch::new()).report
}

/// [`run_jobs`] with a telemetry sink and reusable scratch.
pub fn run_jobs_with<S: Sink>(
    cfg: &JobsConfig,
    master_seed: u64,
    sink: &mut S,
    scratch: &mut JobsScratch,
) -> JobsRunResult {
    let catalog = Catalog::ec2_2015();
    let traces = TraceSet::generate(&catalog, &[cfg.market], master_seed, DEFAULT_HORIZON);
    run_jobs_on(cfg, &traces, master_seed, sink, scratch)
}

/// Run the job simulation against explicit price traces. Panics on an
/// invalid configuration or a trace set missing the configured market,
/// like `SimRun::new`.
pub fn run_jobs_on<S: Sink>(
    cfg: &JobsConfig,
    traces: &TraceSet,
    master_seed: u64,
    sink: &mut S,
    scratch: &mut JobsScratch,
) -> JobsRunResult {
    if let Err(e) = cfg.validate() {
        panic!("invalid jobs config: {e}");
    }
    let trace = traces
        .trace(cfg.market)
        .unwrap_or_else(|| panic!("trace set has no trace for {}", cfg.market));
    let horizon = SimTime::ZERO + traces.horizon();
    let jobs = generate_jobs(cfg, master_seed, horizon);

    scratch.forecaster.reset(ForecastParams::default());
    scratch.events.clear();
    let ckpt = BoundedCheckpointer::new(&VmSpec::paper_2gib(), &VirtParams::typical());

    let mut ctx = Ctx {
        cfg,
        trace,
        pon: traces.catalog().on_demand_price(cfg.market),
        cap: traces.catalog().max_bid(cfg.market),
        horizon,
        zone: cfg.market.zone,
        delta: ckpt.full_checkpoint_duration(),
        ckpt,
        faults: FaultPlan::new(
            cfg.faults.clone(),
            derive_seed(master_seed, "jobs-faults", 0),
        ),
        storms: StormSchedule::new(
            cfg.storms.clone(),
            derive_seed(master_seed, "jobs-storms", 0),
            traces.horizon(),
            traces.spike_spans(),
        ),
        forecaster: &mut scratch.forecaster,
        events: &mut scratch.events,
        obs_revocations: 0,
        obs_busy: SimDuration::ZERO,
    };

    let mut free_at = vec![SimTime::ZERO; cfg.workers as usize];
    let mut outcomes = Vec::with_capacity(jobs.len());
    for (idx, spec) in jobs.into_iter().enumerate() {
        // Earliest-free worker, lowest index on ties.
        let (w, _) = free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("workers >= 1 by validation");
        let start = spec.arrival.max(free_at[w]);
        // Feed the forecaster exactly the history up to this start
        // (monotone across jobs — see the module docs).
        if start > ctx.forecaster.fed_to() {
            for seg in trace.segments_in(ctx.forecaster.fed_to(), start) {
                ctx.forecaster.feed(seg);
            }
        }
        let outcome = ctx.run_job(idx as u32, spec, start);
        free_at[w] = outcome.completion;
        outcomes.push(outcome);
    }

    // Jobs are simulated to completion one at a time, so raw emission
    // order is per-job, not chronological; restore the global timeline
    // (stable, so same-instant events keep their deterministic order).
    if S::ENABLED {
        ctx.events.sort_by_key(|&(t, _)| t);
        for &(t, ev) in ctx.events.iter() {
            sink.emit(t, ev);
        }
    }
    scratch.events.clear();

    JobsRunResult {
        report: JobsReport::from_outcomes(cfg.policy, &outcomes),
        outcomes,
    }
}

/// Why a lease ended before its planned completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaseEnd {
    /// Price crossed the bid: the provider sends the grace warning.
    Warned,
    /// Mass revocation or injected capacity fault: no warning.
    Unwarned,
    /// The simulation horizon cut the lease off.
    Horizon,
}

struct Ctx<'a> {
    cfg: &'a JobsConfig,
    trace: &'a PriceTrace,
    pon: f64,
    cap: f64,
    horizon: SimTime,
    zone: Zone,
    /// Duration of one full checkpoint write (also used as the restore
    /// read on the replacement server).
    delta: SimDuration,
    ckpt: BoundedCheckpointer,
    faults: FaultPlan,
    storms: StormSchedule,
    forecaster: &'a mut MarketForecaster,
    events: &'a mut Vec<(SimTime, TelemetryEvent)>,
    /// Fleet-wide revocations observed so far (all jobs).
    obs_revocations: u32,
    /// Fleet-wide leased spot time so far, the hazard denominator.
    obs_busy: SimDuration,
}

impl Ctx<'_> {
    /// Blended revocation hazard per hour: the forecaster's predicted
    /// P(revocation within its 1 h lookahead) if warmed up, the fleet's
    /// observed revocations per leased hour, or the floor — whichever
    /// is largest.
    fn hazard_per_hour(&self, predicted_risk: Option<f64>) -> f64 {
        let observed = if self.obs_busy >= SimDuration::hours(1) {
            f64::from(self.obs_revocations) / self.obs_busy.as_hours_f64()
        } else {
            0.0
        };
        predicted_risk
            .unwrap_or(0.0)
            .max(observed)
            .max(HAZARD_FLOOR_PER_H)
    }

    /// Young's formula: `tau = sqrt(2 * delta * MTBF)`, clamped.
    fn young_interval(&self, hazard_per_h: f64) -> SimDuration {
        let tau_h = (2.0 * self.delta.as_hours_f64() / hazard_per_h).sqrt();
        SimDuration::secs_f64(tau_h * 3600.0)
            .max(TAU_MIN)
            .min(TAU_MAX)
    }

    fn emit(&mut self, at: SimTime, ev: TelemetryEvent) {
        self.events.push((at, ev));
    }

    /// Simulate one job from `start` to completion (or the horizon).
    fn run_job(&mut self, id: u32, spec: JobSpec, start: SimTime) -> JobOutcome {
        let mut out = JobOutcome {
            spec,
            started: None,
            completion: self.horizon,
            finished: false,
            missed: true,
            cost: 0.0,
            useful_cost: 0.0,
            useful: SimDuration::ZERO,
            wasted: SimDuration::ZERO,
            compute: SimDuration::ZERO,
            revocations: 0,
            checkpoints: 0,
            escalated: false,
        };

        // Bid decision with the history available at the job's start.
        let (bid, predicted_risk) = match self.cfg.policy.bidding() {
            BiddingPolicy::Adaptive { risk_budget } => {
                let d = self.forecaster.decide_bid(self.pon, self.cap, risk_budget);
                (d.bid, d.predicted_risk)
            }
            other => {
                let bid = other
                    .bid(self.pon, self.cap)
                    .expect("job policy ladder always bids");
                let risk = self
                    .forecaster
                    .warmed_up()
                    .then(|| self.forecaster.prob_above(bid));
                (bid, risk)
            }
        };
        let hazard = self.hazard_per_hour(predicted_risk);
        let can_ckpt = spec.checkpointable && self.cfg.policy == JobPolicy::CheckpointSpot;
        let tau = self.young_interval(hazard);

        // Work remaining from the last durable state (full runtime until
        // a checkpoint lands), and progress lost at the last revocation
        // (owed to the next JobRestarted emission).
        let mut durable_left = spec.runtime;
        let mut pending_lost: Option<SimDuration> = None;
        let mut now = start;
        let mut escalated = false;

        'job: while now < self.horizon {
            if self.cfg.policy == JobPolicy::OnDemandFallback && !escalated {
                // Escalate when the remaining slack no longer covers the
                // predicted restart loss: over the R hours left, expect
                // `hazard * R` revocations losing R/2 each on average.
                let r = durable_left;
                let expected_loss = r.mul_f64(0.5 * hazard * r.as_hours_f64());
                if now + BOOT + r + expected_loss > spec.deadline {
                    escalated = true;
                }
            }

            if escalated {
                self.run_on_demand_lease(id, &mut out, &mut pending_lost, &mut now, durable_left);
                break 'job;
            }

            // Wait for the spot price to clear the bid.
            if self.trace.price_at(now) > bid {
                match self.trace.next_time_at_or_below(now, bid) {
                    Some(t) if t < self.horizon => now = t,
                    _ => break 'job,
                }
            }
            // Capacity denials at request time.
            self.faults
                .set_storm_multiplier(self.storms.fault_multiplier(self.zone, now));
            if self.storms.crunch_fault(self.zone, now) || self.faults.spot_capacity_fault() {
                now += self.storms.jittered_backoff(ACQUIRE_BACKOFF);
                continue 'job;
            }
            let grant = now;
            // A failed boot burns (and bills) the boot window.
            if self.faults.startup_failure() {
                let end = (grant + BOOT).min(self.horizon);
                self.bill_spot(&mut out, grant, end, false, SimDuration::ZERO);
                now = end;
                continue 'job;
            }

            if out.started.is_none() {
                out.started = Some(grant);
                self.emit(
                    grant,
                    TelemetryEvent::JobStarted {
                        job: id,
                        market: self.cfg.market,
                        spot: true,
                    },
                );
            } else if let Some(lost) = pending_lost.take() {
                self.emit(
                    grant,
                    TelemetryEvent::JobRestarted {
                        job: id,
                        market: self.cfg.market,
                        lost,
                    },
                );
            }

            match self.run_spot_lease(id, &mut out, grant, bid, can_ckpt, tau, &mut durable_left) {
                SpotLeaseOutcome::Finished(at) => {
                    out.finished = true;
                    out.completion = at;
                    break 'job;
                }
                SpotLeaseOutcome::Revoked { at, lost } => {
                    out.revocations += 1;
                    self.obs_revocations += 1;
                    pending_lost = Some(lost);
                    now = at;
                }
                SpotLeaseOutcome::HorizonCut => break 'job,
            }
        }

        if !out.finished {
            // Cut off by the horizon: nothing it computed ever completed
            // a job, so it all counts as waste.
            out.completion = self.horizon;
            out.wasted += out.useful;
            out.useful = SimDuration::ZERO;
            out.useful_cost = 0.0;
        }
        out.missed = !out.finished || out.completion > spec.deadline;
        out.escalated = escalated;
        if out.started.is_some() || out.cost > 0.0 {
            self.emit(
                out.completion,
                TelemetryEvent::JobFinished {
                    job: id,
                    missed: out.missed,
                    cost: out.cost,
                },
            );
        }
        out
    }

    /// One uninterrupted on-demand lease running the job to completion
    /// (or the horizon). On-demand capacity faults back off and retry.
    fn run_on_demand_lease(
        &mut self,
        id: u32,
        out: &mut JobOutcome,
        pending_lost: &mut Option<SimDuration>,
        now: &mut SimTime,
        durable_left: SimDuration,
    ) {
        loop {
            self.faults
                .set_storm_multiplier(self.storms.fault_multiplier(self.zone, *now));
            if !self.faults.od_capacity_fault() {
                break;
            }
            *now += self.storms.jittered_backoff(ACQUIRE_BACKOFF);
            if *now >= self.horizon {
                return;
            }
        }
        let grant = *now;
        if out.started.is_none() {
            out.started = Some(grant);
            self.emit(
                grant,
                TelemetryEvent::JobStarted {
                    job: id,
                    market: self.cfg.market,
                    spot: false,
                },
            );
        } else if let Some(lost) = pending_lost.take() {
            self.emit(
                grant,
                TelemetryEvent::JobRestarted {
                    job: id,
                    market: self.cfg.market,
                    lost,
                },
            );
        }
        let work_start = grant + BOOT;
        let end = (work_start + durable_left).min(self.horizon);
        let worked = end.since(work_start.min(end));
        let wall = end.since(grant);
        let charge = on_demand_lease_charge(self.pon, grant, end);
        out.cost += charge;
        out.useful += worked;
        out.wasted += wall - worked;
        out.compute += wall;
        if wall > SimDuration::ZERO {
            out.useful_cost += charge * (worked.as_secs_f64() / wall.as_secs_f64());
        }
        *now = end;
        if worked == durable_left {
            out.finished = true;
            out.completion = end;
        }
    }

    /// Bill one spot lease and book its useful/wasted split.
    fn bill_spot(
        &mut self,
        out: &mut JobOutcome,
        grant: SimTime,
        end: SimTime,
        revoked: bool,
        useful: SimDuration,
    ) {
        let wall = end.since(grant);
        debug_assert!(useful <= wall);
        let charge = spot_lease_charge(self.trace, grant, end, revoked);
        out.cost += charge;
        out.useful += useful;
        out.wasted += wall - useful;
        out.compute += wall;
        if wall > SimDuration::ZERO {
            out.useful_cost += charge * (useful.as_secs_f64() / wall.as_secs_f64());
        }
        self.obs_busy += wall;
    }

    /// Simulate one spot lease granted at `grant` until the job
    /// finishes, the lease is revoked, or the horizon interferes.
    #[allow(clippy::too_many_arguments)]
    fn run_spot_lease(
        &mut self,
        id: u32,
        out: &mut JobOutcome,
        grant: SimTime,
        bid: f64,
        can_ckpt: bool,
        tau: SimDuration,
        durable_left: &mut SimDuration,
    ) -> SpotLeaseOutcome {
        // Boot, plus checkpoint restore when resuming durable state.
        let mut setup = BOOT;
        if can_ckpt && *durable_left < out.spec.runtime {
            setup += self.delta + self.faults.volume_attach_delay();
        }
        let work_start = grant + setup;

        // Planned completion if nothing interferes: the remaining work
        // plus one checkpoint pause per full tau chunk.
        let n_pauses = if can_ckpt && *durable_left > tau {
            (durable_left.as_millis() - 1) / tau.as_millis().max(1)
        } else {
            0
        };
        let planned_end = work_start + *durable_left + self.delta.mul_f64(n_pauses as f64);

        // Earliest interference: price crossing (warned), mass
        // revocation, or an injected capacity fault at a billing-hour
        // boundary (both unwarned).
        let mut stop_t = planned_end.min(self.horizon);
        let mut end_kind = if planned_end <= self.horizon {
            None
        } else {
            Some(LeaseEnd::Horizon)
        };
        if let Some(t) = self.trace.next_time_above(grant, bid) {
            if t < stop_t {
                stop_t = t;
                end_kind = Some(LeaseEnd::Warned);
            }
        }
        if let Some(t) = self.storms.next_mass_revocation(self.zone, grant) {
            if t < stop_t {
                stop_t = t;
                end_kind = Some(LeaseEnd::Unwarned);
            }
        }
        let mut boundary = grant + SimDuration::hours(1);
        while boundary < stop_t {
            self.faults
                .set_storm_multiplier(self.storms.fault_multiplier(self.zone, boundary));
            if self.faults.spot_capacity_fault() {
                stop_t = boundary;
                end_kind = Some(LeaseEnd::Unwarned);
                break;
            }
            boundary += SimDuration::hours(1);
        }

        // A warned revocation stops work when the warning lands and
        // spends the rest of the window flushing; a delayed warning
        // works longer but has less flush budget left.
        let (work_stop, flush_budget) = match end_kind {
            Some(LeaseEnd::Warned) => match self.faults.warning_fault(GRACE) {
                WarningFault::Delivered => (stop_t.saturating_sub(GRACE), GRACE),
                WarningFault::Delayed(d) => {
                    (stop_t.saturating_sub(GRACE) + d, GRACE.saturating_sub(d))
                }
                WarningFault::Missing => (stop_t, SimDuration::ZERO),
            },
            _ => (stop_t, SimDuration::ZERO),
        };

        // Walk the work/checkpoint blocks up to `work_stop`.
        let entering_left = *durable_left;
        let mut left = entering_left;
        let mut unsaved = SimDuration::ZERO;
        let mut cursor = work_start;
        let finished_at = loop {
            if cursor >= work_stop {
                break None;
            }
            let chunk = if can_ckpt { left.min(tau) } else { left };
            let chunk_end = cursor + chunk;
            if work_stop < chunk_end {
                let done = work_stop.since(cursor);
                unsaved += done;
                left -= done;
                break None;
            }
            cursor = chunk_end;
            unsaved += chunk;
            left -= chunk;
            if left == SimDuration::ZERO {
                break Some(cursor);
            }
            // Periodic checkpoint pause; a revocation mid-write loses it.
            let ck_end = cursor + self.delta;
            if work_stop < ck_end {
                break None;
            }
            cursor = ck_end;
            if !self.faults.ckpt_write_fails() {
                *durable_left = left;
                unsaved = SimDuration::ZERO;
                out.checkpoints += 1;
                self.emit(
                    cursor,
                    TelemetryEvent::JobCheckpointed {
                        job: id,
                        duration: self.delta,
                    },
                );
            }
        };

        if let Some(done_at) = finished_at {
            *durable_left = SimDuration::ZERO;
            self.bill_spot(out, grant, done_at, false, entering_left);
            return SpotLeaseOutcome::Finished(done_at);
        }

        // Warned revocations get a bounded final flush of the unsaved
        // increment inside the remaining grace window.
        if can_ckpt && unsaved > SimDuration::ZERO && flush_budget > SimDuration::ZERO {
            let flush = self.ckpt.final_write_duration(unsaved);
            if flush <= flush_budget && !self.faults.ckpt_write_fails() {
                *durable_left = left;
                unsaved = SimDuration::ZERO;
                out.checkpoints += 1;
                self.emit(
                    stop_t,
                    TelemetryEvent::JobCheckpointed {
                        job: id,
                        duration: flush,
                    },
                );
            }
        }

        let banked = entering_left - *durable_left;
        match end_kind {
            None | Some(LeaseEnd::Horizon) => {
                // The horizon cut the lease (planned end or grace window
                // past it): terminate voluntarily at the horizon.
                self.bill_spot(out, grant, self.horizon, false, banked);
                SpotLeaseOutcome::HorizonCut
            }
            _ => {
                self.bill_spot(out, grant, stop_t, true, banked);
                SpotLeaseOutcome::Revoked {
                    at: stop_t,
                    lost: unsaved,
                }
            }
        }
    }
}

enum SpotLeaseOutcome {
    /// Job completed all remaining work at this time.
    Finished(SimTime),
    /// Lease revoked; `lost` is the progress not durably saved.
    Revoked { at: SimTime, lost: SimDuration },
    /// The horizon ended the run mid-lease.
    HorizonCut,
}
