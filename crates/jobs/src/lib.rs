//! Deadline batch-job scheduling on spot markets.
//!
//! The paper hosts *interactive* services on spot servers; this crate
//! asks the complementary question for *batch* work (the Voorsluys &
//! Buyya regime): given jobs with runtimes and deadlines, what does a
//! unit of finished work cost on the spot market, and what does it take
//! to stop revocations from turning into deadline misses?
//!
//! Three policies form a ladder:
//!
//! - [`JobPolicy::GreedySpot`] — cheapest bid, restart from scratch on
//!   revocation. The price floor, and the miss-rate ceiling.
//! - [`JobPolicy::CheckpointSpot`] — periodic durable checkpoints with
//!   the interval set by Young's formula from the forecaster's
//!   predicted revocation risk; warned revocations flush a final
//!   bounded increment (the Yank mechanism from `spothost-virt`).
//! - [`JobPolicy::OnDemandFallback`] — escalate a job to an on-demand
//!   server once its deadline slack no longer covers the predicted
//!   restart loss.
//!
//! Everything reuses the existing stack: arena-backed calibrated price
//! traces and EC2-2015 billing (`spothost-market`, `spothost-cloudsim`),
//! bid selection (`spothost-core`'s `BiddingPolicy` plus the
//! `spothost-forecast` risk model), fault and storm injection
//! (`spothost-faults`), checkpoint cost models (`spothost-virt`), and
//! the telemetry event schema (`spothost-telemetry`).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod config;
pub mod report;
pub mod sim;
pub mod workload;

pub use config::{JobPolicy, JobsConfig};
pub use report::JobsReport;
pub use sim::{
    run_jobs, run_jobs_on, run_jobs_with, JobOutcome, JobsRunResult, JobsScratch, DEFAULT_HORIZON,
};
pub use workload::{generate_jobs, JobSpec};
