//! Seeded generation of the batch-job workload: exponential arrivals,
//! exponential runtimes, and per-runtime deadline slack.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use spothost_market::gen::derive_seed;
use spothost_market::time::{SimDuration, SimTime, MILLIS_PER_HOUR, MILLIS_PER_MINUTE};

use crate::config::JobsConfig;

/// Shortest job the generator will emit (clamp on the exponential draw).
pub const MIN_RUNTIME: SimDuration = SimDuration(10 * MILLIS_PER_MINUTE);
/// Longest job the generator will emit.
pub const MAX_RUNTIME: SimDuration = SimDuration(48 * MILLIS_PER_HOUR);

/// One batch job as submitted: when it arrives, how much compute it
/// needs, when it must be done, and whether its state can be
/// checkpointed at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Submission time.
    pub arrival: SimTime,
    /// Pure compute time required (excludes boots, checkpoints, and
    /// re-done work).
    pub runtime: SimDuration,
    /// Completion deadline; finishing after it counts as a miss.
    pub deadline: SimTime,
    /// Whether the job's state can be checkpointed/restored. A job that
    /// cannot always restarts from scratch, whatever the policy.
    pub checkpointable: bool,
}

impl JobSpec {
    /// Slack between the minimum possible completion (`arrival +
    /// runtime`) and the deadline.
    pub fn slack(&self) -> SimDuration {
        self.deadline.since(self.arrival + self.runtime)
    }
}

/// Draw from `Exp(mean)` via inversion. `u` must be in `[0, 1)`.
fn exp_draw(mean: SimDuration, u: f64) -> SimDuration {
    mean.mul_f64(-(1.0 - u).ln())
}

/// Generate the seeded job workload for `cfg` over `[0, horizon)`.
///
/// Arrivals are a Poisson process truncated at `horizon / 2` (so every
/// job has at least half the horizon to finish); runtimes are
/// exponential clamped to `[`[`MIN_RUNTIME`]`, `[`MAX_RUNTIME`]`]`;
/// deadlines grant `runtime * slack_factor * u`, `u ~ U[0.5, 1.5]`, of
/// slack past the minimum completion time. Each random role gets its
/// own [`derive_seed`] stream, so e.g. changing `slack_factor` never
/// perturbs the arrival pattern. Jobs come out sorted by arrival.
pub fn generate_jobs(cfg: &JobsConfig, master_seed: u64, horizon: SimTime) -> Vec<JobSpec> {
    let mut arrivals_rng = ChaCha12Rng::seed_from_u64(derive_seed(master_seed, "jobs-arrivals", 0));
    let mut runtime_rng = ChaCha12Rng::seed_from_u64(derive_seed(master_seed, "jobs-runtimes", 0));
    let mut slack_rng = ChaCha12Rng::seed_from_u64(derive_seed(master_seed, "jobs-slack", 0));
    let mut ckpt_rng = ChaCha12Rng::seed_from_u64(derive_seed(master_seed, "jobs-ckptable", 0));

    let arrival_end = SimTime::ZERO + SimDuration::millis(horizon.as_millis() / 2);
    let mut jobs = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        t += exp_draw(cfg.mean_interarrival, arrivals_rng.gen::<f64>());
        if t >= arrival_end {
            break;
        }
        let runtime = exp_draw(cfg.mean_runtime, runtime_rng.gen::<f64>())
            .max(MIN_RUNTIME)
            .min(MAX_RUNTIME);
        let u = 0.5 + slack_rng.gen::<f64>();
        let slack = runtime.mul_f64(cfg.slack_factor * u);
        let checkpointable = ckpt_rng.gen::<f64>() < cfg.checkpointable_fraction;
        jobs.push(JobSpec {
            arrival: t,
            runtime,
            deadline: t + runtime + slack,
            checkpointable,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JobPolicy;

    #[test]
    fn workload_is_deterministic_and_sorted() {
        let cfg = JobsConfig::new(JobPolicy::GreedySpot);
        let horizon = SimTime::ZERO + SimDuration::days(14);
        let a = generate_jobs(&cfg, 7, horizon);
        let b = generate_jobs(&cfg, 7, horizon);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for j in &a {
            assert!(j.runtime >= MIN_RUNTIME && j.runtime <= MAX_RUNTIME);
            assert!(j.deadline >= j.arrival + j.runtime);
            assert!(j.arrival.as_millis() < horizon.as_millis() / 2 + 1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = JobsConfig::new(JobPolicy::GreedySpot);
        let horizon = SimTime::ZERO + SimDuration::days(14);
        assert_ne!(
            generate_jobs(&cfg, 1, horizon),
            generate_jobs(&cfg, 2, horizon)
        );
    }

    #[test]
    fn slack_factor_does_not_perturb_arrivals() {
        let base = JobsConfig::new(JobPolicy::GreedySpot);
        let mut wide = base.clone();
        wide.slack_factor = 3.0;
        let horizon = SimTime::ZERO + SimDuration::days(14);
        let a = generate_jobs(&base, 9, horizon);
        let b = generate_jobs(&wide, 9, horizon);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.runtime, y.runtime);
            assert!(y.deadline >= x.deadline);
        }
    }
}
