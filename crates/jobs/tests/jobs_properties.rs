//! Property suite for the batch-job simulator:
//!
//! (a) determinism — the same `(config, seed)` yields bit-identical
//!     reports whether the scratch is fresh or dirtied by a different
//!     chaotic run (no forecaster or buffer residue);
//! (b) conservation — per job, `useful + wasted == compute` exactly,
//!     dollars charged are finite, non-negative, and at least the
//!     dollars attributable to useful compute, and a finished job's
//!     useful time is exactly its runtime;
//! (c) the zero-fault floor — on a constant price below the bid with no
//!     injected faults or storms, GreedySpot never revokes, and never
//!     misses a deadline whose slack covers its queue wait and boot.

use proptest::prelude::*;
use spothost_faults::{FaultConfig, StormConfig};
use spothost_jobs::sim::DEFAULT_HORIZON;
use spothost_jobs::{run_jobs_on, JobPolicy, JobsConfig, JobsReport, JobsScratch};
use spothost_market::catalog::Catalog;
use spothost_market::gen::TraceSet;
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::trace::PriceTrace;
use spothost_market::types::{InstanceType, MarketId, Zone};
use spothost_telemetry::NullSink;

fn market() -> MarketId {
    MarketId::new(Zone::UsEast1a, InstanceType::Large)
}

fn rate() -> impl Strategy<Value = f64> {
    (0u32..8, 0.0f64..0.4).prop_map(|(k, x)| if k == 0 { 0.0 } else { x })
}

fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (rate(), rate(), rate(), rate(), rate()).prop_map(|(spot, od, boot, warn, ckpt)| {
        let mut f = FaultConfig::none();
        f.spot_capacity_rate = spot;
        f.od_capacity_rate = od;
        f.startup_failure_rate = boot;
        f.warning_miss_rate = warn;
        f.ckpt_failure_rate = ckpt;
        f
    })
}

fn arb_storms() -> impl Strategy<Value = StormConfig> {
    (0u32..6, 0.0f64..1.0).prop_map(|(k, x)| {
        StormConfig::intensity(match k {
            0 => 0.0,
            1 => 1.0,
            _ => x,
        })
    })
}

fn arb_policy() -> impl Strategy<Value = JobPolicy> {
    prop_oneof![
        Just(JobPolicy::GreedySpot),
        Just(JobPolicy::CheckpointSpot),
        Just(JobPolicy::OnDemandFallback),
    ]
}

fn arb_cfg() -> impl Strategy<Value = JobsConfig> {
    (arb_policy(), arb_faults(), arb_storms(), 1u32..4).prop_map(|(p, f, s, w)| {
        JobsConfig::new(p)
            .with_faults(f)
            .with_storms(s)
            .with_workers(w)
    })
}

/// Small seed pool so the arena-backed traces are generated once and
/// shared across cases.
fn arb_seed() -> impl Strategy<Value = u64> {
    0u64..3
}

fn traces(seed: u64) -> TraceSet {
    TraceSet::generate(&Catalog::ec2_2015(), &[market()], seed, DEFAULT_HORIZON)
}

/// Bitwise comparison: `JobsReport`'s derived `PartialEq` compares the
/// cost with `f64 ==`, which would call `-0.0 == 0.0` equal; compare
/// the bit pattern instead.
fn reports_bits_equal(a: &JobsReport, b: &JobsReport) -> bool {
    a.policy == b.policy
        && a.jobs == b.jobs
        && a.finished == b.finished
        && a.missed == b.missed
        && a.total_cost.to_bits() == b.total_cost.to_bits()
        && a.useful == b.useful
        && a.wasted == b.wasted
        && a.revocations == b.revocations
        && a.checkpoints == b.checkpoints
        && a.escalations == b.escalations
        && a.makespan == b.makespan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reports_bitwise_deterministic_across_scratch_reuse(
        cfg in arb_cfg(),
        dirty_cfg in arb_cfg(),
        seed in arb_seed(),
    ) {
        let ts = traces(seed);
        let fresh = run_jobs_on(&cfg, &ts, seed, &mut NullSink, &mut JobsScratch::new());

        // Dirty a scratch with a different chaotic run, then reuse it.
        let mut scratch = JobsScratch::new();
        run_jobs_on(&dirty_cfg, &ts, seed.wrapping_add(1), &mut NullSink, &mut scratch);
        let reused = run_jobs_on(&cfg, &ts, seed, &mut NullSink, &mut scratch);

        prop_assert!(
            reports_bits_equal(&fresh.report, &reused.report),
            "scratch reuse changed the report:\n fresh: {:?}\nreused: {:?}",
            fresh.report,
            reused.report
        );
        prop_assert_eq!(fresh.outcomes.len(), reused.outcomes.len());
        for (a, b) in fresh.outcomes.iter().zip(&reused.outcomes) {
            prop_assert!(
                a.cost.to_bits() == b.cost.to_bits() && a.completion == b.completion,
                "outcome diverged: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn accounting_is_conserved(cfg in arb_cfg(), seed in arb_seed()) {
        let ts = traces(seed);
        let run = run_jobs_on(&cfg, &ts, seed, &mut NullSink, &mut JobsScratch::new());
        for o in &run.outcomes {
            prop_assert!(o.cost.is_finite() && o.cost >= 0.0, "bad cost: {o:?}");
            prop_assert!(
                o.useful + o.wasted == o.compute,
                "useful {} + wasted {} != compute {} in {o:?}",
                o.useful, o.wasted, o.compute
            );
            prop_assert!(
                o.useful_cost <= o.cost + 1e-9,
                "useful dollars {} exceed charged {} in {o:?}",
                o.useful_cost, o.cost
            );
            if o.finished {
                prop_assert!(o.useful == o.spec.runtime, "finished but useful != runtime: {o:?}");
                prop_assert!(o.completion >= o.spec.arrival + o.spec.runtime);
                prop_assert_eq!(o.missed, o.completion > o.spec.deadline);
            } else {
                prop_assert!(o.missed, "unfinished jobs must count as missed: {o:?}");
                prop_assert!(o.useful == SimDuration::ZERO);
            }
        }
        let agg = &run.report;
        prop_assert_eq!(agg.jobs as usize, run.outcomes.len());
        prop_assert!(agg.finished + agg.missed >= agg.jobs,
            "every job is finished-in-time or missed");
    }

    #[test]
    fn zero_fault_greedy_never_misses_a_fitting_deadline(
        seed in arb_seed(),
        workers in 1u32..4,
    ) {
        const BOOT: SimDuration = SimDuration(60_000);
        let cfg = JobsConfig::new(JobPolicy::GreedySpot).with_workers(workers);
        let catalog = Catalog::ec2_2015();
        let pon = catalog.on_demand_price(market());
        let end = SimTime::ZERO + DEFAULT_HORIZON;
        let ts = TraceSet::from_traces(
            &catalog,
            vec![(market(), PriceTrace::constant(pon * 0.3, end))],
            DEFAULT_HORIZON,
        );
        let run = run_jobs_on(&cfg, &ts, seed, &mut NullSink, &mut JobsScratch::new());
        prop_assert_eq!(run.report.revocations, 0);
        prop_assert_eq!(run.report.escalations, 0);
        for o in &run.outcomes {
            let Some(started) = o.started else { continue };
            let wait = started.since(o.spec.arrival);
            if wait + BOOT <= o.spec.slack() && o.finished {
                prop_assert!(
                    !o.missed,
                    "job with covering slack missed: wait {wait}, slack {}, {o:?}",
                    o.spec.slack()
                );
            }
            if o.finished {
                // No revocations: exactly one lease, all of it useful + boot.
                prop_assert!(o.compute == o.spec.runtime + BOOT, "lease shape wrong: {o:?}");
            }
        }
    }
}
