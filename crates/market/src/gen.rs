//! Deterministic trace generation.
//!
//! Every stochastic ingredient draws from its own ChaCha stream whose seed
//! is derived from `(master seed, role, entity id)`. Consequently a
//! market's trace depends only on the master seed, the market identity and
//! its parameters — *not* on which other markets are generated alongside
//! it. Single-market and multi-market experiments therefore see literally
//! identical price histories for shared markets, making cost comparisons
//! paired rather than merely distributionally equal.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::arena::TraceArena;
use crate::calib::calibrated_model;
use crate::catalog::Catalog;
use crate::dist;
use crate::model::SpotModelParams;
use crate::time::{SimDuration, SimTime};
use crate::trace::{PricePoint, PriceTrace};
use crate::types::{MarketId, Zone};

/// Mean-reversion rate (per hour) of the shared global/zone factors.
const FACTOR_THETA_PER_HOUR: f64 = 0.12;

/// EC2 publishes spot prices with $0.001 granularity; we quantise the same
/// way, which also collapses runs of near-identical OU samples.
const PRICE_QUANTUM: f64 = 0.001;

/// Derive a child seed from a master seed, a role string and an entity id.
/// FNV-1a over the role, then two rounds of splitmix64 finalisation.
pub fn derive_seed(master: u64, role: &str, id: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in role.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut z = master ^ h.rotate_left(17) ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

fn stream(master: u64, role: &str, id: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(derive_seed(master, role, id))
}

/// An exact-discretisation Ornstein–Uhlenbeck path with unit stationary
/// variance, sampled on a regular grid.
fn ou_path(rng: &mut ChaCha12Rng, n: usize, theta_per_hour: f64, step: SimDuration) -> Vec<f64> {
    let dt_hours = step.as_hours_f64();
    let phi = (-theta_per_hour * dt_hours).exp();
    let noise = (1.0 - phi * phi).sqrt();
    let mut path = Vec::with_capacity(n);
    let mut x = dist::standard_normal(rng); // stationary start
    path.push(x);
    for _ in 1..n {
        x = phi * x + noise * dist::standard_normal(rng);
        path.push(x);
    }
    path
}

/// Shared factor paths: one global, one per zone, on a common grid.
#[derive(Debug, Clone)]
pub struct FactorPaths {
    step: SimDuration,
    global: Vec<f64>,
    zones: [Vec<f64>; 4],
}

impl FactorPaths {
    pub fn generate(master: u64, step: SimDuration, n: usize) -> Self {
        let global = ou_path(
            &mut stream(master, "factor-global", 0),
            n,
            FACTOR_THETA_PER_HOUR,
            step,
        );
        let zones = Zone::ALL.map(|z| {
            ou_path(
                &mut stream(master, "factor-zone", z.index() as u64),
                n,
                FACTOR_THETA_PER_HOUR,
                step,
            )
        });
        FactorPaths {
            step,
            global,
            zones,
        }
    }

    fn global_at(&self, idx: usize) -> f64 {
        self.global[idx.min(self.global.len() - 1)]
    }

    fn zone_at(&self, zone: Zone, idx: usize) -> f64 {
        let path = &self.zones[zone.index()];
        path[idx.min(path.len() - 1)]
    }
}

/// A spike interval before market-specific magnitude assignment.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpikeWindow {
    start: SimTime,
    duration: SimDuration,
}

/// Zone-wide spike schedules, shared by every market in a zone.
#[derive(Debug, Clone)]
pub struct ZoneSpikeSchedules {
    per_zone: [Vec<SpikeWindow>; 4],
}

impl ZoneSpikeSchedules {
    /// The canonical schedule used by calibrated generation: every zone's
    /// rate/duration comes from its calibrated Small model (zone-wide
    /// spikes are a property of the zone, so every size agrees on them).
    pub(crate) fn canonical(master: u64, horizon: SimDuration) -> Self {
        let mut zone_rate = [0.0f64; 4];
        let mut zone_dur = [SimDuration::minutes(20); 4];
        for &zone in &Zone::ALL {
            let canon = calibrated_model(MarketId::new(zone, crate::types::InstanceType::Small));
            zone_rate[zone.index()] = canon.zone_spike_rate_per_day;
            zone_dur[zone.index()] = canon.spike_duration_mean;
        }
        Self::generate(master, horizon, zone_rate, zone_dur)
    }

    pub(crate) fn windows(&self, zone: Zone) -> &[SpikeWindow] {
        &self.per_zone[zone.index()]
    }

    /// A zone's spike windows as `(start, end)` spans, sorted by start.
    ///
    /// This is the public contagion interface for correlated-failure
    /// models: a storm schedule built on these spans observes the *same*
    /// zone-wide price events the generated traces contain, so "capacity
    /// crunch during the price spike" is consistent by construction
    /// rather than merely correlated in distribution.
    pub fn spans(&self, zone: Zone) -> Vec<(SimTime, SimTime)> {
        self.per_zone[zone.index()]
            .iter()
            .map(|w| (w.start, w.start + w.duration))
            .collect()
    }

    /// [`spans`](Self::spans) for every zone, indexed by [`Zone::index`].
    pub fn all_spans(&self) -> [Vec<(SimTime, SimTime)>; 4] {
        Zone::ALL.map(|z| self.spans(z))
    }

    fn generate(
        master: u64,
        horizon: SimDuration,
        rate_per_day: [f64; 4],
        mean_dur: [SimDuration; 4],
    ) -> Self {
        let per_zone = Zone::ALL.map(|z| {
            let mut rng = stream(master, "zone-spikes", z.index() as u64);
            let rate = rate_per_day[z.index()];
            let expected = rate * horizon.as_days_f64();
            let count = dist::poisson(&mut rng, expected);
            let mut windows: Vec<SpikeWindow> = (0..count)
                .map(|_| {
                    let at = rng.gen_range(0..horizon.as_millis().max(1));
                    let dur = dist::exponential(&mut rng, mean_dur[z.index()].as_secs_f64());
                    SpikeWindow {
                        start: SimTime::millis(at),
                        duration: SimDuration::secs_f64(dur.max(30.0)),
                    }
                })
                .collect();
            windows.sort_by_key(|w| w.start);
            windows
        });
        ZoneSpikeSchedules { per_zone }
    }
}

/// Regime (calm/elevated) segments over the horizon.
fn regime_segments(
    rng: &mut ChaCha12Rng,
    params: &SpotModelParams,
    horizon: SimDuration,
) -> Vec<(SimTime, bool)> {
    let mut segs = Vec::new();
    let mut t = SimTime::ZERO;
    // Stationary initial state.
    let mut elevated = rng.gen::<f64>() < params.elevated_fraction();
    let end = SimTime::ZERO + horizon;
    while t < end {
        segs.push((t, elevated));
        let mean = if elevated {
            params.elevated_mean
        } else {
            params.calm_mean
        };
        let sojourn = dist::exponential(rng, mean.as_secs_f64());
        t += SimDuration::secs_f64(sojourn.max(60.0));
        elevated = !elevated;
    }
    segs
}

/// A fully-specified spike: window plus price level in $/hour.
#[derive(Debug, Clone, Copy)]
struct Spike {
    start: SimTime,
    end: SimTime,
    level: f64,
}

fn sample_spike_mult(rng: &mut ChaCha12Rng, params: &SpotModelParams) -> f64 {
    dist::pareto(rng, params.spike_min_mult, params.spike_pareto_alpha).min(params.spike_cap_mult)
}

/// Generate one calibrated market trace against shared canonical factor
/// paths and zone spike schedules (all derived from the same master seed).
/// This is the single generation path behind both [`TraceSet::generate`]
/// (via the [`TraceArena`]) and [`TraceSet::generate_with`] on calibrated
/// models, which is what makes arena-cached traces byte-identical to
/// freshly generated ones.
pub(crate) fn calibrated_trace(
    master: u64,
    market: MarketId,
    pon: f64,
    horizon: SimDuration,
    factors: &FactorPaths,
    zone_spikes: &ZoneSpikeSchedules,
) -> PriceTrace {
    let params = calibrated_model(market);
    generate_market_trace(
        master,
        market,
        &params,
        pon,
        horizon,
        factors,
        zone_spikes.windows(market.zone),
    )
}

/// Generate one market's trace. `factors` and `zone_windows` must have been
/// generated from the same master seed for cross-market determinism.
#[allow(clippy::too_many_arguments)]
fn generate_market_trace(
    master: u64,
    market: MarketId,
    params: &SpotModelParams,
    pon: f64,
    horizon: SimDuration,
    factors: &FactorPaths,
    zone_windows: &[SpikeWindow],
) -> PriceTrace {
    assert_eq!(
        params.step, factors.step,
        "all markets must share a grid step"
    );
    let dense = market.dense_index() as u64;
    let end = SimTime::ZERO + horizon;

    // --- OU idiosyncratic path --------------------------------------------
    let n_grid = (horizon.as_millis() / params.step.as_millis()) as usize + 1;
    let idio = ou_path(
        &mut stream(master, "idio", dense),
        n_grid,
        params.theta_per_hour,
        params.step,
    );

    // --- regimes ------------------------------------------------------------
    let regimes = regime_segments(&mut stream(master, "regime", dense), params, horizon);

    // --- idiosyncratic spikes, modulated by regime ---------------------------
    let mut spike_rng = stream(master, "spikes", dense);
    let mut spikes: Vec<Spike> = Vec::new();
    for (i, &(seg_start, elevated)) in regimes.iter().enumerate() {
        let seg_end = regimes.get(i + 1).map_or(end, |&(t, _)| t).min(end);
        if seg_end <= seg_start {
            continue;
        }
        let len_days = (seg_end - seg_start).as_days_f64();
        let rate = params.spike_rate_per_day
            * if elevated {
                params.spike_rate_elevated_mult
            } else {
                1.0
            };
        let count = dist::poisson(&mut spike_rng, rate * len_days);
        for _ in 0..count {
            let span = (seg_end - seg_start).as_millis().max(1);
            let at = seg_start + SimDuration::millis(spike_rng.gen_range(0..span));
            let dur = dist::exponential(&mut spike_rng, params.spike_duration_mean.as_secs_f64());
            let dur = SimDuration::secs_f64(dur.max(30.0));
            let mult = sample_spike_mult(&mut spike_rng, params);
            spikes.push(Spike {
                start: at,
                end: (at + dur).min(end),
                level: mult * pon,
            });
        }
    }

    // --- zone-wide spikes with market-specific magnitudes --------------------
    let mut zmag_rng = stream(master, "zmag", dense);
    for w in zone_windows {
        let mult = sample_spike_mult(&mut zmag_rng, params);
        if w.start >= end {
            continue;
        }
        spikes.push(Spike {
            start: w.start,
            end: (w.start + w.duration).min(end),
            level: mult * pon,
        });
    }
    spikes.retain(|s| s.end > s.start);
    spikes.sort_by_key(|s| s.start);

    // --- assemble boundaries --------------------------------------------------
    let mut boundaries: Vec<SimTime> =
        Vec::with_capacity(n_grid + spikes.len() * 2 + regimes.len());
    let mut t = SimTime::ZERO;
    while t < end {
        boundaries.push(t);
        t += params.step;
    }
    for &(rt, _) in &regimes {
        if rt < end {
            boundaries.push(rt);
        }
    }
    for s in &spikes {
        boundaries.push(s.start);
        if s.end < end {
            boundaries.push(s.end);
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();

    // --- sweep: evaluate price at every boundary -------------------------------
    let sigma = params.sigma;
    let sg = params.var_share_global.sqrt();
    let sz = params.var_share_zone.sqrt();
    let si = params.var_share_idio().max(0.0).sqrt();
    let mean_correction = (-0.5 * sigma * sigma).exp();
    let base = params.base_ratio * pon * mean_correction;

    // Active-spike multiset keyed by quantised level.
    let mut active: BTreeMap<u64, usize> = BTreeMap::new();
    let mut spike_starts = spikes.iter().peekable();
    // End events, sorted lazily through a BinaryHeap of Reverse.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut ends: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();

    let mut regime_iter = regimes.iter().peekable();
    let mut elevated = false;

    let mut points: Vec<PricePoint> = Vec::with_capacity(boundaries.len());
    for &bt in &boundaries {
        // Retire finished spikes.
        while let Some(&Reverse((e, key))) = ends.peek() {
            if e <= bt {
                ends.pop();
                if let Some(c) = active.get_mut(&key) {
                    *c -= 1;
                    if *c == 0 {
                        active.remove(&key);
                    }
                }
            } else {
                break;
            }
        }
        // Activate spikes starting here.
        while let Some(s) = spike_starts.peek() {
            if s.start <= bt {
                let s = *spike_starts.next().expect("peek guaranteed a next spike");
                if s.end > bt {
                    let key = (s.level / PRICE_QUANTUM).round() as u64;
                    *active.entry(key).or_insert(0) += 1;
                    ends.push(Reverse((s.end, key)));
                }
            } else {
                break;
            }
        }
        // Advance regime.
        while let Some(&&(rt, e)) = regime_iter.peek() {
            if rt <= bt {
                elevated = e;
                regime_iter.next();
            } else {
                break;
            }
        }

        let grid_idx = (bt.as_millis() / params.step.as_millis()) as usize;
        let x = sg * factors.global_at(grid_idx)
            + sz * factors.zone_at(market.zone, grid_idx)
            + si * idio[grid_idx.min(idio.len() - 1)];
        let regime_mult = if elevated {
            params.elevated_base_mult
        } else {
            1.0
        };
        let ou_price = base * regime_mult * (sigma * x).exp();
        let spike_level = active
            .keys()
            .next_back()
            .map_or(0.0, |&k| k as f64 * PRICE_QUANTUM);
        let price = ou_price.max(spike_level);
        let quantised = ((price / PRICE_QUANTUM).round() as u64).max(1) as f64 * PRICE_QUANTUM;

        if points.last().map(|p: &PricePoint| p.price) != Some(quantised) {
            points.push(PricePoint {
                at: bt,
                price: quantised,
            });
        }
    }

    PriceTrace::new(points, end)
}

/// A collection of generated traces over a common horizon.
///
/// Traces are held behind [`Arc`], so cloning a set — or carving a
/// [`subset`](TraceSet::subset) view out of one — shares the underlying
/// price data instead of copying it.
#[derive(Debug, Clone)]
pub struct TraceSet {
    horizon: SimDuration,
    catalog: Catalog,
    entries: Vec<(MarketId, Arc<PriceTrace>)>,
    dense: [Option<usize>; 16],
    /// Per-zone spike-window spans of the schedules the traces were
    /// generated against ([`ZoneSpikeSchedules::all_spans`]). Empty for
    /// hand-authored sets — correlated-failure contagion then has no
    /// price events to couple to, which is the honest default.
    spike_spans: Arc<[Vec<(SimTime, SimTime)>; 4]>,
}

impl TraceSet {
    /// Generate traces for `markets` using the paper calibration.
    ///
    /// Backed by the process-global [`TraceArena`]: a trace for the same
    /// `(master_seed, horizon, market)` is generated once per process and
    /// shared by reference thereafter. This is sound because a market's
    /// calibrated trace is a pure function of exactly that key (plus the
    /// catalog's on-demand price, which is part of the cache key) — it
    /// does not depend on which other markets are generated alongside it.
    pub fn generate(
        catalog: &Catalog,
        markets: &[MarketId],
        master_seed: u64,
        horizon: SimDuration,
    ) -> Self {
        TraceArena::global().calibrated_set(catalog, markets, master_seed, horizon)
    }

    /// [`TraceSet::generate`] without the process-global arena: every
    /// trace is generated afresh. Byte-identical to the arena path; used
    /// by tests that must exercise generation itself.
    pub fn generate_uncached(
        catalog: &Catalog,
        markets: &[MarketId],
        master_seed: u64,
        horizon: SimDuration,
    ) -> Self {
        let models: Vec<(MarketId, SpotModelParams)> =
            markets.iter().map(|&m| (m, calibrated_model(m))).collect();
        Self::generate_with(catalog, &models, master_seed, horizon)
    }

    /// Generate traces from explicit per-market parameters. All parameter
    /// sets must share the same grid `step`; markets in the same zone must
    /// agree on the zone-wide spike rate (it defines a shared schedule).
    pub fn generate_with(
        catalog: &Catalog,
        models: &[(MarketId, SpotModelParams)],
        master_seed: u64,
        horizon: SimDuration,
    ) -> Self {
        assert!(!models.is_empty(), "at least one market required");
        assert!(horizon > SimDuration::ZERO);
        let step = models[0].1.step;
        for (m, p) in models {
            assert_eq!(p.step, step, "{m}: all markets must share a grid step");
            p.validate().unwrap_or_else(|e| panic!("{m}: {e}"));
        }

        let n_grid = (horizon.as_millis() / step.as_millis()) as usize + 1;
        let factors = FactorPaths::generate(master_seed, step, n_grid);

        // Canonical zone spike rates/durations: calibrated values, checked
        // for consistency against any custom models supplied.
        let mut zone_rate = [0.0f64; 4];
        let mut zone_dur = [SimDuration::minutes(20); 4];
        for &zone in &Zone::ALL {
            let canon = calibrated_model(MarketId::new(zone, crate::types::InstanceType::Small));
            zone_rate[zone.index()] = canon.zone_spike_rate_per_day;
            zone_dur[zone.index()] = canon.spike_duration_mean;
        }
        for (m, p) in models {
            // Custom models may override the zone rate; the first market in
            // a zone wins so that the schedule stays well-defined.
            zone_rate[m.zone.index()] = p.zone_spike_rate_per_day;
            zone_dur[m.zone.index()] = p.spike_duration_mean;
        }
        let zone_spikes = ZoneSpikeSchedules::generate(master_seed, horizon, zone_rate, zone_dur);

        let mut entries = Vec::with_capacity(models.len());
        let mut dense = [None; 16];
        for (m, p) in models {
            let pon = catalog.on_demand_price(*m);
            let trace = generate_market_trace(
                master_seed,
                *m,
                p,
                pon,
                horizon,
                &factors,
                &zone_spikes.per_zone[m.zone.index()],
            );
            dense[m.dense_index()] = Some(entries.len());
            entries.push((*m, Arc::new(trace)));
        }

        TraceSet {
            horizon,
            catalog: catalog.clone(),
            entries,
            dense,
            spike_spans: Arc::new(zone_spikes.all_spans()),
        }
    }

    /// Build a trace set from hand-authored traces (scenario tests and
    /// what-if studies). All traces must share the horizon.
    pub fn from_traces(
        catalog: &Catalog,
        traces: Vec<(MarketId, PriceTrace)>,
        horizon: SimDuration,
    ) -> Self {
        Self::from_shared(
            catalog,
            traces.into_iter().map(|(m, t)| (m, Arc::new(t))).collect(),
            horizon,
        )
    }

    /// Build a trace set from already-shared traces without copying any
    /// price data. All traces must share the horizon.
    pub fn from_shared(
        catalog: &Catalog,
        traces: Vec<(MarketId, Arc<PriceTrace>)>,
        horizon: SimDuration,
    ) -> Self {
        assert!(!traces.is_empty());
        let end = SimTime::ZERO + horizon;
        let mut entries = Vec::with_capacity(traces.len());
        let mut dense = [None; 16];
        for (m, t) in traces {
            assert_eq!(t.end(), end, "{m}: trace horizon mismatch");
            assert!(dense[m.dense_index()].is_none(), "duplicate market {m}");
            dense[m.dense_index()] = Some(entries.len());
            entries.push((m, t));
        }
        TraceSet {
            horizon,
            catalog: catalog.clone(),
            entries,
            dense,
            spike_spans: Arc::new([const { Vec::new() }; 4]),
        }
    }

    /// Attach the zone spike spans the traces were generated against
    /// (used by [`crate::arena::TraceArena`], whose cache-assembled sets
    /// bypass [`TraceSet::generate_with`]).
    pub fn with_spike_spans(mut self, spans: Arc<[Vec<(SimTime, SimTime)>; 4]>) -> Self {
        self.spike_spans = spans;
        self
    }

    /// Per-zone spike-window spans ([`Zone::index`]-indexed) of the
    /// schedules behind these traces — the contagion interface for
    /// correlated-failure models. Empty vectors for hand-authored sets.
    pub fn spike_spans(&self) -> &[Vec<(SimTime, SimTime)>; 4] {
        &self.spike_spans
    }

    /// A view of this set restricted to `markets`, sharing the underlying
    /// traces by reference — no price data is allocated or copied. Panics
    /// if a requested market is missing from this set.
    pub fn subset(&self, markets: &[MarketId]) -> TraceSet {
        let mut ts = Self::from_shared(
            &self.catalog,
            markets
                .iter()
                .map(|&m| {
                    let i = self.dense[m.dense_index()]
                        .unwrap_or_else(|| panic!("subset market {m} not in trace set"));
                    (m, Arc::clone(&self.entries[i].1))
                })
                .collect(),
            self.horizon,
        );
        ts.spike_spans = Arc::clone(&self.spike_spans);
        ts
    }

    /// The shared handle for one market's trace (tests use this to assert
    /// that views alias rather than copy).
    pub fn shared_trace(&self, market: MarketId) -> Option<&Arc<PriceTrace>> {
        self.dense[market.dense_index()].map(|i| &self.entries[i].1)
    }

    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn markets(&self) -> impl Iterator<Item = MarketId> + '_ {
        self.entries.iter().map(|(m, _)| *m)
    }

    pub fn trace(&self, market: MarketId) -> Option<&PriceTrace> {
        self.dense[market.dense_index()].map(|i| self.entries[i].1.as_ref())
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (MarketId, &PriceTrace)> {
        self.entries.iter().map(|(m, t)| (*m, t.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::InstanceType;

    fn catalog() -> Catalog {
        Catalog::ec2_2015()
    }

    fn small_east() -> MarketId {
        MarketId::new(Zone::UsEast1a, InstanceType::Small)
    }

    #[test]
    fn derive_seed_is_stable_and_distinct() {
        let a = derive_seed(1, "idio", 0);
        assert_eq!(a, derive_seed(1, "idio", 0));
        assert_ne!(a, derive_seed(1, "idio", 1));
        assert_ne!(a, derive_seed(1, "regime", 0));
        assert_ne!(a, derive_seed(2, "idio", 0));
    }

    #[test]
    fn generation_is_deterministic() {
        // Uncached on both sides: the arena would otherwise serve the
        // second set from the first and prove nothing.
        let c = catalog();
        let h = SimDuration::days(3);
        let a = TraceSet::generate_uncached(&c, &[small_east()], 99, h);
        let b = TraceSet::generate_uncached(&c, &[small_east()], 99, h);
        assert_eq!(
            a.trace(small_east()).unwrap(),
            b.trace(small_east()).unwrap()
        );
    }

    #[test]
    fn trace_independent_of_companion_markets() {
        let c = catalog();
        let h = SimDuration::days(3);
        let solo = TraceSet::generate_uncached(&c, &[small_east()], 7, h);
        let all = TraceSet::generate_uncached(&c, &MarketId::all(), 7, h);
        assert_eq!(
            solo.trace(small_east()).unwrap(),
            all.trace(small_east()).unwrap()
        );
    }

    #[test]
    fn arena_path_matches_direct_generation() {
        // The cached path (TraceSet::generate via the global arena) must
        // be byte-identical to generating from scratch — this is the
        // invariant the whole caching design rests on.
        let c = catalog();
        let h = SimDuration::days(3);
        let cached = TraceSet::generate(&c, &MarketId::all(), 41, h);
        let direct = TraceSet::generate_uncached(&c, &MarketId::all(), 41, h);
        for m in MarketId::all() {
            assert_eq!(cached.trace(m).unwrap(), direct.trace(m).unwrap(), "{m}");
        }
    }

    #[test]
    fn subset_views_share_trace_storage() {
        use std::sync::Arc;
        let c = catalog();
        let h = SimDuration::days(2);
        let m2 = MarketId::new(Zone::UsEast1a, InstanceType::Medium);
        let pool = TraceSet::generate_uncached(&c, &[small_east(), m2], 13, h);
        let view = pool.subset(&[small_east()]);
        // The view aliases the pool's allocation: no price data was
        // copied, only an Arc was cloned.
        assert!(Arc::ptr_eq(
            pool.shared_trace(small_east()).unwrap(),
            view.shared_trace(small_east()).unwrap(),
        ));
        assert_eq!(view.len(), 1);
        assert!(view.trace(m2).is_none());
        assert_eq!(view.horizon(), pool.horizon());
    }

    #[test]
    fn different_seeds_differ() {
        let c = catalog();
        let h = SimDuration::days(3);
        let a = TraceSet::generate(&c, &[small_east()], 1, h);
        let b = TraceSet::generate(&c, &[small_east()], 2, h);
        assert_ne!(
            a.trace(small_east()).unwrap(),
            b.trace(small_east()).unwrap()
        );
    }

    #[test]
    fn mean_price_near_calibrated_base() {
        let c = catalog();
        let m = small_east();
        let h = SimDuration::days(60);
        let set = TraceSet::generate(&c, &[m], 5, h);
        let trace = set.trace(m).unwrap();
        let pon = c.on_demand_price(m);
        let ratio = trace.time_weighted_mean() / pon;
        let base = calibrated_model(m).base_ratio;
        // Regimes and spikes push the mean above the calm base; it must stay
        // in the same ballpark and far below on-demand.
        assert!(
            ratio > base * 0.6 && ratio < base * 3.0,
            "mean/on-demand ratio {ratio}, calm base {base}"
        );
    }

    #[test]
    fn spikes_exceed_on_demand_occasionally() {
        let c = catalog();
        let m = small_east();
        let h = SimDuration::days(90);
        let set = TraceSet::generate(&c, &[m], 11, h);
        let trace = set.trace(m).unwrap();
        let pon = c.on_demand_price(m);
        let frac = trace.fraction_above(pon);
        assert!(
            frac > 0.002 && frac < 0.08,
            "fraction above on-demand: {frac}"
        );
        assert!(trace.max_price() > pon, "no spike ever crossed on-demand");
    }

    #[test]
    fn prices_quantised_and_positive() {
        let c = catalog();
        let m = small_east();
        let set = TraceSet::generate(&c, &[m], 3, SimDuration::days(7));
        for p in set.trace(m).unwrap().points() {
            assert!(p.price >= PRICE_QUANTUM);
            let q = (p.price / PRICE_QUANTUM).round() * PRICE_QUANTUM;
            assert!((p.price - q).abs() < 1e-9, "unquantised price {}", p.price);
        }
    }

    #[test]
    fn eu_west_is_calmer_than_us_east() {
        let c = catalog();
        let east = MarketId::new(Zone::UsEast1a, InstanceType::Large);
        let west = MarketId::new(Zone::EuWest1a, InstanceType::Large);
        let h = SimDuration::days(90);
        let set = TraceSet::generate(&c, &[east, west], 17, h);
        let fe = set
            .trace(east)
            .unwrap()
            .fraction_above(c.on_demand_price(east));
        let fw = set
            .trace(west)
            .unwrap()
            .fraction_above(c.on_demand_price(west));
        assert!(fe > fw, "us-east {fe} should spike more than eu-west {fw}");
    }

    #[test]
    fn horizon_respected() {
        let c = catalog();
        let h = SimDuration::days(2);
        let set = TraceSet::generate(&c, &[small_east()], 23, h);
        let t = set.trace(small_east()).unwrap();
        assert_eq!(t.end(), SimTime::ZERO + h);
        assert!(t.points().iter().all(|p| p.at < t.end()));
    }
}
