//! Per-market calibration of the spot-price process.
//!
//! Targets (all from the paper's evaluation; tolerances are loose because
//! only the *shape* must hold, see DESIGN.md):
//!
//! * normalized proactive cost of 17–33% of the on-demand baseline across
//!   sizes (Figure 6(a)), rising with instance size;
//! * reactive forced migrations of roughly 0.01–0.09 per server-hour
//!   (Figure 6(c)), decreasing with instance size;
//! * pure-spot unavailability above 1% in the small/medium/large us-east
//!   markets and below 1% for xlarge (Figure 11(b));
//! * us-east prices cheap and volatile, us-west intermediate, eu-west
//!   expensive and stable (Figure 10);
//! * multi-market cost reductions from a few percent (us-west, eu-west —
//!   sizes priced alike) to ~50% (us-east-1b — sizes priced very unevenly),
//!   matching Figure 8(a)'s 8–52% spread;
//! * weak intra-zone correlation, weaker cross-zone (Figures 8(b), 9(b)).

use crate::model::SpotModelParams;
use crate::time::SimDuration;
use crate::types::{InstanceType, MarketId, Zone};

/// Mean spot/on-demand price ratio during calm periods.
fn base_ratio(m: MarketId) -> f64 {
    use InstanceType::*;
    use Zone::*;
    match (m.zone, m.itype) {
        // Moderately uneven size pricing -> ~30% multi-market gain.
        (UsEast1a, Small) => 0.13,
        (UsEast1a, Medium) => 0.16,
        (UsEast1a, Large) => 0.20,
        (UsEast1a, XLarge) => 0.26,
        // Very uneven -> the paper's 52% multi-market gain zone.
        (UsEast1b, Small) => 0.08,
        (UsEast1b, Medium) => 0.14,
        (UsEast1b, Large) => 0.22,
        (UsEast1b, XLarge) => 0.30,
        // Sizes priced alike -> the paper's 8% multi-market gain zone.
        (UsWest1a, Small) => 0.21,
        (UsWest1a, Medium) => 0.22,
        (UsWest1a, Large) => 0.23,
        (UsWest1a, XLarge) => 0.24,
        // Expensive and stable.
        (EuWest1a, Small) => 0.24,
        (EuWest1a, Medium) => 0.26,
        (EuWest1a, Large) => 0.28,
        (EuWest1a, XLarge) => 0.30,
    }
}

/// Calm-period idiosyncratic spike arrivals per day. In the busy us-east
/// zones, smaller instances sit in busier markets (more bidders chase the
/// cheap capacity), so spikes are more frequent — this yields Figure 6(c)'s
/// size-decreasing forced-migration rate and Figure 11(b)'s >1% pure-spot
/// unavailability for small–large. The quieter us-west/eu-west zones show
/// no clear size gradient, so the multi-market scheduler's preference for
/// small servers there doesn't raise its spike exposure (Figure 8(c)).
fn spike_rate_per_day(m: MarketId) -> f64 {
    use InstanceType::*;
    let east = matches!(m.zone, Zone::UsEast1a | Zone::UsEast1b);
    let by_size = if east {
        match m.itype {
            Small => 0.60,
            Medium => 0.50,
            Large => 0.42,
            XLarge => 0.20,
        }
    } else {
        0.30
    };
    by_size * zone_activity(m.zone)
}

/// Relative market turbulence per zone.
fn zone_activity(zone: Zone) -> f64 {
    match zone {
        Zone::UsEast1a => 1.0,
        Zone::UsEast1b => 1.15,
        Zone::UsWest1a => 0.45,
        Zone::EuWest1a => 0.20,
    }
}

/// OU log-price volatility per zone.
fn sigma(zone: Zone) -> f64 {
    match zone {
        Zone::UsEast1a => 0.25,
        Zone::UsEast1b => 0.28,
        Zone::UsWest1a => 0.15,
        Zone::EuWest1a => 0.10,
    }
}

/// Pareto tail index of spike heights per zone (heavier in us-east).
fn pareto_alpha(zone: Zone) -> f64 {
    match zone {
        Zone::UsEast1a => 1.6,
        Zone::UsEast1b => 1.5,
        Zone::UsWest1a => 1.8,
        Zone::EuWest1a => 2.2,
    }
}

/// Mean spike duration per zone.
fn spike_duration(zone: Zone) -> SimDuration {
    match zone {
        Zone::UsEast1a | Zone::UsEast1b => SimDuration::minutes(20),
        Zone::UsWest1a => SimDuration::minutes(25),
        Zone::EuWest1a => SimDuration::minutes(30),
    }
}

/// Mean calm-regime sojourn per zone.
fn calm_mean(zone: Zone) -> SimDuration {
    match zone {
        Zone::UsEast1a => SimDuration::hours(60),
        Zone::UsEast1b => SimDuration::hours(50),
        Zone::UsWest1a => SimDuration::hours(90),
        Zone::EuWest1a => SimDuration::hours(120),
    }
}

/// Mean elevated-regime sojourn per zone.
fn elevated_mean(zone: Zone) -> SimDuration {
    match zone {
        Zone::UsEast1a => SimDuration::hours(8),
        Zone::UsEast1b => SimDuration::hours(9),
        Zone::UsWest1a => SimDuration::hours(6),
        Zone::EuWest1a => SimDuration::hours(5),
    }
}

/// Zone-wide spike rate per day.
fn zone_spike_rate(zone: Zone) -> f64 {
    match zone {
        Zone::UsEast1a => 0.25,
        Zone::UsEast1b => 0.30,
        Zone::UsWest1a => 0.10,
        Zone::EuWest1a => 0.06,
    }
}

/// The calibrated price-process parameters for one market.
pub fn calibrated_model(m: MarketId) -> SpotModelParams {
    let zone = m.zone;
    let params = SpotModelParams {
        base_ratio: base_ratio(m),
        sigma: sigma(zone),
        theta_per_hour: 0.12,
        var_share_global: 0.05,
        var_share_zone: 0.25,
        spike_rate_per_day: spike_rate_per_day(m),
        spike_rate_elevated_mult: 8.0,
        spike_duration_mean: spike_duration(zone),
        spike_min_mult: 1.1,
        spike_pareto_alpha: pareto_alpha(zone),
        spike_cap_mult: 15.0,
        calm_mean: calm_mean(zone),
        elevated_mean: elevated_mean(zone),
        // Elevated baseline stays clearly below on-demand even for the
        // priciest base ratio (0.30 * 2.2 = 0.66).
        elevated_base_mult: 2.2,
        zone_spike_rate_per_day: zone_spike_rate(zone),
        step: SimDuration::minutes(5),
    };
    debug_assert!(params.validate().is_ok());
    params
}

/// Calibrated parameters for a set of markets.
pub fn calibrated_models(markets: &[MarketId]) -> Vec<(MarketId, SpotModelParams)> {
    markets.iter().map(|&m| (m, calibrated_model(m))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sixteen_markets_validate() {
        for m in MarketId::all() {
            calibrated_model(m)
                .validate()
                .unwrap_or_else(|e| panic!("{m}: {e}"));
        }
    }

    #[test]
    fn base_ratio_rises_with_size_within_each_zone() {
        for &zone in &Zone::ALL {
            let ratios: Vec<f64> = InstanceType::ALL
                .iter()
                .map(|&t| calibrated_model(MarketId::new(zone, t)).base_ratio)
                .collect();
            for w in ratios.windows(2) {
                assert!(w[0] < w[1], "{zone}: {ratios:?}");
            }
        }
    }

    #[test]
    fn us_east_more_turbulent_than_eu_west() {
        for &t in &InstanceType::ALL {
            let east = calibrated_model(MarketId::new(Zone::UsEast1a, t));
            let west = calibrated_model(MarketId::new(Zone::EuWest1a, t));
            assert!(east.sigma > west.sigma);
            assert!(east.spike_rate_per_day > west.spike_rate_per_day);
            assert!(east.spike_pareto_alpha < west.spike_pareto_alpha);
        }
    }

    #[test]
    fn pure_spot_unavailability_targets() {
        // Figure 11(b): time above on-demand exceeds 1% for small/medium/
        // large in us-east-1a, below 1% for xlarge. (The pure-spot scheme's
        // downtime is at least the time above on-demand plus re-acquisition,
        // so this property drives the figure.)
        use InstanceType::*;
        for (t, above_one_pct) in [
            (Small, true),
            (Medium, true),
            (Large, true),
            (XLarge, false),
        ] {
            let p = calibrated_model(MarketId::new(Zone::UsEast1a, t));
            let f = p.expected_fraction_above_on_demand();
            assert_eq!(f > 0.01, above_one_pct, "{t}: fraction {f}");
        }
    }

    #[test]
    fn reactive_forced_rate_band() {
        // Figure 6(c): spikes/day translate to 0.01..0.09 revocations per
        // hour for a reactive bidder in us-east-1a.
        for &t in &InstanceType::ALL {
            let p = calibrated_model(MarketId::new(Zone::UsEast1a, t));
            let per_hour = (p.effective_spike_rate_per_day() + p.zone_spike_rate_per_day) / 24.0;
            assert!(
                (0.008..0.09).contains(&per_hour),
                "{t}: {per_hour} revocations/hour"
            );
        }
    }

    #[test]
    fn multi_market_spread_ordering() {
        // Spread of base ratios across sizes predicts the multi-market
        // gain; Figure 8(a) orders it us-east-1b >> us-east-1a > us-west/eu.
        fn spread(zone: Zone) -> f64 {
            let rs: Vec<f64> = InstanceType::ALL
                .iter()
                .map(|&t| calibrated_model(MarketId::new(zone, t)).base_ratio)
                .collect();
            let avg: f64 = rs.iter().sum::<f64>() / rs.len() as f64;
            let min = rs.iter().cloned().fold(f64::MAX, f64::min);
            (avg - min) / avg
        }
        assert!(spread(Zone::UsEast1b) > spread(Zone::UsEast1a));
        assert!(spread(Zone::UsEast1a) > spread(Zone::UsWest1a));
        assert!(spread(Zone::UsEast1a) > spread(Zone::EuWest1a));
    }
}
