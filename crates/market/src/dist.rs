//! Minimal distribution sampling on top of `rand`'s uniform source.
//!
//! We deliberately avoid the `rand_distr` dependency: the generator needs
//! only four classical transforms (Box–Muller normal, inverse-CDF
//! exponential, inverse-CDF Pareto, Knuth Poisson), all a few lines each
//! and exact.

use rand::Rng;

/// Standard normal via Box–Muller. Consumes two uniforms per call; we don't
/// cache the second variate so that the stream consumption per draw is
/// fixed and reproducible regardless of call pattern.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    debug_assert!(std >= 0.0);
    mean + std * standard_normal(rng)
}

/// Exponential with the given mean (inverse-CDF).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    -mean * u.ln()
}

/// Pareto with scale `x_min` and tail index `alpha` (inverse-CDF):
/// `P(X > x) = (x_min / x)^alpha` for `x >= x_min`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    debug_assert!(x_min > 0.0 && alpha > 0.0);
    let u: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    x_min * u.powf(-1.0 / alpha)
}

/// Poisson with mean `lambda` via Knuth's product method. Our means are
/// small (spikes per regime segment), where this is both fast and exact.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0 && lambda.is_finite());
    if lambda == 0.0 {
        return 0;
    }
    // For large means, fall back to a normal approximation to avoid long
    // product loops; the generator never hits this in calibrated use.
    if lambda > 64.0 {
        let x = normal(rng, lambda, lambda.sqrt()).round();
        return x.max(0.0) as u64;
    }
    let limit = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(7)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut r, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_tail() {
        let mut r = rng();
        let n = 100_000;
        let alpha = 1.5;
        let x_min = 1.1;
        let xs: Vec<f64> = (0..n).map(|_| pareto(&mut r, x_min, alpha)).collect();
        assert!(xs.iter().all(|&x| x >= x_min));
        let frac_above_4 = xs.iter().filter(|&&x| x > 4.0).count() as f64 / n as f64;
        let expect = (x_min / 4.0_f64).powf(alpha);
        assert!(
            (frac_above_4 - expect).abs() < 0.01,
            "got {frac_above_4}, expected {expect}"
        );
    }

    #[test]
    fn poisson_mean_small() {
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| poisson(&mut r, 2.5)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| poisson(&mut r, 200.0)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
    }
}
