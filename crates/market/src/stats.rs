//! Cross-trace statistics: correlations (Figures 8(b), 9(b)) and price
//! volatility (Figure 10).

use crate::gen::TraceSet;
use crate::time::SimDuration;
use crate::trace::PriceTrace;
use crate::types::{MarketId, Zone};

/// Pearson correlation of two equal-length samples. Returns 0 for
/// degenerate inputs (fewer than two points or zero variance) — for price
/// series a constant trace genuinely carries no correlation signal.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must be aligned");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Correlation of two price traces, sampled on a common grid.
pub fn trace_correlation(a: &PriceTrace, b: &PriceTrace, dt: SimDuration) -> f64 {
    let sa = a.sample(dt);
    let sb = b.sample(dt);
    let n = sa.len().min(sb.len());
    pearson(&sa[..n], &sb[..n])
}

/// Grid used for all correlation figures: 5-minute sampling, matching the
/// generator's grid so no information is aliased away.
pub const CORRELATION_GRID: SimDuration = SimDuration(5 * 60 * 1000);

/// Average pairwise correlation among the markets of one zone
/// (Figure 8(b)). Requires every size market of the zone in the set.
pub fn avg_intra_zone_correlation(set: &TraceSet, zone: Zone) -> f64 {
    let markets: Vec<MarketId> = MarketId::all_in_zone(zone)
        .into_iter()
        .filter(|&m| set.trace(m).is_some())
        .collect();
    let mut acc = 0.0;
    let mut n = 0usize;
    for (i, &a) in markets.iter().enumerate() {
        for &b in &markets[i + 1..] {
            acc += trace_correlation(
                set.trace(a).expect("filtered to present markets"),
                set.trace(b).expect("filtered to present markets"),
                CORRELATION_GRID,
            );
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

/// Average correlation between same-size markets across two zones
/// (Figure 9(b)).
pub fn avg_cross_zone_correlation(set: &TraceSet, a: Zone, b: Zone) -> f64 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for ma in MarketId::all_in_zone(a) {
        let mb = MarketId::new(b, ma.itype);
        if let (Some(ta), Some(tb)) = (set.trace(ma), set.trace(mb)) {
            acc += trace_correlation(ta, tb, CORRELATION_GRID);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

/// Time-weighted price standard deviation per market (Figure 10).
pub fn price_std(set: &TraceSet, market: MarketId) -> Option<f64> {
    set.trace(market).map(|t| t.time_weighted_std())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::time::SimTime;
    use crate::trace::PricePoint;
    use crate::types::InstanceType;

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_inputs() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn trace_correlation_of_identical_traces_is_one() {
        let t = PriceTrace::new(
            vec![
                PricePoint {
                    at: SimTime::ZERO,
                    price: 1.0,
                },
                PricePoint {
                    at: SimTime::minutes(30),
                    price: 2.0,
                },
                PricePoint {
                    at: SimTime::minutes(60),
                    price: 0.5,
                },
            ],
            SimTime::hours(2),
        );
        assert!((trace_correlation(&t, &t, SimDuration::minutes(5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generated_correlations_are_weak_but_structured() {
        // Intra-zone correlation should exceed cross-zone correlation, and
        // both should be modest — the factor-model structure behind the
        // paper's Figures 8(b) and 9(b).
        let c = Catalog::ec2_2015();
        let set = TraceSet::generate(&c, &MarketId::all(), 31, SimDuration::days(45));
        let intra = avg_intra_zone_correlation(&set, Zone::UsEast1a);
        let cross = avg_cross_zone_correlation(&set, Zone::UsEast1a, Zone::EuWest1a);
        assert!(intra > cross, "intra {intra} <= cross {cross}");
        assert!(intra < 0.7, "intra-zone correlation too strong: {intra}");
        assert!(cross < 0.4, "cross-zone correlation too strong: {cross}");
    }

    #[test]
    fn us_east_prices_more_volatile_than_eu_west() {
        // Figure 10's claim is statistical: a single 60-day sample can be
        // dominated by one heavy-tailed spike (eu-west spikes are rare but
        // cap at 15x a *pricier* on-demand base), so average the std over
        // several independent trace sets, as the paper averages over runs.
        let c = Catalog::ec2_2015();
        let markets = [
            MarketId::new(Zone::UsEast1a, InstanceType::XLarge),
            MarketId::new(Zone::EuWest1a, InstanceType::XLarge),
        ];
        let (mut east, mut west) = (0.0, 0.0);
        let seeds = 8;
        for seed in 0..seeds {
            let set = TraceSet::generate(&c, &markets, seed, SimDuration::days(60));
            east += price_std(&set, markets[0]).unwrap();
            west += price_std(&set, markets[1]).unwrap();
        }
        let (east, west) = (east / seeds as f64, west / seeds as f64);
        assert!(
            east > west,
            "us-east avg std {east} <= eu-west avg std {west}"
        );
    }
}
