//! Parametric spot-price process.
//!
//! The paper's simulations are seeded by published EC2 spot-price history
//! (Feb–Mar 2015). We replace the archive with a stochastic process whose
//! parameters expose exactly the trace statistics the paper's results hinge
//! on. The process has four ingredients:
//!
//! 1. **Baseline wander** — a mean-reverting Ornstein–Uhlenbeck process in
//!    log-price space around `base_ratio * on_demand_price`. This produces
//!    the long cheap plateaus of Figure 1 and never by itself crosses the
//!    on-demand price.
//! 2. **Spikes** — a Poisson process of sharp excursions whose height is a
//!    Pareto multiple of the *on-demand* price (Figure 1(b) shows a large
//!    server spiking from a few cents to $3+/hr). Spikes are what revoke
//!    spot servers: a reactive bidder (bid = on-demand) is revoked by every
//!    spike; a proactive bidder (bid = 4x on-demand) only by the tall ones.
//! 3. **Scarcity regimes** — a two-state (calm/elevated) Markov-modulation:
//!    during elevated periods the baseline rises and spikes become much more
//!    frequent, modelling multi-hour capacity crunches. Elevated baselines
//!    stay below on-demand, so a single-market scheduler keeps sitting in a
//!    risky market, while a multi-market scheduler migrates away from the
//!    now-pricier market — this is the mechanism behind the paper's finding
//!    that multi-market bidding lowers *both* cost and unavailability
//!    (Figure 8) while greedy multi-region bidding can raise unavailability
//!    by chasing cheap-but-volatile markets (Figure 9(c)).
//! 4. **Factor structure** — the OU deviation is a weighted sum of a global
//!    factor, a per-zone factor and an idiosyncratic factor, plus a share of
//!    zone-wide spikes, giving the weak intra-zone and weaker cross-zone
//!    price correlations of Figures 8(b) and 9(b).

use crate::time::SimDuration;

/// Parameters of one market's spot-price process. All prices are expressed
/// relative to the market's on-demand price, so the same parameter set
/// scales across instance sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotModelParams {
    /// Mean spot price as a fraction of the on-demand price during calm
    /// periods (e.g. 0.15 = spot averages 15% of on-demand).
    pub base_ratio: f64,
    /// Stationary standard deviation of the OU log-price deviation.
    pub sigma: f64,
    /// OU mean-reversion rate, per hour (log deviation halves in
    /// `ln 2 / theta` hours).
    pub theta_per_hour: f64,
    /// Fraction of OU variance carried by the global factor.
    pub var_share_global: f64,
    /// Fraction of OU variance carried by the zone factor.
    pub var_share_zone: f64,
    /// Idiosyncratic spike arrivals per day during calm periods.
    pub spike_rate_per_day: f64,
    /// Multiplier on `spike_rate_per_day` while the market is elevated.
    pub spike_rate_elevated_mult: f64,
    /// Mean spike duration.
    pub spike_duration_mean: SimDuration,
    /// Spike height = `spike_min_mult * Pareto(alpha)` times the on-demand
    /// price; `spike_min_mult > 1` guarantees every spike exceeds on-demand.
    pub spike_min_mult: f64,
    /// Pareto tail index of spike heights. Smaller = heavier tail = more
    /// spikes exceed the proactive bid of 4x on-demand.
    pub spike_pareto_alpha: f64,
    /// Cap on spike height as a multiple of on-demand (providers clamp spot
    /// prices; Amazon capped bids at 4x but prices spiked to ~10-15x before
    /// the bid-cap era).
    pub spike_cap_mult: f64,
    /// Mean sojourn in the calm regime.
    pub calm_mean: SimDuration,
    /// Mean sojourn in the elevated regime.
    pub elevated_mean: SimDuration,
    /// Baseline multiplier while elevated (log-additive); stays below
    /// on-demand so only spikes trigger revocations.
    pub elevated_base_mult: f64,
    /// Zone-wide spike arrivals per day (shared by every market in the
    /// zone; adds intra-zone correlation).
    pub zone_spike_rate_per_day: f64,
    /// Grid step at which the OU component is sampled into the
    /// piecewise-constant trace.
    pub step: SimDuration,
}

impl SpotModelParams {
    /// A neutral, mid-volatility market. Calibrated per-market values live
    /// in [`crate::calib`].
    pub fn default_market() -> Self {
        SpotModelParams {
            base_ratio: 0.2,
            sigma: 0.2,
            theta_per_hour: 0.1,
            var_share_global: 0.05,
            var_share_zone: 0.25,
            spike_rate_per_day: 0.5,
            spike_rate_elevated_mult: 8.0,
            spike_duration_mean: SimDuration::minutes(20),
            spike_min_mult: 1.1,
            spike_pareto_alpha: 1.5,
            spike_cap_mult: 15.0,
            calm_mean: SimDuration::hours(60),
            elevated_mean: SimDuration::hours(8),
            elevated_base_mult: 2.5,
            zone_spike_rate_per_day: 0.1,
            step: SimDuration::minutes(5),
        }
    }

    /// Long-run fraction of time spent in the elevated regime.
    pub fn elevated_fraction(&self) -> f64 {
        let e = self.elevated_mean.as_hours_f64();
        let c = self.calm_mean.as_hours_f64();
        e / (e + c)
    }

    /// Effective (regime-averaged) idiosyncratic spike rate per day.
    pub fn effective_spike_rate_per_day(&self) -> f64 {
        let f = self.elevated_fraction();
        self.spike_rate_per_day * ((1.0 - f) + f * self.spike_rate_elevated_mult)
    }

    /// Probability that one spike's height exceeds `mult` times on-demand.
    pub fn spike_exceedance(&self, mult: f64) -> f64 {
        if mult <= self.spike_min_mult {
            return 1.0;
        }
        if mult >= self.spike_cap_mult {
            return 0.0;
        }
        (self.spike_min_mult / mult).powf(self.spike_pareto_alpha)
    }

    /// Expected fraction of time the spot price exceeds the on-demand price
    /// (approximately: every spike exceeds on-demand, baseline never does).
    pub fn expected_fraction_above_on_demand(&self) -> f64 {
        let spikes_per_day = self.effective_spike_rate_per_day() + self.zone_spike_rate_per_day;
        spikes_per_day * self.spike_duration_mean.as_days_f64()
    }

    /// Idiosyncratic variance share (residual after global and zone).
    pub fn var_share_idio(&self) -> f64 {
        1.0 - self.var_share_global - self.var_share_zone
    }

    /// Validate parameter ranges; used by tests and by the generator's
    /// debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        fn pos(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be positive and finite, got {v}"))
            }
        }
        pos("base_ratio", self.base_ratio)?;
        if self.base_ratio >= 1.0 {
            return Err("base_ratio must be < 1 (spot cheaper than on-demand)".into());
        }
        pos("sigma", self.sigma)?;
        pos("theta_per_hour", self.theta_per_hour)?;
        if !(0.0..=1.0).contains(&self.var_share_global)
            || !(0.0..=1.0).contains(&self.var_share_zone)
            || self.var_share_global + self.var_share_zone > 1.0
        {
            return Err("factor variance shares must lie in [0,1] and sum to <= 1".into());
        }
        if self.spike_rate_per_day < 0.0 || self.zone_spike_rate_per_day < 0.0 {
            return Err("spike rates must be non-negative".into());
        }
        if self.spike_min_mult <= 1.0 {
            return Err("spike_min_mult must exceed 1 (spikes cross on-demand)".into());
        }
        if self.spike_cap_mult <= self.spike_min_mult {
            return Err("spike_cap_mult must exceed spike_min_mult".into());
        }
        pos("spike_pareto_alpha", self.spike_pareto_alpha)?;
        pos("elevated_base_mult", self.elevated_base_mult)?;
        if self.elevated_base_mult * self.base_ratio >= 1.0 {
            return Err("elevated baseline must stay below on-demand".into());
        }
        if self.step == SimDuration::ZERO {
            return Err("step must be positive".into());
        }
        if self.spike_duration_mean == SimDuration::ZERO {
            return Err("spike_duration_mean must be positive".into());
        }
        if self.calm_mean == SimDuration::ZERO || self.elevated_mean == SimDuration::ZERO {
            return Err("regime sojourn means must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        SpotModelParams::default_market().validate().unwrap();
    }

    #[test]
    fn elevated_fraction_matches_sojourns() {
        let p = SpotModelParams::default_market();
        // 8h elevated / (8h + 60h) calm.
        assert!((p.elevated_fraction() - 8.0 / 68.0).abs() < 1e-12);
    }

    #[test]
    fn exceedance_is_monotone_and_bounded() {
        let p = SpotModelParams::default_market();
        assert_eq!(p.spike_exceedance(1.0), 1.0);
        assert_eq!(p.spike_exceedance(100.0), 0.0);
        let e4 = p.spike_exceedance(4.0);
        let e8 = p.spike_exceedance(8.0);
        assert!(e4 > e8 && e8 > 0.0);
        // alpha = 1.5, min 1.1: P(m > 4) = (1.1/4)^1.5 ~ 0.145
        assert!((e4 - (1.1f64 / 4.0).powf(1.5)).abs() < 1e-12);
    }

    #[test]
    fn effective_rate_blends_regimes() {
        let p = SpotModelParams::default_market();
        let f = p.elevated_fraction();
        let expect = 0.5 * ((1.0 - f) + f * 8.0);
        assert!((p.effective_spike_rate_per_day() - expect).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = SpotModelParams::default_market();
        p.base_ratio = 1.5;
        assert!(p.validate().is_err());

        let mut p = SpotModelParams::default_market();
        p.spike_min_mult = 0.9;
        assert!(p.validate().is_err());

        let mut p = SpotModelParams::default_market();
        p.var_share_global = 0.8;
        p.var_share_zone = 0.5;
        assert!(p.validate().is_err());

        let mut p = SpotModelParams::default_market();
        p.elevated_base_mult = 10.0;
        assert!(p.validate().is_err());
    }
}
