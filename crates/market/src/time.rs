//! Simulation clock primitives shared by every `spothost` crate.
//!
//! Time is an integer count of **milliseconds** since the start of the
//! simulation. Millisecond granularity is fine enough to account sub-second
//! live-migration downtimes (the paper's typical stop-and-copy outage is a
//! few hundred milliseconds) while keeping arithmetic exact — no floating
//! point drift in billing-hour boundaries over multi-month simulations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant on the simulation clock, in milliseconds from simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const MILLIS_PER_SECOND: u64 = 1_000;
pub const MILLIS_PER_MINUTE: u64 = 60 * MILLIS_PER_SECOND;
pub const MILLIS_PER_HOUR: u64 = 60 * MILLIS_PER_MINUTE;
pub const MILLIS_PER_DAY: u64 = 24 * MILLIS_PER_HOUR;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub fn millis(ms: u64) -> Self {
        SimTime(ms)
    }

    pub fn secs(s: u64) -> Self {
        SimTime(s * MILLIS_PER_SECOND)
    }

    pub fn minutes(m: u64) -> Self {
        SimTime(m * MILLIS_PER_MINUTE)
    }

    pub fn hours(h: u64) -> Self {
        SimTime(h * MILLIS_PER_HOUR)
    }

    pub fn days(d: u64) -> Self {
        SimTime(d * MILLIS_PER_DAY)
    }

    pub fn as_millis(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SECOND as f64
    }

    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// Elapsed time since `earlier`, saturating at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The next billing-hour boundary *relative to* `lease_start`, strictly
    /// after `self`. EC2 bills instance-hours measured from launch, so the
    /// paper's "near the end of a billing period" refers to these
    /// lease-relative boundaries, not wall-clock hours.
    pub fn next_lease_hour_boundary(self, lease_start: SimTime) -> SimTime {
        debug_assert!(self >= lease_start);
        let elapsed = self.0 - lease_start.0;
        let hours_done = elapsed / MILLIS_PER_HOUR;
        SimTime(lease_start.0 + (hours_done + 1) * MILLIS_PER_HOUR)
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    pub fn secs(s: u64) -> Self {
        SimDuration(s * MILLIS_PER_SECOND)
    }

    /// Construct from a (non-negative, finite) floating-point second count,
    /// rounding to the nearest millisecond. Negative or NaN inputs clamp to
    /// zero — model outputs occasionally go epsilon-negative.
    pub fn secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * MILLIS_PER_SECOND as f64).round() as u64)
    }

    pub fn minutes(m: u64) -> Self {
        SimDuration(m * MILLIS_PER_MINUTE)
    }

    pub fn hours(h: u64) -> Self {
        SimDuration(h * MILLIS_PER_HOUR)
    }

    pub fn days(d: u64) -> Self {
        SimDuration(d * MILLIS_PER_DAY)
    }

    pub fn as_millis(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SECOND as f64
    }

    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_DAY as f64
    }

    /// Number of *whole* hours contained in this duration.
    pub fn whole_hours(self) -> u64 {
        self.0 / MILLIS_PER_HOUR
    }

    /// Number of started hours (ceiling division), the way on-demand
    /// instance-hours were billed in 2015.
    pub fn started_hours(self) -> u64 {
        self.0.div_ceil(MILLIS_PER_HOUR)
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Scale by a non-negative factor, rounding to the nearest
    /// millisecond. NaN and negative factors clamp to zero (matching
    /// [`secs_f64`]); `+inf` saturates at the maximum representable
    /// duration. These are real release-mode semantics, not a
    /// `debug_assert` that vanishes: model outputs occasionally go
    /// epsilon-negative, and an unchecked `as u64` cast would turn a NaN
    /// factor into silent garbage.
    ///
    /// [`secs_f64`]: SimDuration::secs_f64
    pub fn mul_f64(self, k: f64) -> SimDuration {
        if k.is_nan() || k <= 0.0 {
            return SimDuration::ZERO;
        }
        // `as u64` saturates: +inf and overflow land on u64::MAX.
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / MILLIS_PER_SECOND;
        let (d, rem) = (total_secs / 86_400, total_secs % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, s) = (rem / 60, rem % 60);
        write!(f, "{d}d {h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < MILLIS_PER_SECOND {
            write!(f, "{}ms", self.0)
        } else if self.0 < MILLIS_PER_MINUTE {
            write!(f, "{:.1}s", self.as_secs_f64())
        } else if self.0 < MILLIS_PER_HOUR {
            write!(f, "{:.1}min", self.0 as f64 / MILLIS_PER_MINUTE as f64)
        } else {
            write!(f, "{:.2}h", self.as_hours_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::minutes(2), SimTime::secs(120));
        assert_eq!(SimTime::hours(1), SimTime::minutes(60));
        assert_eq!(SimTime::days(1), SimTime::hours(24));
        assert_eq!(SimDuration::days(2).whole_hours(), 48);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::hours(5);
        let d = SimDuration::minutes(30);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::secs(10);
        let b = SimTime::secs(20);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::secs(10));
    }

    #[test]
    fn lease_hour_boundary_is_relative_to_lease_start() {
        let lease = SimTime::minutes(17);
        // 10 minutes into the lease -> boundary at lease + 1h.
        let now = lease + SimDuration::minutes(10);
        assert_eq!(
            now.next_lease_hour_boundary(lease),
            lease + SimDuration::hours(1)
        );
        // Exactly on a boundary -> the *next* one.
        let on_boundary = lease + SimDuration::hours(2);
        assert_eq!(
            on_boundary.next_lease_hour_boundary(lease),
            lease + SimDuration::hours(3)
        );
    }

    #[test]
    fn started_hours_rounds_up() {
        assert_eq!(SimDuration::ZERO.started_hours(), 0);
        assert_eq!(SimDuration::millis(1).started_hours(), 1);
        assert_eq!(SimDuration::hours(1).started_hours(), 1);
        assert_eq!(
            (SimDuration::hours(1) + SimDuration::millis(1)).started_hours(),
            2
        );
    }

    #[test]
    fn secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::secs_f64(1.5), SimDuration::millis(1_500));
    }

    #[test]
    fn mul_f64_clamps_garbage_in_release_too() {
        let d = SimDuration::hours(2);
        // Ordinary scaling still rounds to the nearest millisecond.
        assert_eq!(d.mul_f64(0.5), SimDuration::hours(1));
        assert_eq!(SimDuration::millis(3).mul_f64(0.5), SimDuration::millis(2));
        // NaN and negative factors clamp to zero instead of casting to
        // garbage (`as u64` on NaN yields 0, on negatives saturates).
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NEG_INFINITY), SimDuration::ZERO);
        // +inf saturates at the largest representable duration.
        assert_eq!(d.mul_f64(f64::INFINITY), SimDuration(u64::MAX));
        // Zero times anything (even inf) is zero by the clamp-first rule.
        assert_eq!(SimDuration::ZERO.mul_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::millis(12).to_string(), "12ms");
        assert_eq!(SimDuration::secs(3).to_string(), "3.0s");
        assert_eq!(SimTime::ZERO.to_string(), "0d 00:00:00");
        assert_eq!(
            (SimTime::days(1) + SimDuration::secs(3_661)).to_string(),
            "1d 01:01:01"
        );
    }
}
