//! Piecewise-constant spot-price traces.
//!
//! EC2 publishes spot prices as a sequence of (timestamp, price) change
//! events; between changes the price is constant. We keep exactly that
//! representation: simulation becomes event-driven (the scheduler only needs
//! to wake at price changes and billing boundaries), and statistics are
//! computed *time-weighted* so that a one-minute spike does not count the
//! same as a six-hour plateau.

use crate::time::{SimDuration, SimTime};

/// One price-change event: from `at` (inclusive) the price is `price`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricePoint {
    pub at: SimTime,
    pub price: f64,
}

/// A constant-price interval `[start, end)` within a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub start: SimTime,
    pub end: SimTime,
    pub price: f64,
}

impl Segment {
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A complete spot-price history over `[0, end)`.
///
/// Invariants (checked at construction):
/// * at least one point, the first at time zero,
/// * strictly increasing timestamps,
/// * strictly positive, finite prices,
/// * `end` at or after the last point.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTrace {
    points: Vec<PricePoint>,
    end: SimTime,
}

impl PriceTrace {
    /// Build a trace, validating invariants. Panics on malformed input —
    /// traces are produced by generators under our control, so a violation
    /// is a programming error, not a recoverable condition.
    pub fn new(points: Vec<PricePoint>, end: SimTime) -> Self {
        assert!(!points.is_empty(), "trace must have at least one point");
        assert_eq!(points[0].at, SimTime::ZERO, "trace must start at t=0");
        for w in points.windows(2) {
            assert!(
                w[0].at < w[1].at,
                "trace timestamps must be strictly increasing"
            );
        }
        for p in &points {
            assert!(
                p.price.is_finite() && p.price > 0.0,
                "prices must be positive and finite, got {}",
                p.price
            );
        }
        let last = points.last().expect("non-empty asserted above").at;
        assert!(
            end > last || (points.len() == 1 && end >= SimTime::ZERO),
            "trace end must be after the last change"
        );
        PriceTrace { points, end }
    }

    /// A trace that holds one constant price for the whole horizon.
    pub fn constant(price: f64, end: SimTime) -> Self {
        PriceTrace::new(
            vec![PricePoint {
                at: SimTime::ZERO,
                price,
            }],
            end,
        )
    }

    pub fn end(&self) -> SimTime {
        self.end
    }

    pub fn points(&self) -> &[PricePoint] {
        &self.points
    }

    pub fn num_changes(&self) -> usize {
        self.points.len()
    }

    /// Index of the segment containing `t` (last point with `at <= t`).
    fn segment_index(&self, t: SimTime) -> usize {
        match self.points.binary_search_by(|p| p.at.cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0, // t before first point cannot happen (first at 0)
            Err(i) => i - 1,
        }
    }

    /// The spot price in effect at instant `t`. Times at or past `end`
    /// return the final price (the trace is extended by its last value).
    pub fn price_at(&self, t: SimTime) -> f64 {
        self.points[self.segment_index(t)].price
    }

    /// First price-change time strictly after `t`, if any remains.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        let i = self.segment_index(t);
        self.points.get(i + 1).map(|p| p.at)
    }

    /// Earliest instant `>= from` at which the price is `> threshold`
    /// (strictly above: EC2 revokes when the spot price *exceeds* the bid).
    ///
    /// Only instants strictly inside the horizon `[0, end)` are returned:
    /// a query at or past `end` yields `None` even though [`price_at`]
    /// extends the trace with its final value.
    ///
    /// [`price_at`]: PriceTrace::price_at
    pub fn next_time_above(&self, from: SimTime, threshold: f64) -> Option<SimTime> {
        // Clamp the `from` hit to the horizon exactly like later-segment
        // hits below; otherwise a revocation could be scheduled beyond the
        // end of the trace.
        if from >= self.end {
            return None;
        }
        let mut i = self.segment_index(from);
        if self.points[i].price > threshold {
            return Some(from);
        }
        i += 1;
        while i < self.points.len() {
            if self.points[i].price > threshold {
                let at = self.points[i].at;
                return (at < self.end).then_some(at);
            }
            i += 1;
        }
        None
    }

    /// Earliest instant `>= from` at which the price is `<= threshold`.
    /// As with [`next_time_above`], only instants inside `[0, end)` are
    /// returned.
    ///
    /// [`next_time_above`]: PriceTrace::next_time_above
    pub fn next_time_at_or_below(&self, from: SimTime, threshold: f64) -> Option<SimTime> {
        if from >= self.end {
            return None;
        }
        let mut i = self.segment_index(from);
        if self.points[i].price <= threshold {
            return Some(from);
        }
        i += 1;
        while i < self.points.len() {
            if self.points[i].price <= threshold {
                let at = self.points[i].at;
                return (at < self.end).then_some(at);
            }
            i += 1;
        }
        None
    }

    /// Iterate the constant-price segments over `[0, end)`.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        let end = self.end;
        self.points.iter().enumerate().map(move |(i, p)| Segment {
            start: p.at,
            end: self.points.get(i + 1).map_or(end, |n| n.at),
            price: p.price,
        })
    }

    /// Segments clipped to the window `[from, to)`, without allocating.
    ///
    /// Starts at the segment containing `from` (binary search) rather
    /// than scanning the whole trace, so a narrow window near the end of
    /// a long trace costs O(log n + segments-in-window). Windows that
    /// extend past `end` are truncated to the horizon.
    pub fn segments_in_iter(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = Segment> + '_ {
        assert!(from <= to);
        let to = to.min(self.end);
        let first = if from >= to {
            self.points.len() // empty window: yield nothing
        } else {
            self.segment_index(from)
        };
        self.points[first.min(self.points.len())..]
            .iter()
            .enumerate()
            .map(move |(off, p)| {
                let i = first + off;
                Segment {
                    start: p.at.max(from),
                    end: self.points.get(i + 1).map_or(self.end, |n| n.at).min(to),
                    price: p.price,
                }
            })
            .take_while(move |s| s.start < to)
    }

    /// Segments clipped to the window `[from, to)`, collected. Thin
    /// wrapper over [`segments_in_iter`] for callers that want ownership;
    /// hot paths should use the iterator directly.
    ///
    /// [`segments_in_iter`]: PriceTrace::segments_in_iter
    pub fn segments_in(&self, from: SimTime, to: SimTime) -> Vec<Segment> {
        self.segments_in_iter(from, to).collect()
    }

    /// Time-weighted mean price over the whole trace.
    pub fn time_weighted_mean(&self) -> f64 {
        self.time_weighted_mean_in(SimTime::ZERO, self.end)
    }

    /// Time-weighted mean over `[from, to)`.
    pub fn time_weighted_mean_in(&self, from: SimTime, to: SimTime) -> f64 {
        let total = (to - from).as_millis();
        if total == 0 {
            return self.price_at(from);
        }
        let mut acc = 0.0;
        for s in self.segments_in_iter(from, to) {
            acc += s.price * s.duration().as_millis() as f64;
        }
        acc / total as f64
    }

    /// Time-weighted standard deviation of the price (population form).
    pub fn time_weighted_std(&self) -> f64 {
        let mean = self.time_weighted_mean();
        let total = self.end.as_millis();
        if total == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for s in self.segments() {
            let d = s.price - mean;
            acc += d * d * s.duration().as_millis() as f64;
        }
        (acc / total as f64).sqrt()
    }

    /// Fraction of the window `[from, to)` spent strictly above
    /// `threshold` — an *observable* revocation-risk signal (a scheduler
    /// can compute it from published price history), used by
    /// stability-aware bidding.
    pub fn fraction_above_in(&self, from: SimTime, to: SimTime, threshold: f64) -> f64 {
        assert!(from <= to);
        let total = (to - from).as_millis();
        if total == 0 {
            return 0.0;
        }
        let above: SimDuration = self
            .segments_in_iter(from, to)
            .filter(|s| s.price > threshold)
            .map(|s| s.duration())
            .sum();
        above.as_millis() as f64 / total as f64
    }

    /// Total time during which the price is strictly above `threshold`.
    pub fn time_above(&self, threshold: f64) -> SimDuration {
        self.segments()
            .filter(|s| s.price > threshold)
            .map(|s| s.duration())
            .sum()
    }

    /// Fraction of the horizon spent strictly above `threshold`, in `[0,1]`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        let total = self.end.as_millis();
        if total == 0 {
            return 0.0;
        }
        self.time_above(threshold).as_millis() as f64 / total as f64
    }

    /// Sample the price on a regular grid (`t = 0, dt, 2dt, ...` while
    /// `t < end`). Used for cross-trace correlation, which needs aligned
    /// observations.
    pub fn sample(&self, dt: SimDuration) -> Vec<f64> {
        assert!(dt > SimDuration::ZERO);
        let mut out = Vec::with_capacity((self.end.as_millis() / dt.as_millis()) as usize + 1);
        let mut t = SimTime::ZERO;
        // Walk segments and the grid together: O(n + samples) not
        // O(samples * log n).
        let mut idx = 0usize;
        while t < self.end {
            while idx + 1 < self.points.len() && self.points[idx + 1].at <= t {
                idx += 1;
            }
            out.push(self.points[idx].price);
            t += dt;
        }
        out
    }

    pub fn min_price(&self) -> f64 {
        self.points.iter().map(|p| p.price).fold(f64::MAX, f64::min)
    }

    pub fn max_price(&self) -> f64 {
        self.points.iter().map(|p| p.price).fold(0.0, f64::max)
    }

    /// A stateful cursor positioned at the start of the trace.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            trace: self,
            idx: 0,
        }
    }
}

/// A stateful cursor over a trace's piecewise-constant segments.
///
/// The simulation clock only moves forward, so the scheduler's price
/// lookups, revocation scans and billing-hour charges for one lease form
/// a single non-decreasing sequence of query times. A cursor exploits
/// that: it remembers the segment containing the last query and walks
/// forward from there, making each lookup **amortised O(1)** with no
/// allocation, versus the O(log n) binary search of
/// [`PriceTrace::price_at`].
///
/// # API contract: monotonic advance
///
/// Every query method takes `&mut self` and *commits* the cursor to the
/// segment containing the query time. Queries with non-decreasing times
/// are the designed use and hit the fast path. A query *earlier* than
/// the committed position does not return wrong data — the cursor
/// re-synchronises with a binary search — but it forfeits the O(1)
/// amortisation, so callers that need to look backwards (e.g. windowed
/// statistics) should use [`PriceTrace::segments_in_iter`] instead.
///
/// Results are always identical to the corresponding stateless
/// [`PriceTrace`] queries; the cursor is purely an access-path
/// optimisation.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a PriceTrace,
    /// Index of the committed segment (last point with `at <=` the most
    /// recent query time).
    idx: usize,
}

impl<'a> TraceCursor<'a> {
    /// The trace this cursor walks.
    pub fn trace(&self) -> &'a PriceTrace {
        self.trace
    }

    /// Commit the cursor to the segment containing `t` and return its
    /// index. Fast path: walk forward. Slow path (non-monotonic query):
    /// binary search.
    fn seek(&mut self, t: SimTime) -> usize {
        let pts = &self.trace.points;
        if t < pts[self.idx].at {
            // Regressed behind the committed segment: re-synchronise.
            self.idx = self.trace.segment_index(t);
            return self.idx;
        }
        while self.idx + 1 < pts.len() && pts[self.idx + 1].at <= t {
            self.idx += 1;
        }
        self.idx
    }

    /// The spot price in effect at instant `t`. Times at or past the
    /// trace end return the final price, exactly like
    /// [`PriceTrace::price_at`].
    pub fn price_at(&mut self, t: SimTime) -> f64 {
        let i = self.seek(t);
        self.trace.points[i].price
    }

    /// The constant-price segment containing `t`, clipped to the horizon.
    pub fn segment_at(&mut self, t: SimTime) -> Segment {
        let i = self.seek(t);
        let pts = &self.trace.points;
        Segment {
            start: pts[i].at,
            end: pts.get(i + 1).map_or(self.trace.end, |n| n.at),
            price: pts[i].price,
        }
    }

    /// First price-change time strictly after `t`, if any remains.
    pub fn next_change_after(&mut self, t: SimTime) -> Option<SimTime> {
        let i = self.seek(t);
        self.trace.points.get(i + 1).map(|p| p.at)
    }

    /// Earliest instant `>= from` (inside the horizon) at which the price
    /// is `> threshold`. Commits the cursor to `from`'s segment, then
    /// scans ahead *without* committing, so a later monotonic query from
    /// `from` onwards stays on the fast path.
    pub fn next_time_above(&mut self, from: SimTime, threshold: f64) -> Option<SimTime> {
        if from >= self.trace.end {
            return None;
        }
        let mut i = self.seek(from);
        let pts = &self.trace.points;
        if pts[i].price > threshold {
            return Some(from);
        }
        i += 1;
        while i < pts.len() {
            if pts[i].price > threshold {
                let at = pts[i].at;
                return (at < self.trace.end).then_some(at);
            }
            i += 1;
        }
        None
    }

    /// Feed every constant-price segment overlapping `[from, to)` to
    /// `f`, clipped to the window, in time order — the incremental path
    /// for online consumers (forecasters) that observe each span of
    /// price history exactly once as the clock advances. Commits the
    /// cursor to the segment containing the window end, so successive
    /// calls with abutting windows stay on the amortised-O(1) fast path.
    ///
    /// Emits exactly what [`PriceTrace::segments_in_iter`]`(from, to)`
    /// yields; the cursor is purely an access-path optimisation.
    pub fn feed_segments(&mut self, from: SimTime, to: SimTime, mut f: impl FnMut(Segment)) {
        assert!(from <= to);
        let to = to.min(self.trace.end);
        if from >= to {
            return;
        }
        let mut i = self.seek(from);
        let pts = &self.trace.points;
        while i < pts.len() {
            let start = pts[i].at.max(from);
            if start >= to {
                break;
            }
            let end = pts.get(i + 1).map_or(self.trace.end, |n| n.at).min(to);
            f(Segment {
                start,
                end,
                price: pts[i].price,
            });
            if pts.get(i + 1).is_some_and(|n| n.at < to) {
                i += 1;
            } else {
                break;
            }
        }
        self.idx = i;
    }

    /// Earliest instant `>= from` (inside the horizon) at which the price
    /// is `<= threshold`. Same committing behaviour as
    /// [`next_time_above`](TraceCursor::next_time_above).
    pub fn next_time_at_or_below(&mut self, from: SimTime, threshold: f64) -> Option<SimTime> {
        if from >= self.trace.end {
            return None;
        }
        let mut i = self.seek(from);
        let pts = &self.trace.points;
        if pts[i].price <= threshold {
            return Some(from);
        }
        i += 1;
        while i < pts.len() {
            if pts[i].price <= threshold {
                let at = pts[i].at;
                return (at < self.trace.end).then_some(at);
            }
            i += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> PriceTrace {
        // [0,10s): 1.0   [10s,20s): 3.0   [20s,60s): 0.5
        PriceTrace::new(
            vec![
                PricePoint {
                    at: SimTime::ZERO,
                    price: 1.0,
                },
                PricePoint {
                    at: SimTime::secs(10),
                    price: 3.0,
                },
                PricePoint {
                    at: SimTime::secs(20),
                    price: 0.5,
                },
            ],
            SimTime::secs(60),
        )
    }

    #[test]
    fn price_at_picks_correct_segment() {
        let t = trace();
        assert_eq!(t.price_at(SimTime::ZERO), 1.0);
        assert_eq!(t.price_at(SimTime::secs(9)), 1.0);
        assert_eq!(t.price_at(SimTime::secs(10)), 3.0);
        assert_eq!(t.price_at(SimTime::secs(19)), 3.0);
        assert_eq!(t.price_at(SimTime::secs(20)), 0.5);
        // Past the end: extended with last value.
        assert_eq!(t.price_at(SimTime::secs(600)), 0.5);
    }

    #[test]
    fn next_change_after_walks_points() {
        let t = trace();
        assert_eq!(t.next_change_after(SimTime::ZERO), Some(SimTime::secs(10)));
        assert_eq!(
            t.next_change_after(SimTime::secs(10)),
            Some(SimTime::secs(20))
        );
        assert_eq!(t.next_change_after(SimTime::secs(20)), None);
    }

    #[test]
    fn crossing_queries() {
        let t = trace();
        // Strictly above 1.0 first happens at the 3.0 segment.
        assert_eq!(
            t.next_time_above(SimTime::ZERO, 1.0),
            Some(SimTime::secs(10))
        );
        // Already above when starting inside the spike.
        assert_eq!(
            t.next_time_above(SimTime::secs(15), 1.0),
            Some(SimTime::secs(15))
        );
        // Never above 5.0.
        assert_eq!(t.next_time_above(SimTime::ZERO, 5.0), None);
        // At-or-below 0.6 first at the tail segment.
        assert_eq!(
            t.next_time_at_or_below(SimTime::secs(12), 0.6),
            Some(SimTime::secs(20))
        );
    }

    #[test]
    fn crossing_queries_clamped_to_horizon() {
        let t = trace(); // end = 60s, final price 0.5
                         // At the horizon: the price there (0.5) satisfies "above 0.1",
                         // but 60s is outside [0, end) — no revocation can happen there.
        assert_eq!(t.next_time_above(SimTime::secs(60), 0.1), None);
        // Past the horizon likewise, even though price_at extends.
        assert_eq!(t.next_time_above(SimTime::secs(90), 0.1), None);
        assert_eq!(t.next_time_at_or_below(SimTime::secs(60), 1.0), None);
        assert_eq!(t.next_time_at_or_below(SimTime::secs(600), 1.0), None);
        // Just inside the horizon still hits.
        let last = SimTime::millis(60_000 - 1);
        assert_eq!(t.next_time_above(last, 0.1), Some(last));
        assert_eq!(t.next_time_at_or_below(last, 1.0), Some(last));
    }

    #[test]
    fn cursor_matches_stateless_queries_monotonic() {
        let t = trace();
        let mut c = t.cursor();
        for ms in (0..70_000).step_by(500) {
            let at = SimTime::millis(ms);
            assert_eq!(c.price_at(at), t.price_at(at), "price at {at}");
            assert_eq!(c.next_change_after(at), t.next_change_after(at));
        }
    }

    #[test]
    fn cursor_crossing_queries_match_and_do_not_overcommit() {
        let t = trace();
        let mut c = t.cursor();
        assert_eq!(
            c.next_time_above(SimTime::ZERO, 1.0),
            t.next_time_above(SimTime::ZERO, 1.0)
        );
        // The scan ahead must not have committed the cursor past t=0:
        // the very next monotonic query at 1s must still be correct.
        assert_eq!(c.price_at(SimTime::secs(1)), 1.0);
        assert_eq!(
            c.next_time_at_or_below(SimTime::secs(12), 0.6),
            Some(SimTime::secs(20))
        );
        assert_eq!(c.next_time_above(SimTime::secs(60), 0.1), None);
    }

    #[test]
    fn cursor_resyncs_on_regression() {
        let t = trace();
        let mut c = t.cursor();
        assert_eq!(c.price_at(SimTime::secs(25)), 0.5);
        // Going backwards is allowed (slow path), results stay correct.
        assert_eq!(c.price_at(SimTime::secs(5)), 1.0);
        assert_eq!(c.price_at(SimTime::secs(15)), 3.0);
    }

    #[test]
    fn feed_segments_matches_stateless_windows() {
        let t = trace();
        for (from, to) in [
            (0u64, 60),
            (5, 25),
            (10, 20),
            (0, 0),
            (25, 25),
            (15, 90),
            (60, 70),
        ] {
            let (from, to) = (SimTime::secs(from), SimTime::secs(to));
            let mut fed = Vec::new();
            t.cursor().feed_segments(from, to, |s| fed.push(s));
            assert_eq!(fed, t.segments_in(from, to), "window [{from}, {to})");
        }
    }

    #[test]
    fn feed_segments_abutting_windows_cover_once() {
        // The forecaster's access pattern: successive abutting windows
        // on one cursor must tile the trace exactly once with no gap,
        // overlap, or reordering.
        let t = trace();
        let mut c = t.cursor();
        let mut fed = Vec::new();
        let mut from = SimTime::ZERO;
        for to_s in [7u64, 10, 31, 31, 60] {
            let to = SimTime::secs(to_s);
            c.feed_segments(from, to, |s| fed.push(s));
            from = to;
        }
        // Concatenated windows equal the single full-trace window.
        let mut merged: Vec<Segment> = Vec::new();
        for s in fed {
            match merged.last_mut() {
                Some(last) if last.end == s.start && last.price == s.price => last.end = s.end,
                _ => merged.push(s),
            }
        }
        assert_eq!(merged, t.segments_in(SimTime::ZERO, SimTime::secs(60)));
        // And the cursor remains correct for a following monotonic query.
        assert_eq!(c.price_at(SimTime::secs(59)), 0.5);
    }

    #[test]
    fn cursor_segment_at_clips_to_horizon() {
        let t = trace();
        let mut c = t.cursor();
        let s = c.segment_at(SimTime::secs(30));
        assert_eq!(s.start, SimTime::secs(20));
        assert_eq!(s.end, SimTime::secs(60));
        assert_eq!(s.price, 0.5);
    }

    #[test]
    fn segments_in_iter_matches_collected() {
        let t = trace();
        for (from, to) in [
            (0u64, 60),
            (5, 25),
            (0, 0),
            (10, 10),
            (15, 16),
            (20, 90),
            (60, 90),
            (61, 70),
        ] {
            let (from, to) = (SimTime::secs(from), SimTime::secs(to));
            let collected = t.segments_in(from, to);
            let iterated: Vec<Segment> = t.segments_in_iter(from, to).collect();
            assert_eq!(collected, iterated, "window [{from}, {to})");
        }
    }

    #[test]
    fn segments_in_window_past_end_is_empty() {
        let t = trace();
        assert!(t
            .segments_in(SimTime::secs(60), SimTime::secs(70))
            .is_empty());
        assert!(t
            .segments_in(SimTime::secs(65), SimTime::secs(70))
            .is_empty());
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let t = trace();
        // (1.0*10 + 3.0*10 + 0.5*40) / 60 = 60/60 = 1.0
        assert!((t.time_weighted_mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windowed_mean() {
        let t = trace();
        // [5s, 15s): 1.0 for 5s then 3.0 for 5s -> 2.0
        let m = t.time_weighted_mean_in(SimTime::secs(5), SimTime::secs(15));
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn std_of_constant_trace_is_zero() {
        let t = PriceTrace::constant(0.3, SimTime::hours(5));
        assert_eq!(t.time_weighted_std(), 0.0);
    }

    #[test]
    fn fraction_above_in_window() {
        let t = trace();
        // Window [5s, 25s): above 1.0 only during [10s, 20s) -> 10/20.
        let f = t.fraction_above_in(SimTime::secs(5), SimTime::secs(25), 1.0);
        assert!((f - 0.5).abs() < 1e-12);
        // Empty window.
        assert_eq!(
            t.fraction_above_in(SimTime::secs(5), SimTime::secs(5), 1.0),
            0.0
        );
        // Window entirely below threshold.
        assert_eq!(
            t.fraction_above_in(SimTime::secs(20), SimTime::secs(60), 1.0),
            0.0
        );
    }

    #[test]
    fn time_above_and_fraction() {
        let t = trace();
        assert_eq!(t.time_above(1.0), SimDuration::secs(10));
        assert!((t.fraction_above(1.0) - 10.0 / 60.0).abs() < 1e-12);
        assert_eq!(t.time_above(0.1), SimDuration::secs(60));
    }

    #[test]
    fn sampling_grid() {
        let t = trace();
        let s = t.sample(SimDuration::secs(10));
        assert_eq!(s, vec![1.0, 3.0, 0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn segments_in_clips() {
        let t = trace();
        let segs = t.segments_in(SimTime::secs(5), SimTime::secs(25));
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].start, SimTime::secs(5));
        assert_eq!(segs[0].end, SimTime::secs(10));
        assert_eq!(segs[2].start, SimTime::secs(20));
        assert_eq!(segs[2].end, SimTime::secs(25));
    }

    #[test]
    fn min_max() {
        let t = trace();
        assert_eq!(t.min_price(), 0.5);
        assert_eq!(t.max_price(), 3.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_points() {
        PriceTrace::new(
            vec![
                PricePoint {
                    at: SimTime::ZERO,
                    price: 1.0,
                },
                PricePoint {
                    at: SimTime::ZERO,
                    price: 2.0,
                },
            ],
            SimTime::secs(10),
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_price() {
        PriceTrace::new(
            vec![PricePoint {
                at: SimTime::ZERO,
                price: 0.0,
            }],
            SimTime::secs(10),
        );
    }

    #[test]
    #[should_panic(expected = "start at t=0")]
    fn rejects_late_start() {
        PriceTrace::new(
            vec![PricePoint {
                at: SimTime::secs(1),
                price: 1.0,
            }],
            SimTime::secs(10),
        );
    }
}
