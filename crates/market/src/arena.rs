//! Process-global trace arena: generate each calibrated trace once, share
//! it everywhere.
//!
//! A calibrated market trace is a pure function of `(master seed, horizon,
//! market, on-demand price)` — every stochastic ingredient draws from a
//! dedicated derived stream, so the trace does not depend on which other
//! markets are generated alongside it (see `gen.rs`). That makes the
//! traces perfect cache candidates: the paper's experiment suite re-runs
//! the same seeds over the same markets and horizons dozens of times, and
//! regeneration — not simulation — dominated `repro all` before this
//! arena existed.
//!
//! The arena is append-only and keyed by exactly the inputs the trace is
//! a function of, so a cached hit is byte-identical to a fresh
//! generation (asserted by tests in `gen.rs`). Shared intermediates (the
//! global/zone factor paths and the zone-wide spike schedules) are cached
//! the same way, so a miss for one market never recomputes another's
//! shared randomness.
//!
//! Memory model: entries are `Arc`-shared; the resident cost is the sum
//! of all distinct `(seed, horizon, market)` traces generated so far
//! (~0.8 MB per market-seed at the paper's 60-day horizon). Callers
//! running unbounded seed sweeps can drop the cache between phases with
//! [`TraceArena::clear`], or — better — set a residency bound with
//! [`TraceArena::set_trace_capacity`]: above the bound the arena evicts
//! oldest-inserted traces first (seed sweeps walk seeds monotonically, so
//! FIFO evicts exactly the seeds the sweep has moved past). Eviction only
//! drops the arena's own reference — outstanding `Arc`s stay alive — and
//! an evicted key regenerates byte-identically on the next lookup.
//! Generation happens outside the arena lock; two threads racing on the
//! same key may both generate, but the first insert wins and both observe
//! the same shared trace.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

use crate::calib::calibrated_model;
use crate::catalog::Catalog;
use crate::gen::{calibrated_trace, FactorPaths, TraceSet, ZoneSpikeSchedules};
use crate::time::SimDuration;
use crate::trace::PriceTrace;
use crate::types::MarketId;

/// Cache key for one calibrated trace. The on-demand price is part of the
/// key (as raw bits) because the generator scales spike levels and the OU
/// base by it — two catalogs that price a market differently must not
/// share a trace.
type TraceKey = (u64, u64, MarketId, u64);

/// Counters describing the arena's effectiveness and footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Trace lookups served from the cache.
    pub trace_hits: u64,
    /// Trace lookups that required generation.
    pub trace_misses: u64,
    /// Factor-path lookups served from the cache.
    pub factor_hits: u64,
    /// Factor-path lookups that required generation.
    pub factor_misses: u64,
    /// Distinct traces resident in the arena.
    pub resident_traces: u64,
    /// Price-point bytes held by resident traces (excludes map overhead
    /// and the factor paths, which are transient by comparison).
    pub resident_bytes: u64,
    /// Traces evicted to honour the residency bound
    /// ([`TraceArena::set_trace_capacity`]).
    pub trace_evictions: u64,
    /// The residency bound currently in force (0 = unbounded).
    pub trace_capacity: u64,
}

#[derive(Default)]
struct Inner {
    traces: HashMap<TraceKey, Arc<PriceTrace>>,
    /// Insertion order of `traces` keys — the FIFO eviction queue. Holds
    /// exactly the keys of `traces` (inserts append, evictions and
    /// `clear` remove), so the front is always the oldest resident.
    order: VecDeque<TraceKey>,
    factors: HashMap<(u64, u64, usize), Arc<FactorPaths>>,
    zone_spikes: HashMap<(u64, u64), Arc<ZoneSpikeSchedules>>,
    stats: ArenaStats,
}

impl Inner {
    /// Evict oldest-inserted traces until the residency bound holds.
    fn enforce_capacity(&mut self) {
        let cap = self.stats.trace_capacity;
        if cap == 0 {
            return;
        }
        while self.traces.len() as u64 > cap {
            let key = match self.order.pop_front() {
                Some(k) => k,
                None => break,
            };
            if self.traces.remove(&key).is_some() {
                self.stats.trace_evictions += 1;
            }
        }
    }

    /// Recompute the residency gauges after any insert or eviction.
    fn refresh_gauges(&mut self) {
        self.stats.resident_traces = self.traces.len() as u64;
        self.stats.resident_bytes = self
            .traces
            .values()
            .map(|t| std::mem::size_of_val(t.points()) as u64)
            .sum();
    }
}

/// The process-global arena behind [`TraceSet::generate`].
pub struct TraceArena {
    inner: Mutex<Inner>,
}

impl TraceArena {
    /// The process-global instance.
    pub fn global() -> &'static TraceArena {
        static GLOBAL: OnceLock<TraceArena> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceArena {
            inner: Mutex::new(Inner::default()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means another thread panicked after its
        // mutation completed (inserts are single statements); the map is
        // still coherent, so recover rather than propagate.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Build a calibrated [`TraceSet`] for `markets`, generating only the
    /// traces not already resident and sharing everything by reference.
    pub fn calibrated_set(
        &self,
        catalog: &Catalog,
        markets: &[MarketId],
        master_seed: u64,
        horizon: SimDuration,
    ) -> TraceSet {
        assert!(!markets.is_empty(), "at least one market required");
        assert!(horizon > SimDuration::ZERO);
        let hms = horizon.as_millis();

        let mut entries: Vec<(MarketId, Option<Arc<PriceTrace>>)> =
            markets.iter().map(|&m| (m, None)).collect();
        let mut missing: Vec<(usize, MarketId, f64)> = Vec::new();
        {
            let mut g = self.lock();
            for (i, &m) in markets.iter().enumerate() {
                let pon = catalog.on_demand_price(m);
                match g.traces.get(&(master_seed, hms, m, pon.to_bits())).cloned() {
                    Some(t) => {
                        g.stats.trace_hits += 1;
                        entries[i].1 = Some(t);
                    }
                    None => {
                        g.stats.trace_misses += 1;
                        missing.push((i, m, pon));
                    }
                }
            }
        }

        if !missing.is_empty() {
            // Every calibrated model shares one grid step, so the factor
            // paths for this (seed, horizon) are common to all markets.
            let step = calibrated_model(missing[0].1).step;
            let n_grid = (hms / step.as_millis()) as usize + 1;
            let factors = self.factor_paths(master_seed, step, n_grid);
            let zone_spikes = self.zone_spike_schedules(master_seed, horizon);
            for &(i, m, pon) in &missing {
                let trace = Arc::new(calibrated_trace(
                    master_seed,
                    m,
                    pon,
                    horizon,
                    &factors,
                    &zone_spikes,
                ));
                let mut g = self.lock();
                let key = (master_seed, hms, m, pon.to_bits());
                let resident = match g.traces.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let t = v.insert(trace).clone();
                        g.order.push_back(key);
                        t
                    }
                };
                g.enforce_capacity();
                g.refresh_gauges();
                entries[i].1 = Some(resident);
            }
        }

        // Attach the zone spike spans behind these traces (cached like the
        // traces themselves) so correlated-failure models can couple to
        // the same price events regardless of cache hits or misses.
        let spans = Arc::new(self.zone_spike_schedules(master_seed, horizon).all_spans());
        TraceSet::from_shared(
            catalog,
            entries
                .into_iter()
                .map(|(m, t)| {
                    let t = t.unwrap_or_else(|| unreachable!("every entry filled above"));
                    (m, t)
                })
                .collect(),
            horizon,
        )
        .with_spike_spans(spans)
    }

    fn factor_paths(&self, master_seed: u64, step: SimDuration, n: usize) -> Arc<FactorPaths> {
        let key = (master_seed, step.as_millis(), n);
        {
            let mut g = self.lock();
            if let Some(f) = g.factors.get(&key).cloned() {
                g.stats.factor_hits += 1;
                return f;
            }
            g.stats.factor_misses += 1;
        }
        let fresh = Arc::new(FactorPaths::generate(master_seed, step, n));
        let mut g = self.lock();
        Arc::clone(g.factors.entry(key).or_insert(fresh))
    }

    /// The shared zone-wide spike schedules for `(master_seed, horizon)`
    /// — exactly the windows calibrated trace generation observed (or
    /// will observe) for that key. Correlated-failure models use this to
    /// couple storms to the price events already baked into the traces.
    pub fn zone_spikes(&self, master_seed: u64, horizon: SimDuration) -> Arc<ZoneSpikeSchedules> {
        self.zone_spike_schedules(master_seed, horizon)
    }

    fn zone_spike_schedules(
        &self,
        master_seed: u64,
        horizon: SimDuration,
    ) -> Arc<ZoneSpikeSchedules> {
        let key = (master_seed, horizon.as_millis());
        {
            let g = self.lock();
            if let Some(z) = g.zone_spikes.get(&key) {
                return Arc::clone(z);
            }
        }
        let fresh = Arc::new(ZoneSpikeSchedules::canonical(master_seed, horizon));
        let mut g = self.lock();
        Arc::clone(g.zone_spikes.entry(key).or_insert(fresh))
    }

    /// Current cache counters.
    pub fn stats(&self) -> ArenaStats {
        self.lock().stats
    }

    /// Bound the number of resident traces (0 = unbounded, the default).
    /// Above the bound the arena evicts oldest-inserted traces first;
    /// long seed sweeps that would otherwise grow without bound stay at
    /// `cap` traces resident. Takes effect immediately: shrinking below
    /// the current residency evicts on the spot.
    pub fn set_trace_capacity(&self, cap: u64) {
        let mut g = self.lock();
        g.stats.trace_capacity = cap;
        g.enforce_capacity();
        g.refresh_gauges();
    }

    /// Drop every resident trace and intermediate (counters survive, with
    /// the resident gauges zeroed). Outstanding `Arc`s keep their traces
    /// alive; only the arena's own references are released.
    pub fn clear(&self) {
        let mut g = self.lock();
        g.traces.clear();
        g.order.clear();
        g.factors.clear();
        g.zone_spikes.clear();
        g.stats.resident_traces = 0;
        g.stats.resident_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{InstanceType, Zone};

    // The arena under test must be private to the test: the global one is
    // shared with every other test in the binary.
    fn arena() -> TraceArena {
        TraceArena {
            inner: Mutex::new(Inner::default()),
        }
    }

    fn catalog() -> Catalog {
        Catalog::ec2_2015()
    }

    fn small_east() -> MarketId {
        MarketId::new(Zone::UsEast1a, InstanceType::Small)
    }

    #[test]
    fn second_lookup_shares_the_same_trace() {
        let a = arena();
        let c = catalog();
        let h = SimDuration::days(2);
        let s1 = a.calibrated_set(&c, &[small_east()], 3, h);
        let s2 = a.calibrated_set(&c, &[small_east()], 3, h);
        assert!(Arc::ptr_eq(
            s1.shared_trace(small_east()).expect("present"),
            s2.shared_trace(small_east()).expect("present"),
        ));
        let st = a.stats();
        assert_eq!((st.trace_hits, st.trace_misses), (1, 1));
        assert_eq!(st.resident_traces, 1);
        assert!(st.resident_bytes > 0);
    }

    #[test]
    fn distinct_seeds_and_horizons_do_not_collide() {
        let a = arena();
        let c = catalog();
        let m = small_east();
        let t1 = a.calibrated_set(&c, &[m], 1, SimDuration::days(2));
        let t2 = a.calibrated_set(&c, &[m], 2, SimDuration::days(2));
        let t3 = a.calibrated_set(&c, &[m], 1, SimDuration::days(3));
        assert_ne!(t1.trace(m), t2.trace(m));
        assert_ne!(t1.trace(m), t3.trace(m));
        assert_eq!(a.stats().resident_traces, 3);
    }

    #[test]
    fn partial_miss_generates_only_the_missing_market() {
        let a = arena();
        let c = catalog();
        let h = SimDuration::days(2);
        let m2 = MarketId::new(Zone::UsEast1a, InstanceType::Medium);
        let solo = a.calibrated_set(&c, &[small_east()], 9, h);
        let both = a.calibrated_set(&c, &[small_east(), m2], 9, h);
        assert!(Arc::ptr_eq(
            solo.shared_trace(small_east()).expect("present"),
            both.shared_trace(small_east()).expect("present"),
        ));
        let st = a.stats();
        assert_eq!((st.trace_hits, st.trace_misses), (1, 2));
        // The shared factor paths were generated once and reused.
        assert_eq!((st.factor_hits, st.factor_misses), (1, 1));
    }

    #[test]
    fn clear_releases_residency_without_breaking_outstanding_sets() {
        let a = arena();
        let c = catalog();
        let h = SimDuration::days(2);
        let set = a.calibrated_set(&c, &[small_east()], 5, h);
        a.clear();
        assert_eq!(a.stats().resident_traces, 0);
        assert_eq!(a.stats().resident_bytes, 0);
        // The outstanding set still owns its trace.
        assert!(set.trace(small_east()).expect("alive").points().len() > 1);
        // Regeneration after clear is byte-identical.
        let again = a.calibrated_set(&c, &[small_east()], 5, h);
        assert_eq!(set.trace(small_east()), again.trace(small_east()));
    }

    #[test]
    fn residency_bound_evicts_oldest_first_and_regenerates_identically() {
        let a = arena();
        let c = catalog();
        let h = SimDuration::days(2);
        a.set_trace_capacity(2);
        let first = a.calibrated_set(&c, &[small_east()], 1, h);
        for seed in 2..=4 {
            a.calibrated_set(&c, &[small_east()], seed, h);
        }
        let st = a.stats();
        assert_eq!(st.trace_capacity, 2);
        assert_eq!(st.resident_traces, 2, "bound must hold after the sweep");
        assert_eq!(st.trace_evictions, 2, "seeds 1 and 2 evicted FIFO");
        // The outstanding set still owns its evicted trace, and the
        // evicted key regenerates byte-identically (a fresh miss).
        let again = a.calibrated_set(&c, &[small_east()], 1, h);
        assert_eq!(first.trace(small_east()), again.trace(small_east()));
        assert_eq!(a.stats().trace_misses, 5, "seed 1 regenerated, not cached");
        // Shrinking the bound evicts on the spot; zero lifts it.
        a.set_trace_capacity(1);
        assert_eq!(a.stats().resident_traces, 1);
        a.set_trace_capacity(0);
        for seed in 10..20 {
            a.calibrated_set(&c, &[small_east()], seed, h);
        }
        assert_eq!(a.stats().resident_traces, 11, "unbounded again");
    }
}
