//! The on-demand price book.
//!
//! Anchored on the paper's §2.1: "the fixed hourly price of on-demand server
//! varies from 6 cents per hour for the small configuration" upward, with
//! each size doubling capacity and price (the 2015 EC2 ladder). On-demand
//! prices are set per *region* (both us-east zones share one price), with
//! US West and EU West carrying the usual few-percent premium over US East.

use crate::types::{InstanceType, MarketId, Region, Zone};

/// Immutable price book mapping markets to on-demand prices ($/hour).
#[derive(Debug, Clone)]
pub struct Catalog {
    /// $/hour for a small instance in US East.
    small_us_east: f64,
    /// Regional multipliers over US East, indexed by [`Region`].
    region_mult: [f64; 3],
    /// Maximum allowed bid as a multiple of the on-demand price. Amazon
    /// capped bids at 4x on-demand (§3.1 footnote 1); the paper's proactive
    /// algorithm bids exactly this cap.
    max_bid_mult: f64,
}

impl Catalog {
    /// The 2015-era EC2 price book used throughout the paper's evaluation.
    pub fn ec2_2015() -> Self {
        Catalog {
            small_us_east: 0.06,
            region_mult: [1.0, 1.10, 1.15], // us-east-1, us-west-1, eu-west-1
            max_bid_mult: 4.0,
        }
    }

    /// Custom catalog for what-if studies.
    pub fn new(small_us_east: f64, region_mult: [f64; 3], max_bid_mult: f64) -> Self {
        assert!(small_us_east > 0.0);
        assert!(region_mult.iter().all(|&m| m > 0.0));
        assert!(max_bid_mult >= 1.0);
        Catalog {
            small_us_east,
            region_mult,
            max_bid_mult,
        }
    }

    fn region_index(region: Region) -> usize {
        match region {
            Region::UsEast1 => 0,
            Region::UsWest1 => 1,
            Region::EuWest1 => 2,
        }
    }

    /// On-demand $/hour for a market.
    pub fn on_demand_price(&self, market: MarketId) -> f64 {
        let mult = self.region_mult[Self::region_index(market.zone.region())];
        self.small_us_east * market.itype.capacity_units() as f64 * mult
    }

    /// On-demand price per capacity unit — the multi-market strategy
    /// compares markets on this normalised basis (§4, footnote 2).
    pub fn on_demand_price_per_unit(&self, market: MarketId) -> f64 {
        self.on_demand_price(market) / market.itype.capacity_units() as f64
    }

    /// The cheapest on-demand price for a given capacity requirement among
    /// a set of zones — used as the multi-region baseline (§4.5: "we use
    /// the lowest on-demand cost available in the two allowable regions").
    pub fn cheapest_on_demand_for_units(&self, zones: &[Zone], units: u32) -> f64 {
        assert!(!zones.is_empty());
        zones
            .iter()
            .map(|&z| {
                // Per-unit price is size-independent within a zone, so the
                // cost of `units` of capacity is linear.
                self.on_demand_price_per_unit(MarketId::new(z, InstanceType::Small)) * units as f64
            })
            .fold(f64::MAX, f64::min)
    }

    /// Highest bid the provider accepts for a market (4x on-demand at EC2).
    pub fn max_bid(&self, market: MarketId) -> f64 {
        self.on_demand_price(market) * self.max_bid_mult
    }

    pub fn max_bid_mult(&self) -> f64 {
        self.max_bid_mult
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_us_east_is_six_cents() {
        let c = Catalog::ec2_2015();
        let m = MarketId::new(Zone::UsEast1a, InstanceType::Small);
        assert!((c.on_demand_price(m) - 0.06).abs() < 1e-12);
    }

    #[test]
    fn price_doubles_with_size() {
        let c = Catalog::ec2_2015();
        for &z in &Zone::ALL {
            let mut prev = 0.0;
            for &t in &InstanceType::ALL {
                let p = c.on_demand_price(MarketId::new(z, t));
                if prev > 0.0 {
                    assert!((p - prev * 2.0).abs() < 1e-12);
                }
                prev = p;
            }
        }
    }

    #[test]
    fn both_us_east_zones_share_prices() {
        let c = Catalog::ec2_2015();
        for &t in &InstanceType::ALL {
            assert_eq!(
                c.on_demand_price(MarketId::new(Zone::UsEast1a, t)),
                c.on_demand_price(MarketId::new(Zone::UsEast1b, t))
            );
        }
    }

    #[test]
    fn per_unit_price_is_size_independent() {
        let c = Catalog::ec2_2015();
        for &z in &Zone::ALL {
            let base = c.on_demand_price_per_unit(MarketId::new(z, InstanceType::Small));
            for &t in &InstanceType::ALL {
                let pu = c.on_demand_price_per_unit(MarketId::new(z, t));
                assert!((pu - base).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cheapest_on_demand_prefers_us_east() {
        let c = Catalog::ec2_2015();
        let cheapest = c.cheapest_on_demand_for_units(&[Zone::UsEast1a, Zone::EuWest1a], 8);
        let us_east_xlarge = c.on_demand_price(MarketId::new(Zone::UsEast1a, InstanceType::XLarge));
        assert!((cheapest - us_east_xlarge).abs() < 1e-12);
    }

    #[test]
    fn max_bid_is_four_times_on_demand() {
        let c = Catalog::ec2_2015();
        let m = MarketId::new(Zone::UsWest1a, InstanceType::Large);
        assert!((c.max_bid(m) - 4.0 * c.on_demand_price(m)).abs() < 1e-12);
    }
}
