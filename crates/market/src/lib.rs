//! # spothost-market
//!
//! Spot-market price modelling for the `spothost` system, reproducing the
//! market environment of *"Cutting the Cost of Hosting Online Services Using
//! Cloud Spot Markets"* (HPDC 2015).
//!
//! The paper's evaluation is seeded by Amazon EC2 spot-price history from
//! early 2015 across four markets (small/medium/large/xlarge) in four
//! availability zones (us-east-1a, us-east-1b, us-west-1a, eu-west-1a).
//! That archive is not available, so this crate provides a *calibrated
//! synthetic generator* with the statistical properties the paper's results
//! depend on:
//!
//! * long periods of low, slowly-varying prices (a mean-reverting
//!   Ornstein–Uhlenbeck process in log-space),
//! * rare, sharp price spikes that can exceed several multiples of the
//!   on-demand price (a Poisson spike process with Pareto magnitudes),
//! * weak positive correlation between markets in the same availability
//!   zone and even weaker correlation across zones (a shared-factor model),
//!   as shown in the paper's Figures 8(b) and 9(b),
//! * region character: us-east markets are cheap but volatile, eu-west is
//!   more expensive but stable (Figure 10).
//!
//! The crate also defines the simulation clock ([`time::SimTime`]) used by
//! every other `spothost` crate, the market catalog (on-demand price book),
//! and time-weighted statistics over piecewise-constant price traces.
//!
//! ## Quick example
//!
//! ```
//! use spothost_market::prelude::*;
//!
//! let catalog = Catalog::ec2_2015();
//! let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
//! let model = calibrated_model(market);
//! let trace = TraceSet::generate(&catalog, &[market], 42, SimDuration::days(28));
//! let t = trace.trace(market).unwrap();
//! assert!(t.time_weighted_mean() < catalog.on_demand_price(market));
//! ```

// Library code must not unwrap: every remaining panic site is either an
// invariant with an explanatory expect message or a documented
// precondition (see DESIGN.md "Failure semantics").
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod arena;
pub mod calib;
pub mod catalog;
pub mod dist;
pub mod gen;
pub mod io;
pub mod model;
pub mod stats;
pub mod time;
pub mod trace;
pub mod types;

pub use arena::{ArenaStats, TraceArena};
pub use calib::{calibrated_model, calibrated_models};
pub use catalog::Catalog;
pub use gen::TraceSet;
pub use model::SpotModelParams;
pub use time::{SimDuration, SimTime};
pub use trace::{PricePoint, PriceTrace, Segment};
pub use types::{InstanceType, MarketId, Zone};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::calib::{calibrated_model, calibrated_models};
    pub use crate::catalog::Catalog;
    pub use crate::gen::TraceSet;
    pub use crate::model::SpotModelParams;
    pub use crate::stats;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{PricePoint, PriceTrace, Segment};
    pub use crate::types::{InstanceType, MarketId, Zone};
}
