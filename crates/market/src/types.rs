//! Core market identifiers: instance types, availability zones, market ids.
//!
//! Terminology follows the paper. A *market* is one spot price series — one
//! (zone, instance-type) pair. The paper's "multi-market" experiments move
//! between instance sizes *within* a zone (Figure 8); "multi-region" moves
//! across zones (Figure 9). The four zones evaluated are US East 1A,
//! US East 1B, US West 1A and Europe West 1A (§4.1).

use std::fmt;

/// Instance size classes evaluated in the paper (§4.1).
///
/// Capacity units express the relative compute capacity used when packing
/// multiple nested VMs onto a larger server in the multi-market strategy
/// (§4, footnote 2): each size doubles the previous one, mirroring the
/// 2015-era EC2 price/capacity doubling ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstanceType {
    Small,
    Medium,
    Large,
    XLarge,
}

impl InstanceType {
    pub const ALL: [InstanceType; 4] = [
        InstanceType::Small,
        InstanceType::Medium,
        InstanceType::Large,
        InstanceType::XLarge,
    ];

    /// Relative capacity (small = 1). Doubles with each size step.
    pub fn capacity_units(self) -> u32 {
        match self {
            InstanceType::Small => 1,
            InstanceType::Medium => 2,
            InstanceType::Large => 4,
            InstanceType::XLarge => 8,
        }
    }

    /// Nominal RAM of the instance in GiB, used to parameterise migration
    /// and checkpointing latency (memory state is what must move).
    /// Matches the 2015-era generation the paper measured (a 2 GB VM is the
    /// micro-benchmark subject in Table 2).
    pub fn memory_gib(self) -> f64 {
        match self {
            InstanceType::Small => 2.0,
            InstanceType::Medium => 4.0,
            InstanceType::Large => 8.0,
            InstanceType::XLarge => 16.0,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            InstanceType::Small => "small",
            InstanceType::Medium => "medium",
            InstanceType::Large => "large",
            InstanceType::XLarge => "xlarge",
        }
    }

    pub fn index(self) -> usize {
        match self {
            InstanceType::Small => 0,
            InstanceType::Medium => 1,
            InstanceType::Large => 2,
            InstanceType::XLarge => 3,
        }
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Geographic region of an availability zone. Zones in the same region share
/// LAN-class connectivity (networked storage reachable, sub-second live
/// migration downtime); cross-region moves are WAN migrations that must also
/// copy disk state (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    UsEast1,
    UsWest1,
    EuWest1,
}

impl Region {
    pub const ALL: [Region; 3] = [Region::UsEast1, Region::UsWest1, Region::EuWest1];

    pub fn name(self) -> &'static str {
        match self {
            Region::UsEast1 => "us-east-1",
            Region::UsWest1 => "us-west-1",
            Region::EuWest1 => "eu-west-1",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The four availability zones the paper evaluates (§4.1). The paper calls
/// these "regions" in its figure labels; we keep the EC2-accurate term and
/// expose [`Zone::region`] for WAN/LAN distinctions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Zone {
    UsEast1a,
    UsEast1b,
    UsWest1a,
    EuWest1a,
}

impl Zone {
    pub const ALL: [Zone; 4] = [
        Zone::UsEast1a,
        Zone::UsEast1b,
        Zone::UsWest1a,
        Zone::EuWest1a,
    ];

    pub fn region(self) -> Region {
        match self {
            Zone::UsEast1a | Zone::UsEast1b => Region::UsEast1,
            Zone::UsWest1a => Region::UsWest1,
            Zone::EuWest1a => Region::EuWest1,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Zone::UsEast1a => "us-east-1a",
            Zone::UsEast1b => "us-east-1b",
            Zone::UsWest1a => "us-west-1a",
            Zone::EuWest1a => "eu-west-1a",
        }
    }

    pub fn index(self) -> usize {
        match self {
            Zone::UsEast1a => 0,
            Zone::UsEast1b => 1,
            Zone::UsWest1a => 2,
            Zone::EuWest1a => 3,
        }
    }

    /// All unordered zone pairs, in the order the paper's Figure 9 lists them.
    pub fn all_pairs() -> Vec<(Zone, Zone)> {
        let mut out = Vec::new();
        for (i, &a) in Zone::ALL.iter().enumerate() {
            for &b in &Zone::ALL[i + 1..] {
                out.push((a, b));
            }
        }
        out
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One spot market: a (zone, instance-type) pair with its own price series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MarketId {
    pub zone: Zone,
    pub itype: InstanceType,
}

impl MarketId {
    pub fn new(zone: Zone, itype: InstanceType) -> Self {
        MarketId { zone, itype }
    }

    /// Every market in the paper's evaluation: 4 zones x 4 sizes.
    pub fn all() -> Vec<MarketId> {
        let mut v = Vec::with_capacity(16);
        for &zone in &Zone::ALL {
            for &itype in &InstanceType::ALL {
                v.push(MarketId { zone, itype });
            }
        }
        v
    }

    /// Every market (all sizes) in one zone — the multi-market candidate set.
    pub fn all_in_zone(zone: Zone) -> Vec<MarketId> {
        InstanceType::ALL
            .iter()
            .map(|&itype| MarketId { zone, itype })
            .collect()
    }

    /// A compact dense index in `0..16`, usable for array-backed lookup.
    pub fn dense_index(self) -> usize {
        self.zone.index() * InstanceType::ALL.len() + self.itype.index()
    }
}

impl fmt::Display for MarketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.zone, self.itype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_doubles() {
        let mut prev = 0;
        for t in InstanceType::ALL {
            let c = t.capacity_units();
            if prev != 0 {
                assert_eq!(c, prev * 2);
            }
            prev = c;
        }
    }

    #[test]
    fn memory_scales_with_capacity() {
        for t in InstanceType::ALL {
            assert_eq!(t.memory_gib(), 2.0 * t.capacity_units() as f64);
        }
    }

    #[test]
    fn zones_map_to_regions() {
        assert_eq!(Zone::UsEast1a.region(), Region::UsEast1);
        assert_eq!(Zone::UsEast1b.region(), Region::UsEast1);
        assert_eq!(Zone::UsWest1a.region(), Region::UsWest1);
        assert_eq!(Zone::EuWest1a.region(), Region::EuWest1);
        // Same-region pair exists exactly once among the four zones.
        let same_region = Zone::all_pairs()
            .into_iter()
            .filter(|(a, b)| a.region() == b.region())
            .count();
        assert_eq!(same_region, 1);
    }

    #[test]
    fn sixteen_markets_with_unique_dense_indices() {
        let all = MarketId::all();
        assert_eq!(all.len(), 16);
        let mut seen = [false; 16];
        for m in &all {
            let i = m.dense_index();
            assert!(!seen[i], "duplicate dense index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn six_zone_pairs() {
        assert_eq!(Zone::all_pairs().len(), 6);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            MarketId::new(Zone::EuWest1a, InstanceType::XLarge).to_string(),
            "eu-west-1a/xlarge"
        );
    }
}
