//! Trace import/export.
//!
//! The paper seeds its simulations with published EC2 spot-price history.
//! This module reads and writes that style of data as CSV so users can run
//! the scheduler against *real* archives instead of the synthetic
//! generator: one file per market, rows of `timestamp_ms,price`, plus a
//! small manifest naming the market and horizon.
//!
//! Format of a trace file:
//!
//! ```csv
//! # market: us-east-1a/small
//! # horizon_ms: 2419200000
//! timestamp_ms,price
//! 0,0.012
//! 3600000,0.013
//! ```

use crate::catalog::Catalog;
use crate::gen::TraceSet;
use crate::time::{SimDuration, SimTime};
use crate::trace::{PricePoint, PriceTrace};
use crate::types::{InstanceType, MarketId, Zone};
use std::fmt::Write as _;
use std::path::Path;

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceIoError {
    MissingHeader(&'static str),
    UnknownMarket(String),
    BadRow { line: usize, reason: String },
    Empty,
    Io(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::MissingHeader(h) => write!(f, "missing '# {h}:' header"),
            TraceIoError::UnknownMarket(m) => write!(f, "unknown market '{m}'"),
            TraceIoError::BadRow { line, reason } => write!(f, "line {line}: {reason}"),
            TraceIoError::Empty => write!(f, "trace has no price rows"),
            TraceIoError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

/// Parse a market name of the form `zone/size` (e.g. `us-east-1a/small`).
pub fn parse_market(name: &str) -> Result<MarketId, TraceIoError> {
    let (zone_s, size_s) = name
        .split_once('/')
        .ok_or_else(|| TraceIoError::UnknownMarket(name.to_string()))?;
    let zone = Zone::ALL
        .into_iter()
        .find(|z| z.name() == zone_s)
        .ok_or_else(|| TraceIoError::UnknownMarket(name.to_string()))?;
    let itype = InstanceType::ALL
        .into_iter()
        .find(|t| t.name() == size_s)
        .ok_or_else(|| TraceIoError::UnknownMarket(name.to_string()))?;
    Ok(MarketId::new(zone, itype))
}

/// Serialise one market's trace to the CSV format above.
pub fn trace_to_csv(market: MarketId, trace: &PriceTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# market: {market}");
    let _ = writeln!(out, "# horizon_ms: {}", trace.end().as_millis());
    out.push_str("timestamp_ms,price\n");
    for p in trace.points() {
        let _ = writeln!(out, "{},{}", p.at.as_millis(), p.price);
    }
    out
}

/// Parse one market's trace from the CSV format above.
pub fn trace_from_csv(text: &str) -> Result<(MarketId, PriceTrace), TraceIoError> {
    let mut market = None;
    let mut horizon_ms = None;
    let mut points = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(m) = rest.strip_prefix("market:") {
                market = Some(parse_market(m.trim())?);
            } else if let Some(h) = rest.strip_prefix("horizon_ms:") {
                horizon_ms = Some(h.trim().parse::<u64>().map_err(|e| TraceIoError::BadRow {
                    line: i + 1,
                    reason: format!("bad horizon: {e}"),
                })?);
            }
            continue;
        }
        if line.starts_with("timestamp_ms") {
            continue; // column header
        }
        let (ts, price) = line.split_once(',').ok_or_else(|| TraceIoError::BadRow {
            line: i + 1,
            reason: "expected 'timestamp_ms,price'".into(),
        })?;
        let at = ts.trim().parse::<u64>().map_err(|e| TraceIoError::BadRow {
            line: i + 1,
            reason: format!("bad timestamp: {e}"),
        })?;
        let price = price
            .trim()
            .parse::<f64>()
            .map_err(|e| TraceIoError::BadRow {
                line: i + 1,
                reason: format!("bad price: {e}"),
            })?;
        if !(price.is_finite() && price > 0.0) {
            return Err(TraceIoError::BadRow {
                line: i + 1,
                reason: format!("price must be positive, got {price}"),
            });
        }
        points.push(PricePoint {
            at: SimTime::millis(at),
            price,
        });
    }
    let market = market.ok_or(TraceIoError::MissingHeader("market"))?;
    if points.is_empty() {
        return Err(TraceIoError::Empty);
    }
    // Normalise: sort, dedupe timestamps (last wins, like EC2 re-posts),
    // anchor at t=0.
    points.sort_by_key(|p| p.at);
    points.dedup_by(|b, a| {
        if a.at == b.at {
            a.price = b.price;
            true
        } else {
            false
        }
    });
    if points[0].at != SimTime::ZERO {
        let first_price = points[0].price;
        points.insert(
            0,
            PricePoint {
                at: SimTime::ZERO,
                price: first_price,
            },
        );
        points.dedup_by_key(|p| p.at);
    }
    let last = points
        .last()
        .expect("parser inserted at least the t=0 point")
        .at;
    let horizon = horizon_ms
        .map(SimTime::millis)
        .unwrap_or(last + SimDuration::hours(1));
    let horizon = horizon.max(last + SimDuration::millis(1));
    Ok((market, PriceTrace::new(points, horizon)))
}

/// Write a whole trace set to `dir`, one `<zone>_<size>.csv` per market.
pub fn write_trace_set(set: &TraceSet, dir: &Path) -> Result<(), TraceIoError> {
    std::fs::create_dir_all(dir).map_err(|e| TraceIoError::Io(e.to_string()))?;
    for (market, trace) in set.iter() {
        let name = format!("{}_{}.csv", market.zone.name(), market.itype.name());
        std::fs::write(dir.join(name), trace_to_csv(market, trace))
            .map_err(|e| TraceIoError::Io(e.to_string()))?;
    }
    Ok(())
}

/// Load a trace set from every `*.csv` in `dir`. All traces are clipped or
/// extended (by their last price) to the shortest common horizon so the
/// set is rectangular.
pub fn read_trace_set(catalog: &Catalog, dir: &Path) -> Result<TraceSet, TraceIoError> {
    let mut parsed: Vec<(MarketId, PriceTrace)> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| TraceIoError::Io(e.to_string()))?;
    for entry in entries {
        let entry = entry.map_err(|e| TraceIoError::Io(e.to_string()))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        let text = std::fs::read_to_string(&path).map_err(|e| TraceIoError::Io(e.to_string()))?;
        parsed.push(trace_from_csv(&text)?);
    }
    if parsed.is_empty() {
        return Err(TraceIoError::Empty);
    }
    let horizon = parsed
        .iter()
        .map(|(_, t)| t.end())
        .min()
        .expect("non-empty");
    let clipped: Vec<(MarketId, PriceTrace)> = parsed
        .into_iter()
        .map(|(m, t)| {
            let points: Vec<PricePoint> = t
                .points()
                .iter()
                .filter(|p| p.at < horizon)
                .copied()
                .collect();
            (m, PriceTrace::new(points, horizon))
        })
        .collect();
    Ok(TraceSet::from_traces(
        catalog,
        clipped,
        horizon - SimTime::ZERO,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_market() -> MarketId {
        MarketId::new(Zone::UsEast1a, InstanceType::Small)
    }

    fn sample_trace() -> PriceTrace {
        PriceTrace::new(
            vec![
                PricePoint {
                    at: SimTime::ZERO,
                    price: 0.012,
                },
                PricePoint {
                    at: SimTime::hours(1),
                    price: 0.09,
                },
                PricePoint {
                    at: SimTime::hours(2),
                    price: 0.011,
                },
            ],
            SimTime::hours(24),
        )
    }

    #[test]
    fn csv_roundtrip() {
        let csv = trace_to_csv(sample_market(), &sample_trace());
        let (market, trace) = trace_from_csv(&csv).unwrap();
        assert_eq!(market, sample_market());
        assert_eq!(trace, sample_trace());
    }

    #[test]
    fn parse_market_names() {
        assert_eq!(parse_market("us-east-1a/small").unwrap(), sample_market());
        assert_eq!(
            parse_market("eu-west-1a/xlarge").unwrap(),
            MarketId::new(Zone::EuWest1a, InstanceType::XLarge)
        );
        assert!(parse_market("mars-1a/small").is_err());
        assert!(parse_market("us-east-1a/tiny").is_err());
        assert!(parse_market("no-slash").is_err());
    }

    #[test]
    fn parser_normalises_unsorted_and_offset_rows() {
        let csv = "\
# market: us-east-1a/small
# horizon_ms: 7200000
timestamp_ms,price
3600000,0.02
600000,0.01
";
        let (_, trace) = trace_from_csv(csv).unwrap();
        // Anchored at zero with the earliest price.
        assert_eq!(trace.price_at(SimTime::ZERO), 0.01);
        assert_eq!(trace.price_at(SimTime::hours(1)), 0.02);
        assert_eq!(trace.end(), SimTime::hours(2));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(matches!(
            trace_from_csv("timestamp_ms,price\n0,0.01"),
            Err(TraceIoError::MissingHeader("market"))
        ));
        let bad_price = "# market: us-east-1a/small\n0,-1.0\n";
        assert!(matches!(
            trace_from_csv(bad_price),
            Err(TraceIoError::BadRow { .. })
        ));
        let no_rows = "# market: us-east-1a/small\ntimestamp_ms,price\n";
        assert!(matches!(trace_from_csv(no_rows), Err(TraceIoError::Empty)));
    }

    #[test]
    fn duplicate_timestamps_last_wins() {
        let csv = "\
# market: us-east-1a/small
0,0.01
0,0.02
3600000,0.03
";
        let (_, trace) = trace_from_csv(csv).unwrap();
        assert_eq!(trace.price_at(SimTime::ZERO), 0.02);
    }

    #[test]
    fn directory_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spothost-io-test-{}", std::process::id()));
        let catalog = Catalog::ec2_2015();
        let markets = MarketId::all_in_zone(Zone::UsEast1a);
        let set = TraceSet::generate(&catalog, &markets, 5, SimDuration::days(3));
        write_trace_set(&set, &dir).unwrap();
        let loaded = read_trace_set(&catalog, &dir).unwrap();
        assert_eq!(loaded.len(), set.len());
        for m in &markets {
            assert_eq!(loaded.trace(*m).unwrap(), set.trace(*m).unwrap(), "{m}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_traces_drive_the_generator_free_path() {
        // A loaded set must be usable everywhere a generated one is.
        let dir = std::env::temp_dir().join(format!("spothost-io-test2-{}", std::process::id()));
        let catalog = Catalog::ec2_2015();
        let set = TraceSet::generate(&catalog, &[sample_market()], 5, SimDuration::days(2));
        write_trace_set(&set, &dir).unwrap();
        let loaded = read_trace_set(&catalog, &dir).unwrap();
        let t = loaded.trace(sample_market()).unwrap();
        assert!(t.time_weighted_mean() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
