//! Property-based tests of the trace generator: whatever (valid) model
//! parameters are drawn, generated traces must satisfy the format and
//! statistical invariants the rest of the system relies on.

use proptest::prelude::*;
use spothost_market::catalog::Catalog;
use spothost_market::gen::TraceSet;
use spothost_market::model::SpotModelParams;
use spothost_market::prelude::*;

fn market() -> MarketId {
    MarketId::new(Zone::UsWest1a, InstanceType::Medium)
}

fn arb_params() -> impl Strategy<Value = SpotModelParams> {
    (
        0.03f64..0.7, // base_ratio
        0.01f64..0.5, // sigma
        0.01f64..0.2, // theta
        0.0f64..6.0,  // spike rate
        1.05f64..2.0, // spike min mult
        0.8f64..3.0,  // pareto alpha
        2u64..90,     // spike duration minutes
        1.0f64..3.0,  // elevated mult
        0.0f64..0.5,  // zone spike rate
    )
        .prop_map(
            |(base, sigma, theta, spikes, min_mult, alpha, dur, elev, zrate)| {
                let mut p = SpotModelParams::default_market();
                p.base_ratio = base;
                p.sigma = sigma;
                p.theta_per_hour = theta;
                p.spike_rate_per_day = spikes;
                p.spike_min_mult = min_mult;
                p.spike_pareto_alpha = alpha;
                p.spike_duration_mean = SimDuration::minutes(dur);
                p.elevated_base_mult = if base * elev < 0.98 {
                    elev.max(1.0001)
                } else {
                    1.0001
                };
                p.zone_spike_rate_per_day = zrate;
                p
            },
        )
        .prop_filter("valid", |p| p.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_traces_are_wellformed(params in arb_params(), seed in 0u64..10_000) {
        let catalog = Catalog::ec2_2015();
        let horizon = SimDuration::days(5);
        let set = TraceSet::generate_with(&catalog, &[(market(), params)], seed, horizon);
        let trace = set.trace(market()).unwrap();

        // Format invariants.
        prop_assert_eq!(trace.end(), SimTime::ZERO + horizon);
        let mut prev = None;
        for p in trace.points() {
            prop_assert!(p.price > 0.0 && p.price.is_finite());
            prop_assert!(p.at < trace.end());
            if let Some(prev) = prev {
                prop_assert!(p.at > prev, "timestamps strictly increasing");
            }
            prev = Some(p.at);
            // EC2 price granularity.
            let q = (p.price * 1000.0).round() / 1000.0;
            prop_assert!((p.price - q).abs() < 1e-9, "unquantised {}", p.price);
        }

        // Statistical sanity: the time-weighted mean can't exceed the
        // spike cap and can't fall below the price floor.
        let pon = catalog.on_demand_price(market());
        let mean = trace.time_weighted_mean();
        prop_assert!(mean >= 0.001);
        prop_assert!(mean <= pon * 16.0);
    }

    #[test]
    fn generation_deterministic_in_seed(params in arb_params(), seed in 0u64..10_000) {
        let catalog = Catalog::ec2_2015();
        let horizon = SimDuration::days(2);
        let a = TraceSet::generate_with(&catalog, &[(market(), params.clone())], seed, horizon);
        let b = TraceSet::generate_with(&catalog, &[(market(), params)], seed, horizon);
        prop_assert_eq!(a.trace(market()).unwrap(), b.trace(market()).unwrap());
    }

    #[test]
    fn spikeless_models_stay_below_on_demand(
        base in 0.05f64..0.5,
        sigma in 0.01f64..0.15,
        seed in 0u64..10_000,
    ) {
        // Without spikes, the OU baseline must essentially never cross the
        // on-demand price (this is what makes revocations spike-driven).
        let mut p = SpotModelParams::default_market();
        p.base_ratio = base;
        p.sigma = sigma;
        p.spike_rate_per_day = 0.0;
        p.zone_spike_rate_per_day = 0.0;
        p.elevated_base_mult = 1.0001;
        let catalog = Catalog::ec2_2015();
        let set = TraceSet::generate_with(&catalog, &[(market(), p)], seed, SimDuration::days(5));
        let trace = set.trace(market()).unwrap();
        let pon = catalog.on_demand_price(market());
        prop_assert!(
            trace.fraction_above(pon) < 0.001,
            "baseline crossed on-demand {}% of the time",
            trace.fraction_above(pon) * 100.0
        );
    }

    #[test]
    fn higher_spike_rates_mean_more_time_above_on_demand(
        seed in 0u64..1_000,
    ) {
        let catalog = Catalog::ec2_2015();
        let mk = |rate: f64| {
            let mut p = SpotModelParams::default_market();
            p.spike_rate_per_day = rate;
            p.zone_spike_rate_per_day = 0.0;
            let set = TraceSet::generate_with(
                &catalog, &[(market(), p)], seed, SimDuration::days(30));
            let t = set.trace(market()).unwrap();
            t.fraction_above(catalog.on_demand_price(market()))
        };
        let calm = mk(0.2);
        let stormy = mk(5.0);
        prop_assert!(stormy >= calm, "stormy {stormy} vs calm {calm}");
    }
}
