//! Property tests pinning the incremental billing meter to the replay
//! oracle: for ANY piecewise-constant price trace, lease window, number
//! of interleaved mid-lease advances and termination kind, the meter's
//! settled charge must be **bit-identical** (`f64::to_bits` equal) to
//! `spot_lease_charge`'s whole-lease replay. Bit identity — not just
//! approximate equality — is what lets the simulation swap the O(hours x
//! log n) replay for the amortised-O(1) meter without perturbing a
//! single figure.

use proptest::prelude::*;
use spothost_cloudsim::billing::{spot_lease_charge, SpotLeaseMeter};
use spothost_market::time::{SimDuration, SimTime, MILLIS_PER_HOUR};
use spothost_market::trace::{PricePoint, PriceTrace};

/// A random trace: first point at t=0, strictly increasing change times,
/// positive finite prices, horizon past the last point.
fn arb_trace() -> impl Strategy<Value = PriceTrace> {
    (
        prop::collection::vec((1u64..4 * MILLIS_PER_HOUR, 0.01f64..20.0), 0..40),
        0.01f64..20.0,
        1u64..2 * MILLIS_PER_HOUR,
    )
        .prop_map(|(steps, p0, tail)| {
            let mut points = vec![PricePoint {
                at: SimTime::ZERO,
                price: p0,
            }];
            let mut t = 0u64;
            for (delta, price) in steps {
                t += delta;
                points.push(PricePoint {
                    at: SimTime::millis(t),
                    price,
                });
            }
            PriceTrace::new(points, SimTime::millis(t + tail))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn meter_is_bit_identical_to_replay(
        trace in arb_trace(),
        start_ms in 0u64..6 * MILLIS_PER_HOUR,
        lease_ms in 0u64..50 * MILLIS_PER_HOUR,
        revoked in prop::bool::ANY,
        // Fractions of the lease at which the scheduler happens to call
        // advance_to() mid-lease (unsorted; the meter only ever sees them
        // in non-decreasing order because the sim clock is monotonic).
        advances in prop::collection::vec(0.0f64..1.0, 0..8),
    ) {
        let start = SimTime::millis(start_ms);
        let end = start + SimDuration::millis(lease_ms);
        let expect = spot_lease_charge(&trace, start, end, revoked);

        let mut meter = SpotLeaseMeter::new(&trace, start);
        let mut ticks: Vec<u64> = advances
            .iter()
            .map(|f| start_ms + (lease_ms as f64 * f) as u64)
            .collect();
        ticks.sort_unstable();
        for t in ticks {
            meter.advance_to(SimTime::millis(t));
        }
        let got = meter.close(end, revoked);

        prop_assert_eq!(
            got.to_bits(),
            expect.to_bits(),
            "meter {} != replay {} (start {}, end {}, revoked {})",
            got, expect, start, end, revoked
        );
    }

    #[test]
    fn accrued_never_exceeds_final_charge(
        trace in arb_trace(),
        lease_ms in 0u64..30 * MILLIS_PER_HOUR,
        cut in 0.0f64..1.0,
    ) {
        // Mid-lease accrual covers complete hours only, so it is a lower
        // bound on any settlement of the full lease.
        let start = SimTime::ZERO;
        let end = SimTime::millis(lease_ms);
        let mut meter = SpotLeaseMeter::new(&trace, start);
        meter.advance_to(SimTime::millis((lease_ms as f64 * cut) as u64));
        let accrued = meter.accrued();
        prop_assert!(accrued <= spot_lease_charge(&trace, start, end, true) + 1e-12);
        prop_assert!(accrued <= spot_lease_charge(&trace, start, end, false) + 1e-12);
    }
}
