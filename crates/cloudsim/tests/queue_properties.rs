//! Property-based tests of the discrete-event queue: it must behave as a
//! stable sort by (time, insertion order) under any push/pop interleaving.

use proptest::prelude::*;
use spothost_cloudsim::EventQueue;
use spothost_market::time::SimTime;

proptest! {
    #[test]
    fn drains_in_stable_time_order(times in prop::collection::vec(0u64..10_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::millis(t), i);
        }
        // Expected order: stable sort by time.
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, _)| t); // sort_by_key is stable
        let mut drained = Vec::new();
        while let Some((t, i)) = q.pop() {
            drained.push((t.as_millis(), i));
        }
        prop_assert_eq!(drained, expected);
    }

    #[test]
    fn interleaved_push_pop_never_goes_backwards(
        ops in prop::collection::vec((0u64..10_000, prop::bool::ANY), 1..300)
    ) {
        // Mixed pushes and pops: each popped timestamp must be >= the last
        // popped timestamp IF every push that happened before the pop was
        // for a time >= that last popped time. We enforce the scheduler's
        // actual usage pattern: pushes are never in the past relative to
        // the last pop (events schedule future events).
        let mut q = EventQueue::new();
        let mut now = 0u64;
        let mut pushed = 0usize;
        let mut popped = 0usize;
        for (t, is_pop) in ops {
            if is_pop {
                if let Some((at, _)) = q.pop() {
                    prop_assert!(at.as_millis() >= now, "time went backwards");
                    now = at.as_millis();
                    popped += 1;
                }
            } else {
                // Schedule in the future of the current clock.
                q.push(SimTime::millis(now + t), pushed);
                pushed += 1;
            }
        }
        prop_assert_eq!(q.len(), pushed - popped);
    }

    #[test]
    fn len_tracks_pushes_and_pops(n_push in 0usize..100, n_pop in 0usize..150) {
        let mut q = EventQueue::new();
        for i in 0..n_push {
            q.push(SimTime::millis(i as u64), i);
        }
        let mut actually_popped = 0;
        for _ in 0..n_pop {
            if q.pop().is_some() {
                actually_popped += 1;
            }
        }
        prop_assert_eq!(actually_popped, n_pop.min(n_push));
        prop_assert_eq!(q.len(), n_push - actually_popped);
        prop_assert_eq!(q.is_empty(), actually_popped == n_push);
    }
}
