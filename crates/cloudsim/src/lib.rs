//! # spothost-cloudsim
//!
//! A discrete-event simulator of a 2015-era infrastructure cloud (EC2), the
//! substrate on which the `spothost` scheduler runs. It reproduces the
//! provider-side semantics the paper relies on (§2.1):
//!
//! * **Two purchase modes** — non-revocable on-demand servers at a fixed
//!   hourly price, and revocable spot servers acquired by naming a maximum
//!   *bid* price.
//! * **Revocation** — the moment the spot price exceeds the bid, the server
//!   is marked for termination, with a two-minute grace window in which the
//!   guest may save state and shut down gracefully.
//! * **Hourly billing** — spot instance-hours are charged at the spot price
//!   in effect at the *start* of each instance-hour; a partial final hour is
//!   free when the provider revokes the server but charged in full when the
//!   customer terminates voluntarily. On-demand hours round up.
//! * **Allocation latency** — measured mean start-up times from the paper's
//!   Table 1 (~1.5 min on-demand, 3.5–4.5 min spot), with sampling jitter.
//! * **Network volumes** — EBS-style storage that survives revocation and
//!   re-attaches to replacement servers.

// Library code must not unwrap: every remaining panic site is either an
// invariant with an explanatory expect message or a documented
// precondition (see DESIGN.md "Failure semantics").
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod billing;
pub mod event;
pub mod instance;
pub mod provider;
pub mod startup;
pub mod volume;

pub use billing::{on_demand_lease_charge, spot_lease_charge, BillingLedger, LedgerEntry};
pub use event::EventQueue;
pub use instance::{Instance, InstanceId, InstanceKind, InstanceState, TerminationReason};
pub use provider::{CloudProvider, RequestError, RevocationSchedule};
pub use startup::StartupModel;
pub use volume::{NetworkVolume, VolumeError, VolumeId, VolumePool};

/// Re-export the shared clock so downstream crates need a single import.
pub use spothost_market::time::{SimDuration, SimTime};

/// The grace window a revoked spot server receives before forced
/// termination. The paper (§2.1) reports this as an initially undocumented,
/// later official, two-minute warning.
pub const REVOCATION_GRACE: SimDuration = SimDuration(120 * 1000);
