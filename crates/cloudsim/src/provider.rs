//! The cloud provider: allocation, revocation scheduling, billing.
//!
//! The provider is *omniscient about its own prices* (it sets them from the
//! trace), so it can tell a simulation driver exactly when a given lease
//! will be revoked — the driver schedules that as a future event. The
//! *customer-visible* API remains faithful to EC2: the scheduler only ever
//! learns of a revocation through the two-minute warning.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use crate::billing::{
    on_demand_lease_charge, spot_lease_charge, BillingLedger, LedgerEntry, SpotLeaseMeter,
};
use crate::instance::{Instance, InstanceId, InstanceKind, InstanceState, TerminationReason};
use crate::startup::StartupModel;
use crate::volume::VolumePool;
use crate::REVOCATION_GRACE;
use spothost_faults::{FaultPlan, StormSchedule, WarningFault};
use spothost_market::gen::{derive_seed, TraceSet};
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::trace::TraceCursor;
use spothost_market::types::{MarketId, Zone};

/// Errors from server requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestError {
    /// The market has no generated trace in this simulation.
    UnknownMarket(MarketId),
    /// Spot requests are only granted while the current price is at or
    /// below the bid.
    BidBelowPrice { current: f64, bid: f64 },
    /// The provider caps bids (Amazon: 4x on-demand, §3.1 footnote 1).
    BidAboveCap { cap: f64, bid: f64 },
    /// The market is (transiently) out of capacity — injected by a fault
    /// plan or a storm capacity crunch; real EC2 returns this for both
    /// spot and on-demand requests.
    InsufficientCapacity(MarketId),
    /// The global on-demand quota (a storm-model knob) is exhausted: the
    /// account already holds its maximum of concurrent on-demand servers
    /// and must wait for one to be released.
    QuotaExhausted(MarketId),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::UnknownMarket(m) => write!(f, "no trace for market {m}"),
            RequestError::BidBelowPrice { current, bid } => {
                write!(f, "bid {bid} below current spot price {current}")
            }
            RequestError::BidAboveCap { cap, bid } => {
                write!(f, "bid {bid} above provider cap {cap}")
            }
            RequestError::InsufficientCapacity(m) => {
                write!(f, "insufficient capacity in market {m}")
            }
            RequestError::QuotaExhausted(m) => {
                write!(f, "on-demand quota exhausted requesting in market {m}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// When a running spot lease will be revoked, if ever (within the horizon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevocationSchedule {
    /// When the spot price first exceeds the bid — the moment the
    /// revocation becomes inevitable on the provider side.
    pub crossing_at: SimTime,
    /// When the customer-visible warning is delivered. Normally equal to
    /// `crossing_at`; a fault plan may delay it (eating into the grace
    /// window) or suppress it entirely (`None` — pre-2015 EC2 gave no
    /// warning at all).
    pub warning_at: Option<SimTime>,
    /// Forced termination time (`crossing_at + REVOCATION_GRACE`),
    /// warning or no warning.
    pub terminate_at: SimTime,
}

/// The simulated cloud provider.
///
/// All price queries (`spot_price`, crossing scans, billing) go through
/// per-market [`TraceCursor`]s held behind a `RefCell`: the simulation
/// clock only moves forward, so every lookup is an amortised O(1) cursor
/// step instead of an O(log n) binary search, and the cursors are
/// invisible to callers (`&self` query methods keep their signatures).
/// A cursor handed an out-of-order timestamp simply resyncs, so
/// correctness never depends on monotonicity — only speed does.
#[derive(Debug)]
pub struct CloudProvider<'t> {
    traces: &'t TraceSet,
    startup: StartupModel,
    rng: ChaCha12Rng,
    instances: HashMap<InstanceId, Instance>,
    ledger: BillingLedger,
    volumes: VolumePool,
    next_id: u64,
    /// One forward cursor per market (dense-indexed, lazily created),
    /// shared by price lookups, revocation scans and reverse-migration
    /// scans. Interior mutability keeps the read-only query API
    /// (`spot_price(&self, ..)`) intact.
    market_cursors: RefCell<[Option<TraceCursor<'t>>; 16]>,
    /// Incremental billing meter for each *running* spot lease; created on
    /// activation, advanced as the simulation clock passes hour boundaries,
    /// consumed at termination.
    meters: HashMap<InstanceId, SpotLeaseMeter<'t>>,
    /// Injected provider faults. `None` (the default) is the infallible
    /// provider: requests always granted, servers always come up, warnings
    /// always on time.
    faults: Option<FaultPlan>,
    /// Correlated-failure storms: episode-modulated fault rates, capacity
    /// crunches, mass revocations and the global on-demand quota. `None`
    /// (the default) is the storm-free provider.
    storms: Option<StormSchedule>,
    /// On-demand servers currently held (granted and not yet terminated),
    /// counted against the storm model's global quota.
    od_active: u32,
    /// Instances whose startup was sabotaged by the fault plan: they reach
    /// their ready time but activation fails and they close unbilled.
    doomed: HashSet<InstanceId>,
}

impl<'t> CloudProvider<'t> {
    /// Build a provider over a trace set. The startup sampler derives its
    /// stream from `seed`, independent of trace generation.
    pub fn new(traces: &'t TraceSet, seed: u64) -> Self {
        CloudProvider {
            traces,
            startup: StartupModel::table1(),
            rng: ChaCha12Rng::seed_from_u64(derive_seed(seed, "provider-startup", 0)),
            instances: HashMap::new(),
            ledger: BillingLedger::new(),
            volumes: VolumePool::new(),
            next_id: 0,
            market_cursors: RefCell::new([const { None }; 16]),
            meters: HashMap::new(),
            faults: None,
            storms: None,
            od_active: 0,
            doomed: HashSet::new(),
        }
    }

    /// Attach a fault plan: requests, startups and warnings now fail with
    /// the plan's probabilities, on the plan's own random streams.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attach a storm schedule: fault rates are elevated during episodes,
    /// spot requests can hit capacity crunches, running leases are swept
    /// by mass revocations, and on-demand requests are bounded by the
    /// global quota. A schedule built from [`StormConfig::none`] is
    /// behaviourally identical to no schedule at all.
    ///
    /// [`StormConfig::none`]: spothost_faults::StormConfig::none
    pub fn with_storms(mut self, schedule: StormSchedule) -> Self {
        self.storms = Some(schedule);
        self
    }

    /// On-demand servers currently counted against the storm quota.
    pub fn on_demand_in_use(&self) -> u32 {
        self.od_active
    }

    /// Point the fault plan's storm multiplier at this zone and moment.
    /// The multiplier lingers until the next call, so draws without their
    /// own market context (volume attach) inherit the most recent one —
    /// deterministic either way, and those draws belong to the recovery
    /// the storm just forced.
    fn apply_storm_rates(&mut self, zone: Zone, at: SimTime) {
        if let (Some(s), Some(f)) = (&self.storms, &mut self.faults) {
            f.set_storm_multiplier(s.fault_multiplier(zone, at));
        }
    }

    /// Release one unit of the on-demand quota when an on-demand server
    /// leaves the fleet.
    fn release_od(&mut self, kind: InstanceKind) {
        if matches!(kind, InstanceKind::OnDemand) {
            self.od_active = self.od_active.saturating_sub(1);
        }
    }

    /// Run `f` against the (lazily created) forward cursor for `market`.
    /// Returns `None` when the market has no trace in this simulation.
    fn with_cursor<R>(
        &self,
        market: MarketId,
        f: impl FnOnce(&mut TraceCursor<'t>) -> R,
    ) -> Option<R> {
        let mut cursors = self.market_cursors.borrow_mut();
        let slot = &mut cursors[market.dense_index()];
        if slot.is_none() {
            *slot = Some(self.traces.trace(market)?.cursor());
        }
        Some(f(slot.as_mut().expect("just filled")))
    }

    /// Replace the startup model (tests use [`StartupModel::deterministic`]).
    pub fn with_startup_model(mut self, model: StartupModel) -> Self {
        self.startup = model;
        self
    }

    pub fn traces(&self) -> &'t TraceSet {
        self.traces
    }

    pub fn volumes_mut(&mut self) -> &mut VolumePool {
        &mut self.volumes
    }

    pub fn volumes(&self) -> &VolumePool {
        &self.volumes
    }

    /// Current spot price of a market.
    pub fn spot_price(&self, market: MarketId, at: SimTime) -> Option<f64> {
        self.with_cursor(market, |c| c.price_at(at))
    }

    /// Fixed on-demand price of a market.
    pub fn on_demand_price(&self, market: MarketId) -> f64 {
        self.traces.catalog().on_demand_price(market)
    }

    /// Earliest time `>= from` when the market trades at or below `price`
    /// (used by the scheduler to decide when a reverse migration becomes
    /// attractive).
    pub fn next_time_at_or_below(
        &self,
        market: MarketId,
        from: SimTime,
        price: f64,
    ) -> Option<SimTime> {
        self.with_cursor(market, |c| c.next_time_at_or_below(from, price))?
    }

    fn fresh_id(&mut self) -> InstanceId {
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Request a spot server. Granted only if the current price is at or
    /// below `bid` and `bid` does not exceed the provider cap. Returns the
    /// instance id and the time the server becomes ready.
    pub fn request_spot(
        &mut self,
        market: MarketId,
        bid: f64,
        now: SimTime,
    ) -> Result<(InstanceId, SimTime), RequestError> {
        if self.traces.trace(market).is_none() {
            return Err(RequestError::UnknownMarket(market));
        }
        let cap = self.traces.catalog().max_bid(market);
        if bid > cap + 1e-12 {
            return Err(RequestError::BidAboveCap { cap, bid });
        }
        let current = self
            .with_cursor(market, |c| c.price_at(now))
            .expect("trace presence checked above");
        if current > bid {
            return Err(RequestError::BidBelowPrice { current, bid });
        }
        self.apply_storm_rates(market.zone, now);
        if let Some(f) = &mut self.faults {
            if f.spot_capacity_fault() {
                return Err(RequestError::InsufficientCapacity(market));
            }
        }
        if let Some(s) = &mut self.storms {
            // Storm capacity crunch: the market is drained by everyone
            // else's correlated recovery.
            if s.crunch_fault(market.zone, now) {
                return Err(RequestError::InsufficientCapacity(market));
            }
        }
        let latency = self
            .startup
            .sample_spot(&mut self.rng, market.zone.region());
        let id = self.fresh_id();
        self.maybe_doom(id);
        let ready_at = now + latency;
        self.instances.insert(
            id,
            Instance {
                id,
                market,
                kind: InstanceKind::Spot { bid },
                requested_at: now,
                ready_at,
                state: InstanceState::Pending { ready_at },
            },
        );
        Ok((id, ready_at))
    }

    /// Request an on-demand server. Always granted by the fault-free
    /// provider; a fault plan can reject it with
    /// [`RequestError::InsufficientCapacity`], and a storm schedule's
    /// global quota with [`RequestError::QuotaExhausted`] once
    /// [`on_demand_in_use`](Self::on_demand_in_use) reaches the quota.
    /// The quota check is deterministic and advances no random stream.
    pub fn request_on_demand(
        &mut self,
        market: MarketId,
        now: SimTime,
    ) -> Result<(InstanceId, SimTime), RequestError> {
        if let Some(s) = &self.storms {
            let quota = s.od_quota();
            if quota > 0 && self.od_active >= quota {
                return Err(RequestError::QuotaExhausted(market));
            }
        }
        self.apply_storm_rates(market.zone, now);
        if let Some(f) = &mut self.faults {
            if f.od_capacity_fault() {
                return Err(RequestError::InsufficientCapacity(market));
            }
        }
        if let Some(s) = &mut self.storms {
            // A crunched zone is out of servers of *either* kind — the
            // correlated recovery draining the spot pools empties the
            // on-demand pool right behind them. This is what makes
            // fleeing to a calm zone beat queueing in the storming one.
            if s.crunch_fault(market.zone, now) {
                return Err(RequestError::InsufficientCapacity(market));
            }
        }
        let latency = self
            .startup
            .sample_on_demand(&mut self.rng, market.zone.region());
        let id = self.fresh_id();
        self.maybe_doom(id);
        let ready_at = now + latency;
        self.instances.insert(
            id,
            Instance {
                id,
                market,
                kind: InstanceKind::OnDemand,
                requested_at: now,
                ready_at,
                state: InstanceState::Pending { ready_at },
            },
        );
        self.od_active += 1;
        Ok((id, ready_at))
    }

    /// Draw the startup-failure fault for a freshly granted request.
    fn maybe_doom(&mut self, id: InstanceId) {
        if let Some(f) = &mut self.faults {
            if f.startup_failure() {
                self.doomed.insert(id);
            }
        }
    }

    /// Is this pending instance fated to fail activation? Lets callers
    /// distinguish an injected startup fault from a legitimate spot
    /// price-rise failure when [`CloudProvider::activate`] returns false.
    pub fn is_doomed(&self, id: InstanceId) -> bool {
        self.doomed.contains(&id)
    }

    /// Extra delay before a checkpoint volume is attached to a replacement
    /// server. Zero without a fault plan.
    pub fn volume_attach_delay(&mut self) -> SimDuration {
        self.faults
            .as_mut()
            .map_or(SimDuration::ZERO, |f| f.volume_attach_delay())
    }

    /// Transition a pending instance to running at its ready time. The
    /// allocation *fails* (returns `false`; the instance is closed
    /// unbilled and the caller must re-request) when a spot price has
    /// risen above the bid while the server was booting, or when the fault
    /// plan doomed this startup. Unknown or already-terminated instances
    /// also return `false`; re-activating a running instance is a no-op
    /// returning `true`.
    pub fn activate(&mut self, id: InstanceId, now: SimTime) -> bool {
        let Some(inst) = self.instances.get_mut(&id) else {
            return false;
        };
        let InstanceState::Pending { ready_at } = inst.state else {
            return matches!(inst.state, InstanceState::Running);
        };
        debug_assert_eq!(now, ready_at, "activation must happen at the ready time");
        let (market, kind) = (inst.market, inst.kind);
        let doomed = self.doomed.remove(&id);
        let fail = |inst: &mut Instance| {
            inst.state = InstanceState::Terminated {
                at: now,
                reason: TerminationReason::FailedAllocation,
            };
        };
        if doomed {
            // Injected startup failure: the server never comes up, for
            // spot and on-demand alike. Closed unbilled.
            if let Some(inst) = self.instances.get_mut(&id) {
                fail(inst);
            }
            self.release_od(kind);
            return false;
        }
        if let InstanceKind::Spot { bid } = kind {
            let Some(price) = self.with_cursor(market, |c| c.price_at(now)) else {
                // Market has no trace (cannot happen for instances created
                // through request_spot): treat as a failed allocation.
                if let Some(inst) = self.instances.get_mut(&id) {
                    fail(inst);
                }
                return false;
            };
            if price > bid {
                if let Some(inst) = self.instances.get_mut(&id) {
                    fail(inst);
                }
                return false;
            }
            // Lease is live: start its incremental billing meter at the
            // moment billing starts (the ready time).
            if let Some(trace) = self.traces.trace(market) {
                self.meters.insert(id, SpotLeaseMeter::new(trace, now));
            }
        }
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.state = InstanceState::Running;
            inst.ready_at = now;
        }
        true
    }

    /// Advance the billing meter of a running spot lease to `now`, charging
    /// any instance-hours that have completed. The scheduler calls this from
    /// billing-boundary events so that termination-time settlement only ever
    /// has the final (at most one) partial hour left to account for. Calling
    /// it is purely an optimisation: skipped calls are caught up by the next
    /// one or by [`terminate`](Self::terminate).
    pub fn advance_billing(&mut self, id: InstanceId, now: SimTime) {
        if let Some(meter) = self.meters.get_mut(&id) {
            meter.advance_to(now);
        }
    }

    /// When will this running spot lease be revoked? `None` for on-demand
    /// instances and for spot leases whose bid is never exceeded within the
    /// trace horizon. The simulation driver schedules the returned times as
    /// events; the customer-visible warning is `warning_at`, which a fault
    /// plan may delay or suppress (one warning-fault draw per call, so
    /// callers should ask once per armed lease). Under a storm schedule
    /// the effective revocation is the *earlier* of the price crossing and
    /// the zone's next mass-revocation sweep — a sweep revokes the lease
    /// even while the price sits below the bid.
    pub fn revocation_schedule(
        &mut self,
        id: InstanceId,
        from: SimTime,
    ) -> Option<RevocationSchedule> {
        let inst = self.instances.get(&id)?;
        let bid = inst.kind.bid()?;
        let market = inst.market;
        let price_cross = self.with_cursor(market, |c| c.next_time_above(from, bid))?;
        let mass = self
            .storms
            .as_ref()
            .and_then(|s| s.next_mass_revocation(market.zone, from));
        let crossing_at = match (price_cross, mass) {
            (Some(p), Some(m)) => p.min(m),
            (Some(p), None) => p,
            (None, Some(m)) => m,
            (None, None) => return None,
        };
        self.apply_storm_rates(market.zone, crossing_at);
        let warning_at = match &mut self.faults {
            Some(f) => match f.warning_fault(REVOCATION_GRACE) {
                WarningFault::Delivered => Some(crossing_at),
                WarningFault::Delayed(d) => Some(crossing_at + d),
                WarningFault::Missing => None,
            },
            None => Some(crossing_at),
        };
        Some(RevocationSchedule {
            crossing_at,
            warning_at,
            terminate_at: crossing_at + REVOCATION_GRACE,
        })
    }

    /// Mark a running spot instance as revocation-pending (the warning has
    /// been delivered). No-op for unknown or non-running instances.
    pub fn begin_revocation(&mut self, id: InstanceId, warning_at: SimTime) {
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if !matches!(inst.state, InstanceState::Running) {
            return;
        }
        inst.state = InstanceState::RevocationPending {
            terminate_at: warning_at + REVOCATION_GRACE,
        };
    }

    /// Close a lease and bill it. Returns the charge. Idempotent: unknown
    /// instances and repeat terminations charge nothing (the first
    /// termination settled the lease; under injected faults the scheduler
    /// may legitimately race its own cleanup events).
    pub fn terminate(&mut self, id: InstanceId, now: SimTime, reason: TerminationReason) -> f64 {
        let Some(inst) = self.instances.get_mut(&id) else {
            return 0.0;
        };
        if inst.is_terminated() {
            return 0.0;
        }
        let was_pending = matches!(inst.state, InstanceState::Pending { .. });
        inst.state = InstanceState::Terminated { at: now, reason };
        let (market, kind, lease_start) = (inst.market, inst.kind, inst.ready_at);
        self.release_od(kind);
        self.volumes.detach_all_from(id);

        // A request cancelled before the server came up is free.
        if was_pending || reason == TerminationReason::FailedAllocation {
            self.meters.remove(&id);
            return 0.0;
        }
        let amount = match kind {
            InstanceKind::Spot { .. } => {
                let revoked = reason == TerminationReason::Revoked;
                match self.meters.remove(&id) {
                    // Hot path: settle the incremental meter — only the
                    // final partial hour (if owed) is left to charge.
                    Some(meter) => meter.close(now, revoked),
                    // No meter (lease created outside activate()): replay.
                    None => {
                        let trace = self.traces.trace(market).expect("market vanished");
                        spot_lease_charge(trace, lease_start, now, revoked)
                    }
                }
            }
            InstanceKind::OnDemand => {
                on_demand_lease_charge(self.on_demand_price(market), lease_start, now)
            }
        };
        self.ledger.record(LedgerEntry {
            instance: id,
            market,
            kind,
            start: lease_start,
            end: now,
            reason,
            amount,
        });
        amount
    }

    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id)
    }

    pub fn ledger(&self) -> &BillingLedger {
        &self.ledger
    }

    /// Number of instances ever created (for diagnostics).
    pub fn instances_created(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_market::catalog::Catalog;
    use spothost_market::model::SpotModelParams;
    use spothost_market::time::SimDuration;
    use spothost_market::types::{InstanceType, Zone};

    fn market() -> MarketId {
        MarketId::new(Zone::UsEast1a, InstanceType::Small)
    }

    /// A trace set with a hand-built price pattern: cheap, then a spike at
    /// day 1 lasting 30 minutes, then cheap again.
    fn traces() -> TraceSet {
        // Use a quiet custom model and rely on generate_with determinism:
        // simplest is a near-degenerate model, but we want exact control,
        // so we build the TraceSet through the public generator with an
        // almost-flat model and then rely on explicit trace queries in
        // provider methods. For precise billing tests we use the flat
        // pricing below.
        let catalog = Catalog::ec2_2015();
        let mut params = SpotModelParams::default_market();
        params.sigma = 0.01;
        params.spike_rate_per_day = 0.0;
        params.zone_spike_rate_per_day = 0.0;
        params.elevated_base_mult = 1.0001;
        TraceSet::generate_with(
            &catalog,
            &[(market(), params)],
            1,
            spothost_market::time::SimDuration::days(7),
        )
    }

    #[test]
    fn spot_request_grant_and_activate() {
        let ts = traces();
        let mut p = CloudProvider::new(&ts, 7).with_startup_model(StartupModel::deterministic());
        let pon = p.on_demand_price(market());
        let (id, ready) = p.request_spot(market(), pon, SimTime::ZERO).unwrap();
        assert!(ready > SimTime::ZERO);
        assert!(p.activate(id, ready));
        assert!(p.instance(id).unwrap().is_running());
    }

    #[test]
    fn spot_request_rejected_when_bid_below_price() {
        let ts = traces();
        let mut p = CloudProvider::new(&ts, 7);
        let err = p.request_spot(market(), 1e-6, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, RequestError::BidBelowPrice { .. }));
    }

    #[test]
    fn bid_cap_enforced() {
        let ts = traces();
        let mut p = CloudProvider::new(&ts, 7);
        let pon = p.on_demand_price(market());
        let err = p
            .request_spot(market(), pon * 10.0, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, RequestError::BidAboveCap { .. }));
        // Exactly the cap is fine.
        assert!(p.request_spot(market(), pon * 4.0, SimTime::ZERO).is_ok());
    }

    #[test]
    fn on_demand_always_granted_and_billed_rounded_up() {
        let ts = traces();
        let mut p = CloudProvider::new(&ts, 7).with_startup_model(StartupModel::deterministic());
        let (id, ready) = p.request_on_demand(market(), SimTime::ZERO).unwrap();
        assert!(p.activate(id, ready));
        let end = ready + SimDuration::minutes(90);
        let charge = p.terminate(id, end, TerminationReason::Voluntary);
        let pon = p.on_demand_price(market());
        assert!((charge - 2.0 * pon).abs() < 1e-12);
        assert!((p.ledger().total() - charge).abs() < 1e-12);
    }

    #[test]
    fn revocation_schedule_none_when_bid_never_exceeded() {
        let ts = traces();
        let mut p = CloudProvider::new(&ts, 7).with_startup_model(StartupModel::deterministic());
        let pon = p.on_demand_price(market());
        // Quiet trace never crosses 4x on-demand.
        let (id, ready) = p.request_spot(market(), pon * 4.0, SimTime::ZERO).unwrap();
        p.activate(id, ready);
        assert_eq!(p.revocation_schedule(id, ready), None);
    }

    #[test]
    fn pending_cancellation_is_free() {
        let ts = traces();
        let mut p = CloudProvider::new(&ts, 7);
        let pon = p.on_demand_price(market());
        let (id, _ready) = p.request_spot(market(), pon, SimTime::ZERO).unwrap();
        let charge = p.terminate(id, SimTime::secs(10), TerminationReason::Voluntary);
        assert_eq!(charge, 0.0);
        assert_eq!(p.ledger().entries().len(), 0);
    }

    #[test]
    fn double_termination_is_idempotent() {
        let ts = traces();
        let mut p = CloudProvider::new(&ts, 7).with_startup_model(StartupModel::deterministic());
        let (id, ready) = p.request_on_demand(market(), SimTime::ZERO).unwrap();
        p.activate(id, ready);
        let first = p.terminate(
            id,
            ready + SimDuration::hours(1),
            TerminationReason::Voluntary,
        );
        assert!(first > 0.0);
        // A second termination (stale cleanup event) charges nothing and
        // leaves the ledger untouched.
        let second = p.terminate(
            id,
            ready + SimDuration::hours(2),
            TerminationReason::Voluntary,
        );
        assert_eq!(second, 0.0);
        assert!((p.ledger().total() - first).abs() < 1e-12);
        // Unknown instances are a no-op too.
        assert_eq!(
            p.terminate(InstanceId(9999), ready, TerminationReason::Voluntary),
            0.0
        );
    }

    #[test]
    fn volume_reattach_across_revocation() {
        let ts = traces();
        let mut p = CloudProvider::new(&ts, 7).with_startup_model(StartupModel::deterministic());
        let pon = p.on_demand_price(market());
        let (spot, ready) = p.request_spot(market(), pon, SimTime::ZERO).unwrap();
        p.activate(spot, ready);
        let vol = p.volumes_mut().create(16.0);
        p.volumes_mut().attach(vol, spot).unwrap();
        p.volumes_mut().write_checkpoint(vol, 2.0).unwrap();

        // Revocation: lease closes, volume persists, re-attaches.
        p.terminate(
            spot,
            ready + SimDuration::minutes(30),
            TerminationReason::Revoked,
        );
        assert_eq!(p.volumes().get(vol).unwrap().attached_to, None);
        assert_eq!(p.volumes().get(vol).unwrap().checkpoint_gib, 2.0);

        let (od, od_ready) = p
            .request_on_demand(market(), ready + SimDuration::minutes(30))
            .unwrap();
        p.activate(od, od_ready);
        p.volumes_mut().attach(vol, od).unwrap();
        assert_eq!(p.volumes().get(vol).unwrap().attached_to, Some(od));
    }

    #[test]
    fn incremental_meter_matches_replay_bit_for_bit() {
        let ts = traces();
        let mut p = CloudProvider::new(&ts, 7).with_startup_model(StartupModel::deterministic());
        let pon = p.on_demand_price(market());
        let (id, ready) = p.request_spot(market(), pon, SimTime::ZERO).unwrap();
        assert!(p.activate(id, ready));
        // Advance the meter mid-lease (as the scheduler does on billing
        // boundaries), then settle voluntarily mid-hour.
        p.advance_billing(id, ready + SimDuration::minutes(95));
        p.advance_billing(id, ready + SimDuration::hours(3));
        let end = ready + SimDuration::minutes(250);
        let charge = p.terminate(id, end, TerminationReason::Voluntary);
        let expect = spot_lease_charge(ts.trace(market()).unwrap(), ready, end, false);
        assert_eq!(charge.to_bits(), expect.to_bits());
    }

    #[test]
    fn full_capacity_fault_rate_rejects_every_request() {
        use spothost_faults::{FaultConfig, FaultPlan};
        let ts = traces();
        let mut cfg = FaultConfig::none();
        cfg.spot_capacity_rate = 1.0;
        cfg.od_capacity_rate = 1.0;
        let mut p = CloudProvider::new(&ts, 7)
            .with_startup_model(StartupModel::deterministic())
            .with_faults(FaultPlan::new(cfg, 7));
        let pon = p.on_demand_price(market());
        assert!(matches!(
            p.request_spot(market(), pon, SimTime::ZERO),
            Err(RequestError::InsufficientCapacity(_))
        ));
        assert!(matches!(
            p.request_on_demand(market(), SimTime::ZERO),
            Err(RequestError::InsufficientCapacity(_))
        ));
        assert_eq!(p.instances_created(), 0);
    }

    #[test]
    fn doomed_startup_fails_activation_unbilled() {
        use spothost_faults::{FaultConfig, FaultPlan};
        let ts = traces();
        let mut cfg = FaultConfig::none();
        cfg.startup_failure_rate = 1.0;
        let mut p = CloudProvider::new(&ts, 7)
            .with_startup_model(StartupModel::deterministic())
            .with_faults(FaultPlan::new(cfg, 7));
        let (id, ready) = p.request_on_demand(market(), SimTime::ZERO).unwrap();
        assert!(!p.activate(id, ready));
        let inst = p.instance(id).unwrap();
        assert!(inst.is_terminated());
        let charge = p.terminate(id, ready, TerminationReason::Voluntary);
        assert_eq!(charge, 0.0);
        assert_eq!(p.ledger().entries().len(), 0);
    }

    #[test]
    fn warning_faults_shape_revocation_schedule() {
        use spothost_faults::{FaultConfig, FaultPlan};
        let catalog = Catalog::ec2_2015();
        // Stormy enough that a low bid is crossed within the horizon.
        let mut params = SpotModelParams::default_market();
        params.spike_rate_per_day = 6.0;
        let ts = TraceSet::generate_with(&catalog, &[(market(), params)], 2, SimDuration::days(7));
        let pon = catalog.on_demand_price(market());

        let schedule_with = |cfg: FaultConfig| {
            let mut p = CloudProvider::new(&ts, 7)
                .with_startup_model(StartupModel::deterministic())
                .with_faults(FaultPlan::new(cfg, 7));
            let (id, ready) = p.request_spot(market(), pon, SimTime::ZERO).unwrap();
            assert!(p.activate(id, ready));
            p.revocation_schedule(id, ready)
                .expect("stormy trace must cross the bid")
        };

        let mut missing = FaultConfig::none();
        missing.warning_miss_rate = 1.0;
        let s = schedule_with(missing);
        assert_eq!(s.warning_at, None);
        assert_eq!(s.terminate_at, s.crossing_at + REVOCATION_GRACE);

        let mut delayed = FaultConfig::none();
        delayed.warning_delay_rate = 1.0;
        let s = schedule_with(delayed);
        let w = s.warning_at.expect("delayed, not missing");
        assert!(w > s.crossing_at && w <= s.terminate_at);

        let s = schedule_with(FaultConfig::none());
        assert_eq!(s.warning_at, Some(s.crossing_at));
    }

    #[test]
    fn od_quota_rejects_then_releases() {
        use spothost_faults::{StormConfig, StormSchedule};
        let ts = traces();
        let mut cfg = StormConfig::none();
        cfg.od_quota = 1;
        let spans = [const { Vec::new() }; 4];
        let storms = StormSchedule::new(cfg, 7, SimDuration::days(7), &spans);
        let mut p = CloudProvider::new(&ts, 7)
            .with_startup_model(StartupModel::deterministic())
            .with_storms(storms);
        let (first, ready) = p.request_on_demand(market(), SimTime::ZERO).unwrap();
        assert_eq!(p.on_demand_in_use(), 1);
        assert!(matches!(
            p.request_on_demand(market(), SimTime::ZERO),
            Err(RequestError::QuotaExhausted(_))
        ));
        p.activate(first, ready);
        p.terminate(
            first,
            ready + SimDuration::hours(1),
            TerminationReason::Voluntary,
        );
        assert_eq!(p.on_demand_in_use(), 0);
        assert!(p
            .request_on_demand(market(), ready + SimDuration::hours(1))
            .is_ok());
    }

    #[test]
    fn mass_revocation_revokes_even_below_bid() {
        use spothost_faults::{StormConfig, StormSchedule};
        let ts = traces();
        let mut cfg = StormConfig::none();
        cfg.episodes_per_day = 12.0;
        cfg.mean_episode = SimDuration::hours(6);
        cfg.mass_revocations_per_day = 48.0;
        let spans = [const { Vec::new() }; 4];
        let storms = StormSchedule::new(cfg, 21, SimDuration::days(7), &spans);
        let sweep = storms
            .next_mass_revocation(market().zone, SimTime::ZERO)
            .expect("heavy storm config must schedule sweeps");
        let mut p = CloudProvider::new(&ts, 7)
            .with_startup_model(StartupModel::deterministic())
            .with_storms(storms);
        let pon = p.on_demand_price(market());
        // Quiet trace never crosses 4x on-demand, so any revocation the
        // schedule reports comes from the mass sweep.
        let (id, ready) = p.request_spot(market(), pon * 4.0, SimTime::ZERO).unwrap();
        assert!(p.activate(id, ready));
        let s = p
            .revocation_schedule(id, ready)
            .expect("mass sweep forces a revocation");
        assert!(s.crossing_at >= sweep);
        assert_eq!(s.terminate_at, s.crossing_at + REVOCATION_GRACE);
    }

    #[test]
    fn capacity_crunch_rejects_spot_during_episode() {
        use spothost_faults::{StormConfig, StormSchedule};
        let ts = traces();
        let mut cfg = StormConfig::none();
        cfg.episodes_per_day = 12.0;
        cfg.mean_episode = SimDuration::hours(6);
        cfg.capacity_crunch_rate = 1.0;
        let spans = [const { Vec::new() }; 4];
        let storms = StormSchedule::new(cfg, 21, SimDuration::days(7), &spans);
        let zone = market().zone;
        let episode = storms.episodes(zone).first().copied().expect("episodes");
        let mut p = CloudProvider::new(&ts, 7)
            .with_startup_model(StartupModel::deterministic())
            .with_storms(storms);
        let pon = p.on_demand_price(market());
        // Outside any episode the request sails through; inside, the
        // certain crunch drains it.
        if episode.start > SimTime::ZERO {
            assert!(p.request_spot(market(), pon, SimTime::ZERO).is_ok());
        }
        assert!(matches!(
            p.request_spot(market(), pon, episode.start),
            Err(RequestError::InsufficientCapacity(_))
        ));
        // On-demand is crunched too: a drained zone has no servers of
        // either kind to grant.
        assert!(matches!(
            p.request_on_demand(market(), episode.start),
            Err(RequestError::InsufficientCapacity(_))
        ));
        assert_eq!(p.on_demand_in_use(), 0, "crunched request grants nothing");
    }

    #[test]
    fn revoked_partial_hour_not_billed() {
        let ts = traces();
        let mut p = CloudProvider::new(&ts, 7).with_startup_model(StartupModel::deterministic());
        let pon = p.on_demand_price(market());
        let (id, ready) = p.request_spot(market(), pon, SimTime::ZERO).unwrap();
        p.activate(id, ready);
        // Revoked 30 minutes into the lease: zero charge.
        let charge = p.terminate(
            id,
            ready + SimDuration::minutes(30),
            TerminationReason::Revoked,
        );
        assert_eq!(charge, 0.0);
    }
}
