//! EBS-style network volumes.
//!
//! The paper's entire approach leans on networked storage (§3): disk state
//! lives on a volume that *survives* spot revocation and simply re-attaches
//! to the replacement server, and memory checkpoints are written to such a
//! volume so they outlive the revoked server. This module models the
//! attach/detach protocol and the persistence guarantee.

use crate::instance::InstanceId;
use std::collections::HashMap;
use std::fmt;

/// Opaque volume handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VolumeId(pub u64);

impl fmt::Display for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vol-{:06}", self.0)
    }
}

/// Errors from the volume attach/detach protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeError {
    NoSuchVolume(VolumeId),
    /// A volume can be attached to at most one instance at a time.
    AlreadyAttached(VolumeId, InstanceId),
    NotAttached(VolumeId),
}

impl fmt::Display for VolumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VolumeError::NoSuchVolume(v) => write!(f, "{v} does not exist"),
            VolumeError::AlreadyAttached(v, i) => write!(f, "{v} is already attached to {i}"),
            VolumeError::NotAttached(v) => write!(f, "{v} is not attached"),
        }
    }
}

impl std::error::Error for VolumeError {}

/// One network volume.
#[derive(Debug, Clone)]
pub struct NetworkVolume {
    pub id: VolumeId,
    pub size_gib: f64,
    pub attached_to: Option<InstanceId>,
    /// Bytes of checkpoint state currently resident, in GiB. Written by the
    /// checkpointing engine, consumed by restore.
    pub checkpoint_gib: f64,
}

/// The provider-side volume service.
#[derive(Debug, Default)]
pub struct VolumePool {
    volumes: HashMap<VolumeId, NetworkVolume>,
    next_id: u64,
}

impl VolumePool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty volume of the given size.
    pub fn create(&mut self, size_gib: f64) -> VolumeId {
        assert!(size_gib > 0.0);
        let id = VolumeId(self.next_id);
        self.next_id += 1;
        self.volumes.insert(
            id,
            NetworkVolume {
                id,
                size_gib,
                attached_to: None,
                checkpoint_gib: 0.0,
            },
        );
        id
    }

    pub fn get(&self, id: VolumeId) -> Option<&NetworkVolume> {
        self.volumes.get(&id)
    }

    pub fn attach(&mut self, id: VolumeId, instance: InstanceId) -> Result<(), VolumeError> {
        let vol = self
            .volumes
            .get_mut(&id)
            .ok_or(VolumeError::NoSuchVolume(id))?;
        match vol.attached_to {
            Some(existing) if existing != instance => {
                Err(VolumeError::AlreadyAttached(id, existing))
            }
            _ => {
                vol.attached_to = Some(instance);
                Ok(())
            }
        }
    }

    pub fn detach(&mut self, id: VolumeId) -> Result<(), VolumeError> {
        let vol = self
            .volumes
            .get_mut(&id)
            .ok_or(VolumeError::NoSuchVolume(id))?;
        if vol.attached_to.is_none() {
            return Err(VolumeError::NotAttached(id));
        }
        vol.attached_to = None;
        Ok(())
    }

    /// Called when an instance dies: its volumes detach but *persist* —
    /// the EBS guarantee the paper's naive approach already relies on.
    pub fn detach_all_from(&mut self, instance: InstanceId) {
        for vol in self.volumes.values_mut() {
            if vol.attached_to == Some(instance) {
                vol.attached_to = None;
            }
        }
    }

    /// Record checkpoint state written to a volume.
    pub fn write_checkpoint(&mut self, id: VolumeId, gib: f64) -> Result<(), VolumeError> {
        let vol = self
            .volumes
            .get_mut(&id)
            .ok_or(VolumeError::NoSuchVolume(id))?;
        vol.checkpoint_gib = gib.min(vol.size_gib);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.volumes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.volumes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_attach_detach_roundtrip() {
        let mut pool = VolumePool::new();
        let v = pool.create(100.0);
        let i = InstanceId(1);
        pool.attach(v, i).unwrap();
        assert_eq!(pool.get(v).unwrap().attached_to, Some(i));
        pool.detach(v).unwrap();
        assert_eq!(pool.get(v).unwrap().attached_to, None);
    }

    #[test]
    fn double_attach_rejected() {
        let mut pool = VolumePool::new();
        let v = pool.create(8.0);
        pool.attach(v, InstanceId(1)).unwrap();
        // Re-attach to the same instance is idempotent.
        pool.attach(v, InstanceId(1)).unwrap();
        // But a different instance is refused.
        assert_eq!(
            pool.attach(v, InstanceId(2)),
            Err(VolumeError::AlreadyAttached(v, InstanceId(1)))
        );
    }

    #[test]
    fn volume_survives_instance_death() {
        let mut pool = VolumePool::new();
        let v = pool.create(8.0);
        pool.attach(v, InstanceId(9)).unwrap();
        pool.write_checkpoint(v, 2.0).unwrap();
        // Instance dies (revoked): volume persists with its data.
        pool.detach_all_from(InstanceId(9));
        let vol = pool.get(v).unwrap();
        assert_eq!(vol.attached_to, None);
        assert_eq!(vol.checkpoint_gib, 2.0);
        // Re-attach to the replacement.
        pool.attach(v, InstanceId(10)).unwrap();
    }

    #[test]
    fn checkpoint_clamped_to_volume_size() {
        let mut pool = VolumePool::new();
        let v = pool.create(4.0);
        pool.write_checkpoint(v, 16.0).unwrap();
        assert_eq!(pool.get(v).unwrap().checkpoint_gib, 4.0);
    }

    #[test]
    fn errors_for_missing_volumes() {
        let mut pool = VolumePool::new();
        let ghost = VolumeId(99);
        assert_eq!(pool.detach(ghost), Err(VolumeError::NoSuchVolume(ghost)));
        assert_eq!(
            pool.attach(ghost, InstanceId(0)),
            Err(VolumeError::NoSuchVolume(ghost))
        );
        let v = pool.create(1.0);
        assert_eq!(pool.detach(v), Err(VolumeError::NotAttached(v)));
    }
}
