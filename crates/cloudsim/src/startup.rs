//! Server allocation latency, parameterised by the paper's Table 1.
//!
//! | Instance type | US East (s) | US West (s) | EU West (s) |
//! |---------------|-------------|-------------|-------------|
//! | On-demand     | 94.85       | 93.63       | 98.08       |
//! | Spot          | 281.47      | 219.77      | 233.37      |
//!
//! Individual allocations jitter around these means; we sample a truncated
//! normal with a 12% coefficient of variation (the paper reports means over
//! multiple runs but not variances; 12% reflects the typical spread of EC2
//! boot times reported in contemporaneous measurement studies).

use rand::Rng;
use spothost_market::dist;
use spothost_market::time::SimDuration;
use spothost_market::types::Region;

/// Coefficient of variation applied to the Table 1 means.
const STARTUP_CV: f64 = 0.12;

/// Minimum plausible allocation time; samples are truncated here.
const MIN_STARTUP_SECS: f64 = 30.0;

/// Mean allocation latency model (Table 1).
#[derive(Debug, Clone)]
pub struct StartupModel {
    on_demand_mean_secs: [f64; 3],
    spot_mean_secs: [f64; 3],
    cv: f64,
}

fn region_index(region: Region) -> usize {
    match region {
        Region::UsEast1 => 0,
        Region::UsWest1 => 1,
        Region::EuWest1 => 2,
    }
}

impl StartupModel {
    /// The paper's measured means.
    pub fn table1() -> Self {
        StartupModel {
            on_demand_mean_secs: [94.85, 93.63, 98.08],
            spot_mean_secs: [281.47, 219.77, 233.37],
            cv: STARTUP_CV,
        }
    }

    /// A deterministic model (zero variance) for tests that need exact
    /// timings.
    pub fn deterministic() -> Self {
        StartupModel {
            cv: 0.0,
            ..Self::table1()
        }
    }

    pub fn on_demand_mean(&self, region: Region) -> SimDuration {
        SimDuration::secs_f64(self.on_demand_mean_secs[region_index(region)])
    }

    pub fn spot_mean(&self, region: Region) -> SimDuration {
        SimDuration::secs_f64(self.spot_mean_secs[region_index(region)])
    }

    /// Sample one on-demand allocation latency.
    pub fn sample_on_demand<R: Rng + ?Sized>(&self, rng: &mut R, region: Region) -> SimDuration {
        self.sample(rng, self.on_demand_mean_secs[region_index(region)])
    }

    /// Sample one spot allocation latency. Spot allocation is slower: the
    /// provider routes the request through the spot-market clearing process
    /// (Table 1 shows 3.5–4.5 minutes vs ~1.5 for on-demand).
    pub fn sample_spot<R: Rng + ?Sized>(&self, rng: &mut R, region: Region) -> SimDuration {
        self.sample(rng, self.spot_mean_secs[region_index(region)])
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, mean_secs: f64) -> SimDuration {
        if self.cv == 0.0 {
            return SimDuration::secs_f64(mean_secs);
        }
        let s = dist::normal(rng, mean_secs, mean_secs * self.cv);
        SimDuration::secs_f64(s.max(MIN_STARTUP_SECS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn spot_slower_than_on_demand_in_every_region() {
        let m = StartupModel::table1();
        for &r in &Region::ALL {
            assert!(m.spot_mean(r) > m.on_demand_mean(r), "{r}");
        }
    }

    #[test]
    fn deterministic_model_returns_exact_means() {
        let m = StartupModel::deterministic();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        assert_eq!(
            m.sample_on_demand(&mut rng, Region::UsEast1),
            SimDuration::millis(94_850)
        );
        assert_eq!(
            m.sample_spot(&mut rng, Region::UsWest1),
            SimDuration::millis(219_770)
        );
    }

    #[test]
    fn sample_mean_matches_table_one() {
        let m = StartupModel::table1();
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_spot(&mut rng, Region::UsEast1).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 281.47).abs() < 3.0, "sample mean {mean}");
    }

    #[test]
    fn samples_truncated_at_minimum() {
        let m = StartupModel::table1();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..50_000 {
            let s = m.sample_on_demand(&mut rng, Region::EuWest1);
            assert!(s.as_secs_f64() >= MIN_STARTUP_SECS);
        }
    }
}
