//! A generic discrete-event queue.
//!
//! A thin, allocation-friendly min-heap keyed by `(SimTime, sequence)`.
//! The sequence number makes ordering of simultaneous events deterministic
//! (FIFO among equal timestamps), which keeps whole simulations bit-for-bit
//! reproducible across runs and platforms.

use spothost_market::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic discrete-event queue.
///
/// Events are not cancellable; consumers that need cancellation attach a
/// generation counter to their event payloads and drop stale events on pop
/// (see `spothost-core`'s scheduler). This keeps the queue trivially
/// correct and O(log n) per operation.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedule `event` at `at`. Events pushed with equal timestamps pop in
    /// push order.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Empty the queue *and* rewind the sequence counter, keeping the
    /// heap's allocation. A reset queue behaves bit-identically to a
    /// freshly constructed one — required when scratch state is reused
    /// across simulation runs, because the sequence counter breaks ties
    /// between simultaneous events and must restart from the same value.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(30), "c");
        q.push(SimTime::secs(10), "a");
        q.push(SimTime::secs(20), "b");
        assert_eq!(q.pop(), Some((SimTime::secs(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::secs(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::secs(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let mut q = EventQueue::new();
        let t = SimTime::secs(1);
        q.push(t, 1);
        q.push(t, 2);
        q.pop();
        q.reset();
        assert!(q.is_empty());
        // Ties after a reset pop in push order starting from seq 0 —
        // exactly as on a fresh queue.
        let mut fresh = EventQueue::new();
        for i in 0..5 {
            q.push(t, i);
            fresh.push(t, i);
        }
        for _ in 0..5 {
            assert_eq!(q.pop(), fresh.pop());
        }
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::secs(1), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(10), 10);
        q.push(SimTime::secs(5), 5);
        assert_eq!(q.pop(), Some((SimTime::secs(5), 5)));
        q.push(SimTime::secs(7), 7);
        q.push(SimTime::secs(3), 3);
        assert_eq!(q.pop(), Some((SimTime::secs(3), 3)));
        assert_eq!(q.pop(), Some((SimTime::secs(7), 7)));
        assert_eq!(q.pop(), Some((SimTime::secs(10), 10)));
    }
}
