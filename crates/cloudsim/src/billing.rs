//! Hourly billing, exactly as the paper describes EC2's 2015 rules (§2.1):
//!
//! * Spot instance-hours are billed at the spot price in effect at the
//!   **beginning** of each instance-hour — mid-hour price rises cost the
//!   customer nothing until the next hour starts. This is the reason the
//!   paper's planned migrations fire "near the end of a billing period".
//! * The final partial hour is **free if the provider revoked** the server
//!   and **billed in full if the customer terminated** it voluntarily.
//! * On-demand usage rounds up to started hours at the fixed price.

use crate::instance::{InstanceId, InstanceKind, TerminationReason};
use spothost_market::time::{SimDuration, SimTime, MILLIS_PER_HOUR};
use spothost_market::trace::{PriceTrace, TraceCursor};
use spothost_market::types::MarketId;

/// Charge for a spot lease `[start, end)` under the given price history.
///
/// Each complete instance-hour `i` costs `trace.price_at(start + i*1h)`.
/// The final partial hour follows the revocation rule above. A lease
/// revoked exactly on an hour boundary has no partial hour and pays all
/// complete hours.
///
/// This is the *replay* form: O(hours x log n) in binary searches. The
/// simulation hot path bills through [`SpotLeaseMeter`] instead, which is
/// bit-identical (same additions in the same order) but amortised O(1)
/// per hour; this function remains the reference oracle for property
/// tests and for one-shot charges outside a simulation.
pub fn spot_lease_charge(trace: &PriceTrace, start: SimTime, end: SimTime, revoked: bool) -> f64 {
    assert!(end >= start, "lease must not end before it starts");
    let elapsed = end - start;
    let full_hours = elapsed.whole_hours();
    let has_partial = !elapsed.as_millis().is_multiple_of(MILLIS_PER_HOUR);
    let billed_hours = if revoked || !has_partial {
        full_hours
    } else {
        full_hours + 1
    };
    let mut total = 0.0;
    for i in 0..billed_hours {
        total += trace.price_at(start + SimDuration::hours(i));
    }
    total
}

/// Incremental billing accumulator for one running spot lease.
///
/// EC2 bills each instance-hour at the spot price in effect when the
/// hour *starts*, and a complete hour is owed no matter how the lease
/// later ends; only the final partial hour depends on who terminated it
/// (free if the provider revoked, billed if the customer walked away).
/// The meter exploits exactly that: [`advance_to`] charges each
/// instance-hour the moment it completes, walking the price trace
/// forward with a [`TraceCursor`] (amortised O(1) per hour, no
/// allocation, no binary search), and [`close`] settles only the final
/// partial hour.
///
/// The accumulated charge is **bit-identical** to
/// [`spot_lease_charge`]'s replay: both perform the same f64 additions
/// of the same hour-start prices in the same order (proved by property
/// test against randomized traces and leases).
///
/// [`advance_to`]: SpotLeaseMeter::advance_to
/// [`close`]: SpotLeaseMeter::close
#[derive(Debug, Clone)]
pub struct SpotLeaseMeter<'a> {
    cursor: TraceCursor<'a>,
    start: SimTime,
    /// Complete instance-hours charged so far.
    hours_charged: u64,
    accrued: f64,
}

impl<'a> SpotLeaseMeter<'a> {
    /// Start metering a spot lease that begins (and starts billing) at
    /// `start`.
    pub fn new(trace: &'a PriceTrace, start: SimTime) -> Self {
        SpotLeaseMeter {
            cursor: trace.cursor(),
            start,
            hours_charged: 0,
            accrued: 0.0,
        }
    }

    /// The lease start time this meter bills from.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Charge accrued so far (complete instance-hours only).
    pub fn accrued(&self) -> f64 {
        self.accrued
    }

    /// Charge every instance-hour that has *completed* by `now`. A
    /// complete hour is owed regardless of how the lease later ends, so
    /// charging it eagerly is always correct. Calls must use
    /// non-decreasing `now` (the simulation clock); each call is
    /// amortised O(hours + price changes) over the lease's life.
    pub fn advance_to(&mut self, now: SimTime) {
        loop {
            let hour_start = self.start + SimDuration::hours(self.hours_charged);
            let hour_end = hour_start + SimDuration::hours(1);
            if hour_end > now {
                break;
            }
            self.accrued += self.cursor.price_at(hour_start);
            self.hours_charged += 1;
        }
    }

    /// Settle the lease at `end`: charge any remaining complete hours,
    /// then the final partial hour if the customer terminated
    /// voluntarily (`revoked = false`). Returns the total charge.
    pub fn close(mut self, end: SimTime, revoked: bool) -> f64 {
        assert!(end >= self.start, "lease must not end before it starts");
        self.advance_to(end);
        let has_partial = !(end - self.start)
            .as_millis()
            .is_multiple_of(MILLIS_PER_HOUR);
        if has_partial && !revoked {
            let partial_start = self.start + SimDuration::hours(self.hours_charged);
            self.accrued += self.cursor.price_at(partial_start);
        }
        self.accrued
    }
}

/// Charge for an on-demand lease `[start, end)` at fixed hourly price
/// `pon`: started hours round up.
pub fn on_demand_lease_charge(pon: f64, start: SimTime, end: SimTime) -> f64 {
    assert!(end >= start, "lease must not end before it starts");
    assert!(pon >= 0.0);
    (end - start).started_hours() as f64 * pon
}

/// One closed lease in the ledger.
#[derive(Debug, Clone)]
pub struct LedgerEntry {
    pub instance: InstanceId,
    pub market: MarketId,
    pub kind: InstanceKind,
    pub start: SimTime,
    pub end: SimTime,
    pub reason: TerminationReason,
    pub amount: f64,
}

/// Append-only record of all charges in a simulation run.
#[derive(Debug, Clone, Default)]
pub struct BillingLedger {
    entries: Vec<LedgerEntry>,
    total: f64,
}

impl BillingLedger {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, entry: LedgerEntry) {
        assert!(entry.amount >= 0.0, "charges cannot be negative");
        self.total += entry.amount;
        self.entries.push(entry);
    }

    pub fn total(&self) -> f64 {
        self.total
    }

    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total spent on spot leases.
    pub fn spot_total(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.kind.is_spot())
            .map(|e| e.amount)
            .sum()
    }

    /// Total spent on on-demand leases.
    pub fn on_demand_total(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| !e.kind.is_spot())
            .map(|e| e.amount)
            .sum()
    }

    /// Total lease time on spot servers (for time-share accounting).
    pub fn spot_lease_time(&self) -> SimDuration {
        self.entries
            .iter()
            .filter(|e| e.kind.is_spot())
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Total lease time on on-demand servers.
    pub fn on_demand_lease_time(&self) -> SimDuration {
        self.entries
            .iter()
            .filter(|e| !e.kind.is_spot())
            .map(|e| e.end - e.start)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_market::trace::PricePoint;
    use spothost_market::types::{InstanceType, Zone};

    fn flat_trace(price: f64) -> PriceTrace {
        PriceTrace::constant(price, SimTime::days(10))
    }

    fn stepping_trace() -> PriceTrace {
        // 0.10 for the first 90 minutes, then 0.50.
        PriceTrace::new(
            vec![
                PricePoint {
                    at: SimTime::ZERO,
                    price: 0.10,
                },
                PricePoint {
                    at: SimTime::minutes(90),
                    price: 0.50,
                },
            ],
            SimTime::days(10),
        )
    }

    #[test]
    fn spot_charges_hour_start_price() {
        let t = stepping_trace();
        // Lease [0, 2h) voluntary: hour 0 at 0.10, hour 1 (starts at 60min,
        // price still 0.10) at 0.10.
        let c = spot_lease_charge(&t, SimTime::ZERO, SimTime::hours(2), false);
        assert!((c - 0.20).abs() < 1e-12);
        // Lease [0, 3h): hour 2 starts at 120min where price is 0.50.
        let c = spot_lease_charge(&t, SimTime::ZERO, SimTime::hours(3), false);
        assert!((c - 0.70).abs() < 1e-12);
    }

    #[test]
    fn revoked_partial_hour_is_free() {
        let t = flat_trace(0.10);
        let start = SimTime::ZERO;
        let end = SimTime::minutes(150); // 2.5h
        let revoked = spot_lease_charge(&t, start, end, true);
        let voluntary = spot_lease_charge(&t, start, end, false);
        assert!((revoked - 0.20).abs() < 1e-12, "2 full hours only");
        assert!((voluntary - 0.30).abs() < 1e-12, "3 started hours");
    }

    #[test]
    fn revocation_on_exact_boundary_charges_all_full_hours() {
        let t = flat_trace(0.10);
        let c = spot_lease_charge(&t, SimTime::ZERO, SimTime::hours(2), true);
        assert!((c - 0.20).abs() < 1e-12);
    }

    #[test]
    fn zero_length_lease_is_free() {
        let t = flat_trace(0.10);
        assert_eq!(
            spot_lease_charge(&t, SimTime::hours(1), SimTime::hours(1), false),
            0.0
        );
        assert_eq!(
            on_demand_lease_charge(0.5, SimTime::ZERO, SimTime::ZERO),
            0.0
        );
    }

    #[test]
    fn sub_hour_revoked_lease_is_free() {
        // The paper notes revocation inside the first hour costs nothing.
        let t = flat_trace(0.25);
        let c = spot_lease_charge(&t, SimTime::ZERO, SimTime::minutes(59), true);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn lease_relative_hours_not_wall_clock() {
        let t = stepping_trace();
        // Lease starts at 30min; its first hour begins at price 0.10, its
        // second hour begins at 90min when the price is 0.50.
        let c = spot_lease_charge(&t, SimTime::minutes(30), SimTime::minutes(150), false);
        assert!((c - 0.60).abs() < 1e-12);
    }

    #[test]
    fn on_demand_rounds_up() {
        let pon = 0.24;
        let c = on_demand_lease_charge(pon, SimTime::ZERO, SimTime::minutes(61));
        assert!((c - 2.0 * pon).abs() < 1e-12);
        let c = on_demand_lease_charge(pon, SimTime::ZERO, SimTime::hours(1));
        assert!((c - pon).abs() < 1e-12);
    }

    #[test]
    fn ledger_accumulates_by_kind() {
        let mut ledger = BillingLedger::new();
        let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
        ledger.record(LedgerEntry {
            instance: InstanceId(1),
            market,
            kind: InstanceKind::Spot { bid: 0.06 },
            start: SimTime::ZERO,
            end: SimTime::hours(2),
            reason: TerminationReason::Voluntary,
            amount: 0.04,
        });
        ledger.record(LedgerEntry {
            instance: InstanceId(2),
            market,
            kind: InstanceKind::OnDemand,
            start: SimTime::hours(2),
            end: SimTime::hours(3),
            reason: TerminationReason::Voluntary,
            amount: 0.06,
        });
        assert!((ledger.total() - 0.10).abs() < 1e-12);
        assert!((ledger.spot_total() - 0.04).abs() < 1e-12);
        assert!((ledger.on_demand_total() - 0.06).abs() < 1e-12);
        assert_eq!(ledger.spot_lease_time(), SimDuration::hours(2));
        assert_eq!(ledger.on_demand_lease_time(), SimDuration::hours(1));
        assert_eq!(ledger.entries().len(), 2);
    }
}
