//! Instance identity and lifecycle.

use spothost_market::time::SimTime;
use spothost_market::types::MarketId;
use std::fmt;

/// Opaque handle to a provisioned server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i-{:06}", self.0)
    }
}

/// Purchase mode of an instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstanceKind {
    /// Fixed-price, non-revocable.
    OnDemand,
    /// Variable-price, revoked when the spot price exceeds `bid`.
    Spot { bid: f64 },
}

impl InstanceKind {
    pub fn is_spot(&self) -> bool {
        matches!(self, InstanceKind::Spot { .. })
    }

    pub fn bid(&self) -> Option<f64> {
        match self {
            InstanceKind::Spot { bid } => Some(*bid),
            InstanceKind::OnDemand => None,
        }
    }
}

/// Why an instance lease ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationReason {
    /// The provider revoked a spot server (price exceeded bid). The final
    /// partial instance-hour is not billed.
    Revoked,
    /// The customer released the server. The final partial hour is billed.
    Voluntary,
    /// A spot request whose price rose above the bid while the server was
    /// still booting; no lease ever started and nothing is billed.
    FailedAllocation,
}

/// Lifecycle state machine:
/// `Pending -> Running -> Terminated`, with `Running -> RevocationPending ->
/// Terminated` for provider-initiated revocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstanceState {
    /// Requested, booting; becomes ready at the contained time.
    Pending { ready_at: SimTime },
    /// Serving. The lease clock (billing hours) started at `ready_at`.
    Running,
    /// Revocation warning delivered; the server dies at `terminate_at`.
    RevocationPending { terminate_at: SimTime },
    /// Lease closed.
    Terminated {
        at: SimTime,
        reason: TerminationReason,
    },
}

/// A provisioned (or provisioning) server.
#[derive(Debug, Clone)]
pub struct Instance {
    pub id: InstanceId,
    pub market: MarketId,
    pub kind: InstanceKind,
    pub requested_at: SimTime,
    /// When the server became (or will become) available; also the start of
    /// the billing lease.
    pub ready_at: SimTime,
    pub state: InstanceState,
}

impl Instance {
    pub fn is_running(&self) -> bool {
        matches!(
            self.state,
            InstanceState::Running | InstanceState::RevocationPending { .. }
        )
    }

    pub fn is_terminated(&self) -> bool {
        matches!(self.state, InstanceState::Terminated { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_accessors() {
        assert!(InstanceKind::Spot { bid: 0.2 }.is_spot());
        assert!(!InstanceKind::OnDemand.is_spot());
        assert_eq!(InstanceKind::Spot { bid: 0.2 }.bid(), Some(0.2));
        assert_eq!(InstanceKind::OnDemand.bid(), None);
    }

    #[test]
    fn display_id() {
        assert_eq!(InstanceId(7).to_string(), "i-000007");
    }

    #[test]
    fn running_includes_revocation_pending() {
        use spothost_market::types::{InstanceType, Zone};
        let mut inst = Instance {
            id: InstanceId(1),
            market: MarketId::new(Zone::UsEast1a, InstanceType::Small),
            kind: InstanceKind::Spot { bid: 0.06 },
            requested_at: SimTime::ZERO,
            ready_at: SimTime::secs(280),
            state: InstanceState::Running,
        };
        assert!(inst.is_running());
        inst.state = InstanceState::RevocationPending {
            terminate_at: SimTime::secs(1000),
        };
        assert!(inst.is_running());
        inst.state = InstanceState::Terminated {
            at: SimTime::secs(1000),
            reason: TerminationReason::Revoked,
        };
        assert!(!inst.is_running());
        assert!(inst.is_terminated());
    }
}
