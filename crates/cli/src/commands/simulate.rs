//! `spothost simulate` — run the cloud scheduler and report.

use crate::args::Args;
use spothost_core::prelude::*;
use spothost_core::SimRun;
use spothost_market::gen::TraceSet;
use spothost_market::io::{parse_market, read_trace_set};
use spothost_market::prelude::*;
use spothost_workload::slo;
use std::io::BufWriter;
use std::path::Path;

pub(crate) fn parse_policy(s: &str) -> Result<BiddingPolicy, String> {
    Ok(match s {
        "proactive" => BiddingPolicy::proactive_default(),
        "adaptive" => BiddingPolicy::adaptive_default(),
        "reactive" => BiddingPolicy::Reactive,
        "pure-spot" => BiddingPolicy::PureSpot,
        "on-demand" => BiddingPolicy::OnDemandOnly,
        other => return Err(format!("unknown policy '{other}'")),
    })
}

pub(crate) fn parse_mechanism(s: &str) -> Result<MechanismCombo, String> {
    Ok(match s {
        "ckpt" => MechanismCombo::CKPT,
        "ckpt-lr" => MechanismCombo::CKPT_LR,
        "ckpt-live" => MechanismCombo::CKPT_LIVE,
        "ckpt-lr-live" => MechanismCombo::CKPT_LR_LIVE,
        other => return Err(format!("unknown mechanism '{other}'")),
    })
}

fn parse_zone(s: &str) -> Result<Zone, String> {
    Zone::ALL
        .into_iter()
        .find(|z| z.name() == s)
        .ok_or_else(|| format!("unknown zone '{s}'"))
}

fn parse_scope(args: &Args) -> Result<(MarketScope, u32), String> {
    if let Some(scope) = args.get("scope") {
        let (kind, rest) = scope
            .split_once(':')
            .ok_or("scope must be 'zone:Z' or 'regions:Z1,Z2'")?;
        let scope = match kind {
            "zone" => MarketScope::MultiMarket(parse_zone(rest)?),
            "regions" => {
                let zones = rest
                    .split(',')
                    .map(parse_zone)
                    .collect::<Result<Vec<_>, _>>()?;
                MarketScope::MultiRegion(zones)
            }
            other => return Err(format!("unknown scope kind '{other}'")),
        };
        let units = args.get_u64("units", 8)? as u32;
        return Ok((scope, units));
    }
    let market =
        parse_market(args.get_or("market", "us-east-1a/small")).map_err(|e| e.to_string())?;
    let units = args.get_u64("units", market.itype.capacity_units() as u64)? as u32;
    Ok((MarketScope::Single(market), units))
}

/// Build the scheduler configuration shared by `simulate` and `timeline`.
pub(crate) fn build_cfg(args: &Args) -> Result<SchedulerConfig, String> {
    let (scope, units) = parse_scope(args)?;
    let mut policy = parse_policy(args.get_or("policy", "proactive"))?;
    // Per-policy tuning knobs. Out-of-range values surface through
    // `cfg.validate()` below as errors, never as panics.
    if let BiddingPolicy::Proactive { bid_mult } = &mut policy {
        *bid_mult = args.get_f64("bid-mult", *bid_mult)?;
    }
    if let BiddingPolicy::Adaptive { risk_budget } = &mut policy {
        *risk_budget = args.get_f64("risk-budget", *risk_budget)?;
    }
    let mechanism = parse_mechanism(args.get_or("mechanism", "ckpt-lr-live"))?;
    let stability = args.get_f64("stability", 0.0)?;
    let fault_rate = args.get_f64("fault-rate", 0.0)?;
    let storm_intensity = args.get_f64("storm-intensity", 0.0)?;

    let mut cfg = match &scope {
        MarketScope::Single(m) => SchedulerConfig::single_market(*m),
        other => SchedulerConfig::multi(other.clone()).with_capacity_units(units),
    };
    cfg = cfg
        .with_policy(policy)
        .with_mechanism(mechanism)
        .with_stability_weight(stability)
        .with_faults(FaultConfig::uniform(fault_rate))
        .with_storms(StormConfig::intensity(storm_intensity));
    if args.has("pessimistic") {
        cfg = cfg.with_regime(ParamRegime::Pessimistic);
    }
    cfg.validate()?;
    Ok(cfg)
}

/// The trace set `simulate`/`timeline` run against: imported price
/// history when `--traces DIR` is given, the calibrated generator
/// otherwise.
pub(crate) fn load_traces(
    args: &Args,
    cfg: &SchedulerConfig,
    seed: u64,
    horizon: SimDuration,
) -> Result<TraceSet, String> {
    let catalog = Catalog::ec2_2015();
    match args.get("traces") {
        Some(dir) => read_trace_set(&catalog, Path::new(dir)).map_err(|e| e.to_string()),
        None => Ok(TraceSet::generate(
            &catalog,
            &cfg.candidates(),
            seed,
            horizon,
        )),
    }
}

pub fn run(args: &Args) -> Result<(), String> {
    let cfg = build_cfg(args)?;
    let policy = cfg.policy;
    let days = args.get_u64("days", 60)?;
    let seeds = args.get_u64("seeds", 1)?;
    let seed0 = args.get_u64("seed", 0)?;
    let stability = args.get_f64("stability", 0.0)?;
    let fault_rate = args.get_f64("fault-rate", 0.0)?;
    let storm_intensity = args.get_f64("storm-intensity", 0.0)?;

    let agg = match args.get("traces") {
        Some(dir) => {
            // Imported history: single deterministic run against it.
            let catalog = Catalog::ec2_2015();
            let set = read_trace_set(&catalog, Path::new(dir)).map_err(|e| e.to_string())?;
            let report = SimRun::new(&set, &cfg, seed0).run();
            AggregateReport::of(vec![report])
        }
        None => run_many(&cfg, seed0, seeds, SimDuration::days(days)),
    };

    println!("scope:      {}", cfg.scope.label());
    println!(
        "policy:     {policy}   mechanism: {mechanism}",
        mechanism = cfg.mechanism
    );
    if stability > 0.0 {
        println!("stability:  weight {stability}");
    }
    if cfg.faults.enabled() {
        println!("faults:     uniform rate {fault_rate}");
    }
    if cfg.storms.enabled() {
        println!("storms:     intensity {storm_intensity}");
    }
    println!("runs:       {} x {} days\n", agg.runs.len(), days);
    println!(
        "normalized cost:   {:.1}% of on-demand  (min {:.1}%, max {:.1}%)",
        agg.normalized_cost_pct(),
        agg.normalized_cost.min * 100.0,
        agg.normalized_cost.max * 100.0
    );
    println!(
        "unavailability:    {:.5}%  (~{:.1} s downtime/month)",
        agg.unavailability_pct(),
        slo::downtime_per_month(agg.unavailability.mean)
    );
    println!(
        "four nines:        {}",
        if slo::meets_nines(agg.unavailability.mean, 4) {
            "met"
        } else {
            "MISSED"
        }
    );
    println!(
        "migrations/hour:   {:.4} forced, {:.4} planned+reverse",
        agg.forced_per_hour.mean, agg.planned_reverse_per_hour.mean
    );
    println!("time on spot:      {:.1}%", agg.spot_fraction.mean * 100.0);
    if cfg.faults.enabled() {
        let sum = |f: fn(&RunReport) -> u32| agg.runs.iter().map(f).sum::<u32>();
        println!(
            "injected faults:   {} refused requests, {} unwarned revocations,",
            sum(|r| r.request_faults),
            sum(|r| r.unwarned_revocations)
        );
        println!(
            "                   {} checkpoint failures, {} live-migration aborts",
            sum(|r| r.ckpt_faults),
            sum(|r| r.live_aborts)
        );
    }

    // Telemetry extras: re-run the first seed with a sink attached. The
    // recorded run is bit-identical to the aggregate's first member (the
    // sink only observes), so the numbers above still describe it.
    if let Some(path) = args.get("trace") {
        let set = load_traces(args, &cfg, seed0, SimDuration::days(days))?;
        let file = std::fs::File::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
        let mut rec = Recorder::new().with_writer(Box::new(BufWriter::new(file)));
        SimRun::new(&set, &cfg, seed0).with_sink(&mut rec).run();
        rec.finish().map_err(|e| format!("--trace {path}: {e}"))?;
        println!(
            "\ntrace:             {} events -> {path} (seed {seed0}, JSONL)",
            rec.len() as u64 + rec.dropped()
        );
        if rec.dropped() > 0 {
            println!(
                "WARNING: the in-memory ring buffer evicted the {} oldest events; \
                 the JSONL file is complete (streamed), but in-process consumers \
                 of this recorder only see the newest {}.",
                rec.dropped(),
                rec.len()
            );
        }
    }
    if let Some(path) = args.get("store") {
        let set = load_traces(args, &cfg, seed0, SimDuration::days(days))?;
        let store = spothost_eventstore::ColumnarStore::create(path)
            .map_err(|e| format!("--store {path}: {e}"))?;
        {
            let sink = store.sink();
            SimRun::new(&set, &cfg, seed0).with_sink(sink).run();
        }
        store.finish().map_err(|e| format!("--store {path}: {e}"))?;
        println!(
            "\nstore:             {} events in {} columnar blocks -> {path} \
             (seed {seed0}; aggregate with `spothost query --store {path}`)",
            store.events_written(),
            store.blocks_written()
        );
    }
    if args.has("metrics") {
        let set = load_traces(args, &cfg, seed0, SimDuration::days(days))?;
        let mut metrics = Metrics::new();
        SimRun::new(&set, &cfg, seed0).with_sink(&mut metrics).run();
        println!("\nevent histograms (seed {seed0}):");
        print!("{}", metrics.render());
    }
    if args.has("cache-stats") {
        let s = spothost_market::TraceArena::global().stats();
        println!("\ntrace arena (process-global cache):");
        println!(
            "  traces:   {} hits, {} misses ({} resident, {:.1} MB, {} evicted, cap {})",
            s.trace_hits,
            s.trace_misses,
            s.resident_traces,
            s.resident_bytes as f64 / 1e6,
            s.trace_evictions,
            if s.trace_capacity == 0 {
                "unbounded".to_string()
            } else {
                s.trace_capacity.to_string()
            }
        );
        println!(
            "  factors:  {} hits, {} misses",
            s.factor_hits, s.factor_misses
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(items: &[&str]) -> crate::args::Args {
        parse(&items.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_all_policies_and_mechanisms() {
        for p in [
            "proactive",
            "adaptive",
            "reactive",
            "pure-spot",
            "on-demand",
        ] {
            parse_policy(p).unwrap();
        }
        assert!(parse_policy("yolo").is_err());
        for m in ["ckpt", "ckpt-lr", "ckpt-live", "ckpt-lr-live"] {
            parse_mechanism(m).unwrap();
        }
        assert!(parse_mechanism("magic").is_err());
    }

    #[test]
    fn scope_parsing() {
        let (s, u) = parse_scope(&argv(&["--market", "us-west-1a/large"])).unwrap();
        assert_eq!(
            s,
            MarketScope::Single(MarketId::new(Zone::UsWest1a, InstanceType::Large))
        );
        assert_eq!(u, 4);
        let (s, u) = parse_scope(&argv(&["--scope", "zone:us-east-1b"])).unwrap();
        assert_eq!(s, MarketScope::MultiMarket(Zone::UsEast1b));
        assert_eq!(u, 8);
        let (s, _) = parse_scope(&argv(&["--scope", "regions:us-east-1a,eu-west-1a"])).unwrap();
        assert_eq!(
            s,
            MarketScope::MultiRegion(vec![Zone::UsEast1a, Zone::EuWest1a])
        );
        assert!(parse_scope(&argv(&["--scope", "nope"])).is_err());
        assert!(parse_scope(&argv(&["--scope", "zone:mars"])).is_err());
    }

    #[test]
    fn short_simulation_runs() {
        run(&argv(&[
            "--market",
            "us-east-1a/small",
            "--days",
            "3",
            "--seeds",
            "1",
        ]))
        .unwrap();
    }

    #[test]
    fn cache_stats_flag_accepted() {
        run(&argv(&["--days", "2", "--cache-stats"])).unwrap();
    }

    #[test]
    fn pessimistic_switch_accepted() {
        run(&argv(&["--days", "2", "--pessimistic"])).unwrap();
    }

    #[test]
    fn full_fault_rate_terminates_cleanly() {
        // Acceptance bar: a run where every request is refused must still
        // terminate and report the outage rather than hang or panic.
        run(&argv(&[
            "--days",
            "2",
            "--policy",
            "on-demand",
            "--fault-rate",
            "1.0",
        ]))
        .unwrap();
    }

    #[test]
    fn fault_rate_out_of_range_rejected() {
        assert!(run(&argv(&["--days", "1", "--fault-rate", "1.5"])).is_err());
    }

    #[test]
    fn storm_intensity_flag_runs_and_validates() {
        // A storm-laden short run terminates and reports.
        run(&argv(&["--days", "2", "--storm-intensity", "0.7"])).unwrap();
        // Out-of-range intensity surfaces through cfg.validate().
        assert!(build_cfg(&argv(&["--storm-intensity", "1.5"])).is_err());
        assert!(build_cfg(&argv(&["--storm-intensity", "-0.1"])).is_err());
        // Zero intensity is the storm-free default (no schedule at all).
        let cfg = build_cfg(&argv(&["--days", "2"])).unwrap();
        assert!(!cfg.storms.enabled());
    }

    #[test]
    fn adaptive_policy_simulation_runs() {
        run(&argv(&[
            "--market",
            "us-east-1a/small",
            "--policy",
            "adaptive",
            "--days",
            "3",
            "--seeds",
            "1",
        ]))
        .unwrap();
    }

    #[test]
    fn policy_knobs_apply_and_validate() {
        // A tame proactive multiple flows into the config...
        let cfg = build_cfg(&argv(&["--bid-mult", "2.0"])).unwrap();
        assert_eq!(cfg.policy, BiddingPolicy::Proactive { bid_mult: 2.0 });
        let cfg = build_cfg(&argv(&["--policy", "adaptive", "--risk-budget", "0.01"])).unwrap();
        assert_eq!(cfg.policy, BiddingPolicy::Adaptive { risk_budget: 0.01 });
        // ...and out-of-range values are errors, not panics.
        assert!(build_cfg(&argv(&["--bid-mult", "0.5"])).is_err());
        assert!(build_cfg(&argv(&["--policy", "adaptive", "--risk-budget", "0"])).is_err());
        assert!(build_cfg(&argv(&["--policy", "adaptive", "--risk-budget", "1.5"])).is_err());
    }
}
