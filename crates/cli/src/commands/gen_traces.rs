//! `spothost gen-traces` — generate calibrated traces and export CSV.

use crate::args::Args;
use spothost_market::io::write_trace_set;
use spothost_market::prelude::*;
use std::path::Path;

pub fn run(args: &Args) -> Result<(), String> {
    let seed = args.get_u64("seed", 0)?;
    let days = args.get_u64("days", 28)?;
    let out = args.get_or("out", "traces");
    let markets = match args.get("zone") {
        None => MarketId::all(),
        Some(z) => {
            let zone = Zone::ALL
                .into_iter()
                .find(|zone| zone.name() == z)
                .ok_or_else(|| format!("unknown zone '{z}'"))?;
            MarketId::all_in_zone(zone)
        }
    };
    let catalog = Catalog::ec2_2015();
    let set = TraceSet::generate(&catalog, &markets, seed, SimDuration::days(days));
    write_trace_set(&set, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} traces ({} days, seed {}) to {}/",
        set.len(),
        days,
        seed,
        out
    );
    for (market, trace) in set.iter() {
        println!(
            "  {:<22} {:>6} price changes, mean ${:.4}/h",
            market.to_string(),
            trace.num_changes(),
            trace.time_weighted_mean()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    #[test]
    fn generates_zone_traces_to_temp_dir() {
        let dir = std::env::temp_dir().join(format!("spothost-cli-gen-{}", std::process::id()));
        let argv: Vec<String> = [
            "--zone",
            "eu-west-1a",
            "--days",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&parse(&argv).unwrap()).unwrap();
        let n = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(n, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_unknown_zone() {
        let argv: Vec<String> = ["--zone", "atlantis-1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&parse(&argv).unwrap()).is_err());
    }
}
