//! `spothost fleet-sim` — autoscaled fleet simulation with an ASCII
//! fleet-size / latency timeline.
//!
//! Runs `spothost_fleet::sim`: N per-VM schedulers sharing one market
//! history, a least-loaded balancer, a diurnal + flash-crowd traffic
//! model, and a target-tracking autoscaler closing the MVA loop every
//! control interval. The output charts the fleet size and the p99
//! response time over simulated time, then prints the cost/availability
//! summary. Fixed seed → byte-identical output.

use crate::args::Args;
use crate::commands::simulate::{parse_mechanism, parse_policy};
use spothost_faults::StormConfig;
use spothost_fleet::{run_fleet_sim, run_fleet_sim_with, FleetSample, FleetSimConfig};
use spothost_market::time::SimDuration;
use spothost_market::types::Zone;
use spothost_workload::TrafficConfig;
use std::fmt::Write as _;

fn parse_zone(s: &str) -> Result<Zone, String> {
    Zone::ALL
        .into_iter()
        .find(|z| z.name() == s)
        .ok_or_else(|| format!("unknown zone '{s}'"))
}

fn parse_zones(args: &Args) -> Result<Vec<Zone>, String> {
    let Some(scope) = args.get("scope") else {
        return Ok(vec![Zone::UsEast1a]);
    };
    let (kind, rest) = scope
        .split_once(':')
        .ok_or("scope must be 'zone:Z' or 'regions:Z1,Z2'")?;
    match kind {
        "zone" => Ok(vec![parse_zone(rest)?]),
        "regions" => rest.split(',').map(parse_zone).collect(),
        other => Err(format!("unknown scope kind '{other}'")),
    }
}

/// Downsample a series to `width` columns, keeping each bucket's max
/// (autoscaler charts are about peaks, not averages).
fn buckets(vals: &[f64], width: usize) -> Vec<f64> {
    if vals.is_empty() {
        return Vec::new();
    }
    let cols = width.min(vals.len());
    (0..cols)
        .map(|c| {
            let lo = c * vals.len() / cols;
            let hi = (((c + 1) * vals.len()) / cols).max(lo + 1);
            vals[lo..hi].iter().copied().fold(f64::MIN, f64::max)
        })
        .collect()
}

/// Plain-ASCII column chart: `height` rows of '#' bars over a zero
/// baseline, with the series maximum labelled on the top row.
fn chart(title: &str, unit: &str, vals: &[f64], width: usize, height: usize) -> String {
    let cols = buckets(vals, width);
    let max = cols.iter().copied().fold(0.0f64, f64::max);
    let mut out = format!("{title} (peak {max:.0} {unit})\n");
    let scale = if max > 0.0 { max } else { 1.0 };
    for row in (1..=height).rev() {
        let threshold = row as f64 / height as f64;
        let label = if row == height {
            format!("{max:>8.0}")
        } else {
            " ".repeat(8)
        };
        let bars: String = cols
            .iter()
            .map(|&v| {
                if v / scale + 1e-12 >= threshold {
                    '#'
                } else {
                    ' '
                }
            })
            .collect();
        let _ = writeln!(out, "{label} |{bars}");
    }
    let _ = writeln!(out, "{:>8} +{}", 0, "-".repeat(cols.len()));
    out
}

/// X-axis day labels under a chart of `cols` columns spanning `days`.
fn day_axis(cols: usize, days: f64) -> String {
    let mut axis = " ".repeat(9);
    axis.push_str(&format!("day 0{:>w$.0}", days, w = cols.saturating_sub(5)));
    axis.push('\n');
    axis
}

pub fn run(args: &Args) -> Result<(), String> {
    let max_vms = args.get_u64("vms", 200)? as u32;
    let min_vms = args.get_u64("min-vms", 2)? as u32;
    let interval_s = args.get_u64("seconds", 300)?;
    let days = args.get_u64("days", 7)?;
    let seed = args.get_u64("seed", 0)?;
    let target_util = args.get_f64("target-util", 0.6)?;
    let storm = args.get_f64("storm-intensity", 0.0)?;
    let base_users = args.get_f64("users", TrafficConfig::diurnal_default().base_users)?;
    let width = args.get_u64("width", 96)? as usize;
    if !(10..=500).contains(&width) {
        return Err(format!("--width must be in [10, 500], got {width}"));
    }
    if interval_s == 0 {
        return Err("--seconds must be >= 1".to_string());
    }

    let cfg = FleetSimConfig {
        zones: parse_zones(args)?,
        policy: parse_policy(args.get_or("policy", "proactive"))?,
        mechanism: parse_mechanism(args.get_or("mechanism", "ckpt-lr-live"))?,
        storms: StormConfig::intensity(storm),
        traffic: TrafficConfig {
            base_users,
            ..TrafficConfig::diurnal_default()
        },
        min_vms,
        max_vms,
        control_interval: SimDuration::secs(interval_s),
        target_utilization: target_util,
        ..FleetSimConfig::default()
    };
    cfg.validate()?;

    let horizon = SimDuration::days(days);
    // With --store, every spawned VM streams its telemetry into the
    // columnar store tagged by spawn index; the sink only observes, so
    // the report is identical to the uninstrumented run (test-pinned in
    // spothost-fleet).
    let report = match args.get("store") {
        Some(path) => {
            let store = spothost_eventstore::ColumnarStore::create(path)
                .map_err(|e| format!("--store {path}: {e}"))?;
            let report = run_fleet_sim_with(&cfg, seed, horizon, store.clone());
            store.finish().map_err(|e| format!("--store {path}: {e}"))?;
            println!(
                "store: {} events from {} VM streams in {} blocks -> {path}",
                store.events_written(),
                report.spawned_vms,
                store.blocks_written()
            );
            println!("       (per-VM queries: `spothost query --store {path} --vm N`)\n");
            report
        }
        None => run_fleet_sim(&cfg, seed, horizon),
    };

    let sizes: Vec<f64> = report.samples.iter().map(|s| s.live as f64).collect();
    let p99_ms: Vec<f64> = report
        .samples
        .iter()
        .map(|s: &FleetSample| 1_000.0 * s.p99_response_s)
        .collect();
    let days_f = horizon.as_hours_f64() / 24.0;
    print!("{}", chart("fleet size", "VMs", &sizes, width, 8));
    print!("{}", day_axis(width.min(sizes.len()), days_f));
    println!();
    print!("{}", chart("p99 response", "ms", &p99_ms, width, 6));
    print!("{}", day_axis(width.min(p99_ms.len()), days_f));
    println!();
    print!("{}", report.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(items: &[&str]) -> Args {
        parse(&items.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn runs_a_small_fleet() {
        run(&argv(&[
            "--vms",
            "10",
            "--users",
            "600",
            "--days",
            "2",
            "--seconds",
            "900",
            "--width",
            "40",
        ]))
        .unwrap();
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(run(&argv(&["--width", "4"])).is_err());
        assert!(run(&argv(&["--seconds", "0"])).is_err());
        assert!(run(&argv(&["--scope", "zone:nowhere"])).is_err());
        assert!(run(&argv(&["--vms", "1", "--min-vms", "5"])).is_err());
    }

    #[test]
    fn chart_is_plain_ascii_and_bounded() {
        let c = chart("t", "u", &[0.0, 1.0, 5.0, 2.0], 40, 8);
        assert!(c.is_ascii());
        assert!(c.lines().count() == 10); // title + 8 rows + baseline
    }
}
