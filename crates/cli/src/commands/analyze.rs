//! `spothost analyze` — statistics over a trace directory.

use crate::args::Args;
use spothost_analysis::table::TextTable;
use spothost_market::io::read_trace_set;
use spothost_market::prelude::*;
use spothost_market::stats::{avg_intra_zone_correlation, trace_correlation};
use std::path::Path;

pub fn run(args: &Args) -> Result<(), String> {
    let dir = args
        .get("traces")
        .ok_or("analyze requires --traces DIR (see gen-traces)")?;
    let sample_mins = args.get_u64("sample-mins", 5)?;
    let catalog = Catalog::ec2_2015();
    let set = read_trace_set(&catalog, Path::new(dir)).map_err(|e| e.to_string())?;

    println!(
        "{} markets over {:.1} days\n",
        set.len(),
        set.horizon().as_days_f64()
    );
    let mut t = TextTable::new([
        "market",
        "mean $/h",
        "std $/h",
        "max $/h",
        "spot/od",
        "% above od",
    ]);
    for (market, trace) in set.iter() {
        let pon = catalog.on_demand_price(market);
        t.row([
            market.to_string(),
            format!("{:.4}", trace.time_weighted_mean()),
            format!("{:.4}", trace.time_weighted_std()),
            format!("{:.3}", trace.max_price()),
            format!("{:.2}", trace.time_weighted_mean() / pon),
            format!("{:.2}%", trace.fraction_above(pon) * 100.0),
        ]);
    }
    println!("{}", t.render());

    // Correlations where we have whole zones.
    let dt = SimDuration::minutes(sample_mins);
    for zone in Zone::ALL {
        let markets: Vec<MarketId> = MarketId::all_in_zone(zone)
            .into_iter()
            .filter(|m| set.trace(*m).is_some())
            .collect();
        if markets.len() >= 2 {
            println!(
                "avg intra-zone correlation {zone}: {:.3}",
                avg_intra_zone_correlation(&set, zone)
            );
        }
    }
    // Pairwise correlation of the first two markets (example diagnostic).
    let loaded: Vec<(MarketId, &PriceTrace)> = set.iter().collect();
    if loaded.len() >= 2 {
        let (ma, ta) = loaded[0];
        let (mb, tb) = loaded[1];
        println!(
            "correlation {ma} vs {mb}: {:.3}",
            trace_correlation(ta, tb, dt)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use spothost_market::io::write_trace_set;

    #[test]
    fn analyzes_a_generated_directory() {
        let dir = std::env::temp_dir().join(format!("spothost-cli-an-{}", std::process::id()));
        let catalog = Catalog::ec2_2015();
        let set = TraceSet::generate(
            &catalog,
            &MarketId::all_in_zone(Zone::UsWest1a),
            3,
            SimDuration::days(2),
        );
        write_trace_set(&set, &dir).unwrap();
        let argv: Vec<String> = ["--traces", dir.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&parse(&argv).unwrap()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn requires_traces_flag() {
        assert!(run(&parse(&[]).unwrap()).is_err());
    }
}
