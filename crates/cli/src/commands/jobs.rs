//! `spothost jobs` — deadline batch scheduling on spot markets.
//!
//! Runs the `spothost-jobs` simulator: a seeded queue of deadline jobs
//! scheduled onto spot worker slots under one of the policy rungs
//! (greedy restart, risk-driven checkpointing, or on-demand fallback),
//! or all three side by side for comparison. Prints the per-policy
//! report ($/job, deadline misses, wasted work, makespan) and, with
//! `--outcomes`, the worst per-job lines. `--store` records the run's
//! job lifecycle events (started/checkpointed/restarted/finished, with
//! per-job cost on finish) into a columnar event store for
//! `spothost query`.

use crate::args::Args;
use spothost_core::telemetry::NullSink;
use spothost_faults::{FaultConfig, StormConfig};
use spothost_jobs::{run_jobs_on, JobPolicy, JobsConfig, JobsRunResult, JobsScratch};
use spothost_market::catalog::Catalog;
use spothost_market::gen::TraceSet;
use spothost_market::io::parse_market;
use spothost_market::time::SimDuration;

fn parse_policies(s: &str) -> Result<Vec<JobPolicy>, String> {
    if s == "all" {
        return Ok(JobPolicy::ALL.to_vec());
    }
    JobPolicy::parse(s).map(|p| vec![p]).ok_or_else(|| {
        format!("unknown policy '{s}' (expected greedy-spot, checkpoint-spot, on-demand-fallback, or all)")
    })
}

fn config_from(args: &Args) -> Result<JobsConfig, String> {
    let mut cfg = JobsConfig::new(JobPolicy::GreedySpot);
    cfg.market =
        parse_market(args.get_or("market", "us-east-1a/large")).map_err(|e| e.to_string())?;
    cfg.workers = args.get_u64("workers", u64::from(cfg.workers))? as u32;
    cfg.slack_factor = args.get_f64("slack", cfg.slack_factor)?;
    let runtime_h = args.get_f64("mean-runtime-h", cfg.mean_runtime.as_hours_f64())?;
    let arrival_h = args.get_f64("mean-arrival-h", cfg.mean_interarrival.as_hours_f64())?;
    // `is_sign_positive` alone would admit NaN; this rejects NaN, zero,
    // and negatives in one shot.
    if runtime_h.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || arrival_h.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return Err("--mean-runtime-h and --mean-arrival-h must be > 0".into());
    }
    cfg.mean_runtime = SimDuration::hours(1).mul_f64(runtime_h);
    cfg.mean_interarrival = SimDuration::hours(1).mul_f64(arrival_h);
    let rate = args.get_f64("fault-rate", 0.0)?;
    if rate > 0.0 {
        cfg.faults = FaultConfig::uniform(rate);
    }
    let storm = args.get_f64("storm-intensity", 0.0)?;
    if storm > 0.0 {
        cfg.storms = StormConfig::intensity(storm);
    }
    cfg.validate()?;
    Ok(cfg)
}

fn print_worst_outcomes(run: &JobsRunResult, n: usize) {
    let mut worst: Vec<_> = run.outcomes.iter().collect();
    worst.sort_by(|a, b| {
        (b.missed, b.cost)
            .partial_cmp(&(a.missed, a.cost))
            .expect("job costs are finite")
    });
    println!(
        "  worst {} jobs (missed first, then by cost):",
        n.min(worst.len())
    );
    for o in worst.iter().take(n) {
        println!(
            "    arrival {:>7.1}h runtime {:>5.1}h deadline {:>7.1}h -> {} at {:>7.1}h, \
             ${:.3}, {} revocations, {} checkpoints{}{}",
            o.spec.arrival.as_hours_f64(),
            o.spec.runtime.as_hours_f64(),
            o.spec.deadline.as_hours_f64(),
            if o.missed { "MISSED" } else { "met" },
            o.completion.as_hours_f64(),
            o.cost,
            o.revocations,
            o.checkpoints,
            if o.escalated { ", escalated" } else { "" },
            if o.finished { "" } else { ", unfinished" },
        );
    }
}

pub fn run(args: &Args) -> Result<(), String> {
    let policies = parse_policies(args.get_or("policy", "all"))?;
    let days = args.get_u64("days", 14)?;
    if days == 0 {
        return Err("--days must be >= 1".to_string());
    }
    let seed = args.get_u64("seed", 0)?;
    let outcomes = args.has("outcomes");
    let base = config_from(args)?;

    let horizon = SimDuration::days(days);
    let traces = TraceSet::generate(&Catalog::ec2_2015(), &[base.market], seed, horizon);
    let mut scratch = JobsScratch::new();

    let store = args
        .get("store")
        .map(|path| {
            spothost_eventstore::ColumnarStore::create(path)
                .map(|s| (s, path.to_string()))
                .map_err(|e| format!("--store {path}: {e}"))
        })
        .transpose()?;

    println!(
        "batch jobs on {} over {days} simulated days (seed {seed}, {} workers):\n",
        base.market, base.workers
    );
    for policy in policies {
        let cfg = JobsConfig {
            policy,
            ..base.clone()
        };
        let run = match &store {
            // All policies share one store, each as its own sealed
            // stream (the sink drops, and seals, per policy).
            Some((store, _)) => {
                let mut sink = store.sink();
                run_jobs_on(&cfg, &traces, seed, &mut sink, &mut scratch)
            }
            None => run_jobs_on(&cfg, &traces, seed, &mut NullSink, &mut scratch),
        };
        println!("{}", run.report);
        if outcomes {
            print_worst_outcomes(&run, 5);
        }
    }
    if let Some((sink, path)) = store {
        sink.finish().map_err(|e| format!("--store {path}: {e}"))?;
        println!(
            "store: {} events in {} blocks -> {path} (aggregate with `spothost query`)",
            sink.events_written(),
            sink.blocks_written()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(items: &[&str]) -> Args {
        parse(&items.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn runs_all_policies_quickly() {
        run(&argv(&["--days", "4", "--workers", "2", "--outcomes"])).unwrap();
    }

    #[test]
    fn runs_one_policy_with_faults() {
        run(&argv(&[
            "--policy",
            "on-demand-fallback",
            "--days",
            "4",
            "--fault-rate",
            "0.1",
            "--storm-intensity",
            "0.5",
        ]))
        .unwrap();
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(run(&argv(&["--policy", "nope"])).is_err());
        assert!(run(&argv(&["--days", "0"])).is_err());
        assert!(run(&argv(&["--market", "nowhere/huge"])).is_err());
        assert!(run(&argv(&["--mean-runtime-h", "0"])).is_err());
        assert!(run(&argv(&["--slack", "-2"])).is_err());
    }

    #[test]
    fn writes_a_columnar_store() {
        let dir = std::env::temp_dir().join("spothost-jobs-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.col");
        let path_s = path.to_str().unwrap();
        run(&argv(&[
            "--policy",
            "checkpoint-spot",
            "--days",
            "4",
            "--store",
            path_s,
        ]))
        .unwrap();
        assert!(path.exists() && std::fs::metadata(&path).unwrap().len() > 0);
        std::fs::remove_file(&path).unwrap();
    }
}
