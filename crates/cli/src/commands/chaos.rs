//! `spothost chaos` — bounded chaos sweep over the storm/fault grid.
//!
//! The CLI face of the chaos invariant harness
//! (`crates/core/tests/chaos_properties.rs`): burn a wall-clock budget
//! running randomized-but-reproducible storm x fault x policy x
//! mechanism x scope configurations and verify, for every trial, that
//! the scheduler
//!
//! * terminates with conserved accounting (downtime fits inside the
//!   measured span, cost finite and within a constant factor of the
//!   on-demand baseline),
//! * is deterministic (a re-run with the same inputs is bit-identical),
//! * replays exactly through telemetry (summing the recorded stream
//!   reproduces cost and downtime bitwise, storm edges balance), and
//! * collapses to the storm-free baseline at zero intensity.
//!
//! Trials derive from `--seed` via splitmix64, so a failing trial number
//! reproduces exactly: `spothost chaos --seed N` re-runs the same grid
//! in the same order regardless of how many trials the budget admitted.

use crate::args::Args;
use spothost_core::prelude::*;
use spothost_market::time::SimDuration;
use spothost_market::types::{InstanceType, MarketId, Zone};
use std::time::Instant;

/// splitmix64 — tiny, seedable, and good enough to scatter trial knobs.
/// Using it (rather than the simulator's ChaCha streams) keeps the
/// harness's randomness visibly separate from the randomness under test.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// One trial's configuration, derived entirely from the trial stream.
fn trial_cfg(state: &mut u64) -> SchedulerConfig {
    let scope = match splitmix64(state) % 3 {
        0 => MarketScope::Single(MarketId::new(Zone::UsEast1a, InstanceType::Small)),
        1 => MarketScope::MultiMarket(Zone::UsEast1a),
        _ => MarketScope::MultiRegion(vec![Zone::UsEast1a, Zone::UsWest1a]),
    };
    let policy = match splitmix64(state) % 4 {
        0 => BiddingPolicy::OnDemandOnly,
        1 => BiddingPolicy::PureSpot,
        2 => BiddingPolicy::Reactive,
        _ => BiddingPolicy::proactive_default(),
    };
    let mechanism = MechanismCombo::ALL[(splitmix64(state) % 4) as usize];
    // Weight the endpoints: zero intensity must be a perfect no-op and
    // full intensity is where termination and backpressure bugs live.
    let mut storms = StormConfig::intensity(match splitmix64(state) % 8 {
        0 => 0.0,
        1 => 1.0,
        _ => unit(state),
    });
    storms.od_quota = [0, 1, 4, 16][(splitmix64(state) % 4) as usize];
    let mut faults = FaultConfig::none();
    faults.spot_capacity_rate = unit(state) * 0.5;
    faults.od_capacity_rate = unit(state) * 0.5;
    faults.warning_miss_rate = unit(state) * 0.5;
    faults.ckpt_failure_rate = unit(state) * 0.5;
    let cfg = match &scope {
        MarketScope::Single(m) => SchedulerConfig::single_market(*m),
        _ => SchedulerConfig::multi(scope),
    };
    cfg.with_policy(policy)
        .with_mechanism(mechanism)
        .with_faults(faults)
        .with_storms(storms)
}

fn check_conservation(r: &RunReport, horizon: SimDuration) -> Result<(), String> {
    if r.downtime > r.active_span {
        return Err(format!(
            "downtime {:?} exceeds span {:?}",
            r.downtime, r.active_span
        ));
    }
    if r.active_span > horizon {
        return Err(format!(
            "span {:?} exceeds horizon {horizon:?}",
            r.active_span
        ));
    }
    if !(0.0..=1.0).contains(&r.unavailability) {
        return Err(format!("unavailability {} outside [0,1]", r.unavailability));
    }
    if !(r.cost.is_finite() && r.cost >= 0.0) {
        return Err(format!("cost {} not finite and non-negative", r.cost));
    }
    if r.cost > 3.0 * r.baseline_cost + 1.0 {
        return Err(format!(
            "cost {} blows past 3x on-demand baseline {}",
            r.cost, r.baseline_cost
        ));
    }
    Ok(())
}

fn check_replay(cfg: &SchedulerConfig, seed: u64, horizon: SimDuration) -> Result<(), String> {
    let plain = run_one(cfg, seed, horizon);
    let (report, rec) = run_one_recorded(cfg, seed, horizon);
    if plain != report {
        return Err("recorded run diverged from plain run".to_string());
    }
    let mut cost = 0.0f64;
    let mut downtime_ms = 0u64;
    let mut open = [0i64; 4];
    for (_, ev) in rec.events() {
        match ev {
            TelemetryEvent::LeaseClosed { cost: c, .. } => cost += c,
            TelemetryEvent::Outage { start, end } => {
                downtime_ms += (*end - *start).as_millis();
            }
            TelemetryEvent::StormStarted { zone } => open[zone.index()] += 1,
            TelemetryEvent::StormEnded { zone } => {
                open[zone.index()] -= 1;
                if open[zone.index()] < 0 {
                    return Err(format!("zone {zone:?}: storm ended before it started"));
                }
            }
            _ => {}
        }
    }
    if cost.to_bits() != report.cost.to_bits() {
        return Err(format!(
            "replayed cost {cost} != report cost {}",
            report.cost
        ));
    }
    if downtime_ms != report.downtime.as_millis() {
        return Err(format!(
            "replayed downtime {downtime_ms} ms != report {:?}",
            report.downtime
        ));
    }
    if open.iter().any(|n| !(0..=1).contains(n)) {
        return Err(format!("unbalanced storm edges at horizon: {open:?}"));
    }
    Ok(())
}

fn check_zero_intensity(
    cfg: &SchedulerConfig,
    seed: u64,
    horizon: SimDuration,
) -> Result<(), String> {
    let mut storm_free = cfg.clone();
    storm_free.storms = StormConfig::none();
    let mut zero = cfg.clone();
    zero.storms = StormConfig::intensity(0.0);
    if run_one(&storm_free, seed, horizon) != run_one(&zero, seed, horizon) {
        return Err("zero-intensity storms are not bit-identical to no storms".to_string());
    }
    Ok(())
}

pub fn run(args: &Args) -> Result<(), String> {
    let budget_s = args.get_f64("seconds", 30.0)?;
    if !(budget_s > 0.0 && budget_s.is_finite()) {
        return Err(format!("--seconds must be positive, got {budget_s}"));
    }
    let seed = args.get_u64("seed", 0)?;
    let days = args.get_u64("days", 7)?;
    let horizon = SimDuration::days(days);

    println!(
        "spothost chaos — storm/fault grid, {budget_s:.0}s budget, \
         {days}-day runs, seed {seed}"
    );
    let start = Instant::now();
    let mut state = seed ^ 0x5eed_0fc4_a050_0000;
    let mut trials = 0u64;
    let mut checks = 0u64;
    while start.elapsed().as_secs_f64() < budget_s {
        let cfg = trial_cfg(&mut state);
        cfg.validate()
            .map_err(|e| format!("trial {trials}: grid produced an invalid config: {e}"))?;
        let run_seed = splitmix64(&mut state) % 10_000;

        let fail = |what: &str, e: String| {
            format!(
                "FAIL at trial {trials} ({what}): {e}\n  \
                 reproduce with: spothost chaos --seed {seed} (trial {trials})\n  \
                 config: {cfg:?} run_seed {run_seed}"
            )
        };

        let a = run_one(&cfg, run_seed, horizon);
        check_conservation(&a, horizon).map_err(|e| fail("conservation", e))?;
        let b = run_one(&cfg, run_seed, horizon);
        if a != b {
            return Err(fail(
                "determinism",
                "re-run with identical inputs diverged".to_string(),
            ));
        }
        checks += 2;
        // The recorded and baseline runs cost a full extra simulation
        // each; sample them so most of the budget goes to grid breadth.
        if trials.is_multiple_of(4) {
            check_replay(&cfg, run_seed, horizon).map_err(|e| fail("telemetry replay", e))?;
            checks += 1;
        }
        if trials.is_multiple_of(8) {
            check_zero_intensity(&cfg, run_seed, horizon)
                .map_err(|e| fail("zero-intensity neutrality", e))?;
            checks += 1;
        }
        trials += 1;
    }
    println!(
        "PASS — {trials} chaotic configurations, {checks} invariant checks, \
         {:.1}s",
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(items: &[&str]) -> Args {
        parse(&items.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn bounded_chaos_passes_within_a_small_budget() {
        run(&argv(&["--seconds", "2", "--days", "2"])).unwrap();
    }

    #[test]
    fn rejects_nonpositive_budget() {
        assert!(run(&argv(&["--seconds", "0"])).is_err());
        assert!(run(&argv(&["--seconds", "-3"])).is_err());
    }

    #[test]
    fn trial_stream_is_reproducible() {
        let mut s1 = 42u64;
        let mut s2 = 42u64;
        for _ in 0..32 {
            assert_eq!(
                format!("{:?}", trial_cfg(&mut s1)),
                format!("{:?}", trial_cfg(&mut s2))
            );
        }
    }
}
