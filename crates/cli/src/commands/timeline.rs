//! `spothost timeline` — run one seed with the telemetry recorder and
//! render the event stream as an ASCII Gantt chart: lease occupancy per
//! market, outage/degraded windows, migration markers.

use crate::args::Args;
use crate::commands::simulate::{build_cfg, load_traces};
use spothost_core::prelude::*;
use spothost_core::telemetry::render_timeline;
use spothost_core::SimRun;
use spothost_market::prelude::*;
use spothost_market::time::SimTime;

pub fn run(args: &Args) -> Result<(), String> {
    let cfg = build_cfg(args)?;
    let days = args.get_u64("days", 14)?;
    let seed = args.get_u64("seed", 0)?;
    let width = args.get_u64("width", 96)? as usize;
    if !(10..=500).contains(&width) {
        return Err(format!("--width must be in [10, 500], got {width}"));
    }

    let horizon = SimDuration::days(days);
    let set = load_traces(args, &cfg, seed, horizon)?;
    let mut rec = Recorder::new();
    let report = SimRun::new(&set, &cfg, seed).with_sink(&mut rec).run();
    let dropped = rec.dropped();

    let end = SimTime::ZERO + horizon;
    let events = rec.into_events();
    if dropped > 0 {
        println!(
            "WARNING: timeline truncated — the ring buffer evicted the {dropped} oldest \
             events; the Gantt below starts mid-run (first kept event at {}).\n\
             Re-run with `spothost simulate --trace out.jsonl` (streams the full \
             timeline) or record to a columnar store with `--store out.col`.\n",
            events.first().map(|(t, _)| *t).unwrap_or(SimTime::ZERO)
        );
    }
    print!("{}", render_timeline(&events, SimTime::ZERO, end, width));
    println!(
        "\n{} events | cost {:.1}% of on-demand | unavailability {:.5}% | {} migrations",
        events.len(),
        report.normalized_cost_pct(),
        report.unavailability_pct(),
        report.total_migrations()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(items: &[&str]) -> Args {
        parse(&items.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn renders_a_short_timeline() {
        run(&argv(&["--days", "3", "--width", "40"])).unwrap();
    }

    #[test]
    fn rejects_out_of_range_width() {
        assert!(run(&argv(&["--days", "1", "--width", "5"])).is_err());
    }
}
