//! `spothost query` — aggregate a columnar telemetry store.
//!
//! Reads a `.col` file written by `simulate --store` / `fleet-sim
//! --store` (or any [`spothost_eventstore::ColumnarStore`] user), applies
//! a time/kind/market/zone/VM predicate — pruning whole blocks on their
//! headers before decoding anything — and prints counts, sums, means,
//! percentiles or histograms of a chosen field, optionally grouped.
//! `--perfetto` exports the selection as a Chrome/Perfetto trace instead.

use crate::args::Args;
use spothost_eventstore::query::{
    group_counts, grouped_values, histogram_of, percentile_of, Field, GroupBy, Predicate,
};
use spothost_eventstore::{perfetto, ColReader, EventKind};
use spothost_market::io::parse_market;
use spothost_market::time::SimTime;
use spothost_market::types::Zone;

fn parse_zone(s: &str) -> Result<Zone, String> {
    Zone::ALL
        .into_iter()
        .find(|z| z.name() == s)
        .ok_or_else(|| format!("unknown zone '{s}'"))
}

fn field_names() -> String {
    Field::ALL
        .iter()
        .map(|f| f.name())
        .collect::<Vec<_>>()
        .join(", ")
}

fn kind_names() -> String {
    EventKind::ALL
        .iter()
        .map(|k| k.name())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Build the predicate from the CLI flags.
fn build_predicate(args: &Args) -> Result<Predicate, String> {
    let mut pred = Predicate::any();
    let from_h = args.get_f64("from-h", 0.0)?;
    let to_h = args.get_f64("to-h", f64::INFINITY)?;
    if from_h < 0.0 || (to_h.is_finite() && to_h < from_h) {
        return Err(format!("bad time range: --from-h {from_h} --to-h {to_h}"));
    }
    if from_h > 0.0 || to_h.is_finite() {
        let from = SimTime::millis((from_h * 3_600_000.0) as u64);
        let to = if to_h.is_finite() {
            SimTime::millis((to_h * 3_600_000.0) as u64)
        } else {
            SimTime::MAX
        };
        pred = pred.with_time_range(from, to);
    }
    if let Some(kinds) = args.get("kind") {
        for name in kinds.split(',') {
            let kind = EventKind::parse(name)
                .ok_or_else(|| format!("unknown kind '{name}' (one of: {})", kind_names()))?;
            pred = pred.with_kind(kind);
        }
    }
    if let Some(m) = args.get("market") {
        pred = pred.with_market(parse_market(m).map_err(|e| e.to_string())?);
    }
    if let Some(z) = args.get("zone") {
        pred = pred.with_zone(parse_zone(z)?);
    }
    if args.get("vm").is_some() {
        let vm = args.get_u64("vm", 0)?;
        if vm > u32::MAX as u64 {
            return Err(format!("--vm {vm} is not a valid spawn index"));
        }
        pred = pred.with_vm(vm as u32);
    }
    Ok(pred)
}

pub fn run(args: &Args) -> Result<(), String> {
    let path = args.get("store").ok_or("--store FILE is required")?;
    let reader = ColReader::open(path).map_err(|e| format!("--store {path}: {e}"))?;
    let pred = build_predicate(args)?;
    let group = GroupBy::parse(args.get_or("group-by", "none"))
        .ok_or_else(|| "--group-by must be one of none, kind, market, zone, vm".to_string())?;
    let agg = args.get_or("agg", "count");
    let buckets = args.get_u64("buckets", 10)? as usize;

    let sel = reader.select(&pred).map_err(|e| format!("{path}: {e}"))?;
    let vms = reader.vms();
    let tagged = vms.iter().filter(|v| v.is_some()).count();
    println!(
        "store:      {path} ({} blocks, {} events, {})",
        reader.block_count(),
        reader.event_count(),
        if tagged > 0 {
            format!("{tagged} tagged VM streams")
        } else {
            "1 untagged stream".to_string()
        }
    );
    println!(
        "selection:  {} events; decoded {}/{} blocks (pruned {})",
        sel.events.len(),
        sel.blocks_decoded,
        sel.blocks_total,
        sel.blocks_total - sel.blocks_decoded
    );

    if args.has("stats") {
        println!("\nblocks (vm, events, time span, kinds bitmap):");
        for meta in reader.metas() {
            println!(
                "  {:>6}  {:>6} ev  [{:>10.3} h, {:>10.3} h]  kinds {:#08x}",
                meta.vm.map_or("-".to_string(), |v| format!("vm{v}")),
                meta.count,
                meta.min_t_ms as f64 / 3_600_000.0,
                meta.max_t_ms as f64 / 3_600_000.0,
                meta.kinds
            );
        }
    }

    if let Some(out) = args.get("perfetto") {
        let json = perfetto::to_perfetto_json(&sel.events);
        std::fs::write(out, &json).map_err(|e| format!("--perfetto {out}: {e}"))?;
        println!(
            "perfetto:   {} events -> {out} ({} bytes; open in ui.perfetto.dev)",
            sel.events.len(),
            json.len()
        );
        return Ok(());
    }

    match agg {
        "count" => {
            println!("\ncount by {group:?}:");
            for (key, n) in group_counts(&sel.events, group) {
                println!("  {key:<24} {n}");
            }
        }
        "sum" | "mean" | "p50" | "p90" | "p99" | "hist" => {
            let field_name = args
                .get("field")
                .ok_or_else(|| format!("--agg {agg} needs --field (one of: {})", field_names()))?;
            let field = Field::parse(field_name).ok_or_else(|| {
                format!("unknown field '{field_name}' (one of: {})", field_names())
            })?;
            let groups = grouped_values(&sel.events, field, group);
            if groups.is_empty() {
                println!("\nno events in the selection carry field '{field_name}'");
                return Ok(());
            }
            println!("\n{agg} of {field_name} by {group:?}:");
            for (key, values) in &groups {
                match agg {
                    "sum" => println!("  {key:<24} {:.6}", values.iter().sum::<f64>()),
                    "mean" => println!(
                        "  {key:<24} {:.6}",
                        values.iter().sum::<f64>() / values.len() as f64
                    ),
                    "p50" => println!("  {key:<24} {:.6}", percentile_of(values, 50.0)),
                    "p90" => println!("  {key:<24} {:.6}", percentile_of(values, 90.0)),
                    "p99" => println!("  {key:<24} {:.6}", percentile_of(values, 99.0)),
                    "hist" => {
                        println!("  {key} ({} samples):", values.len());
                        print!("{}", histogram_of(values, buckets).render(40));
                    }
                    _ => unreachable!("matched above"),
                }
            }
        }
        other => {
            return Err(format!(
                "unknown aggregation '{other}' (count, sum, mean, p50, p90, p99, hist)"
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use spothost_core::prelude::*;
    use spothost_core::SimRun;
    use spothost_eventstore::ColumnarStore;
    use spothost_market::gen::TraceSet;
    use spothost_market::prelude::*;
    use spothost_market::time::SimDuration;
    use spothost_market::types::{InstanceType, MarketId};

    fn argv(items: &[&str]) -> Args {
        parse(&items.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    /// Record a short chaotic run into a temp `.col` file.
    fn fixture(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("spothost-query-test-{name}.col"));
        let mut faults = FaultConfig::none();
        faults.spot_capacity_rate = 0.2;
        let cfg =
            SchedulerConfig::single_market(MarketId::new(Zone::UsEast1a, InstanceType::Small))
                .with_policy(BiddingPolicy::Reactive)
                .with_faults(faults);
        let catalog = Catalog::ec2_2015();
        let traces = TraceSet::generate(&catalog, &cfg.candidates(), 7, SimDuration::days(7));
        let store = ColumnarStore::create(&path).unwrap().with_block_events(128);
        {
            let sink = store.sink();
            SimRun::new(&traces, &cfg, 7).with_sink(sink).run();
        }
        store.finish().unwrap();
        path
    }

    #[test]
    fn counts_sums_and_histograms_run() {
        let path = fixture("basic");
        let store = path.to_str().unwrap();
        run(&argv(&["--store", store])).unwrap();
        run(&argv(&["--store", store, "--group-by", "kind"])).unwrap();
        run(&argv(&[
            "--store",
            store,
            "--agg",
            "sum",
            "--field",
            "cost",
            "--group-by",
            "market",
        ]))
        .unwrap();
        run(&argv(&[
            "--store",
            store,
            "--agg",
            "p99",
            "--field",
            "lease_hours",
        ]))
        .unwrap();
        run(&argv(&[
            "--store",
            store,
            "--agg",
            "hist",
            "--field",
            "cost",
            "--buckets",
            "5",
        ]))
        .unwrap();
        run(&argv(&["--store", store, "--stats"])).unwrap();
        run(&argv(&[
            "--store",
            store,
            "--from-h",
            "0",
            "--to-h",
            "24",
            "--kind",
            "lease_closed",
        ]))
        .unwrap();
    }

    #[test]
    fn perfetto_export_writes_json() {
        let path = fixture("perfetto");
        let out = std::env::temp_dir().join("spothost-query-test-perfetto.json");
        run(&argv(&[
            "--store",
            path.to_str().unwrap(),
            "--perfetto",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\""));
    }

    #[test]
    fn empty_and_zero_block_stores_query_cleanly() {
        // A store that never sealed a block writes zero bytes ("a run
        // that emitted no events"); querying it must succeed with empty
        // output, not panic — including aggregations over no values.
        let path = std::env::temp_dir().join("spothost-query-test-zeroblock.col");
        let store = ColumnarStore::create(&path).unwrap();
        drop(store.sink()); // no events emitted -> no block sealed
        store.finish().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let p = path.to_str().unwrap();
        run(&argv(&["--store", p])).unwrap();
        run(&argv(&["--store", p, "--agg", "sum", "--field", "cost"])).unwrap();
        run(&argv(&["--store", p, "--agg", "hist", "--field", "cost"])).unwrap();
        run(&argv(&["--store", p, "--stats"])).unwrap();
    }

    #[test]
    fn truncated_and_corrupt_stores_are_errors_not_panics() {
        // Cut a healthy multi-block store mid-frame: the reader must
        // report truncation as a clean error up front.
        let whole = std::fs::read(fixture("truncate-src")).unwrap();
        assert!(whole.len() > 64, "fixture store too small to truncate");
        let cut = std::env::temp_dir().join("spothost-query-test-truncated.col");
        std::fs::write(&cut, &whole[..whole.len() - 11]).unwrap();
        let err = run(&argv(&["--store", cut.to_str().unwrap()])).unwrap_err();
        assert!(
            err.contains("truncated") || err.contains("corrupt"),
            "unhelpful truncation error: {err}"
        );

        // A frame header with nothing after it.
        let headless = std::env::temp_dir().join("spothost-query-test-headless.col");
        let mut bytes = spothost_eventstore::MAGIC.to_vec();
        bytes.extend_from_slice(&[0xFF, 0x00]); // partial frame length
        std::fs::write(&headless, &bytes).unwrap();
        let err = run(&argv(&["--store", headless.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("truncated"), "unhelpful error: {err}");

        // Not a columnar file at all.
        let garbage = std::env::temp_dir().join("spothost-query-test-garbage.col");
        std::fs::write(&garbage, b"this is not a columnar store").unwrap();
        let err = run(&argv(&["--store", garbage.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("bad magic"), "unhelpful error: {err}");
    }

    #[test]
    fn bad_flags_are_errors_not_panics() {
        let path = fixture("errors");
        let store = path.to_str().unwrap();
        assert!(run(&argv(&[])).is_err()); // no --store
        assert!(run(&argv(&["--store", "/nonexistent.col"])).is_err());
        assert!(run(&argv(&["--store", store, "--kind", "nope"])).is_err());
        assert!(run(&argv(&["--store", store, "--agg", "median"])).is_err());
        assert!(run(&argv(&["--store", store, "--agg", "sum"])).is_err()); // no field
        assert!(run(&argv(&[
            "--store", store, "--agg", "sum", "--field", "nope"
        ]))
        .is_err());
        assert!(run(&argv(&["--store", store, "--group-by", "planet"])).is_err());
        assert!(run(&argv(&["--store", store, "--from-h", "5", "--to-h", "1"])).is_err());
        assert!(run(&argv(&["--store", store, "--zone", "mars"])).is_err());
    }
}
