pub mod analyze;
pub mod chaos;
pub mod fleet_sim;
pub mod gen_traces;
pub mod markets;
pub mod query;
pub mod simulate;
pub mod timeline;
