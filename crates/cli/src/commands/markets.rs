//! `spothost markets` — the price book and calibration summary.

use spothost_analysis::table::TextTable;
use spothost_market::prelude::*;

pub fn run() -> Result<(), String> {
    let catalog = Catalog::ec2_2015();
    println!("spot markets (2015 EC2 calibration)\n");
    let mut t = TextTable::new([
        "market",
        "on-demand $/h",
        "max bid $/h",
        "calm spot/od",
        "spikes/day",
        "spike dur",
    ]);
    for market in MarketId::all() {
        let model = calibrated_model(market);
        t.row([
            market.to_string(),
            format!("{:.3}", catalog.on_demand_price(market)),
            format!("{:.3}", catalog.max_bid(market)),
            format!("{:.2}", model.base_ratio),
            format!("{:.2}", model.effective_spike_rate_per_day()),
            model.spike_duration_mean.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "bid cap: {}x on-demand (Amazon's 2015 limit)",
        catalog.max_bid_mult()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn markets_command_succeeds() {
        super::run().unwrap();
    }
}
