//! Tiny flag parser: `--key value` pairs and boolean `--flag`s.
//!
//! Deliberately dependency-free — the CLI's surface is small and the
//! workspace keeps its dependency set minimal (see DESIGN.md).

use std::collections::BTreeMap;

/// Parsed flags: `--key value` entries plus bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Known boolean switches (everything else expects a value).
const SWITCHES: [&str; 6] = [
    "pessimistic",
    "verbose",
    "metrics",
    "cache-stats",
    "stats",
    "outcomes",
];

pub fn parse(argv: &[String]) -> Result<Args, String> {
    let mut out = Args::default();
    let mut i = 0;
    while i < argv.len() {
        let arg = &argv[i];
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument '{arg}'"));
        };
        if SWITCHES.contains(&key) {
            out.switches.push(key.to_string());
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("--{key} expects a value"))?;
        if value.starts_with("--") {
            return Err(format!("--{key} expects a value, got '{value}'"));
        }
        out.values.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(out)
}

impl Args {
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("--{key}: expected an integer, got '{v}' ({e})")),
        }
    }

    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("--{key}: expected a number, got '{v}' ({e})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = parse(&argv(&["--days", "30", "--pessimistic", "--seed", "7"])).unwrap();
        assert_eq!(a.get("days"), Some("30"));
        assert_eq!(a.get_u64("seed", 0).unwrap(), 7);
        assert!(a.has("pessimistic"));
        assert!(!a.has("verbose"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&argv(&[])).unwrap();
        assert_eq!(a.get_u64("days", 60).unwrap(), 60);
        assert_eq!(a.get_f64("stability", 0.0).unwrap(), 0.0);
        assert_eq!(a.get_or("policy", "proactive"), "proactive");
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&argv(&["--days"])).is_err());
        assert!(parse(&argv(&["--days", "--seed"])).is_err());
    }

    #[test]
    fn rejects_positional() {
        assert!(parse(&argv(&["simulate"])).is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        let a = parse(&argv(&["--days", "soon"])).unwrap();
        assert!(a.get_u64("days", 1).is_err());
    }
}
