//! `spothost` — command-line interface to the simulator.
//!
//! ```text
//! spothost markets                      # the price book and calibration
//! spothost gen-traces --days 28 --out traces/
//! spothost analyze --traces traces/
//! spothost simulate --market us-east-1a/small --policy proactive --days 60
//! spothost simulate --scope zone:us-east-1b --seeds 12
//! spothost simulate --storm-intensity 0.5 --scope regions:us-east-1a,us-west-1a
//! spothost chaos --seconds 30
//! spothost fleet-sim --vms 200 --days 7 --store fleet.col
//! spothost jobs --policy all --days 14 --fault-rate 0.1
//! spothost query --store fleet.col --agg sum --field cost --group-by vm
//! ```

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        print_usage();
        return Ok(());
    };
    match cmd.as_str() {
        "markets" => commands::markets::run(),
        "gen-traces" => commands::gen_traces::run(&args::parse(rest)?),
        "analyze" => commands::analyze::run(&args::parse(rest)?),
        "simulate" => commands::simulate::run(&args::parse(rest)?),
        "timeline" => commands::timeline::run(&args::parse(rest)?),
        "chaos" => commands::chaos::run(&args::parse(rest)?),
        "fleet-sim" => commands::fleet_sim::run(&args::parse(rest)?),
        "jobs" => commands::jobs::run(&args::parse(rest)?),
        "query" => commands::query::run(&args::parse(rest)?),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try --help)")),
    }
}

fn print_usage() {
    println!(
        "spothost — always-on services on cloud spot markets (HPDC'15 reproduction)

USAGE:
  spothost markets
      Print the market catalog: zones, sizes, on-demand prices, bid caps.

  spothost gen-traces [--seed N] [--days D] [--out DIR] [--zone Z]
      Generate calibrated spot-price traces and export them as CSV.

  spothost analyze --traces DIR [--sample-mins M]
      Per-market statistics and correlations of a trace directory.

  spothost simulate [--market M | --scope zone:Z | --scope regions:Z1,Z2]
                    [--policy proactive|adaptive|reactive|pure-spot|on-demand]
                    [--bid-mult X] [--risk-budget P]
                    [--mechanism ckpt|ckpt-lr|ckpt-live|ckpt-lr-live]
                    [--pessimistic] [--stability W] [--units U]
                    [--fault-rate R] [--storm-intensity X]
                    [--days D] [--seeds N] [--seed N]
                    [--traces DIR] [--trace FILE] [--store FILE]
                    [--metrics] [--cache-stats]
      Run the cloud scheduler and report cost/availability/migrations.
      With --traces, runs against imported price history instead of the
      calibrated generator. --bid-mult sets the proactive bid multiple
      (>= 1); --risk-budget sets the adaptive policy's tolerated
      P(revocation within the next hour), in (0, 1).
      --fault-rate injects provider and mechanism
      faults uniformly at rate R in [0, 1] (see spothost-faults).
      --storm-intensity turns on correlated failure storms at severity
      X in [0, 1]: zone-scoped episodes multiply fault rates, revoke
      every lease in the zone at once, and throttle reacquisition
      (0, the default, is bit-identical to no storms at all).
      --trace re-runs the first seed with the telemetry recorder and
      streams the structured event timeline to FILE as JSONL; --store
      records the same run into FILE as a columnar event store (.col,
      ~10x smaller; aggregate with `spothost query`); --metrics
      prints event-derived histograms (outages, migration latencies,
      lease lengths, $/hour). --cache-stats prints the process-global
      trace-arena hit/miss and residency counters after the run.

  spothost timeline [same scope/policy/mechanism/fault flags as simulate]
                    [--days D] [--seed N] [--width COLS]
      Run one seed with the telemetry recorder and render the event
      stream as an ASCII Gantt chart: one row per market ('=' spot,
      '#' on-demand lease), outage/degraded rows, migration markers.

  spothost chaos [--seconds S] [--seed N] [--days D]
      Burn a wall-clock budget (default 30 s) running randomized
      storm/fault/policy/mechanism grids and checking the chaos
      invariants: conserved accounting, bitwise determinism, exact
      telemetry replay, and zero-intensity neutrality. Prints PASS
      with trial counts, or FAIL with a reproducing seed.

  spothost fleet-sim [--vms MAX] [--min-vms MIN] [--seconds S]
                     [--days D] [--seed N] [--users U]
                     [--scope zone:Z | --scope regions:Z1,Z2]
                     [--policy P] [--mechanism M]
                     [--storm-intensity X] [--target-util T]
                     [--width COLS] [--store FILE]
      Simulate an autoscaled fleet of per-VM schedulers serving a
      diurnal + flash-crowd user population: a least-loaded balancer
      feeds the fleet-level MVA model, and a target-tracking autoscaler
      (control interval S seconds, default 300) acquires and releases
      VMs between MIN and MAX. Renders ASCII fleet-size and p99-latency
      timelines plus the cost/availability summary. --users sets the
      diurnal base population; --target-util the per-VM bottleneck
      utilisation the autoscaler provisions for. Fixed --seed gives
      byte-identical output. --store records every VM's telemetry
      stream into FILE as a columnar store, tagged by spawn index.

  spothost jobs [--policy greedy-spot|checkpoint-spot|on-demand-fallback|all]
                [--market M] [--workers N] [--days D] [--seed N]
                [--mean-runtime-h H] [--mean-arrival-h H] [--slack F]
                [--fault-rate R] [--storm-intensity X]
                [--outcomes] [--store FILE]
      Schedule a seeded queue of deadline batch jobs onto spot worker
      slots and report $/job, deadline-miss rate, wasted work, and
      makespan per policy rung. greedy-spot restarts revoked jobs from
      scratch; checkpoint-spot checkpoints at Young's interval from the
      forecaster's predicted revocation risk; on-demand-fallback
      escalates a job to on-demand once its remaining slack no longer
      covers the predicted restart loss. --outcomes prints the worst
      per-job lines; --store records the job lifecycle events as a
      columnar store for `spothost query`.

  spothost query --store FILE [--from-h H] [--to-h H] [--kind K,..]
                 [--market Z/T] [--zone Z] [--vm N]
                 [--agg count|sum|mean|p50|p90|p99|hist] [--field F]
                 [--group-by none|kind|market|zone|vm] [--buckets N]
                 [--stats] [--perfetto OUT.json]
      Aggregate a columnar store written by simulate/fleet-sim --store.
      Predicates prune whole blocks on their headers before decoding
      (the pruning stats are printed). Fields: cost, bid, risk,
      lease_hours, outage_s, degraded_s, mig_downtime_s,
      mig_degraded_s, phase_s, backoff_attempt. --stats dumps the
      per-block headers; --perfetto exports the selection as a
      Chrome/Perfetto trace (open in ui.perfetto.dev) with one process
      per VM and lease/service/migration/mark tracks."
    );
}
