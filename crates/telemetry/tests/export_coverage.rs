//! Exhaustive export coverage: every `TelemetryEvent` variant round-trips
//! through `event_to_json` / `event_to_csv_row` with golden assertions on
//! field names, values, and escaping. A new enum variant fails the
//! `exhaustive` match below at compile time, forcing this table to grow
//! with the schema.

use spothost_cloudsim::{InstanceId, TerminationReason};
use spothost_faults::FaultKind;
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::types::{InstanceType, MarketId, Zone};
use spothost_telemetry::{
    event_to_csv_row, event_to_json, DenialReason, MigrationPhase, SchedulerState, TelemetryEvent,
    CSV_HEADER,
};
use spothost_virt::MigrationKind;

fn m() -> MarketId {
    MarketId::new(Zone::UsWest1a, InstanceType::Large)
}

fn m2() -> MarketId {
    MarketId::new(Zone::UsEast1b, InstanceType::Small)
}

fn id() -> InstanceId {
    InstanceId(42)
}

/// Compile-time exhaustiveness guard: adding a variant breaks this match,
/// which is the cue to add a golden row below.
fn exhaustive(ev: &TelemetryEvent) {
    match ev {
        TelemetryEvent::BidPlaced { .. }
        | TelemetryEvent::LeaseGranted { .. }
        | TelemetryEvent::LeaseDenied { .. }
        | TelemetryEvent::LeaseActivated { .. }
        | TelemetryEvent::ActivationFailed { .. }
        | TelemetryEvent::LeaseClosed { .. }
        | TelemetryEvent::PriceCrossing { .. }
        | TelemetryEvent::RevocationWarning { .. }
        | TelemetryEvent::UnwarnedDeath { .. }
        | TelemetryEvent::MigrationStarted { .. }
        | TelemetryEvent::MigrationPhase { .. }
        | TelemetryEvent::MigrationCompleted { .. }
        | TelemetryEvent::MigrationAborted { .. }
        | TelemetryEvent::Outage { .. }
        | TelemetryEvent::Degraded { .. }
        | TelemetryEvent::ServiceUp { .. }
        | TelemetryEvent::FaultInjected { .. }
        | TelemetryEvent::BackoffScheduled { .. }
        | TelemetryEvent::StateChange { .. }
        | TelemetryEvent::StormStarted { .. }
        | TelemetryEvent::StormEnded { .. }
        | TelemetryEvent::QuotaExhausted { .. }
        | TelemetryEvent::JobStarted { .. }
        | TelemetryEvent::JobCheckpointed { .. }
        | TelemetryEvent::JobRestarted { .. }
        | TelemetryEvent::JobFinished { .. } => {}
    }
}

/// One golden row per variant shape: (event, expected JSON, expected CSV).
fn goldens() -> Vec<(TelemetryEvent, &'static str, &'static str)> {
    vec![
        (
            TelemetryEvent::BidPlaced {
                market: m(),
                bid: Some(0.125),
                predicted_risk: Some(0.02),
            },
            r#"{"t_ms":1000,"kind":"bid_placed","market":"us-west-1a/large","bid":0.125,"risk":0.02}"#,
            "1000,bid_placed,,us-west-1a/large,,,,,0.125,risk=0.02",
        ),
        (
            TelemetryEvent::BidPlaced {
                market: m(),
                bid: None,
                predicted_risk: None,
            },
            r#"{"t_ms":1000,"kind":"bid_placed","market":"us-west-1a/large","on_demand":true}"#,
            "1000,bid_placed,,us-west-1a/large,,,,,,on-demand",
        ),
        (
            TelemetryEvent::LeaseGranted {
                id: id(),
                market: m(),
                spot: true,
                ready_at: SimTime::millis(61_000),
            },
            r#"{"t_ms":1000,"kind":"lease_granted","id":"i-000042","market":"us-west-1a/large","spot":true,"ready_ms":61000}"#,
            "1000,lease_granted,i-000042,us-west-1a/large,,61000,,,,spot",
        ),
        (
            TelemetryEvent::LeaseDenied {
                market: m(),
                spot: true,
                reason: DenialReason::BidBelowPrice,
            },
            r#"{"t_ms":1000,"kind":"lease_denied","market":"us-west-1a/large","spot":true,"reason":"bid-below-price"}"#,
            "1000,lease_denied,,us-west-1a/large,,,,,,bid-below-price",
        ),
        (
            TelemetryEvent::LeaseActivated {
                id: id(),
                market: m(),
            },
            r#"{"t_ms":1000,"kind":"lease_activated","id":"i-000042","market":"us-west-1a/large"}"#,
            "1000,lease_activated,i-000042,us-west-1a/large,,,,,,",
        ),
        (
            TelemetryEvent::ActivationFailed {
                id: id(),
                market: m(),
                doomed: true,
            },
            r#"{"t_ms":1000,"kind":"activation_failed","id":"i-000042","market":"us-west-1a/large","doomed":true}"#,
            "1000,activation_failed,i-000042,us-west-1a/large,,,,,,doomed",
        ),
        (
            TelemetryEvent::LeaseClosed {
                id: id(),
                market: m(),
                spot: true,
                reason: TerminationReason::Revoked,
                start: SimTime::millis(500),
                end: SimTime::millis(3_500),
                cost: 0.75,
            },
            r#"{"t_ms":1000,"kind":"lease_closed","id":"i-000042","market":"us-west-1a/large","spot":true,"reason":"revoked","start_ms":500,"end_ms":3500,"cost":0.75}"#,
            "1000,lease_closed,i-000042,us-west-1a/large,,500,3500,3000,0.75,revoked",
        ),
        (
            TelemetryEvent::PriceCrossing {
                id: id(),
                market: m(),
                at: SimTime::millis(2_000),
            },
            r#"{"t_ms":1000,"kind":"price_crossing","id":"i-000042","market":"us-west-1a/large","crossing_ms":2000}"#,
            "1000,price_crossing,i-000042,us-west-1a/large,,2000,,,,",
        ),
        (
            TelemetryEvent::RevocationWarning {
                id: id(),
                market: m(),
                terminate_at: SimTime::millis(121_000),
            },
            r#"{"t_ms":1000,"kind":"revocation_warning","id":"i-000042","market":"us-west-1a/large","terminate_ms":121000}"#,
            "1000,revocation_warning,i-000042,us-west-1a/large,,,121000,,,",
        ),
        (
            TelemetryEvent::UnwarnedDeath {
                id: id(),
                market: m(),
            },
            r#"{"t_ms":1000,"kind":"unwarned_death","id":"i-000042","market":"us-west-1a/large"}"#,
            "1000,unwarned_death,i-000042,us-west-1a/large,,,,,,",
        ),
        (
            TelemetryEvent::MigrationStarted {
                kind: MigrationKind::Forced,
                from: m(),
                to: m2(),
            },
            r#"{"t_ms":1000,"kind":"migration_started","migration":"forced","from":"us-west-1a/large","to":"us-east-1b/small"}"#,
            "1000,migration_started,,us-west-1a/large,us-east-1b/small,,,,,forced",
        ),
        (
            TelemetryEvent::MigrationPhase {
                phase: MigrationPhase::CkptFlush,
                duration: SimDuration::millis(1_500),
            },
            r#"{"t_ms":1000,"kind":"migration_phase","phase":"ckpt-flush","duration_ms":1500}"#,
            "1000,migration_phase,,,,,,1500,,ckpt-flush",
        ),
        (
            TelemetryEvent::MigrationCompleted {
                kind: MigrationKind::Planned,
                from: m(),
                to: m2(),
                downtime: SimDuration::millis(2_000),
                degraded: SimDuration::millis(500),
            },
            r#"{"t_ms":1000,"kind":"migration_completed","migration":"planned","from":"us-west-1a/large","to":"us-east-1b/small","downtime_ms":2000,"degraded_ms":500}"#,
            "1000,migration_completed,,us-west-1a/large,us-east-1b/small,,,2000,500,planned",
        ),
        (
            TelemetryEvent::MigrationAborted {
                kind: MigrationKind::Reverse,
                from: m(),
            },
            r#"{"t_ms":1000,"kind":"migration_aborted","migration":"reverse","from":"us-west-1a/large"}"#,
            "1000,migration_aborted,,us-west-1a/large,,,,,,reverse",
        ),
        (
            TelemetryEvent::Outage {
                start: SimTime::millis(100),
                end: SimTime::millis(400),
            },
            r#"{"t_ms":1000,"kind":"outage","start_ms":100,"end_ms":400,"duration_ms":300}"#,
            "1000,outage,,,,100,400,300,,",
        ),
        (
            TelemetryEvent::Degraded {
                start: SimTime::millis(100),
                end: SimTime::millis(400),
            },
            r#"{"t_ms":1000,"kind":"degraded","start_ms":100,"end_ms":400,"duration_ms":300}"#,
            "1000,degraded,,,,100,400,300,,",
        ),
        (
            TelemetryEvent::ServiceUp {
                id: id(),
                market: m(),
                spot: true,
                first: true,
            },
            r#"{"t_ms":1000,"kind":"service_up","id":"i-000042","market":"us-west-1a/large","spot":true,"first":true}"#,
            "1000,service_up,i-000042,us-west-1a/large,,,,,,spot;first",
        ),
        (
            TelemetryEvent::ServiceUp {
                id: id(),
                market: m(),
                spot: false,
                first: false,
            },
            r#"{"t_ms":1000,"kind":"service_up","id":"i-000042","market":"us-west-1a/large","spot":false,"first":false}"#,
            "1000,service_up,i-000042,us-west-1a/large,,,,,,on-demand",
        ),
        (
            TelemetryEvent::FaultInjected {
                kind: FaultKind::CkptWriteFail,
            },
            r#"{"t_ms":1000,"kind":"fault_injected","fault":"ckpt-write-fail"}"#,
            "1000,fault_injected,,,,,,,,ckpt-write-fail",
        ),
        (
            TelemetryEvent::BackoffScheduled {
                attempt: 3,
                until: SimTime::millis(9_000),
            },
            r#"{"t_ms":1000,"kind":"backoff_scheduled","attempt":3,"until_ms":9000}"#,
            "1000,backoff_scheduled,,,,,9000,,3,",
        ),
        (
            TelemetryEvent::StateChange {
                state: SchedulerState::Reacquiring,
            },
            r#"{"t_ms":1000,"kind":"state_change","state":"reacquiring"}"#,
            "1000,state_change,,,,,,,,reacquiring",
        ),
        (
            TelemetryEvent::StormStarted {
                zone: Zone::EuWest1a,
            },
            r#"{"t_ms":1000,"kind":"storm_started","zone":"eu-west-1a"}"#,
            "1000,storm_started,,,,,,,,eu-west-1a",
        ),
        (
            TelemetryEvent::StormEnded {
                zone: Zone::EuWest1a,
            },
            r#"{"t_ms":1000,"kind":"storm_ended","zone":"eu-west-1a"}"#,
            "1000,storm_ended,,,,,,,,eu-west-1a",
        ),
        (
            TelemetryEvent::QuotaExhausted { market: m() },
            r#"{"t_ms":1000,"kind":"quota_exhausted","market":"us-west-1a/large"}"#,
            "1000,quota_exhausted,,us-west-1a/large,,,,,,",
        ),
        (
            TelemetryEvent::JobStarted {
                job: 17,
                market: m(),
                spot: true,
            },
            r#"{"t_ms":1000,"kind":"job_started","job":17,"market":"us-west-1a/large","spot":true}"#,
            "1000,job_started,,us-west-1a/large,,,,,17,spot",
        ),
        (
            TelemetryEvent::JobCheckpointed {
                job: 17,
                duration: SimDuration::millis(4_000),
            },
            r#"{"t_ms":1000,"kind":"job_checkpointed","job":17,"duration_ms":4000}"#,
            "1000,job_checkpointed,,,,,,4000,17,",
        ),
        (
            TelemetryEvent::JobRestarted {
                job: 17,
                market: m(),
                lost: SimDuration::millis(90_000),
            },
            r#"{"t_ms":1000,"kind":"job_restarted","job":17,"market":"us-west-1a/large","lost_ms":90000}"#,
            "1000,job_restarted,,us-west-1a/large,,,,90000,17,",
        ),
        (
            TelemetryEvent::JobFinished {
                job: 17,
                missed: true,
                cost: 0.375,
            },
            r#"{"t_ms":1000,"kind":"job_finished","job":17,"missed":true,"cost":0.375}"#,
            "1000,job_finished,,,,,,,0.375,job=17;missed",
        ),
    ]
}

#[test]
fn every_variant_has_a_golden_json_line() {
    let mut kinds_seen = std::collections::BTreeSet::new();
    for (ev, json, _) in goldens() {
        exhaustive(&ev);
        kinds_seen.insert(ev.name());
        let line = event_to_json(SimTime::millis(1_000), &ev);
        assert_eq!(line, json, "JSON golden mismatch for {}", ev.name());
        // Well-formedness: balanced braces and an even quote count.
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('"').count() % 2, 0, "{line}");
    }
    // All 26 kinds covered (Bid/ServiceUp appear twice for both shapes).
    assert_eq!(kinds_seen.len(), 26, "kinds covered: {kinds_seen:?}");
}

#[test]
fn every_variant_has_a_golden_csv_row_with_fixed_arity() {
    let cols = CSV_HEADER.split(',').count();
    for (ev, _, csv) in goldens() {
        let row = event_to_csv_row(SimTime::millis(1_000), &ev);
        assert_eq!(row, csv, "CSV golden mismatch for {}", ev.name());
        assert_eq!(
            row.split(',').count(),
            cols,
            "CSV arity broken for {}: {row}",
            ev.name()
        );
    }
}

#[test]
fn json_and_csv_agree_on_kind_and_timestamp() {
    for (ev, _, _) in goldens() {
        let json = event_to_json(SimTime::millis(1_000), &ev);
        let row = event_to_csv_row(SimTime::millis(1_000), &ev);
        assert!(json.contains(&format!("\"kind\":\"{}\"", ev.name())));
        let mut fields = row.split(',');
        assert_eq!(fields.next(), Some("1000"));
        assert_eq!(fields.next(), Some(ev.name()));
    }
}
