//! # spothost-telemetry
//!
//! Structured event tracing for the spothost simulation stack.
//!
//! The scheduler (`spothost-core`) is generic over a [`Sink`] and emits a
//! typed [`TelemetryEvent`] at every interesting moment of a run: bid
//! placements, lease grants/denials, price-segment crossings, revocation
//! warnings and unwarned deaths, migration phases, outage and degraded
//! intervals, billing settlements (lease closures carrying their exact
//! charge), fault injections, backoff attempts, and state-machine
//! transitions.
//!
//! Three sinks cover the use cases:
//!
//! * [`NullSink`] — the default. `ENABLED = false` and an empty inline
//!   `emit` let the compiler delete every emission site, so an
//!   uninstrumented run is bit-identical to (and as fast as) a build
//!   without telemetry at all.
//! * [`Recorder`] — a bounded ring buffer of timestamped events with
//!   JSONL/CSV export ([`export`]) and an optional streaming writer for
//!   timelines longer than the buffer.
//! * [`Metrics`] — fixed-bucket histograms
//!   ([`spothost_analysis::FixedHistogram`]) over the event stream:
//!   downtime durations, migration latencies, lease lengths,
//!   time-to-reacquire, per-hour lease cost.
//!
//! Two guarantees the rest of the workspace depends on (see DESIGN.md
//! "Observability"):
//!
//! * **Determinism** — emission is a pure function of the run; the event
//!   stream for `(config, seed)` is identical across processes, and
//!   timestamps are monotone non-decreasing.
//! * **Exact replay** — summing the `cost` fields of `lease_closed`
//!   events in stream order reproduces the run's total cost *bit for
//!   bit* (same f64 additions in the same order), and summing
//!   `outage` interval lengths reproduces the run's downtime exactly
//!   (integer milliseconds).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod timeline;

pub use event::{DenialReason, MigrationPhase, SchedulerState, TelemetryEvent};
pub use export::{event_to_csv_row, event_to_json, CSV_HEADER};
pub use metrics::Metrics;
pub use recorder::Recorder;
pub use sink::{NullSink, NullSinkFactory, Sink, SinkFactory};
pub use spothost_faults::FaultKind;
pub use timeline::render_timeline;

/// One recorded event: when it was emitted, and what happened.
pub type TimedEvent = (spothost_market::time::SimTime, TelemetryEvent);
