//! The [`Metrics`] sink: fixed-bucket histograms aggregated from the
//! event stream, O(1) memory per run regardless of event count.

use crate::event::TelemetryEvent;
use crate::sink::Sink;
use spothost_analysis::FixedHistogram;
use spothost_market::time::SimTime;
use std::collections::BTreeMap;

/// Histograms over one run's event stream.
///
/// Units are chosen for the quantities' natural scales: outage and
/// reacquire times in seconds, lease lengths in hours, lease cost in
/// $/hour. Two `Metrics` from runs with the same bucket layout can be
/// [`Metrics::merge`]d for Monte-Carlo aggregation.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Outage durations, seconds (buckets to 1 hour).
    pub downtime_s: FixedHistogram,
    /// Per-migration downtime, seconds.
    pub migration_latency_s: FixedHistogram,
    /// Lease lengths, hours.
    pub lease_length_h: FixedHistogram,
    /// Time from the first faulted-acquisition backoff to the next granted
    /// lease, seconds.
    pub time_to_reacquire_s: FixedHistogram,
    /// Effective $/hour of each closed lease (aggregated over packed
    /// servers; zero-length leases are skipped).
    pub cost_per_hour: FixedHistogram,
    /// Count of every event kind seen (deterministic iteration order).
    pub event_counts: BTreeMap<&'static str, u64>,
    /// Pending reacquire episode: when the first backoff was scheduled.
    reacquire_since: Option<SimTime>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            downtime_s: FixedHistogram::linear(0.0, 3_600.0, 36),
            migration_latency_s: FixedHistogram::linear(0.0, 300.0, 30),
            lease_length_h: FixedHistogram::linear(0.0, 48.0, 48),
            time_to_reacquire_s: FixedHistogram::linear(0.0, 7_200.0, 36),
            cost_per_hour: FixedHistogram::linear(0.0, 1.0, 50),
            event_counts: BTreeMap::new(),
            reacquire_since: None,
        }
    }

    /// Total events observed.
    pub fn total_events(&self) -> u64 {
        self.event_counts.values().sum()
    }

    /// Merge another run's metrics (identical bucket layouts) into this
    /// one, for Monte-Carlo aggregation across seeds.
    pub fn merge(&mut self, other: &Metrics) {
        self.downtime_s.merge(&other.downtime_s);
        self.migration_latency_s.merge(&other.migration_latency_s);
        self.lease_length_h.merge(&other.lease_length_h);
        self.time_to_reacquire_s.merge(&other.time_to_reacquire_s);
        self.cost_per_hour.merge(&other.cost_per_hour);
        for (k, v) in &other.event_counts {
            *self.event_counts.entry(k).or_insert(0) += v;
        }
    }

    /// Multi-line human-readable summary of the histograms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let section = |out: &mut String, title: &str, h: &FixedHistogram, unit: &str| {
            out.push_str(&format!(
                "{title}: n={} mean={} min={} max={} p99={}\n",
                h.count(),
                fmt_opt(h.mean(), unit),
                fmt_opt(h.min(), unit),
                fmt_opt(h.max(), unit),
                fmt_opt(h.quantile(0.99), unit),
            ));
        };
        section(&mut out, "outage duration", &self.downtime_s, "s");
        section(
            &mut out,
            "migration latency",
            &self.migration_latency_s,
            "s",
        );
        section(&mut out, "lease length", &self.lease_length_h, "h");
        section(
            &mut out,
            "time to reacquire",
            &self.time_to_reacquire_s,
            "s",
        );
        section(&mut out, "lease cost", &self.cost_per_hour, "$/h");
        out.push_str("events:");
        for (k, v) in &self.event_counts {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        out
    }
}

fn fmt_opt(v: Option<f64>, unit: &str) -> String {
    match v {
        Some(v) => format!("{v:.3}{unit}"),
        None => "-".to_string(),
    }
}

impl Sink for Metrics {
    const ENABLED: bool = true;

    fn emit(&mut self, at: SimTime, event: TelemetryEvent) {
        *self.event_counts.entry(event.name()).or_insert(0) += 1;
        match event {
            TelemetryEvent::Outage { start, end } => {
                self.downtime_s.record((end - start).as_secs_f64());
            }
            TelemetryEvent::MigrationCompleted { downtime, .. } => {
                self.migration_latency_s.record(downtime.as_secs_f64());
            }
            TelemetryEvent::LeaseClosed {
                start, end, cost, ..
            } => {
                let hours = (end - start).as_hours_f64();
                self.lease_length_h.record(hours);
                if hours > 0.0 {
                    self.cost_per_hour.record(cost / hours);
                }
            }
            TelemetryEvent::BackoffScheduled { .. } if self.reacquire_since.is_none() => {
                self.reacquire_since = Some(at);
            }
            TelemetryEvent::LeaseGranted { .. } => {
                if let Some(since) = self.reacquire_since.take() {
                    self.time_to_reacquire_s.record((at - since).as_secs_f64());
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_cloudsim::{InstanceId, TerminationReason};
    use spothost_market::time::SimDuration;
    use spothost_market::types::{InstanceType, MarketId, Zone};
    use spothost_virt::MigrationKind;

    fn market() -> MarketId {
        MarketId::new(Zone::UsEast1a, InstanceType::Small)
    }

    #[test]
    fn aggregates_outages_leases_and_reacquire() {
        let mut m = Metrics::new();
        m.emit(
            SimTime::hours(1),
            TelemetryEvent::Outage {
                start: SimTime::hours(1),
                end: SimTime::hours(1) + SimDuration::secs(90),
            },
        );
        m.emit(
            SimTime::hours(2),
            TelemetryEvent::BackoffScheduled {
                attempt: 0,
                until: SimTime::hours(2) + SimDuration::secs(60),
            },
        );
        // A second backoff must not reset the episode start.
        m.emit(
            SimTime::hours(2) + SimDuration::secs(60),
            TelemetryEvent::BackoffScheduled {
                attempt: 1,
                until: SimTime::hours(2) + SimDuration::secs(180),
            },
        );
        m.emit(
            SimTime::hours(2) + SimDuration::secs(180),
            TelemetryEvent::LeaseGranted {
                id: InstanceId(1),
                market: market(),
                spot: false,
                ready_at: SimTime::hours(2) + SimDuration::secs(300),
            },
        );
        m.emit(
            SimTime::hours(5),
            TelemetryEvent::LeaseClosed {
                id: InstanceId(1),
                market: market(),
                spot: false,
                reason: TerminationReason::Voluntary,
                start: SimTime::hours(2),
                end: SimTime::hours(5),
                cost: 0.18,
            },
        );
        m.emit(
            SimTime::hours(6),
            TelemetryEvent::MigrationCompleted {
                kind: MigrationKind::Forced,
                from: market(),
                to: market(),
                downtime: SimDuration::secs(12),
                degraded: SimDuration::ZERO,
            },
        );
        assert_eq!(m.downtime_s.count(), 1);
        assert_eq!(m.downtime_s.sum(), 90.0);
        assert_eq!(m.time_to_reacquire_s.count(), 1);
        assert_eq!(m.time_to_reacquire_s.sum(), 180.0);
        assert_eq!(m.lease_length_h.count(), 1);
        assert_eq!(m.migration_latency_s.count(), 1);
        let rate = m.cost_per_hour.mean().expect("one lease");
        assert!((rate - 0.06).abs() < 1e-12, "rate {rate}");
        assert_eq!(m.total_events(), 6);
        assert_eq!(m.event_counts["backoff_scheduled"], 2);
    }

    #[test]
    fn merge_accumulates_across_runs() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        let outage = TelemetryEvent::Outage {
            start: SimTime::ZERO,
            end: SimTime::ZERO + SimDuration::secs(30),
        };
        a.emit(SimTime::ZERO, outage);
        b.emit(SimTime::ZERO, outage);
        a.merge(&b);
        assert_eq!(a.downtime_s.count(), 2);
        assert_eq!(a.event_counts["outage"], 2);
        assert!(a.render().contains("outage duration: n=2"));
    }
}
