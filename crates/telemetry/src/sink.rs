//! The statically-dispatched sink abstraction.
//!
//! The scheduler is generic over `S: Sink` and guards every emission with
//! `if S::ENABLED { ... }`. For [`NullSink`] that condition is a
//! compile-time `false`, so event construction and the `emit` call are
//! dead code and disappear entirely — the uninstrumented scheduler is the
//! same machine code it was before telemetry existed.

use crate::event::TelemetryEvent;
use spothost_market::time::SimTime;

/// Receives the structured event stream of one run.
pub trait Sink {
    /// Compile-time switch the instrumented code guards emissions with.
    /// `false` only for [`NullSink`] (and sinks wrapping it).
    const ENABLED: bool;

    /// Record one event emitted at simulation time `at`. Timestamps are
    /// monotone non-decreasing over a run.
    fn emit(&mut self, at: SimTime, event: TelemetryEvent);
}

/// The default sink: drops everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _at: SimTime, _event: TelemetryEvent) {}
}

/// Borrowed sinks forward, so a caller can keep ownership across a run:
/// `SimRun::new(..).with_sink(&mut recorder).run()`.
impl<S: Sink> Sink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn emit(&mut self, at: SimTime, event: TelemetryEvent) {
        (**self).emit(at, event);
    }
}

/// Pair composition: fan one event stream out to two sinks (e.g. a
/// `Recorder` and a `Metrics` in the same run).
impl<A: Sink, B: Sink> Sink for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline(always)]
    fn emit(&mut self, at: SimTime, event: TelemetryEvent) {
        if A::ENABLED {
            self.0.emit(at, event);
        }
        if B::ENABLED {
            self.1.emit(at, event);
        }
    }
}

/// Builds one sink per member of a group of runs — the hook fleet-scale
/// simulation uses to attach a tagged sink to every VM it spawns. The
/// factory is consulted once per spawn with the member's stable index
/// (spawn order), so a store can label each stream and later demultiplex
/// per-VM timelines.
///
/// The associated `Sink` type keeps the dispatch static: a fleet built
/// with [`NullSinkFactory`] monomorphizes to exactly the uninstrumented
/// code, preserving the zero-cost guarantee.
pub trait SinkFactory {
    /// The sink type every member receives.
    type Sink: Sink;

    /// Build the sink for member `idx` (stable spawn index, from 0).
    fn make(&mut self, idx: u32) -> Self::Sink;
}

/// The default factory: every member gets a [`NullSink`], and the whole
/// instrumentation layer compiles away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSinkFactory;

impl SinkFactory for NullSinkFactory {
    type Sink = NullSink;

    #[inline(always)]
    fn make(&mut self, _idx: u32) -> NullSink {
        NullSink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl Sink for Counter {
        const ENABLED: bool = true;
        fn emit(&mut self, _at: SimTime, _event: TelemetryEvent) {
            self.0 += 1;
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_sink_is_disabled() {
        assert!(!NullSink::ENABLED);
        assert!(!<&mut NullSink as Sink>::ENABLED);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn pair_fans_out_and_ors_enabled() {
        assert!(<(Counter, NullSink) as Sink>::ENABLED);
        assert!(!<(NullSink, NullSink) as Sink>::ENABLED);
        let mut pair = (Counter(0), Counter(0));
        let ev = TelemetryEvent::StateChange {
            state: crate::SchedulerState::Boot,
        };
        pair.emit(SimTime::ZERO, ev);
        pair.emit(SimTime::ZERO, ev);
        assert_eq!(pair.0 .0, 2);
        assert_eq!(pair.1 .0, 2);
    }

    #[test]
    fn borrowed_sink_forwards() {
        let mut c = Counter(0);
        {
            let mut borrowed = &mut c;
            <&mut Counter as Sink>::emit(
                &mut borrowed,
                SimTime::ZERO,
                TelemetryEvent::StateChange {
                    state: crate::SchedulerState::Active,
                },
            );
        }
        assert_eq!(c.0, 1);
    }
}
