//! Hand-rolled JSONL and CSV serialization of the event stream (the
//! workspace is offline and carries no serde).
//!
//! JSONL is the canonical format: one object per line, a `t_ms` emission
//! timestamp and a `kind` discriminator, then the variant's fields with
//! times as `*_ms` integers. CSV flattens every event onto one fixed set
//! of columns for spreadsheet use; fields that don't apply stay empty.

use crate::event::TelemetryEvent;
use spothost_market::time::{SimDuration, SimTime};

/// Minimal JSON object writer. All strings we serialize are internal
/// identifiers (market names, event kinds), but escape anyway so the
/// output is valid JSON no matter what.
struct JsonObj {
    buf: String,
}

impl JsonObj {
    fn new() -> Self {
        JsonObj {
            buf: String::with_capacity(128),
        }
    }

    fn key(&mut self, k: &str) {
        if self.buf.is_empty() {
            self.buf.push('{');
        } else {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        for c in v.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    fn u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    fn f64(&mut self, k: &str, v: f64) {
        self.key(k);
        // Rust's shortest-roundtrip Display is valid JSON for finite
        // values; costs and bids are always finite.
        self.buf.push_str(&v.to_string());
    }

    fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    fn time(&mut self, k: &str, t: SimTime) {
        self.u64(k, t.as_millis());
    }

    fn dur(&mut self, k: &str, d: SimDuration) {
        self.u64(k, d.as_millis());
    }

    fn finish(mut self) -> String {
        if self.buf.is_empty() {
            self.buf.push('{');
        }
        self.buf.push('}');
        self.buf
    }
}

/// Serialize one timed event as a single JSON object (no trailing newline).
pub fn event_to_json(at: SimTime, ev: &TelemetryEvent) -> String {
    let mut o = JsonObj::new();
    o.u64("t_ms", at.as_millis());
    o.str("kind", ev.name());
    match ev {
        TelemetryEvent::BidPlaced {
            market,
            bid,
            predicted_risk,
        } => {
            o.str("market", &market.to_string());
            match bid {
                Some(b) => o.f64("bid", *b),
                None => o.bool("on_demand", true),
            }
            if let Some(r) = predicted_risk {
                o.f64("risk", *r);
            }
        }
        TelemetryEvent::LeaseGranted {
            id,
            market,
            spot,
            ready_at,
        } => {
            o.str("id", &id.to_string());
            o.str("market", &market.to_string());
            o.bool("spot", *spot);
            o.time("ready_ms", *ready_at);
        }
        TelemetryEvent::LeaseDenied {
            market,
            spot,
            reason,
        } => {
            o.str("market", &market.to_string());
            o.bool("spot", *spot);
            o.str("reason", reason.name());
        }
        TelemetryEvent::LeaseActivated { id, market } => {
            o.str("id", &id.to_string());
            o.str("market", &market.to_string());
        }
        TelemetryEvent::ActivationFailed { id, market, doomed } => {
            o.str("id", &id.to_string());
            o.str("market", &market.to_string());
            o.bool("doomed", *doomed);
        }
        TelemetryEvent::LeaseClosed {
            id,
            market,
            spot,
            reason,
            start,
            end,
            cost,
        } => {
            o.str("id", &id.to_string());
            o.str("market", &market.to_string());
            o.bool("spot", *spot);
            o.str("reason", termination_name(*reason));
            o.time("start_ms", *start);
            o.time("end_ms", *end);
            o.f64("cost", *cost);
        }
        TelemetryEvent::PriceCrossing { id, market, at } => {
            o.str("id", &id.to_string());
            o.str("market", &market.to_string());
            o.time("crossing_ms", *at);
        }
        TelemetryEvent::RevocationWarning {
            id,
            market,
            terminate_at,
        } => {
            o.str("id", &id.to_string());
            o.str("market", &market.to_string());
            o.time("terminate_ms", *terminate_at);
        }
        TelemetryEvent::UnwarnedDeath { id, market } => {
            o.str("id", &id.to_string());
            o.str("market", &market.to_string());
        }
        TelemetryEvent::MigrationStarted { kind, from, to } => {
            o.str("migration", kind.name());
            o.str("from", &from.to_string());
            o.str("to", &to.to_string());
        }
        TelemetryEvent::MigrationPhase { phase, duration } => {
            o.str("phase", phase.name());
            o.dur("duration_ms", *duration);
        }
        TelemetryEvent::MigrationCompleted {
            kind,
            from,
            to,
            downtime,
            degraded,
        } => {
            o.str("migration", kind.name());
            o.str("from", &from.to_string());
            o.str("to", &to.to_string());
            o.dur("downtime_ms", *downtime);
            o.dur("degraded_ms", *degraded);
        }
        TelemetryEvent::MigrationAborted { kind, from } => {
            o.str("migration", kind.name());
            o.str("from", &from.to_string());
        }
        TelemetryEvent::Outage { start, end } | TelemetryEvent::Degraded { start, end } => {
            o.time("start_ms", *start);
            o.time("end_ms", *end);
            o.dur("duration_ms", *end - *start);
        }
        TelemetryEvent::ServiceUp {
            id,
            market,
            spot,
            first,
        } => {
            o.str("id", &id.to_string());
            o.str("market", &market.to_string());
            o.bool("spot", *spot);
            o.bool("first", *first);
        }
        TelemetryEvent::FaultInjected { kind } => {
            o.str("fault", kind.name());
        }
        TelemetryEvent::BackoffScheduled { attempt, until } => {
            o.u64("attempt", *attempt as u64);
            o.time("until_ms", *until);
        }
        TelemetryEvent::StateChange { state } => {
            o.str("state", state.name());
        }
        TelemetryEvent::StormStarted { zone } | TelemetryEvent::StormEnded { zone } => {
            o.str("zone", zone.name());
        }
        TelemetryEvent::QuotaExhausted { market } => {
            o.str("market", &market.to_string());
        }
        TelemetryEvent::JobStarted { job, market, spot } => {
            o.u64("job", *job as u64);
            o.str("market", &market.to_string());
            o.bool("spot", *spot);
        }
        TelemetryEvent::JobCheckpointed { job, duration } => {
            o.u64("job", *job as u64);
            o.dur("duration_ms", *duration);
        }
        TelemetryEvent::JobRestarted { job, market, lost } => {
            o.u64("job", *job as u64);
            o.str("market", &market.to_string());
            o.dur("lost_ms", *lost);
        }
        TelemetryEvent::JobFinished { job, missed, cost } => {
            o.u64("job", *job as u64);
            o.bool("missed", *missed);
            o.f64("cost", *cost);
        }
    }
    o.finish()
}

/// Header row matching [`event_to_csv_row`].
pub const CSV_HEADER: &str =
    "t_ms,kind,instance,market,to_market,start_ms,end_ms,duration_ms,value,detail";

fn termination_name(r: spothost_cloudsim::TerminationReason) -> &'static str {
    use spothost_cloudsim::TerminationReason as TR;
    match r {
        TR::Revoked => "revoked",
        TR::Voluntary => "voluntary",
        TR::FailedAllocation => "failed-allocation",
    }
}

/// Serialize one timed event as a flat CSV row (no trailing newline).
/// Columns that don't apply to the event kind are left empty.
pub fn event_to_csv_row(at: SimTime, ev: &TelemetryEvent) -> String {
    // (instance, market, to_market, start, end, duration, value, detail)
    let mut instance = String::new();
    let mut market = String::new();
    let mut to_market = String::new();
    let mut start = String::new();
    let mut end = String::new();
    let mut duration = String::new();
    let mut value = String::new();
    let mut detail = String::new();
    let ms = |t: SimTime| t.as_millis().to_string();
    match ev {
        TelemetryEvent::BidPlaced {
            market: m,
            bid,
            predicted_risk,
        } => {
            market = m.to_string();
            match bid {
                Some(b) => value = b.to_string(),
                None => detail = "on-demand".to_string(),
            }
            if let Some(r) = predicted_risk {
                detail = format!("risk={r}");
            }
        }
        TelemetryEvent::LeaseGranted {
            id,
            market: m,
            spot,
            ready_at,
        } => {
            instance = id.to_string();
            market = m.to_string();
            start = ms(*ready_at);
            detail = if *spot { "spot" } else { "on-demand" }.to_string();
        }
        TelemetryEvent::LeaseDenied {
            market: m, reason, ..
        } => {
            market = m.to_string();
            detail = reason.name().to_string();
        }
        TelemetryEvent::LeaseActivated { id, market: m } => {
            instance = id.to_string();
            market = m.to_string();
        }
        TelemetryEvent::ActivationFailed {
            id,
            market: m,
            doomed,
        } => {
            instance = id.to_string();
            market = m.to_string();
            detail = if *doomed { "doomed" } else { "price-rose" }.to_string();
        }
        TelemetryEvent::LeaseClosed {
            id,
            market: m,
            reason,
            start: s,
            end: e,
            cost,
            ..
        } => {
            instance = id.to_string();
            market = m.to_string();
            start = ms(*s);
            end = ms(*e);
            duration = (*e - *s).as_millis().to_string();
            value = cost.to_string();
            detail = termination_name(*reason).to_string();
        }
        TelemetryEvent::PriceCrossing {
            id,
            market: m,
            at: t,
        } => {
            instance = id.to_string();
            market = m.to_string();
            start = ms(*t);
        }
        TelemetryEvent::RevocationWarning {
            id,
            market: m,
            terminate_at,
        } => {
            instance = id.to_string();
            market = m.to_string();
            end = ms(*terminate_at);
        }
        TelemetryEvent::UnwarnedDeath { id, market: m } => {
            instance = id.to_string();
            market = m.to_string();
        }
        TelemetryEvent::MigrationStarted { kind, from, to } => {
            market = from.to_string();
            to_market = to.to_string();
            detail = kind.name().to_string();
        }
        TelemetryEvent::MigrationPhase { phase, duration: d } => {
            duration = d.as_millis().to_string();
            detail = phase.name().to_string();
        }
        TelemetryEvent::MigrationCompleted {
            kind,
            from,
            to,
            downtime,
            degraded,
        } => {
            market = from.to_string();
            to_market = to.to_string();
            duration = downtime.as_millis().to_string();
            value = degraded.as_millis().to_string();
            detail = kind.name().to_string();
        }
        TelemetryEvent::MigrationAborted { kind, from } => {
            market = from.to_string();
            detail = kind.name().to_string();
        }
        TelemetryEvent::Outage { start: s, end: e }
        | TelemetryEvent::Degraded { start: s, end: e } => {
            start = ms(*s);
            end = ms(*e);
            duration = (*e - *s).as_millis().to_string();
        }
        TelemetryEvent::ServiceUp {
            id,
            market: m,
            spot,
            first,
        } => {
            instance = id.to_string();
            market = m.to_string();
            // ';' separator: a comma here would break the fixed column
            // arity of the row.
            detail = format!(
                "{}{}",
                if *spot { "spot" } else { "on-demand" },
                if *first { ";first" } else { "" }
            );
        }
        TelemetryEvent::FaultInjected { kind } => {
            detail = kind.name().to_string();
        }
        TelemetryEvent::BackoffScheduled { attempt, until } => {
            end = ms(*until);
            value = attempt.to_string();
        }
        TelemetryEvent::StateChange { state } => {
            detail = state.name().to_string();
        }
        TelemetryEvent::StormStarted { zone } | TelemetryEvent::StormEnded { zone } => {
            detail = zone.name().to_string();
        }
        TelemetryEvent::QuotaExhausted { market: m } => {
            market = m.to_string();
        }
        TelemetryEvent::JobStarted {
            job,
            market: m,
            spot,
        } => {
            market = m.to_string();
            value = job.to_string();
            detail = if *spot { "spot" } else { "on-demand" }.to_string();
        }
        TelemetryEvent::JobCheckpointed { job, duration: d } => {
            duration = d.as_millis().to_string();
            value = job.to_string();
        }
        TelemetryEvent::JobRestarted {
            job,
            market: m,
            lost,
        } => {
            market = m.to_string();
            duration = lost.as_millis().to_string();
            value = job.to_string();
        }
        TelemetryEvent::JobFinished { job, missed, cost } => {
            value = cost.to_string();
            // ';' separator: a comma would break the fixed column arity.
            detail = format!("job={job};{}", if *missed { "missed" } else { "met" });
        }
    }
    format!(
        "{},{},{},{},{},{},{},{},{},{}",
        at.as_millis(),
        ev.name(),
        instance,
        market,
        to_market,
        start,
        end,
        duration,
        value,
        detail
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_cloudsim::InstanceId;
    use spothost_market::types::{InstanceType, MarketId, Zone};

    fn market() -> MarketId {
        MarketId::new(Zone::UsEast1a, InstanceType::Small)
    }

    #[test]
    fn json_lines_are_well_formed() {
        let ev = TelemetryEvent::LeaseClosed {
            id: InstanceId(7),
            market: market(),
            spot: true,
            reason: spothost_cloudsim::TerminationReason::Revoked,
            start: SimTime::hours(1),
            end: SimTime::hours(3),
            cost: 0.052,
        };
        let line = event_to_json(SimTime::hours(3), &ev);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"kind\":\"lease_closed\""));
        assert!(line.contains("\"t_ms\":10800000"));
        assert!(line.contains("\"cost\":0.052"));
        assert!(line.contains("\"reason\":\"revoked\""));
        // Balanced braces and quotes (crude well-formedness check).
        assert_eq!(line.matches('"').count() % 2, 0);
    }

    #[test]
    fn json_escapes_control_and_quote_chars() {
        let mut o = JsonObj::new();
        o.str("k", "a\"b\\c\nd");
        let s = o.finish();
        assert_eq!(s, "{\"k\":\"a\\\"b\\\\c\\u000ad\"}");
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let cols = CSV_HEADER.split(',').count();
        let ev = TelemetryEvent::Outage {
            start: SimTime::hours(1),
            end: SimTime::hours(2),
        };
        let row = event_to_csv_row(SimTime::hours(2), &ev);
        assert_eq!(row.split(',').count(), cols, "{row}");
        let ev2 = TelemetryEvent::BidPlaced {
            market: market(),
            bid: Some(0.24),
            predicted_risk: None,
        };
        assert_eq!(
            event_to_csv_row(SimTime::ZERO, &ev2).split(',').count(),
            cols
        );
    }

    #[test]
    fn storm_events_export_cleanly() {
        let ev = TelemetryEvent::StormStarted {
            zone: Zone::UsWest1a,
        };
        let json = event_to_json(SimTime::hours(1), &ev);
        assert!(json.contains("\"kind\":\"storm_started\""), "{json}");
        assert!(json.contains("\"zone\":\"us-west-1a\""), "{json}");
        let q = TelemetryEvent::QuotaExhausted { market: market() };
        let json = event_to_json(SimTime::ZERO, &q);
        assert!(json.contains("\"kind\":\"quota_exhausted\""), "{json}");
        let cols = CSV_HEADER.split(',').count();
        for ev in [
            ev,
            TelemetryEvent::StormEnded {
                zone: Zone::UsWest1a,
            },
            q,
        ] {
            assert_eq!(
                event_to_csv_row(SimTime::ZERO, &ev).split(',').count(),
                cols
            );
        }
    }

    #[test]
    fn bid_exports_carry_predicted_risk_only_when_present() {
        let plain = TelemetryEvent::BidPlaced {
            market: market(),
            bid: Some(0.24),
            predicted_risk: None,
        };
        assert!(!event_to_json(SimTime::ZERO, &plain).contains("risk"));
        let risky = TelemetryEvent::BidPlaced {
            market: market(),
            bid: Some(0.12),
            predicted_risk: Some(0.004),
        };
        let json = event_to_json(SimTime::ZERO, &risky);
        assert!(json.contains("\"risk\":0.004"), "{json}");
        let row = event_to_csv_row(SimTime::ZERO, &risky);
        assert!(row.contains("risk=0.004"), "{row}");
        assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
    }
}
