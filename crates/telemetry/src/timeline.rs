//! ASCII Gantt rendering of a recorded run: one row per market showing
//! lease occupancy, plus outage/degraded rows and migration markers.

use crate::event::TelemetryEvent;
use crate::TimedEvent;
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::types::{MarketId, Zone};
use spothost_virt::MigrationKind;

/// Render the event stream as an ASCII Gantt chart over `[start, end)`,
/// `width` columns wide.
///
/// Legend: `=` spot lease, `#` on-demand lease, `X` outage, `~` degraded,
/// `F`/`P`/`R` forced/planned/reverse migration start, `.` idle. When
/// multiple things fall into one cell, outage beats lease, and a
/// migration marker beats both. Runs with storm events gain a `storms`
/// row: `S` marks a storm episode in any zone, `Q` an on-demand quota
/// rejection.
pub fn render_timeline(
    events: &[TimedEvent],
    start: SimTime,
    end: SimTime,
    width: usize,
) -> String {
    let width = width.clamp(10, 500);
    let span_ms = end.as_millis().saturating_sub(start.as_millis()).max(1);
    let col = |t: SimTime| -> usize {
        let off = t.as_millis().saturating_sub(start.as_millis());
        (((off as u128 * width as u128) / span_ms as u128) as usize).min(width - 1)
    };

    // Collect lease intervals per market (from lease_closed, which carries
    // exact [start, end)), outages, degraded windows, migration starts.
    let mut markets: Vec<MarketId> = Vec::new();
    let mut leases: Vec<(MarketId, bool, SimTime, SimTime)> = Vec::new();
    let mut outages: Vec<(SimTime, SimTime)> = Vec::new();
    let mut degraded: Vec<(SimTime, SimTime)> = Vec::new();
    let mut migrations: Vec<(MigrationKind, SimTime)> = Vec::new();
    let mut storm_open: Vec<(Zone, SimTime)> = Vec::new();
    let mut storms: Vec<(SimTime, SimTime)> = Vec::new();
    let mut quota: Vec<SimTime> = Vec::new();
    for (at, ev) in events {
        match ev {
            TelemetryEvent::LeaseClosed {
                market,
                spot,
                start: s,
                end: e,
                ..
            } => {
                if !markets.contains(market) {
                    markets.push(*market);
                }
                if e > s {
                    leases.push((*market, *spot, *s, *e));
                }
            }
            TelemetryEvent::Outage { start: s, end: e } => outages.push((*s, *e)),
            TelemetryEvent::Degraded { start: s, end: e } => degraded.push((*s, *e)),
            TelemetryEvent::MigrationStarted { kind, .. } => migrations.push((*kind, *at)),
            TelemetryEvent::StormStarted { zone } => storm_open.push((*zone, *at)),
            TelemetryEvent::StormEnded { zone } => {
                if let Some(i) = storm_open.iter().position(|(z, _)| z == zone) {
                    let (_, s) = storm_open.remove(i);
                    storms.push((s, *at));
                }
            }
            TelemetryEvent::QuotaExhausted { .. } => quota.push(*at),
            _ => {}
        }
    }
    // Episodes still open when the stream ends extend to the chart edge.
    for (_, s) in storm_open {
        storms.push((s, end));
    }
    markets.sort_by_key(|m| m.dense_index());

    let paint = |row: &mut [u8], s: SimTime, e: SimTime, c: u8| {
        if e <= s || e <= start || s >= end {
            return;
        }
        let (a, b) = (col(s.max(start)), col(e.min(end)));
        for cell in row.iter_mut().take(b.max(a + 1)).skip(a) {
            *cell = c;
        }
    };

    let label_w = markets
        .iter()
        .map(|m| m.to_string().len())
        .chain(["migrations".len()])
        .max()
        .unwrap_or(10);
    let mut out = String::new();
    let hours = SimDuration::millis(span_ms).as_hours_f64();
    out.push_str(&format!(
        "timeline {} .. {} ({hours:.1}h, {:.2}h/col)\n",
        start,
        end,
        hours / width as f64
    ));

    for m in &markets {
        let mut row = vec![b'.'; width];
        for (lm, spot, s, e) in &leases {
            if lm == m {
                paint(&mut row, *s, *e, if *spot { b'=' } else { b'#' });
            }
        }
        out.push_str(&format!(
            "{:>label_w$} |{}|\n",
            m.to_string(),
            String::from_utf8_lossy(&row)
        ));
    }

    let mut row = vec![b'.'; width];
    for (s, e) in &outages {
        paint(&mut row, *s, *e, b'X');
    }
    for (s, e) in &degraded {
        // Outage wins over degraded where they touch the same cell.
        let (a, b) = (col((*s).max(start)), col((*e).min(end)));
        if *e > *s && *e > start && *s < end {
            for cell in row.iter_mut().take(b.max(a + 1)).skip(a) {
                if *cell == b'.' {
                    *cell = b'~';
                }
            }
        }
    }
    out.push_str(&format!(
        "{:>label_w$} |{}|\n",
        "outages",
        String::from_utf8_lossy(&row)
    ));

    if !storms.is_empty() || !quota.is_empty() {
        let mut row = vec![b'.'; width];
        for (s, e) in &storms {
            paint(&mut row, *s, *e, b'S');
        }
        for t in &quota {
            if *t >= start && *t < end {
                row[col(*t)] = b'Q';
            }
        }
        out.push_str(&format!(
            "{:>label_w$} |{}|\n",
            "storms",
            String::from_utf8_lossy(&row)
        ));
    }

    let mut row = vec![b'.'; width];
    for (kind, at) in &migrations {
        let c = match kind {
            MigrationKind::Forced => b'F',
            MigrationKind::Planned => b'P',
            MigrationKind::Reverse => b'R',
        };
        row[col(*at)] = c;
    }
    out.push_str(&format!(
        "{:>label_w$} |{}|\n",
        "migrations",
        String::from_utf8_lossy(&row)
    ));

    out.push_str(&format!(
        "{:>label_w$}  legend: = spot lease   # on-demand lease   X outage   ~ degraded\n",
        ""
    ));
    out.push_str(&format!(
        "{:>label_w$}          F forced / P planned / R reverse migration start   S storm   Q quota\n",
        ""
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_cloudsim::{InstanceId, TerminationReason};
    use spothost_market::types::{InstanceType, Zone};

    fn market() -> MarketId {
        MarketId::new(Zone::UsEast1a, InstanceType::Small)
    }

    #[test]
    fn renders_leases_outages_and_markers() {
        let m = market();
        let events = vec![
            (
                SimTime::hours(10),
                TelemetryEvent::MigrationStarted {
                    kind: MigrationKind::Forced,
                    from: m,
                    to: m,
                },
            ),
            (
                SimTime::hours(10),
                TelemetryEvent::LeaseClosed {
                    id: InstanceId(1),
                    market: m,
                    spot: true,
                    reason: TerminationReason::Revoked,
                    start: SimTime::ZERO,
                    end: SimTime::hours(10),
                    cost: 0.5,
                },
            ),
            (
                SimTime::hours(10) + SimDuration::secs(30),
                TelemetryEvent::Outage {
                    start: SimTime::hours(10),
                    end: SimTime::hours(12),
                },
            ),
            (
                SimTime::hours(20),
                TelemetryEvent::LeaseClosed {
                    id: InstanceId(2),
                    market: m,
                    spot: false,
                    reason: TerminationReason::Voluntary,
                    start: SimTime::hours(12),
                    end: SimTime::hours(20),
                    cost: 0.8,
                },
            ),
        ];
        let s = render_timeline(&events, SimTime::ZERO, SimTime::hours(20), 40);
        assert!(s.contains("us-east-1a/small"), "{s}");
        assert!(s.contains('='), "{s}");
        assert!(s.contains('#'), "{s}");
        assert!(s.contains('X'), "{s}");
        assert!(s.contains('F'), "{s}");
        assert!(s.contains("legend"), "{s}");
        // Every chart row has the same width.
        let widths: Vec<usize> = s
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.len())
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn empty_stream_renders_empty_rows() {
        let s = render_timeline(&[], SimTime::ZERO, SimTime::hours(1), 20);
        assert!(s.contains("outages"));
        assert!(s.contains("migrations"));
    }

    #[test]
    fn storm_row_appears_only_with_storm_events() {
        let quiet = render_timeline(&[], SimTime::ZERO, SimTime::hours(1), 20);
        assert!(!quiet.contains("storms"));
        let events = vec![
            (
                SimTime::hours(2),
                TelemetryEvent::StormStarted {
                    zone: Zone::UsEast1a,
                },
            ),
            (
                SimTime::hours(4),
                TelemetryEvent::QuotaExhausted { market: market() },
            ),
            (
                SimTime::hours(6),
                TelemetryEvent::StormEnded {
                    zone: Zone::UsEast1a,
                },
            ),
            // A second episode left open extends to the chart edge.
            (
                SimTime::hours(8),
                TelemetryEvent::StormStarted {
                    zone: Zone::EuWest1a,
                },
            ),
        ];
        let s = render_timeline(&events, SimTime::ZERO, SimTime::hours(10), 40);
        let row = s
            .lines()
            .find(|l| l.trim_start().starts_with("storms"))
            .expect("storms row");
        assert!(row.contains('S'), "{s}");
        assert!(row.contains('Q'), "{s}");
        // The second episode was never closed: it must paint from hour 8
        // (column 32 of 40) toward the chart edge.
        let chart = row.split('|').nth(1).expect("chart cells");
        assert!(chart[32..].contains('S'), "open episode to edge: {s}");
    }
}
