//! The [`Recorder`] sink: a bounded in-memory ring buffer of timestamped
//! events, with optional streaming JSONL output for timelines longer than
//! the buffer.

use crate::event::TelemetryEvent;
use crate::export::{event_to_csv_row, event_to_json, CSV_HEADER};
use crate::sink::Sink;
use crate::TimedEvent;
use spothost_market::time::SimTime;
use std::collections::VecDeque;
use std::io::{self, Write};

/// Default ring-buffer capacity: plenty for a multi-month run (a stormy
/// 60-day single-market run emits a few thousand events).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Records the event stream of one run.
///
/// The ring buffer keeps the **newest** `capacity` events; older ones are
/// dropped (and counted). Attach a streaming writer with
/// [`Recorder::with_writer`] to persist the *full* timeline as JSONL
/// regardless of buffer size.
pub struct Recorder {
    events: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
    writer: Option<Box<dyn Write>>,
    io_error: Option<io::Error>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("events", &self.events.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped)
            .field("streaming", &self.writer.is_some())
            .finish()
    }
}

impl Recorder {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder keeping at most `capacity` events in memory.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
            writer: None,
            io_error: None,
        }
    }

    /// Also stream every event to `w` as one JSONL line each, as it is
    /// emitted. I/O errors are latched (see [`Recorder::take_io_error`])
    /// and stop further writes; they never panic mid-run.
    pub fn with_writer(mut self, w: Box<dyn Write>) -> Self {
        self.writer = Some(w);
        self
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Consume the recorder, returning the buffered events oldest first.
    pub fn into_events(self) -> Vec<TimedEvent> {
        self.events.into()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from the ring buffer (still streamed if a writer is
    /// attached).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flush the streaming writer and surface any latched I/O error.
    pub fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.io_error.take() {
            return Err(e);
        }
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    /// Take the latched streaming I/O error, if any.
    pub fn take_io_error(&mut self) -> Option<io::Error> {
        self.io_error.take()
    }

    /// Write the buffered events as JSONL.
    pub fn write_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        for (at, ev) in &self.events {
            writeln!(w, "{}", event_to_json(*at, ev))?;
        }
        Ok(())
    }

    /// Write the buffered events as CSV (with header).
    pub fn write_csv(&self, w: &mut dyn Write) -> io::Result<()> {
        writeln!(w, "{CSV_HEADER}")?;
        for (at, ev) in &self.events {
            writeln!(w, "{}", event_to_csv_row(*at, ev))?;
        }
        Ok(())
    }
}

impl Sink for Recorder {
    const ENABLED: bool = true;

    fn emit(&mut self, at: SimTime, event: TelemetryEvent) {
        if let (Some(w), None) = (self.writer.as_mut(), self.io_error.as_ref()) {
            if let Err(e) = writeln!(w, "{}", event_to_json(at, &event)) {
                self.io_error = Some(e);
            }
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SchedulerState;

    fn ev(n: u64) -> (SimTime, TelemetryEvent) {
        (
            SimTime::millis(n),
            TelemetryEvent::StateChange {
                state: SchedulerState::Active,
            },
        )
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_drops() {
        let mut r = Recorder::with_capacity(3);
        for n in 0..5 {
            let (at, e) = ev(n);
            r.emit(at, e);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let first = r.events().next().map(|(t, _)| t.as_millis());
        assert_eq!(first, Some(2));
    }

    #[test]
    fn streaming_writer_sees_everything_despite_small_buffer() {
        let buf: Vec<u8> = Vec::new();
        let mut r = Recorder::with_capacity(2).with_writer(Box::new(buf));
        for n in 0..10 {
            let (at, e) = ev(n);
            r.emit(at, e);
        }
        assert_eq!(r.len(), 2);
        r.finish().expect("no io error on Vec writer");
        // The Vec is owned by the recorder; round-trip through write_jsonl
        // on the buffered tail instead to check formatting.
        let mut out = Vec::new();
        r.write_jsonl(&mut out).expect("write to Vec");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn csv_export_has_header() {
        let mut r = Recorder::new();
        let (at, e) = ev(7);
        r.emit(at, e);
        let mut out = Vec::new();
        r.write_csv(&mut out).expect("write to Vec");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("t_ms,kind,"));
        assert_eq!(text.lines().count(), 2);
    }
}
