//! The typed event schema.
//!
//! Every variant is plain copyable data so that constructing an event is
//! side-effect free: behind the [`crate::NullSink`] the construction is
//! dead code and the optimizer deletes it. The schema table in DESIGN.md
//! ("Observability") mirrors this enum field for field.

use spothost_cloudsim::{InstanceId, RequestError, TerminationReason};
use spothost_faults::FaultKind;
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::types::{MarketId, Zone};
use spothost_virt::MigrationKind;

/// Why a server request was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenialReason {
    /// No trace for the market in this simulation (a config error).
    UnknownMarket,
    /// Spot only: the current price is above the bid.
    BidBelowPrice,
    /// Spot only: the bid exceeds the provider's cap.
    BidAboveCap,
    /// Injected capacity fault (spot or on-demand).
    InsufficientCapacity,
    /// On-demand only: the global on-demand quota is exhausted (storm
    /// backpressure; the request must queue behind the backoff).
    QuotaExhausted,
}

impl DenialReason {
    pub fn name(self) -> &'static str {
        match self {
            DenialReason::UnknownMarket => "unknown-market",
            DenialReason::BidBelowPrice => "bid-below-price",
            DenialReason::BidAboveCap => "bid-above-cap",
            DenialReason::InsufficientCapacity => "insufficient-capacity",
            DenialReason::QuotaExhausted => "quota-exhausted",
        }
    }
}

impl From<&RequestError> for DenialReason {
    fn from(e: &RequestError) -> Self {
        match e {
            RequestError::UnknownMarket(_) => DenialReason::UnknownMarket,
            RequestError::BidBelowPrice { .. } => DenialReason::BidBelowPrice,
            RequestError::BidAboveCap { .. } => DenialReason::BidAboveCap,
            RequestError::InsufficientCapacity(_) => DenialReason::InsufficientCapacity,
            RequestError::QuotaExhausted(_) => DenialReason::QuotaExhausted,
        }
    }
}

/// A phase of a migration, with how long it takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Target-side preparation before switchover (voluntary moves).
    Prepare,
    /// Live pre-copy rounds (subset of preparation when live is on).
    LivePrecopy,
    /// Final bounded-checkpoint flush inside the grace window.
    CkptFlush,
    /// Restore of the VM image on the replacement server.
    Restore,
    /// Lazy restore's background fault-in window (service degraded).
    LazyFaultIn,
}

impl MigrationPhase {
    pub fn name(self) -> &'static str {
        match self {
            MigrationPhase::Prepare => "prepare",
            MigrationPhase::LivePrecopy => "live-precopy",
            MigrationPhase::CkptFlush => "ckpt-flush",
            MigrationPhase::Restore => "restore",
            MigrationPhase::LazyFaultIn => "lazy-fault-in",
        }
    }
}

/// Scheduler state-machine label (mirrors `core::scheduler`'s states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerState {
    Boot,
    Active,
    Migrating,
    Evacuating,
    DownWaiting,
    Restoring,
    Reacquiring,
}

impl SchedulerState {
    pub fn name(self) -> &'static str {
        match self {
            SchedulerState::Boot => "boot",
            SchedulerState::Active => "active",
            SchedulerState::Migrating => "migrating",
            SchedulerState::Evacuating => "evacuating",
            SchedulerState::DownWaiting => "down-waiting",
            SchedulerState::Restoring => "restoring",
            SchedulerState::Reacquiring => "reacquiring",
        }
    }
}

/// One structured event in a run's timeline. Emission time is carried
/// alongside (see [`crate::TimedEvent`]); times inside a variant refer to
/// other moments (a lease's start, a scheduled termination, ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryEvent {
    /// A spot bid (or on-demand request, `bid = None`) was placed.
    /// `predicted_risk` is the forecaster's estimate of P(revocation
    /// within the next hour) behind the bid — present only when the
    /// adaptive policy's warmed-up forecaster chose it.
    BidPlaced {
        market: MarketId,
        bid: Option<f64>,
        predicted_risk: Option<f64>,
    },
    /// The provider granted a server; it becomes ready at `ready_at`.
    LeaseGranted {
        id: InstanceId,
        market: MarketId,
        spot: bool,
        ready_at: SimTime,
    },
    /// The provider denied a request.
    LeaseDenied {
        market: MarketId,
        spot: bool,
        reason: DenialReason,
    },
    /// A granted server came up and started serving/billing.
    LeaseActivated { id: InstanceId, market: MarketId },
    /// A granted server failed to come up: the spot price rose above the
    /// bid during boot, or the startup was fault-doomed.
    ActivationFailed {
        id: InstanceId,
        market: MarketId,
        doomed: bool,
    },
    /// Billing settlement: a lease closed and its final charge was added
    /// to the run's cost. `cost` is the exact aggregate dollar amount
    /// added (per-server charge times packed servers) — summing these in
    /// stream order reproduces the run's total cost bit for bit.
    LeaseClosed {
        id: InstanceId,
        market: MarketId,
        spot: bool,
        reason: TerminationReason,
        start: SimTime,
        end: SimTime,
        cost: f64,
    },
    /// The provider-side moment the spot price first crosses above the
    /// bid — the revocation becomes inevitable at `at` (a future time;
    /// the customer only learns of it through the warning).
    PriceCrossing {
        id: InstanceId,
        market: MarketId,
        at: SimTime,
    },
    /// The customer-visible two-minute warning was delivered. A
    /// fault-delayed warning leaves less than the full grace window
    /// before `terminate_at`.
    RevocationWarning {
        id: InstanceId,
        market: MarketId,
        terminate_at: SimTime,
    },
    /// An unwarned revocation: the lease died right now, with no grace
    /// window and no checkpoint flush.
    UnwarnedDeath { id: InstanceId, market: MarketId },
    /// A migration was initiated.
    MigrationStarted {
        kind: MigrationKind,
        from: MarketId,
        to: MarketId,
    },
    /// One phase of the in-flight migration, with its planned duration.
    MigrationPhase {
        phase: MigrationPhase,
        duration: SimDuration,
    },
    /// A migration finished: the service runs on `to`. `downtime` is the
    /// outage it cost, `degraded` the degraded tail after resume.
    MigrationCompleted {
        kind: MigrationKind,
        from: MarketId,
        to: MarketId,
        downtime: SimDuration,
        degraded: SimDuration,
    },
    /// A voluntary migration was aborted (target revoked or died while
    /// booting); the service stays on `from`.
    MigrationAborted { kind: MigrationKind, from: MarketId },
    /// A closed service outage interval `[start, end)`, clamped to the
    /// horizon, exactly as accounted — summing `end - start` over the
    /// stream reproduces the run's total downtime.
    Outage { start: SimTime, end: SimTime },
    /// A closed degraded-performance interval `[start, end)`, clamped to
    /// the horizon, exactly as accounted.
    Degraded { start: SimTime, end: SimTime },
    /// The service is up and serving on this lease. `first` marks the
    /// initial boot (the start of the measured span).
    ServiceUp {
        id: InstanceId,
        market: MarketId,
        spot: bool,
        first: bool,
    },
    /// A fault plan injected a fault of this kind.
    FaultInjected { kind: FaultKind },
    /// An acquisition attempt faulted; the next attempt is scheduled at
    /// `until` (bounded exponential backoff, `attempt` starting at 0).
    BackoffScheduled { attempt: u32, until: SimTime },
    /// The scheduler state machine moved to a new state.
    StateChange { state: SchedulerState },
    /// A correlated-failure storm episode opened in this zone.
    StormStarted { zone: Zone },
    /// The storm episode in this zone closed.
    StormEnded { zone: Zone },
    /// An on-demand request was rejected by the global on-demand quota
    /// (storm backpressure) — demand now queues behind the backoff.
    QuotaExhausted { market: MarketId },
    /// A batch job began (or re-began after a revocation) executing on a
    /// lease in `market`. `spot` is false when the job runs on-demand
    /// (the `OnDemandFallback` escalation path).
    JobStarted {
        job: u32,
        market: MarketId,
        spot: bool,
    },
    /// A periodic checkpoint of a running batch job completed, costing
    /// `duration` of compute overhead on top of the job's useful work.
    JobCheckpointed { job: u32, duration: SimDuration },
    /// A batch job restarted after its lease was revoked, losing `lost`
    /// of un-checkpointed progress.
    JobRestarted {
        job: u32,
        market: MarketId,
        lost: SimDuration,
    },
    /// A batch job completed. `missed` marks completion after the job's
    /// deadline; `cost` is the total dollars billed to the job's leases.
    JobFinished { job: u32, missed: bool, cost: f64 },
}

impl TelemetryEvent {
    /// Stable machine-readable name (the `kind` field of exports).
    pub fn name(&self) -> &'static str {
        match self {
            TelemetryEvent::BidPlaced { .. } => "bid_placed",
            TelemetryEvent::LeaseGranted { .. } => "lease_granted",
            TelemetryEvent::LeaseDenied { .. } => "lease_denied",
            TelemetryEvent::LeaseActivated { .. } => "lease_activated",
            TelemetryEvent::ActivationFailed { .. } => "activation_failed",
            TelemetryEvent::LeaseClosed { .. } => "lease_closed",
            TelemetryEvent::PriceCrossing { .. } => "price_crossing",
            TelemetryEvent::RevocationWarning { .. } => "revocation_warning",
            TelemetryEvent::UnwarnedDeath { .. } => "unwarned_death",
            TelemetryEvent::MigrationStarted { .. } => "migration_started",
            TelemetryEvent::MigrationPhase { .. } => "migration_phase",
            TelemetryEvent::MigrationCompleted { .. } => "migration_completed",
            TelemetryEvent::MigrationAborted { .. } => "migration_aborted",
            TelemetryEvent::Outage { .. } => "outage",
            TelemetryEvent::Degraded { .. } => "degraded",
            TelemetryEvent::ServiceUp { .. } => "service_up",
            TelemetryEvent::FaultInjected { .. } => "fault_injected",
            TelemetryEvent::BackoffScheduled { .. } => "backoff_scheduled",
            TelemetryEvent::StateChange { .. } => "state_change",
            TelemetryEvent::StormStarted { .. } => "storm_started",
            TelemetryEvent::StormEnded { .. } => "storm_ended",
            TelemetryEvent::QuotaExhausted { .. } => "quota_exhausted",
            TelemetryEvent::JobStarted { .. } => "job_started",
            TelemetryEvent::JobCheckpointed { .. } => "job_checkpointed",
            TelemetryEvent::JobRestarted { .. } => "job_restarted",
            TelemetryEvent::JobFinished { .. } => "job_finished",
        }
    }
}
