//! Property tests: the batched grid sweep must be invisible.
//!
//! `run_grid` shares arena-backed trace pools, slices them into per-set
//! subset views, and recycles scheduler scratch state across runs in a
//! worker's chunk — all of which must be pure plumbing. For ANY mix of
//! scopes (with overlapping candidate sets), policies (including the
//! forecast-carrying `Adaptive`), mechanisms, and fault plans, every
//! report it produces must be **bit-identical** (`f64::to_bits`, not
//! approximate equality) to the sequential per-configuration path.

use proptest::prelude::*;
use spothost_core::prelude::*;
use spothost_market::time::SimDuration;
use spothost_market::types::{InstanceType, MarketId, Zone};
use spothost_virt::MechanismCombo;

fn arb_scope() -> impl Strategy<Value = MarketScope> {
    // Scopes are drawn from a small pool with heavy candidate-set overlap
    // (several scopes resolve to the same set, several sets share
    // markets), so grids exercise both the set-dedup path and the
    // union-pool subset views.
    prop_oneof![
        Just(MarketScope::Single(MarketId::new(
            Zone::UsEast1a,
            InstanceType::Small
        ))),
        Just(MarketScope::Single(MarketId::new(
            Zone::UsEast1a,
            InstanceType::Large
        ))),
        Just(MarketScope::Single(MarketId::new(
            Zone::EuWest1a,
            InstanceType::Medium
        ))),
        Just(MarketScope::MultiMarket(Zone::UsEast1a)),
        Just(MarketScope::MultiMarket(Zone::UsWest1a)),
        Just(MarketScope::MultiRegion(vec![
            Zone::UsEast1a,
            Zone::EuWest1a
        ])),
        Just(MarketScope::MultiRegion(vec![
            Zone::UsEast1b,
            Zone::UsWest1a
        ])),
    ]
}

fn arb_policy() -> impl Strategy<Value = BiddingPolicy> {
    prop_oneof![
        Just(BiddingPolicy::OnDemandOnly),
        Just(BiddingPolicy::PureSpot),
        Just(BiddingPolicy::Reactive),
        Just(BiddingPolicy::proactive_default()),
        Just(BiddingPolicy::adaptive_default()),
        Just(BiddingPolicy::Adaptive { risk_budget: 0.01 }),
    ]
}

fn arb_mechanism() -> impl Strategy<Value = MechanismCombo> {
    prop_oneof![
        Just(MechanismCombo::ALL[0]),
        Just(MechanismCombo::ALL[1]),
        Just(MechanismCombo::ALL[2]),
        Just(MechanismCombo::ALL[3]),
    ]
}

fn arb_faults() -> impl Strategy<Value = Option<FaultConfig>> {
    prop_oneof![
        Just(None),
        (0.0f64..0.3).prop_map(|r| Some(FaultConfig::uniform(r))),
    ]
}

fn arb_cfg() -> impl Strategy<Value = SchedulerConfig> {
    (arb_scope(), arb_policy(), arb_mechanism(), arb_faults()).prop_map(
        |(scope, policy, mechanism, faults)| {
            let cfg = SchedulerConfig::multi(scope)
                .with_policy(policy)
                .with_mechanism(mechanism);
            match faults {
                Some(f) => cfg.with_faults(f),
                None => cfg,
            }
        },
    )
}

/// Exact bit equality for every field of a report. `PartialEq` on f64
/// would already fail on any difference except NaN and -0.0 vs 0.0;
/// comparing through `to_bits` closes those holes so the test means
/// "the batched path computed the *same floats*", not "close enough".
fn assert_bits_eq(grid: &RunReport, solo: &RunReport, ctx: &str) -> Result<(), TestCaseError> {
    let f = |g: f64, s: f64, name: &str| -> Result<(), TestCaseError> {
        prop_assert_eq!(
            g.to_bits(),
            s.to_bits(),
            "{}: field {} differs: grid={:?} solo={:?}",
            ctx,
            name,
            g,
            s
        );
        Ok(())
    };
    f(
        grid.normalized_cost,
        solo.normalized_cost,
        "normalized_cost",
    )?;
    f(grid.unavailability, solo.unavailability, "unavailability")?;
    f(
        grid.degraded_fraction,
        solo.degraded_fraction,
        "degraded_fraction",
    )?;
    f(
        grid.forced_per_hour,
        solo.forced_per_hour,
        "forced_per_hour",
    )?;
    f(
        grid.planned_reverse_per_hour,
        solo.planned_reverse_per_hour,
        "planned_reverse_per_hour",
    )?;
    f(grid.spot_fraction, solo.spot_fraction, "spot_fraction")?;
    f(grid.cost, solo.cost, "cost")?;
    f(grid.baseline_cost, solo.baseline_cost, "baseline_cost")?;
    prop_assert_eq!(grid.downtime, solo.downtime, "{}: downtime", ctx);
    prop_assert_eq!(grid.active_span, solo.active_span, "{}: active_span", ctx);
    prop_assert_eq!(
        grid.forced_migrations,
        solo.forced_migrations,
        "{}: forced_migrations",
        ctx
    );
    prop_assert_eq!(
        grid.planned_migrations,
        solo.planned_migrations,
        "{}: planned_migrations",
        ctx
    );
    prop_assert_eq!(
        grid.reverse_migrations,
        solo.reverse_migrations,
        "{}: reverse_migrations",
        ctx
    );
    prop_assert_eq!(
        grid.request_faults,
        solo.request_faults,
        "{}: request_faults",
        ctx
    );
    prop_assert_eq!(
        grid.unwarned_revocations,
        solo.unwarned_revocations,
        "{}: unwarned_revocations",
        ctx
    );
    prop_assert_eq!(grid.ckpt_faults, solo.ckpt_faults, "{}: ckpt_faults", ctx);
    prop_assert_eq!(grid.live_aborts, solo.live_aborts, "{}: live_aborts", ctx);
    Ok(())
}

proptest! {
    // Each case runs every configuration twice (grid + solo) over multiple
    // seeds, so a modest case count already covers a wide grid space.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn run_grid_is_bit_identical_to_run_many(
        cfgs in prop::collection::vec(arb_cfg(), 1..5),
        seed0 in 0u64..500,
        n_seeds in 1u64..4,
        days in 10u64..15,
    ) {
        let horizon = SimDuration::days(days);
        let grid = run_grid(&cfgs, seed0, n_seeds, horizon);
        prop_assert_eq!(grid.len(), cfgs.len());
        for (ci, (cfg, agg)) in cfgs.iter().zip(&grid).enumerate() {
            let solo = run_many(cfg, seed0, n_seeds, horizon);
            prop_assert_eq!(agg.runs.len(), solo.runs.len());
            for (si, (g, s)) in agg.runs.iter().zip(&solo.runs).enumerate() {
                let ctx = format!(
                    "cfg #{ci} ({}, {}), seed {}",
                    cfg.scope.label(),
                    cfg.policy.name(),
                    seed0 + si as u64
                );
                assert_bits_eq(g, s, &ctx)?;
            }
        }
    }
}
