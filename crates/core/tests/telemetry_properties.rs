//! Property tests for the telemetry layer's core guarantees.
//!
//! For arbitrary fault plans, policies, mechanisms, and seeds:
//! (a) attaching a `Recorder` must not perturb the simulation — the
//!     report is identical to the `NullSink` run;
//! (b) the event stream is deterministic per seed;
//! (c) timestamps are monotone non-decreasing;
//! (d) the stream *replays* the run exactly: summing `LeaseClosed.cost`
//!     in order reproduces the report's cost bitwise, and summing
//!     `Outage` intervals reproduces downtime and unavailability
//!     bitwise.

use proptest::prelude::*;
use spothost_core::prelude::*;
use spothost_core::scheduler::SimRun;
use spothost_market::catalog::Catalog;
use spothost_market::gen::TraceSet;
use spothost_market::time::SimDuration;
use spothost_virt::MechanismCombo;

fn rate() -> impl Strategy<Value = f64> {
    (0u32..10, 0.0f64..0.6).prop_map(|(k, x)| if k == 0 { 0.0 } else { x })
}

fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (
        (rate(), rate(), rate(), rate()),
        (rate(), rate(), rate(), rate(), rate()),
    )
        .prop_map(|(provider, mech)| {
            let mut f = FaultConfig::none();
            (
                f.spot_capacity_rate,
                f.od_capacity_rate,
                f.startup_failure_rate,
                f.warning_miss_rate,
            ) = provider;
            (
                f.warning_delay_rate,
                f.volume_delay_rate,
                f.ckpt_failure_rate,
                f.live_abort_rate,
                f.lazy_storm_rate,
            ) = mech;
            f
        })
}

fn arb_policy() -> impl Strategy<Value = BiddingPolicy> {
    prop_oneof![
        Just(BiddingPolicy::OnDemandOnly),
        Just(BiddingPolicy::PureSpot),
        Just(BiddingPolicy::Reactive),
        Just(BiddingPolicy::proactive_default()),
    ]
}

fn arb_mechanism() -> impl Strategy<Value = MechanismCombo> {
    prop_oneof![
        Just(MechanismCombo::ALL[0]),
        Just(MechanismCombo::ALL[1]),
        Just(MechanismCombo::ALL[2]),
        Just(MechanismCombo::ALL[3]),
    ]
}

fn base_cfg(policy: BiddingPolicy, mechanism: MechanismCombo) -> SchedulerConfig {
    use spothost_market::types::{InstanceType, MarketId, Zone};
    SchedulerConfig::single_market(MarketId::new(Zone::UsEast1a, InstanceType::Small))
        .with_policy(policy)
        .with_mechanism(mechanism)
}

/// Run `cfg` once with a large-capacity recorder attached.
fn recorded(cfg: &SchedulerConfig, seed: u64, horizon: SimDuration) -> (RunReport, Recorder) {
    let catalog = Catalog::ec2_2015();
    let markets = cfg.candidates();
    let traces = TraceSet::generate(&catalog, &markets, seed, horizon);
    let mut rec = Recorder::with_capacity(1 << 20);
    let report = SimRun::new(&traces, cfg, seed).with_sink(&mut rec).run();
    (report, rec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recorder_observes_without_perturbing_and_replays_exactly(
        faults in arb_faults(),
        policy in arb_policy(),
        mechanism in arb_mechanism(),
        seed in 0u64..1_000,
    ) {
        let cfg = base_cfg(policy, mechanism).with_faults(faults);
        let horizon = SimDuration::days(7);

        let plain = run_one(&cfg, seed, horizon);
        let (report, rec) = recorded(&cfg, seed, horizon);
        prop_assert_eq!(rec.dropped(), 0, "recorder capacity exceeded");

        // (a) Observation is free: identical report with and without
        // the recorder attached.
        prop_assert_eq!(plain, report);

        // (b) Determinism: a second recorded run yields the same stream.
        let (_, rec2) = recorded(&cfg, seed, horizon);
        let events = rec.into_events();
        prop_assert_eq!(&events, &rec2.into_events());

        // (c) Monotone non-decreasing timestamps.
        for w in events.windows(2) {
            prop_assert!(w[0].0 <= w[1].0,
                "timestamps regressed: {} then {}", w[0].0, w[1].0);
        }

        // (d) Exact replay. Cost: the stream's LeaseClosed events carry
        // each settlement in accumulation order, so the ordered f64 sum
        // is bitwise equal to the report's total.
        let mut cost = 0.0f64;
        let mut downtime_ms = 0u64;
        for (_, ev) in &events {
            match ev {
                TelemetryEvent::LeaseClosed { cost: c, .. } => cost += c,
                TelemetryEvent::Outage { start, end } => {
                    downtime_ms += (*end - *start).as_millis();
                }
                _ => {}
            }
        }
        prop_assert_eq!(cost.to_bits(), report.cost.to_bits(),
            "replayed cost {} != report cost {}", cost, report.cost);
        prop_assert_eq!(downtime_ms, report.downtime.as_millis());

        // Unavailability recomputed from the replayed downtime matches
        // bitwise too (same f64 division the report performs).
        let span_ms = report.active_span.as_millis() as f64;
        let unavail = if span_ms == 0.0 { 0.0 } else { downtime_ms as f64 / span_ms };
        prop_assert_eq!(unavail.to_bits(), report.unavailability.to_bits());
    }
}
