//! Property tests: the scheduler must survive ANY fault plan.
//!
//! For arbitrary fault rates, bidding policy, mechanism combo, and seed,
//! a run must (a) terminate, (b) never lose accounting time — downtime
//! and degraded time both fit inside the measured span, (c) keep cost
//! finite, non-negative, and within a constant factor of the on-demand
//! baseline (migration overlap can briefly double-bill, never more), and
//! (d) stay deterministic — the same inputs give the same report. An
//! all-zero fault plan must be bit-identical to no plan at all.

use proptest::prelude::*;
use spothost_core::prelude::*;
use spothost_market::time::SimDuration;
use spothost_virt::MechanismCombo;

fn rate() -> impl Strategy<Value = f64> {
    // Weight the exact endpoints: 0.0 must be a perfect no-op and 1.0 is
    // the worst case the scheduler must survive.
    (0u32..12, 0.0f64..1.0).prop_map(|(k, x)| match k {
        0 => 0.0,
        1 => 1.0,
        _ => x,
    })
}

fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (
        (rate(), rate(), rate(), rate()),
        (rate(), rate(), rate(), rate(), rate()),
        1.0f64..8.0,
        1u64..120,
    )
        .prop_map(|(provider, mech, storm_factor, vol_secs)| {
            let mut f = FaultConfig::none();
            (
                f.spot_capacity_rate,
                f.od_capacity_rate,
                f.startup_failure_rate,
                f.warning_miss_rate,
            ) = provider;
            (
                f.warning_delay_rate,
                f.volume_delay_rate,
                f.ckpt_failure_rate,
                f.live_abort_rate,
                f.lazy_storm_rate,
            ) = mech;
            f.lazy_storm_factor = storm_factor;
            f.max_volume_delay = SimDuration::secs(vol_secs);
            f
        })
}

fn arb_mechanism() -> impl Strategy<Value = MechanismCombo> {
    prop_oneof![
        Just(MechanismCombo::ALL[0]),
        Just(MechanismCombo::ALL[1]),
        Just(MechanismCombo::ALL[2]),
        Just(MechanismCombo::ALL[3]),
    ]
}

fn arb_policy() -> impl Strategy<Value = BiddingPolicy> {
    prop_oneof![
        Just(BiddingPolicy::OnDemandOnly),
        Just(BiddingPolicy::PureSpot),
        Just(BiddingPolicy::Reactive),
        Just(BiddingPolicy::proactive_default()),
    ]
}

fn base_cfg(policy: BiddingPolicy, mechanism: MechanismCombo) -> SchedulerConfig {
    use spothost_market::types::{InstanceType, MarketId, Zone};
    SchedulerConfig::single_market(MarketId::new(Zone::UsEast1a, InstanceType::Small))
        .with_policy(policy)
        .with_mechanism(mechanism)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scheduler_survives_any_fault_plan(
        faults in arb_faults(),
        policy in arb_policy(),
        mechanism in arb_mechanism(),
        seed in 0u64..1_000,
    ) {
        let cfg = base_cfg(policy, mechanism).with_faults(faults);
        let horizon = SimDuration::days(7);
        let a = run_one(&cfg, seed, horizon);

        // (b) No accounting time is lost or invented.
        prop_assert!(a.downtime <= a.active_span,
            "downtime {:?} exceeds span {:?}", a.downtime, a.active_span);
        prop_assert!(a.active_span <= horizon);
        prop_assert!((0.0..=1.0).contains(&a.unavailability));
        prop_assert!(a.degraded_fraction >= 0.0 && a.degraded_fraction.is_finite());

        // (c) Cost sanity: finite, non-negative, bounded relative to the
        // on-demand-only alternative (overlapping leases during migrations
        // can exceed 1x, but never unboundedly).
        prop_assert!(a.cost.is_finite() && a.cost >= 0.0);
        prop_assert!(a.baseline_cost.is_finite() && a.baseline_cost >= 0.0);
        prop_assert!(a.cost <= 3.0 * a.baseline_cost + 1.0,
            "cost {} vs baseline {}", a.cost, a.baseline_cost);

        // (d) Determinism: identical inputs, identical report.
        let b = run_one(&cfg, seed, horizon);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_no_plan(
        policy in arb_policy(),
        mechanism in arb_mechanism(),
        seed in 0u64..1_000,
    ) {
        let horizon = SimDuration::days(7);
        let plain = run_one(&base_cfg(policy, mechanism), seed, horizon);
        let zeroed = run_one(
            &base_cfg(policy, mechanism).with_faults(FaultConfig::uniform(0.0)),
            seed,
            horizon,
        );
        prop_assert_eq!(plain, zeroed);
        prop_assert_eq!(plain.request_faults, 0);
        prop_assert_eq!(plain.unwarned_revocations, 0);
        prop_assert_eq!(plain.ckpt_faults, 0);
        prop_assert_eq!(plain.live_aborts, 0);
    }
}
