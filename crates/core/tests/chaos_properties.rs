//! Chaos invariant harness: the scheduler must survive ANY storm.
//!
//! For randomized grids of storm configs x fault plans x policies x
//! mechanisms x seeds, a run must:
//!
//! (a) terminate with conserved accounting — downtime and degraded time
//!     fit inside the measured span, cost stays finite, non-negative and
//!     within a constant factor of the on-demand baseline;
//! (b) stay deterministic — the same inputs give the same report;
//! (c) not leak state across [`SimScratch`] reuse — a run on a scratch
//!     dirtied by a *different* chaotic run is bit-identical to a fresh
//!     one (no event-queue residue, no forecaster residue);
//! (d) replay exactly through telemetry — summing the recorded stream
//!     reproduces cost and downtime bitwise even with storm events
//!     interleaved, and the storm edges themselves are well-formed;
//! (e) collapse to the storm-free baseline at zero intensity — a
//!     zero-intensity config, and even a *built* but effect-free
//!     schedule, never advances any RNG stream, so the report is
//!     bit-identical to a run with no storms configured at all.

use proptest::prelude::*;
use spothost_core::prelude::*;
use spothost_core::scheduler::{SimRun, SimScratch};
use spothost_market::catalog::Catalog;
use spothost_market::gen::TraceSet;
use spothost_market::time::SimDuration;
use spothost_market::types::{InstanceType, MarketId, Zone};
use spothost_virt::MechanismCombo;

fn rate() -> impl Strategy<Value = f64> {
    (0u32..10, 0.0f64..0.5).prop_map(|(k, x)| if k == 0 { 0.0 } else { x })
}

fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (rate(), rate(), rate(), rate()).prop_map(|(spot, od, warn, ckpt)| {
        let mut f = FaultConfig::none();
        f.spot_capacity_rate = spot;
        f.od_capacity_rate = od;
        f.warning_miss_rate = warn;
        f.ckpt_failure_rate = ckpt;
        f
    })
}

fn arb_storms() -> impl Strategy<Value = StormConfig> {
    // Weight zero intensity (must be a perfect no-op) and full intensity
    // (the worst case), and sweep the on-demand quota independently —
    // a tight quota is the regime where backpressure deadlocks would hide.
    (0u32..8, 0.0f64..1.0, 0u32..4).prop_map(|(k, x, q)| {
        let mut s = StormConfig::intensity(match k {
            0 => 0.0,
            1 => 1.0,
            _ => x,
        });
        s.od_quota = match q {
            0 => 0,
            1 => 1,
            2 => 4,
            _ => 16,
        };
        s
    })
}

fn arb_policy() -> impl Strategy<Value = BiddingPolicy> {
    prop_oneof![
        Just(BiddingPolicy::OnDemandOnly),
        Just(BiddingPolicy::PureSpot),
        Just(BiddingPolicy::Reactive),
        Just(BiddingPolicy::proactive_default()),
    ]
}

fn arb_mechanism() -> impl Strategy<Value = MechanismCombo> {
    prop_oneof![
        Just(MechanismCombo::ALL[0]),
        Just(MechanismCombo::ALL[1]),
        Just(MechanismCombo::ALL[2]),
        Just(MechanismCombo::ALL[3]),
    ]
}

fn arb_scope() -> impl Strategy<Value = MarketScope> {
    prop_oneof![
        Just(MarketScope::Single(MarketId::new(
            Zone::UsEast1a,
            InstanceType::Small
        ))),
        Just(MarketScope::MultiMarket(Zone::UsEast1a)),
        Just(MarketScope::MultiRegion(vec![
            Zone::UsEast1a,
            Zone::UsWest1a
        ])),
    ]
}

fn base_cfg(
    scope: MarketScope,
    policy: BiddingPolicy,
    mechanism: MechanismCombo,
) -> SchedulerConfig {
    let cfg = match &scope {
        MarketScope::Single(m) => SchedulerConfig::single_market(*m),
        _ => SchedulerConfig::multi(scope),
    };
    cfg.with_policy(policy).with_mechanism(mechanism)
}

const HORIZON_DAYS: u64 = 7;

fn traces_for(cfg: &SchedulerConfig, seed: u64) -> TraceSet {
    let catalog = Catalog::ec2_2015();
    TraceSet::generate(
        &catalog,
        &cfg.candidates(),
        seed,
        SimDuration::days(HORIZON_DAYS),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chaos_conserves_accounting_and_stays_deterministic(
        storms in arb_storms(),
        faults in arb_faults(),
        scope in arb_scope(),
        policy in arb_policy(),
        mechanism in arb_mechanism(),
        seed in 0u64..1_000,
    ) {
        let cfg = base_cfg(scope, policy, mechanism)
            .with_faults(faults)
            .with_storms(storms);
        cfg.validate().expect("chaos grid configs must validate");
        let horizon = SimDuration::days(HORIZON_DAYS);
        let a = run_one(&cfg, seed, horizon);

        // (a) Conservation: no accounting time lost or invented, cost
        // finite and bounded by a constant factor of the baseline.
        prop_assert!(a.downtime <= a.active_span,
            "downtime {:?} exceeds span {:?}", a.downtime, a.active_span);
        prop_assert!(a.active_span <= horizon);
        prop_assert!((0.0..=1.0).contains(&a.unavailability));
        prop_assert!(a.degraded_fraction >= 0.0 && a.degraded_fraction.is_finite());
        prop_assert!(a.cost.is_finite() && a.cost >= 0.0);
        prop_assert!(a.cost <= 3.0 * a.baseline_cost + 1.0,
            "cost {} vs baseline {}", a.cost, a.baseline_cost);

        // (b) Determinism under re-run.
        let b = run_one(&cfg, seed, horizon);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_leaks_nothing_across_chaotic_runs(
        storms in arb_storms(),
        faults in arb_faults(),
        policy in arb_policy(),
        seed in 0u64..1_000,
    ) {
        // Dirty a scratch with a violent, unrelated run (full-intensity
        // storms, a different scope, a different seed), then reuse it:
        // the report must be bit-identical to a fresh-scratch run.
        let dirty_cfg = base_cfg(
            MarketScope::MultiMarket(Zone::EuWest1a),
            BiddingPolicy::Reactive,
            MechanismCombo::ALL[0],
        )
        .with_faults(FaultConfig::uniform(0.4))
        .with_storms(StormConfig::intensity(1.0));
        let dirty_traces = traces_for(&dirty_cfg, seed.wrapping_add(17));
        let (_, scratch) = SimRun::with_scratch(
            &dirty_traces,
            &dirty_cfg,
            seed.wrapping_add(17),
            SimScratch::new(),
        )
        .run_reclaim();

        let cfg = base_cfg(
            MarketScope::Single(MarketId::new(Zone::UsEast1a, InstanceType::Small)),
            policy,
            MechanismCombo::ALL[3],
        )
        .with_faults(faults)
        .with_storms(storms);
        let traces = traces_for(&cfg, seed);
        let fresh = SimRun::new(&traces, &cfg, seed).run();
        let (reused, _) = SimRun::with_scratch(&traces, &cfg, seed, scratch).run_reclaim();
        prop_assert_eq!(fresh, reused);
    }

    #[test]
    fn telemetry_replays_storm_runs_bitwise(
        storms in arb_storms(),
        faults in arb_faults(),
        policy in arb_policy(),
        seed in 0u64..1_000,
    ) {
        let cfg = base_cfg(
            MarketScope::MultiMarket(Zone::UsEast1a),
            policy,
            MechanismCombo::ALL[2],
        )
        .with_faults(faults)
        .with_storms(storms);
        let horizon = SimDuration::days(HORIZON_DAYS);
        let plain = run_one(&cfg, seed, horizon);
        let (report, rec) = run_one_recorded(&cfg, seed, horizon);

        // Observation stays free with storm events in the stream.
        prop_assert_eq!(plain, report.clone());

        // Replay: ordered sums reproduce the report bitwise; storm edges
        // are balanced per zone (at most one episode left open at the
        // horizon, since a zone's episodes never overlap).
        let mut cost = 0.0f64;
        let mut downtime_ms = 0u64;
        let mut open = [0i64; 4];
        for (_, ev) in rec.events() {
            match ev {
                TelemetryEvent::LeaseClosed { cost: c, .. } => cost += c,
                TelemetryEvent::Outage { start, end } => {
                    downtime_ms += (*end - *start).as_millis();
                }
                TelemetryEvent::StormStarted { zone } => open[zone.index()] += 1,
                TelemetryEvent::StormEnded { zone } => {
                    open[zone.index()] -= 1;
                    prop_assert!(open[zone.index()] >= 0, "storm ended before it started");
                }
                _ => {}
            }
        }
        prop_assert_eq!(cost.to_bits(), report.cost.to_bits(),
            "replayed cost {} != report cost {}", cost, report.cost);
        prop_assert_eq!(downtime_ms, report.downtime.as_millis());
        for (z, n) in open.iter().enumerate() {
            prop_assert!((0..=1).contains(n),
                "zone {z}: {n} unbalanced storm edges");
        }
    }

    #[test]
    fn zero_intensity_storms_never_advance_any_rng(
        faults in arb_faults(),
        scope in arb_scope(),
        policy in arb_policy(),
        mechanism in arb_mechanism(),
        seed in 0u64..1_000,
    ) {
        let horizon = SimDuration::days(HORIZON_DAYS);
        let base = base_cfg(scope, policy, mechanism).with_faults(faults);
        let plain = run_one(&base, seed, horizon);
        // A zero-intensity config builds no schedule at all...
        let zero = run_one(
            &base.clone().with_storms(StormConfig::intensity(0.0)),
            seed,
            horizon,
        );
        prop_assert_eq!(plain.clone(), zero);
        // ...and a *built* but effect-free schedule (enabled via an
        // unreachable quota, everything else zero) must not advance any
        // stream either: still bit-identical.
        let mut neutral = StormConfig::none();
        neutral.od_quota = u32::MAX;
        let built = run_one(&base.clone().with_storms(neutral), seed, horizon);
        prop_assert_eq!(plain, built);
    }
}
