//! Capacity accounting for multi-market packing (§4, footnote 2).
//!
//! The hosted service needs a fixed amount of capacity, measured in
//! capacity *units* (small = 1, each size doubling). In a single-market
//! configuration that is exactly one server of the chosen size. In
//! multi-market configurations the same units can be bought as several
//! small servers or one large one — the nested VMs are packed accordingly,
//! and all servers of the aggregate sit in the *same* market, so they see
//! the same price and migrate together.

use spothost_market::types::{InstanceType, MarketId};

/// Capacity requirements the scheduler supports: exactly the server sizes,
/// so every candidate size divides the requirement or equals it.
pub const SUPPORTED_UNITS: [u32; 4] = [1, 2, 4, 8];

/// How many servers of `itype` host a service of `units` capacity units.
///
/// Panics if the size doesn't pack evenly (callers filter candidates with
/// [`fits`] first).
pub fn servers_needed(units: u32, itype: InstanceType) -> u32 {
    let per = itype.capacity_units();
    assert!(
        fits(units, itype),
        "{units} units cannot be packed onto {itype} servers"
    );
    units / per
}

/// Can a service of `units` be hosted on servers of `itype` without waste?
/// (Server at most as large as the requirement, dividing it evenly.)
pub fn fits(units: u32, itype: InstanceType) -> bool {
    let per = itype.capacity_units();
    per <= units && units.is_multiple_of(per)
}

/// The aggregate $/hour of hosting `units` on `itype` servers at the given
/// per-server price.
pub fn aggregate_rate(units: u32, market: MarketId, per_server_price: f64) -> f64 {
    servers_needed(units, market.itype) as f64 * per_server_price
}

/// The single server size that hosts `units` on one server (used for the
/// on-demand fallback: one box, no packing concerns).
pub fn exact_fit_type(units: u32) -> InstanceType {
    match units {
        1 => InstanceType::Small,
        2 => InstanceType::Medium,
        4 => InstanceType::Large,
        8 => InstanceType::XLarge,
        _ => panic!("unsupported capacity requirement: {units} units"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_market::types::Zone;

    #[test]
    fn packing_counts() {
        assert_eq!(servers_needed(8, InstanceType::Small), 8);
        assert_eq!(servers_needed(8, InstanceType::Medium), 4);
        assert_eq!(servers_needed(8, InstanceType::Large), 2);
        assert_eq!(servers_needed(8, InstanceType::XLarge), 1);
        assert_eq!(servers_needed(1, InstanceType::Small), 1);
    }

    #[test]
    fn fits_rejects_oversized_and_uneven() {
        assert!(fits(4, InstanceType::Large));
        assert!(!fits(4, InstanceType::XLarge), "server larger than service");
        assert!(fits(2, InstanceType::Small));
        assert!(!fits(1, InstanceType::Medium));
    }

    #[test]
    #[should_panic(expected = "cannot be packed")]
    fn servers_needed_panics_on_bad_fit() {
        servers_needed(2, InstanceType::Large);
    }

    #[test]
    fn aggregate_rate_is_per_unit_consistent() {
        // With per-unit pricing equal across sizes, the aggregate rate is
        // the same no matter how the service is packed.
        let units = 8;
        let per_unit = 0.06;
        for itype in InstanceType::ALL {
            let m = MarketId::new(Zone::UsEast1a, itype);
            let per_server = per_unit * itype.capacity_units() as f64;
            let rate = aggregate_rate(units, m, per_server);
            assert!((rate - 0.48).abs() < 1e-12, "{itype}");
        }
    }

    #[test]
    fn exact_fit_roundtrip() {
        for &u in &SUPPORTED_UNITS {
            assert_eq!(exact_fit_type(u).capacity_units(), u);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported capacity")]
    fn exact_fit_rejects_odd_units() {
        exact_fit_type(3);
    }
}
