//! # spothost-core
//!
//! The paper's primary contribution: a **cloud scheduler** that hosts an
//! always-on Internet service on cloud spot markets at a fraction of the
//! on-demand cost while keeping unavailability within an always-on SLO
//! (§3).
//!
//! The scheduler combines:
//!
//! * **Bidding policies** ([`policy`]): *reactive* (bid = on-demand price,
//!   transitions forced by revocation) and *proactive* (bid = 4x on-demand,
//!   voluntary planned migrations at billing boundaries), plus the paper's
//!   two baselines (*on-demand only*, *pure spot*).
//! * **Migration mechanisms** (from `spothost-virt`): bounded
//!   checkpointing, lazy restore and live migration, in the four
//!   combinations of Figure 7.
//! * **Market scopes** ([`strategy`]): a single spot market, all markets of
//!   one zone (Figure 8), or the markets of several zones (Figure 9),
//!   packing the service's nested VMs onto whichever server size currently
//!   offers the cheapest capacity.
//!
//! [`scheduler`] runs one configuration against a generated price history
//! as a discrete-event simulation; [`sim`] wraps Monte-Carlo sweeps over
//! seeds on rayon; [`report`] summarises cost, unavailability and
//! migration counts per run.
//!
//! ## Quick example
//!
//! ```
//! use spothost_core::prelude::*;
//! use spothost_market::prelude::*;
//!
//! let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
//! let cfg = SchedulerConfig::single_market(market)
//!     .with_policy(BiddingPolicy::proactive_default());
//! let report = run_one(&cfg, 42, SimDuration::days(30));
//! assert!(report.normalized_cost < 0.6, "spot hosting must beat on-demand");
//! assert!(report.unavailability < 0.01);
//! ```

// Library code must not unwrap: every remaining panic site is either an
// invariant with an explanatory expect/unreachable message or a documented
// constructor precondition (see DESIGN.md "Failure semantics").
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod accounting;
pub mod capacity;
pub mod config;
pub mod policy;
pub mod report;
pub mod scheduler;
pub mod sim;
pub mod strategy;

pub use accounting::Accounting;
pub use config::SchedulerConfig;
pub use policy::BiddingPolicy;
pub use report::RunReport;
pub use scheduler::{SimRun, SimScratch};
pub use sim::{run_grid, run_many, run_one, run_one_metrics, run_one_recorded, AggregateReport};
pub use spothost_faults::{FaultConfig, StormConfig};
pub use spothost_telemetry as telemetry;
pub use strategy::MarketScope;

/// Convenient glob import.
pub mod prelude {
    pub use crate::accounting::Accounting;
    pub use crate::config::SchedulerConfig;
    pub use crate::policy::BiddingPolicy;
    pub use crate::report::RunReport;
    pub use crate::sim::{
        run_grid, run_many, run_one, run_one_metrics, run_one_recorded, AggregateReport,
    };
    pub use crate::strategy::MarketScope;
    pub use spothost_faults::{FaultConfig, StormConfig};
    pub use spothost_telemetry::{Metrics, Recorder, TelemetryEvent};
    pub use spothost_virt::{MechanismCombo, ParamRegime};
}
