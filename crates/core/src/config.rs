//! Scheduler configuration.

use crate::policy::BiddingPolicy;
use crate::strategy::MarketScope;
use spothost_faults::{FaultConfig, StormConfig};
use spothost_market::time::SimDuration;
use spothost_market::types::MarketId;
use spothost_virt::{MechanismCombo, ParamRegime, VirtParams};

/// A complete scheduler configuration: what to bid, where, and how to
/// migrate.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// How to bid: reactive, proactive, adaptive, pure-spot, on-demand.
    pub policy: BiddingPolicy,
    /// Which markets the scheduler may place the service in.
    pub scope: MarketScope,
    /// Which migration mechanisms (checkpointing, lazy restore, live
    /// migration) the scheduler moves state with.
    pub mechanism: MechanismCombo,
    /// Typical or pessimistic virtualization timing parameters.
    pub regime: ParamRegime,
    /// Service size in capacity units (small = 1). Must be one of
    /// [`crate::capacity::SUPPORTED_UNITS`].
    pub capacity_units: u32,
    /// Disk state (GiB) that must be replicated on cross-region moves.
    pub disk_gib: f64,
    /// Hysteresis for hopping to a cheaper spot market when the current one
    /// is still below on-demand: move only if the candidate is at least
    /// this fraction cheaper. Keeps multi-market bidding from flapping.
    pub hop_margin: f64,
    /// Extra safety margin added to the migration lead time.
    pub lead_slack: SimDuration,
    /// Stability-aware bidding weight (the paper's §8 future work). When
    /// choosing which spot market to migrate to, a candidate's effective
    /// rate is inflated by `stability_weight * baseline_rate * risk`,
    /// where `risk` is the observable fraction of the trailing week the
    /// market spent above its on-demand price. Zero (the default)
    /// reproduces the paper's greedy cheapest-market bidding.
    pub stability_weight: f64,
    /// Override the regime-derived virtualization parameters (ablation
    /// studies sweep e.g. the Yank bound through this).
    pub virt_params_override: Option<VirtParams>,
    /// The paper's Figure 3 *naive approach*: ignore the revocation
    /// warning, lose all memory state, and only after termination request
    /// an on-demand replacement that boots the service from its disk
    /// volume. Exists as a measurable motivation baseline; the scheduler's
    /// mechanisms are what remove its downtime.
    pub naive_restart: bool,
    /// Injected provider/mechanism faults ([`FaultConfig::none`] by
    /// default — the all-zero plan is bit-identical to no plan at all).
    pub faults: FaultConfig,
    /// Correlated-failure storms ([`StormConfig::none`] by default — an
    /// effect-free config builds no schedule and is bit-identical to no
    /// storms at all).
    pub storms: StormConfig,
    /// Seed override for the storm schedule. `None` (the default) derives
    /// storms from the run seed; a fleet pins one shared seed here so all
    /// its services see the *same* episode timeline — storms must be
    /// correlated across the fleet, not redrawn per service.
    pub storm_seed: Option<u64>,
    /// After this much continuous uptime on one lease, the reacquire
    /// backoff ladder resets to its 60 s base. Shorter stints keep their
    /// escalated backoff so a brief mid-storm activation cannot re-arm
    /// the thundering herd.
    pub stable_backoff_reset: SimDuration,
}

impl SchedulerConfig {
    /// Single-market configuration sized so the service is exactly one
    /// server of that market's type — the setting of Figures 6, 7, 11.
    /// Defaults: proactive bidding, CKPT+LR (the mechanism of Figure 6,
    /// §4.2 note 3), typical parameters.
    pub fn single_market(market: MarketId) -> Self {
        SchedulerConfig {
            policy: BiddingPolicy::proactive_default(),
            scope: MarketScope::Single(market),
            mechanism: MechanismCombo::CKPT_LR,
            regime: ParamRegime::Typical,
            capacity_units: market.itype.capacity_units(),
            disk_gib: 8.0,
            hop_margin: 0.25,
            lead_slack: SimDuration::secs(120),
            stability_weight: 0.0,
            virt_params_override: None,
            naive_restart: false,
            faults: FaultConfig::none(),
            storms: StormConfig::none(),
            storm_seed: None,
            stable_backoff_reset: SimDuration::minutes(30),
        }
    }

    /// Multi-market / multi-region configuration hosting an
    /// xlarge-equivalent service (8 units) — the setting of Figures 8, 9.
    pub fn multi(scope: MarketScope) -> Self {
        SchedulerConfig {
            policy: BiddingPolicy::proactive_default(),
            scope,
            mechanism: MechanismCombo::CKPT_LR_LIVE,
            regime: ParamRegime::Typical,
            capacity_units: 8,
            disk_gib: 8.0,
            hop_margin: 0.25,
            lead_slack: SimDuration::secs(120),
            stability_weight: 0.0,
            virt_params_override: None,
            naive_restart: false,
            faults: FaultConfig::none(),
            storms: StormConfig::none(),
            storm_seed: None,
            stable_backoff_reset: SimDuration::minutes(30),
        }
    }

    /// Replace the bidding policy.
    pub fn with_policy(mut self, policy: BiddingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the migration mechanism combo.
    pub fn with_mechanism(mut self, mechanism: MechanismCombo) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Switch between typical and pessimistic virtualization parameters.
    pub fn with_regime(mut self, regime: ParamRegime) -> Self {
        self.regime = regime;
        self
    }

    /// Resize the hosted service (units of small servers; must be one of
    /// [`crate::capacity::SUPPORTED_UNITS`]).
    pub fn with_capacity_units(mut self, units: u32) -> Self {
        self.capacity_units = units;
        self
    }

    /// Use the naive restart-from-disk recovery of the paper's Figure 3.
    pub fn with_naive_restart(mut self) -> Self {
        self.naive_restart = true;
        self
    }

    /// Enable stability-aware market selection (see `stability_weight`).
    pub fn with_stability_weight(mut self, weight: f64) -> Self {
        self.stability_weight = weight;
        self
    }

    /// Override the virtualization timing parameters.
    pub fn with_virt_params(mut self, params: VirtParams) -> Self {
        self.virt_params_override = Some(params);
        self
    }

    /// Inject provider/mechanism faults (see `spothost-faults`).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Inject correlated-failure storms (see `spothost-faults`).
    pub fn with_storms(mut self, storms: StormConfig) -> Self {
        self.storms = storms;
        self
    }

    /// Pin the storm schedule to a fixed seed instead of the run seed
    /// (fleets share one timeline across their per-service run seeds).
    pub fn with_storm_seed(mut self, seed: u64) -> Self {
        self.storm_seed = Some(seed);
        self
    }

    /// Tune the stable-uptime interval after which the reacquire backoff
    /// ladder resets to its base.
    pub fn with_stable_backoff_reset(mut self, interval: SimDuration) -> Self {
        self.stable_backoff_reset = interval;
        self
    }

    /// The virtualization parameters this configuration runs with.
    pub fn virt_params(&self) -> VirtParams {
        self.virt_params_override
            .clone()
            .unwrap_or_else(|| VirtParams::for_regime(self.regime))
    }

    /// Check every knob is in range; returns a human-readable error
    /// naming the offending field otherwise.
    pub fn validate(&self) -> Result<(), String> {
        self.policy.validate()?;
        if !crate::capacity::SUPPORTED_UNITS.contains(&self.capacity_units) {
            return Err(format!(
                "capacity_units must be one of {:?}, got {}",
                crate::capacity::SUPPORTED_UNITS,
                self.capacity_units
            ));
        }
        if self.scope.candidates(self.capacity_units).is_empty() {
            return Err("scope has no candidate markets for this capacity".into());
        }
        if let MarketScope::MultiRegion(zones) = &self.scope {
            if zones.is_empty() {
                return Err("multi-region scope needs at least one zone".into());
            }
        }
        if !(0.0..1.0).contains(&self.hop_margin) {
            return Err("hop_margin must lie in [0,1)".into());
        }
        if self.disk_gib.is_nan() || self.disk_gib < 0.0 {
            return Err("disk_gib must be non-negative".into());
        }
        if !(self.stability_weight >= 0.0 && self.stability_weight.is_finite()) {
            return Err("stability_weight must be non-negative and finite".into());
        }
        if let Some(vp) = &self.virt_params_override {
            vp.validate()?;
        }
        self.faults.validate()?;
        self.storms.validate()?;
        if self.stable_backoff_reset == SimDuration::ZERO {
            return Err("stable_backoff_reset must be positive".into());
        }
        Ok(())
    }

    /// Markets the scheduler may bid in.
    pub fn candidates(&self) -> Vec<MarketId> {
        self.scope.candidates(self.capacity_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_market::types::{InstanceType, Zone};

    #[test]
    fn single_market_defaults() {
        let m = MarketId::new(Zone::UsEast1a, InstanceType::Large);
        let cfg = SchedulerConfig::single_market(m);
        cfg.validate().unwrap();
        assert_eq!(cfg.capacity_units, 4);
        assert_eq!(cfg.candidates(), vec![m]);
        assert_eq!(cfg.mechanism, MechanismCombo::CKPT_LR);
    }

    #[test]
    fn multi_defaults() {
        let cfg = SchedulerConfig::multi(MarketScope::MultiMarket(Zone::UsEast1b));
        cfg.validate().unwrap();
        assert_eq!(cfg.capacity_units, 8);
        assert_eq!(cfg.candidates().len(), 4);
    }

    #[test]
    fn builder_chain() {
        let m = MarketId::new(Zone::UsWest1a, InstanceType::Small);
        let cfg = SchedulerConfig::single_market(m)
            .with_policy(BiddingPolicy::Reactive)
            .with_mechanism(MechanismCombo::CKPT)
            .with_regime(ParamRegime::Pessimistic);
        assert_eq!(cfg.policy, BiddingPolicy::Reactive);
        assert_eq!(cfg.mechanism, MechanismCombo::CKPT);
        assert_eq!(cfg.regime, ParamRegime::Pessimistic);
    }

    #[test]
    fn validation_rejects_bad_capacity() {
        let cfg =
            SchedulerConfig::multi(MarketScope::MultiMarket(Zone::UsEast1a)).with_capacity_units(3);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_policy_parameters() {
        let m = MarketId::new(Zone::UsEast1a, InstanceType::Small);
        let cfg = SchedulerConfig::single_market(m)
            .with_policy(BiddingPolicy::Proactive { bid_mult: 0.25 });
        let err = cfg.validate().expect_err("bid_mult < 1");
        assert!(err.contains("bid multiple"), "{err}");
        let cfg = SchedulerConfig::single_market(m)
            .with_policy(BiddingPolicy::Adaptive { risk_budget: 2.0 });
        assert!(cfg.validate().is_err());
        let cfg = SchedulerConfig::single_market(m).with_policy(BiddingPolicy::adaptive_default());
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_rejects_empty_multi_region() {
        let cfg = SchedulerConfig::multi(MarketScope::MultiRegion(vec![]));
        assert!(cfg.validate().is_err());
    }
}
