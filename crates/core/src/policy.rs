//! Bidding policies (§3.1) and the paper's two baselines.

use std::fmt;

/// How the scheduler bids for spot servers and whether it falls back to
/// on-demand servers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BiddingPolicy {
    /// Baseline: never touch the spot market. Normalized cost ~1 by
    /// definition, unavailability ~0.
    OnDemandOnly,
    /// Baseline (§5): spot only, bid = on-demand price, *no* on-demand
    /// fallback — the service stays down while the spot price exceeds the
    /// bid. Cheap, but Figure 11(b) shows >1% unavailability.
    PureSpot,
    /// Bid exactly the on-demand price: the provider revokes the server the
    /// moment the spot price passes on-demand, forcing every transition
    /// (§3.1, "reactive").
    Reactive,
    /// Bid `bid_mult` times the on-demand price (clamped to the provider's
    /// cap). Price excursions between on-demand and the bid don't revoke
    /// the server, so the scheduler *voluntarily* migrates at billing
    /// boundaries with all the time it needs (§3.1, "proactive").
    Proactive { bid_mult: f64 },
}

impl BiddingPolicy {
    /// The paper's proactive configuration: bid the provider cap
    /// (4x on-demand, §3.1 footnote 1).
    pub fn proactive_default() -> Self {
        BiddingPolicy::Proactive { bid_mult: 4.0 }
    }

    /// The bid for a market with on-demand price `pon`, given the
    /// provider's maximum accepted bid. `None` means the policy never bids.
    pub fn bid(&self, pon: f64, max_bid: f64) -> Option<f64> {
        match *self {
            BiddingPolicy::OnDemandOnly => None,
            BiddingPolicy::PureSpot | BiddingPolicy::Reactive => Some(pon.min(max_bid)),
            BiddingPolicy::Proactive { bid_mult } => {
                assert!(bid_mult >= 1.0, "proactive bid multiple must be >= 1");
                Some((bid_mult * pon).min(max_bid))
            }
        }
    }

    /// Does this policy migrate to on-demand servers when spot turns bad?
    pub fn uses_on_demand_fallback(&self) -> bool {
        matches!(
            self,
            BiddingPolicy::Reactive | BiddingPolicy::Proactive { .. }
        )
    }

    /// Does this policy perform voluntary planned migrations at billing
    /// boundaries? (Reactive can't: its bid equals the planned-migration
    /// threshold, so the provider always revokes first.)
    pub fn plans_migrations(&self) -> bool {
        matches!(self, BiddingPolicy::Proactive { .. })
    }

    /// Does the policy use spot servers at all?
    pub fn uses_spot(&self) -> bool {
        !matches!(self, BiddingPolicy::OnDemandOnly)
    }

    pub fn name(&self) -> &'static str {
        match self {
            BiddingPolicy::OnDemandOnly => "on-demand-only",
            BiddingPolicy::PureSpot => "pure-spot",
            BiddingPolicy::Reactive => "reactive",
            BiddingPolicy::Proactive { .. } => "proactive",
        }
    }
}

impl fmt::Display for BiddingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BiddingPolicy::Proactive { bid_mult } => write!(f, "proactive(bid={bid_mult}x)"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactive_bids_on_demand_price() {
        assert_eq!(BiddingPolicy::Reactive.bid(0.06, 0.24), Some(0.06));
        assert_eq!(BiddingPolicy::PureSpot.bid(0.06, 0.24), Some(0.06));
    }

    #[test]
    fn proactive_bids_cap() {
        let p = BiddingPolicy::proactive_default();
        assert_eq!(p.bid(0.06, 0.24), Some(0.24));
        // A tamer multiple stays under the cap.
        let p = BiddingPolicy::Proactive { bid_mult: 2.0 };
        assert_eq!(p.bid(0.06, 0.24), Some(0.12));
        // Multiples above the cap are clamped.
        let p = BiddingPolicy::Proactive { bid_mult: 10.0 };
        assert_eq!(p.bid(0.06, 0.24), Some(0.24));
    }

    #[test]
    fn on_demand_only_never_bids() {
        assert_eq!(BiddingPolicy::OnDemandOnly.bid(0.06, 0.24), None);
        assert!(!BiddingPolicy::OnDemandOnly.uses_spot());
    }

    #[test]
    fn fallback_and_planning_matrix() {
        assert!(!BiddingPolicy::PureSpot.uses_on_demand_fallback());
        assert!(BiddingPolicy::Reactive.uses_on_demand_fallback());
        assert!(BiddingPolicy::proactive_default().uses_on_demand_fallback());
        assert!(!BiddingPolicy::Reactive.plans_migrations());
        assert!(BiddingPolicy::proactive_default().plans_migrations());
    }

    #[test]
    fn display_names() {
        assert_eq!(
            BiddingPolicy::proactive_default().to_string(),
            "proactive(bid=4x)"
        );
        assert_eq!(BiddingPolicy::Reactive.to_string(), "reactive");
    }
}
