//! Bidding policies (§3.1), the paper's two baselines, and the
//! forecast-driven adaptive extension.

use std::fmt;

/// How the scheduler bids for spot servers and whether it falls back to
/// on-demand servers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BiddingPolicy {
    /// Baseline: never touch the spot market. Normalized cost ~1 by
    /// definition, unavailability ~0.
    OnDemandOnly,
    /// Baseline (§5): spot only, bid = on-demand price, *no* on-demand
    /// fallback — the service stays down while the spot price exceeds the
    /// bid. Cheap, but Figure 11(b) shows >1% unavailability.
    PureSpot,
    /// Bid exactly the on-demand price: the provider revokes the server the
    /// moment the spot price passes on-demand, forcing every transition
    /// (§3.1, "reactive").
    Reactive,
    /// Bid `bid_mult` times the on-demand price (clamped to the provider's
    /// cap). Price excursions between on-demand and the bid don't revoke
    /// the server, so the scheduler *voluntarily* migrates at billing
    /// boundaries with all the time it needs (§3.1, "proactive").
    Proactive {
        /// Bid as a multiple of the on-demand price (>= 1).
        bid_mult: f64,
    },
    /// EXTENSION: forecast-driven bidding. Per market, an online
    /// forecaster (`spothost-forecast`) estimates P(price > b within the
    /// next hour) from the observed price history, and the scheduler bids
    /// the *cheapest* ladder bid whose predicted revocation probability
    /// is within `risk_budget` (clamped to the provider cap; the cap is
    /// the fallback whenever the model is cold or nothing cheaper is safe
    /// enough). Like Proactive, it plans voluntary migrations and falls
    /// back to on-demand.
    Adaptive {
        /// Tolerated predicted P(revocation within the next hour), in
        /// (0, 1).
        risk_budget: f64,
    },
}

impl BiddingPolicy {
    /// The paper's proactive configuration: bid the provider cap
    /// (4x on-demand, §3.1 footnote 1).
    pub fn proactive_default() -> Self {
        BiddingPolicy::Proactive { bid_mult: 4.0 }
    }

    /// The default adaptive configuration: tolerate at most a 0.1%
    /// predicted chance of revocation per hour. Tight by design — spot
    /// billing charges the hour-start price regardless of the bid, so a
    /// lower bid only *saves* via free revoked partial hours and *costs*
    /// via forced on-demand fallback; over a multi-week horizon even a
    /// 0.5%/h budget admits enough forced migrations to cost more than
    /// bidding the cap outright.
    pub fn adaptive_default() -> Self {
        BiddingPolicy::Adaptive { risk_budget: 0.001 }
    }

    /// Check the policy's parameters, returning a human-readable error
    /// for out-of-range values. Called at configuration time
    /// (`SchedulerConfig::validate`) so a bad CLI flag is rejected up
    /// front instead of panicking mid-simulation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            BiddingPolicy::Proactive { bid_mult } if !bid_mult.is_finite() || bid_mult < 1.0 => {
                Err(format!(
                    "proactive bid multiple must be a finite value >= 1, got {bid_mult}"
                ))
            }
            BiddingPolicy::Adaptive { risk_budget }
                if !risk_budget.is_finite()
                    || !(0.0..1.0).contains(&risk_budget)
                    || risk_budget == 0.0 =>
            {
                Err(format!(
                    "adaptive risk budget must be in (0, 1), got {risk_budget}"
                ))
            }
            _ => Ok(()),
        }
    }

    /// The bid for a market with on-demand price `pon`, given the
    /// provider's maximum accepted bid. `None` means the policy never bids.
    ///
    /// For `Adaptive` this is the *cold-model* bid (the provider cap);
    /// the scheduler overrides it per market with the forecaster's
    /// decision once price history has been observed.
    pub fn bid(&self, pon: f64, max_bid: f64) -> Option<f64> {
        match *self {
            BiddingPolicy::OnDemandOnly => None,
            BiddingPolicy::PureSpot | BiddingPolicy::Reactive => Some(pon.min(max_bid)),
            BiddingPolicy::Proactive { bid_mult } => {
                // Out-of-range multiples are rejected by `validate` at
                // configuration time.
                debug_assert!(bid_mult >= 1.0, "unvalidated proactive bid multiple");
                Some((bid_mult * pon).min(max_bid))
            }
            BiddingPolicy::Adaptive { .. } => Some(max_bid),
        }
    }

    /// Does this policy migrate to on-demand servers when spot turns bad?
    pub fn uses_on_demand_fallback(&self) -> bool {
        matches!(
            self,
            BiddingPolicy::Reactive
                | BiddingPolicy::Proactive { .. }
                | BiddingPolicy::Adaptive { .. }
        )
    }

    /// Does this policy perform voluntary planned migrations at billing
    /// boundaries? (Reactive can't: its bid equals the planned-migration
    /// threshold, so the provider always revokes first.)
    pub fn plans_migrations(&self) -> bool {
        matches!(
            self,
            BiddingPolicy::Proactive { .. } | BiddingPolicy::Adaptive { .. }
        )
    }

    /// Does the policy use spot servers at all?
    pub fn uses_spot(&self) -> bool {
        !matches!(self, BiddingPolicy::OnDemandOnly)
    }

    /// Does the policy consult the online price forecasters?
    pub fn uses_forecast(&self) -> bool {
        matches!(self, BiddingPolicy::Adaptive { .. })
    }

    /// Short lowercase label used in reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            BiddingPolicy::OnDemandOnly => "on-demand-only",
            BiddingPolicy::PureSpot => "pure-spot",
            BiddingPolicy::Reactive => "reactive",
            BiddingPolicy::Proactive { .. } => "proactive",
            BiddingPolicy::Adaptive { .. } => "adaptive",
        }
    }
}

impl fmt::Display for BiddingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BiddingPolicy::Proactive { bid_mult } => write!(f, "proactive(bid={bid_mult}x)"),
            BiddingPolicy::Adaptive { risk_budget } => {
                write!(f, "adaptive(risk={risk_budget}/h)")
            }
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactive_bids_on_demand_price() {
        assert_eq!(BiddingPolicy::Reactive.bid(0.06, 0.24), Some(0.06));
        assert_eq!(BiddingPolicy::PureSpot.bid(0.06, 0.24), Some(0.06));
    }

    #[test]
    fn proactive_bids_cap() {
        let p = BiddingPolicy::proactive_default();
        assert_eq!(p.bid(0.06, 0.24), Some(0.24));
        // A tamer multiple stays under the cap.
        let p = BiddingPolicy::Proactive { bid_mult: 2.0 };
        assert_eq!(p.bid(0.06, 0.24), Some(0.12));
        // Multiples above the cap are clamped.
        let p = BiddingPolicy::Proactive { bid_mult: 10.0 };
        assert_eq!(p.bid(0.06, 0.24), Some(0.24));
    }

    #[test]
    fn adaptive_cold_bid_is_the_cap() {
        let p = BiddingPolicy::adaptive_default();
        assert_eq!(p.bid(0.06, 0.24), Some(0.24));
    }

    #[test]
    fn on_demand_only_never_bids() {
        assert_eq!(BiddingPolicy::OnDemandOnly.bid(0.06, 0.24), None);
        assert!(!BiddingPolicy::OnDemandOnly.uses_spot());
    }

    #[test]
    fn fallback_and_planning_matrix() {
        assert!(!BiddingPolicy::PureSpot.uses_on_demand_fallback());
        assert!(BiddingPolicy::Reactive.uses_on_demand_fallback());
        assert!(BiddingPolicy::proactive_default().uses_on_demand_fallback());
        assert!(BiddingPolicy::adaptive_default().uses_on_demand_fallback());
        assert!(!BiddingPolicy::Reactive.plans_migrations());
        assert!(BiddingPolicy::proactive_default().plans_migrations());
        assert!(BiddingPolicy::adaptive_default().plans_migrations());
        assert!(!BiddingPolicy::Reactive.uses_forecast());
        assert!(BiddingPolicy::adaptive_default().uses_forecast());
    }

    #[test]
    fn validate_rejects_out_of_range_parameters() {
        assert!(BiddingPolicy::proactive_default().validate().is_ok());
        assert!(BiddingPolicy::adaptive_default().validate().is_ok());
        assert!(BiddingPolicy::Reactive.validate().is_ok());
        let err = BiddingPolicy::Proactive { bid_mult: 0.5 }
            .validate()
            .expect_err("below 1");
        assert!(err.contains("bid multiple"), "{err}");
        assert!(BiddingPolicy::Proactive { bid_mult: f64::NAN }
            .validate()
            .is_err());
        for bad in [0.0, 1.0, -0.1, f64::INFINITY] {
            assert!(
                BiddingPolicy::Adaptive { risk_budget: bad }
                    .validate()
                    .is_err(),
                "risk budget {bad} must be rejected"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            BiddingPolicy::proactive_default().to_string(),
            "proactive(bid=4x)"
        );
        assert_eq!(BiddingPolicy::Reactive.to_string(), "reactive");
        assert_eq!(
            BiddingPolicy::adaptive_default().to_string(),
            "adaptive(risk=0.001/h)"
        );
    }
}
