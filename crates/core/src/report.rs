//! Per-run metrics derived from [`crate::accounting::Accounting`].

use crate::accounting::Accounting;
use spothost_market::time::{SimDuration, SimTime};

/// The metrics the paper reports for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Total cost divided by the cost of hosting the same service on
    /// on-demand servers for the same active span (the paper's
    /// "normalized cost", plotted as a percent).
    pub normalized_cost: f64,
    /// Fraction of the active span the service was down, in `[0,1]`
    /// (multiply by 100 for the paper's "% unavailability").
    pub unavailability: f64,
    /// Fraction of the active span the service ran degraded.
    pub degraded_fraction: f64,
    /// Forced migrations per service-hour (Figure 6(c)).
    pub forced_per_hour: f64,
    /// Planned + reverse migrations per service-hour (Figure 6(d)).
    pub planned_reverse_per_hour: f64,
    /// Fraction of lease-time spent on spot servers.
    pub spot_fraction: f64,
    /// Raw dollars spent.
    pub cost: f64,
    /// Dollars an on-demand-only deployment would have spent.
    pub baseline_cost: f64,
    /// Total downtime.
    pub downtime: SimDuration,
    /// The span metrics are measured over.
    pub active_span: SimDuration,
    /// Revocation-forced migrations (the provider took the server).
    pub forced_migrations: u32,
    /// Voluntary planned migrations at billing boundaries.
    pub planned_migrations: u32,
    /// Migrations back from on-demand fallback to a spot market.
    pub reverse_migrations: u32,
    /// Fault-injection diagnostics (all zero unless faults are enabled):
    /// server requests the provider refused.
    pub request_faults: u32,
    /// Revocations whose two-minute warning was lost (fault injection).
    pub unwarned_revocations: u32,
    /// Checkpoint operations that failed (fault injection).
    pub ckpt_faults: u32,
    /// Live migrations aborted mid-flight (fault injection).
    pub live_aborts: u32,
}

impl RunReport {
    /// Derive the report from run accounting.
    ///
    /// `baseline_rate` is the $/hour of the on-demand-only alternative
    /// (lowest-priced zone in scope, aggregated over the service's
    /// capacity units).
    pub fn from_accounting(acc: &Accounting, horizon: SimTime, baseline_rate: f64) -> Self {
        assert!(baseline_rate > 0.0);
        let span = acc.active_span(horizon);
        let span_hours = span.as_hours_f64();
        let span_ms = span.as_millis() as f64;
        let baseline_cost = baseline_rate * span_hours;
        let frac = |d: SimDuration| {
            if span_ms == 0.0 {
                0.0
            } else {
                d.as_millis() as f64 / span_ms
            }
        };
        let per_hour = |n: u32| {
            if span_hours == 0.0 {
                0.0
            } else {
                n as f64 / span_hours
            }
        };
        let lease_total = acc.spot_time + acc.on_demand_time;
        RunReport {
            normalized_cost: if baseline_cost == 0.0 {
                0.0
            } else {
                acc.cost / baseline_cost
            },
            unavailability: frac(acc.downtime),
            degraded_fraction: frac(acc.degraded),
            forced_per_hour: per_hour(acc.forced_migrations),
            planned_reverse_per_hour: per_hour(acc.planned_migrations + acc.reverse_migrations),
            spot_fraction: if lease_total == SimDuration::ZERO {
                0.0
            } else {
                acc.spot_time.as_millis() as f64 / lease_total.as_millis() as f64
            },
            cost: acc.cost,
            baseline_cost,
            downtime: acc.downtime,
            active_span: span,
            forced_migrations: acc.forced_migrations,
            planned_migrations: acc.planned_migrations,
            reverse_migrations: acc.reverse_migrations,
            request_faults: acc.request_faults,
            unwarned_revocations: acc.unwarned_revocations,
            ckpt_faults: acc.ckpt_faults,
            live_aborts: acc.live_aborts,
        }
    }

    /// All migrations of any kind.
    pub fn total_migrations(&self) -> u32 {
        self.forced_migrations + self.planned_migrations + self.reverse_migrations
    }

    /// Unavailability as the paper plots it (percent).
    pub fn unavailability_pct(&self) -> f64 {
        self.unavailability * 100.0
    }

    /// Normalized cost as the paper plots it (percent of baseline).
    pub fn normalized_cost_pct(&self) -> f64 {
        self.normalized_cost * 100.0
    }

    /// Does this run meet an availability SLO of the given number of nines?
    pub fn meets_nines(&self, nines: u32) -> bool {
        self.unavailability <= 10f64.powi(-(nines as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc() -> Accounting {
        let mut a = Accounting::new();
        a.service_start = Some(SimTime::ZERO);
        a.cost = 43.2; // vs 0.06*2400h = 144 baseline
        a.downtime = SimDuration::secs(360);
        a.degraded = SimDuration::secs(3_600);
        a.forced_migrations = 5;
        a.planned_migrations = 10;
        a.reverse_migrations = 9;
        a.spot_time = SimDuration::hours(2_200);
        a.on_demand_time = SimDuration::hours(200);
        a
    }

    #[test]
    fn report_math() {
        let horizon = SimTime::hours(2_400);
        let r = RunReport::from_accounting(&acc(), horizon, 0.06);
        assert!((r.baseline_cost - 144.0).abs() < 1e-9);
        assert!((r.normalized_cost - 0.3).abs() < 1e-9);
        assert!((r.normalized_cost_pct() - 30.0).abs() < 1e-9);
        // 360s over 2400h = 360 / 8,640,000 s ~ 4.17e-5.
        assert!((r.unavailability - 360.0 / 8_640_000.0).abs() < 1e-12);
        assert!((r.forced_per_hour - 5.0 / 2_400.0).abs() < 1e-12);
        assert!((r.planned_reverse_per_hour - 19.0 / 2_400.0).abs() < 1e-12);
        assert!((r.spot_fraction - 2_200.0 / 2_400.0).abs() < 1e-12);
    }

    #[test]
    fn nines_slo() {
        let horizon = SimTime::hours(2_400);
        let r = RunReport::from_accounting(&acc(), horizon, 0.06);
        // 4.17e-5 unavailability: meets 4 nines (1e-4) but not 5 (1e-5).
        assert!(r.meets_nines(4));
        assert!(!r.meets_nines(5));
    }

    #[test]
    fn never_started_service_reports_zeros() {
        let a = Accounting::new();
        let r = RunReport::from_accounting(&a, SimTime::hours(100), 0.06);
        assert_eq!(r.unavailability, 0.0);
        assert_eq!(r.normalized_cost, 0.0);
        assert_eq!(r.active_span, SimDuration::ZERO);
    }
}
