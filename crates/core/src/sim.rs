//! High-level run helpers: generate traces, run the scheduler, aggregate
//! Monte-Carlo repetitions (the paper: "we sampled the empirically observed
//! distributions and used a different sample for each simulation run").

use crate::config::SchedulerConfig;
use crate::report::RunReport;
use crate::scheduler::{SimRun, SimScratch};
use spothost_analysis::mc::{mc_run, par_map_chunks, Summary};
use spothost_market::catalog::Catalog;
use spothost_market::gen::TraceSet;
use spothost_market::time::SimDuration;
use spothost_market::types::MarketId;
use spothost_telemetry::{Metrics, Recorder};

/// Run one configuration against freshly generated calibrated traces.
pub fn run_one(cfg: &SchedulerConfig, seed: u64, horizon: SimDuration) -> RunReport {
    let catalog = Catalog::ec2_2015();
    let markets = cfg.candidates();
    let traces = TraceSet::generate(&catalog, &markets, seed, horizon);
    SimRun::new(&traces, cfg, seed).run()
}

/// [`run_one`], recording the full telemetry event stream.
///
/// The simulation itself is bit-identical to [`run_one`] — the recorder
/// only observes — so the returned [`RunReport`] matches the unrecorded
/// run exactly.
pub fn run_one_recorded(
    cfg: &SchedulerConfig,
    seed: u64,
    horizon: SimDuration,
) -> (RunReport, Recorder) {
    let catalog = Catalog::ec2_2015();
    let markets = cfg.candidates();
    let traces = TraceSet::generate(&catalog, &markets, seed, horizon);
    let mut rec = Recorder::new();
    let report = SimRun::new(&traces, cfg, seed).with_sink(&mut rec).run();
    (report, rec)
}

/// [`run_one`], aggregating telemetry histograms instead of raw events
/// (O(1) memory regardless of run length).
pub fn run_one_metrics(
    cfg: &SchedulerConfig,
    seed: u64,
    horizon: SimDuration,
) -> (RunReport, Metrics) {
    let catalog = Catalog::ec2_2015();
    let markets = cfg.candidates();
    let traces = TraceSet::generate(&catalog, &markets, seed, horizon);
    let mut metrics = Metrics::new();
    let report = SimRun::new(&traces, cfg, seed)
        .with_sink(&mut metrics)
        .run();
    (report, metrics)
}

/// Monte-Carlo aggregate over seeds.
#[derive(Debug, Clone)]
pub struct AggregateReport {
    /// Summary of per-run normalized cost (fraction of on-demand).
    pub normalized_cost: Summary,
    /// Summary of per-run unavailability (fraction of the span).
    pub unavailability: Summary,
    /// Summary of forced migrations per service-hour.
    pub forced_per_hour: Summary,
    /// Summary of planned + reverse migrations per service-hour.
    pub planned_reverse_per_hour: Summary,
    /// Summary of the fraction of lease time spent on spot.
    pub spot_fraction: Summary,
    /// Summary of the fraction of the span run degraded.
    pub degraded_fraction: Summary,
    /// The individual runs the summaries are computed over.
    pub runs: Vec<RunReport>,
}

impl AggregateReport {
    /// Summarize a batch of runs.
    pub fn of(runs: Vec<RunReport>) -> Self {
        let pick = |f: fn(&RunReport) -> f64| {
            let xs: Vec<f64> = runs.iter().map(f).collect();
            Summary::of(&xs)
        };
        AggregateReport {
            normalized_cost: pick(|r| r.normalized_cost),
            unavailability: pick(|r| r.unavailability),
            forced_per_hour: pick(|r| r.forced_per_hour),
            planned_reverse_per_hour: pick(|r| r.planned_reverse_per_hour),
            spot_fraction: pick(|r| r.spot_fraction),
            degraded_fraction: pick(|r| r.degraded_fraction),
            runs,
        }
    }

    /// Mean unavailability as a percent, the unit of the paper's figures.
    pub fn unavailability_pct(&self) -> f64 {
        self.unavailability.mean * 100.0
    }

    /// Mean normalized cost as a percent of the on-demand baseline.
    pub fn normalized_cost_pct(&self) -> f64 {
        self.normalized_cost.mean * 100.0
    }
}

/// Run `n_seeds` Monte-Carlo repetitions of a configuration in parallel
/// (rayon) and aggregate. Deterministic in `(cfg, seed0, n_seeds,
/// horizon)`.
pub fn run_many(
    cfg: &SchedulerConfig,
    seed0: u64,
    n_seeds: u64,
    horizon: SimDuration,
) -> AggregateReport {
    let runs = mc_run(seed0, n_seeds, |seed| run_one(cfg, seed, horizon));
    AggregateReport::of(runs)
}

/// Run a whole grid of configurations over the same seed range in **one**
/// flat parallel sweep, returning one aggregate per configuration (in
/// input order).
///
/// Equivalent to calling [`run_many`] once per configuration — results
/// are bit-identical — but substantially faster for figure sweeps:
///
/// * the seed x configuration grid is flattened into one chunked parallel
///   pass, so the thread pool never idles at a fork/join barrier between
///   grid cells (a cell with a slow seed no longer serialises the sweep);
/// * configurations that share a candidate-market set (e.g. the paper's
///   per-size runs against the same zone, or policy A/B comparisons on
///   one market) share one [`TraceSet`] per seed — and the per-seed union
///   pool comes out of the process-global trace arena, so traces shared
///   *across* grids and experiments are generated once per process;
/// * per-set trace views are [`TraceSet::subset`] slices of the union
///   pool (`Arc`-shared, no price data copied), and each worker carries
///   one [`SimScratch`] across every run in its chunk of seeds, so event
///   queues and forecaster buffers are reset in place instead of
///   reallocated per run.
pub fn run_grid(
    cfgs: &[SchedulerConfig],
    seed0: u64,
    n_seeds: u64,
    horizon: SimDuration,
) -> Vec<AggregateReport> {
    let catalog = Catalog::ec2_2015();
    // Group configurations by candidate-market set; each distinct set's
    // traces are generated once per seed and shared by its members.
    let mut sets: Vec<Vec<MarketId>> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for (ci, cfg) in cfgs.iter().enumerate() {
        let markets = cfg.candidates();
        match sets.iter().position(|s| *s == markets) {
            Some(si) => members[si].push(ci),
            None => {
                sets.push(markets);
                members.push(vec![ci]);
            }
        }
    }
    // The union of every candidate set, deduplicated through a membership
    // set (16 possible markets). A market's generated trace depends only
    // on (master seed, market) — zone factors and spike schedules derive
    // from dedicated streams, not from which other markets share the set —
    // so the union pool can be generated once per seed and sliced into
    // per-set views that are bit-identical to sets generated alone.
    let mut in_union = [false; 16];
    let mut union: Vec<MarketId> = Vec::new();
    for &m in sets.iter().flatten() {
        if !std::mem::replace(&mut in_union[m.dense_index()], true) {
            union.push(m);
        }
    }
    // One job per seed, processed in chunks so a worker's scratch state
    // survives across the seeds of its chunk; the chunk size only affects
    // amortisation, never results (scratch is reset per run).
    let seeds: Vec<u64> = (seed0..seed0 + n_seeds).collect();
    let chunk = seeds
        .len()
        .div_ceil(4 * rayon::current_num_threads())
        .max(1);
    let ran: Vec<Vec<Vec<RunReport>>> = par_map_chunks(seeds, chunk, |chunk_seeds| {
        let mut scratch = SimScratch::new();
        chunk_seeds
            .iter()
            .map(|&seed| {
                let pool = TraceSet::generate(&catalog, &union, seed, horizon);
                sets.iter()
                    .zip(&members)
                    .map(|(set, ms)| {
                        let traces = pool.subset(set);
                        ms.iter()
                            .map(|&ci| {
                                let run = SimRun::with_scratch(
                                    &traces,
                                    &cfgs[ci],
                                    seed,
                                    std::mem::take(&mut scratch),
                                );
                                let (report, reclaimed) = run.run_reclaim();
                                scratch = reclaimed;
                                report
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    });
    // Regroup per configuration; `par_map_chunks` preserves seed order, so
    // each configuration receives its reports in seed order — exactly as
    // `run_many` produces them.
    let mut per_cfg: Vec<Vec<RunReport>> = vec![Vec::with_capacity(n_seeds as usize); cfgs.len()];
    for per_seed in ran {
        for (ms, reports) in members.iter().zip(per_seed) {
            for (&ci, report) in ms.iter().zip(reports) {
                per_cfg[ci].push(report);
            }
        }
    }
    per_cfg.into_iter().map(AggregateReport::of).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BiddingPolicy;
    use spothost_market::types::{InstanceType, MarketId, Zone};

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::single_market(MarketId::new(Zone::UsEast1a, InstanceType::Small))
    }

    #[test]
    fn run_one_is_deterministic() {
        let a = run_one(&cfg(), 3, SimDuration::days(14));
        let b = run_one(&cfg(), 3, SimDuration::days(14));
        assert_eq!(a, b);
    }

    #[test]
    fn run_many_aggregates_all_seeds() {
        let agg = run_many(&cfg(), 0, 4, SimDuration::days(14));
        assert_eq!(agg.runs.len(), 4);
        assert_eq!(agg.normalized_cost.n, 4);
        assert!(agg.normalized_cost.mean > 0.0);
        assert!(agg.normalized_cost.min <= agg.normalized_cost.mean);
        assert!(agg.normalized_cost.mean <= agg.normalized_cost.max);
    }

    #[test]
    fn run_grid_matches_run_many_per_config() {
        // The grid sweep shares trace sets between configurations with the
        // same candidate markets and flattens the parallelism, but every
        // per-seed run must stay bit-identical to the per-config path.
        let m = MarketId::new(Zone::UsEast1a, InstanceType::Small);
        let cfgs = [
            SchedulerConfig::single_market(m),
            SchedulerConfig::single_market(m).with_policy(BiddingPolicy::Reactive),
            SchedulerConfig::single_market(MarketId::new(Zone::EuWest1a, InstanceType::Large)),
        ];
        let grid = run_grid(&cfgs, 5, 3, SimDuration::days(14));
        assert_eq!(grid.len(), cfgs.len());
        for (cfg, agg) in cfgs.iter().zip(&grid) {
            let solo = run_many(cfg, 5, 3, SimDuration::days(14));
            assert_eq!(agg.runs, solo.runs);
        }
    }

    #[test]
    fn calibrated_proactive_beats_on_demand_substantially() {
        // The headline claim at small scale: proactive hosting on the
        // calibrated us-east-1a small market costs a small fraction of
        // on-demand.
        let agg = run_many(&cfg(), 0, 4, SimDuration::days(30));
        assert!(
            agg.normalized_cost.mean < 0.5,
            "normalized cost {}",
            agg.normalized_cost.mean
        );
        assert!(
            agg.unavailability.mean < 0.005,
            "unavailability {}",
            agg.unavailability.mean
        );
    }

    #[test]
    fn pure_spot_cheap_but_unavailable() {
        let pure = run_many(
            &cfg().with_policy(BiddingPolicy::PureSpot),
            0,
            4,
            SimDuration::days(30),
        );
        let pro = run_many(&cfg(), 0, 4, SimDuration::days(30));
        // Pure spot is at most as expensive as proactive (it never pays
        // on-demand prices) but far less available.
        assert!(pure.normalized_cost.mean <= pro.normalized_cost.mean * 1.1);
        assert!(pure.unavailability.mean > pro.unavailability.mean);
    }
}
