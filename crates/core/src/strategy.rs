//! Market scopes: which spot markets the scheduler may bid in (§4.2–4.5).

use crate::capacity::{exact_fit_type, fits};
use spothost_market::catalog::Catalog;
use spothost_market::types::{MarketId, Zone};

/// The set of markets the scheduler's bidding algorithm considers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarketScope {
    /// One spot market plus the same zone's on-demand servers (§4.2).
    Single(MarketId),
    /// Every size market within one zone (§4.4, Figure 8).
    MultiMarket(Zone),
    /// Every size market across several zones (§4.5, Figure 9). Cross-zone
    /// moves between different regions are WAN migrations.
    MultiRegion(Vec<Zone>),
}

impl MarketScope {
    /// Zones this scope touches.
    pub fn zones(&self) -> Vec<Zone> {
        match self {
            MarketScope::Single(m) => vec![m.zone],
            MarketScope::MultiMarket(z) => vec![*z],
            MarketScope::MultiRegion(zs) => zs.clone(),
        }
    }

    /// Spot markets the scheduler may bid in, for a service of `units`
    /// capacity units. Sizes that don't pack evenly are excluded.
    ///
    /// The returned list is pinned to canonical order — `(zone index,
    /// instance-type index)` ascending — regardless of the order zones
    /// were passed in a `MultiRegion` scope. Downstream consumers rely
    /// on this: the scheduler breaks score ties by list position and the
    /// forecaster state is aligned index-for-index, so a permuted list
    /// would silently change simulation results.
    pub fn candidates(&self, units: u32) -> Vec<MarketId> {
        let mut out = match self {
            MarketScope::Single(m) => {
                assert!(
                    fits(units, m.itype),
                    "single-market scope must fit the service"
                );
                vec![*m]
            }
            MarketScope::MultiMarket(zone) => MarketId::all_in_zone(*zone)
                .into_iter()
                .filter(|m| fits(units, m.itype))
                .collect(),
            MarketScope::MultiRegion(zones) => zones
                .iter()
                .flat_map(|&z| MarketId::all_in_zone(z))
                .filter(|m| fits(units, m.itype))
                .collect(),
        };
        out.sort_by_key(|m| (m.zone.index(), m.itype.index()));
        out.dedup();
        out
    }

    /// Forecast-driven ordering hook for multi-market and multi-region
    /// scopes: stable-sort `items` by ascending `risk` so that when the
    /// scheduler's cost-based ranking ties, the *calmer* market wins.
    /// Single-market scopes have nothing to reorder, so this is a no-op
    /// there — keeping single-market runs bit-identical whether or not a
    /// forecaster is attached.
    pub fn rank_by_risk<T>(&self, items: &mut [T], mut risk: impl FnMut(&T) -> f64) {
        if matches!(self, MarketScope::Single(_)) {
            return;
        }
        items.sort_by(|a, b| risk(a).total_cmp(&risk(b)));
    }

    /// The on-demand fallback market when the service currently sits in
    /// `zone`: one exact-fit server in the same zone (forced migrations are
    /// always local — the two-minute warning leaves no room for a WAN
    /// move).
    pub fn on_demand_market(&self, zone: Zone, units: u32) -> MarketId {
        match self {
            // Single-market experiments replace the spot server with an
            // on-demand server of the same size (§3.1).
            MarketScope::Single(m) => {
                debug_assert_eq!(m.zone, zone);
                *m
            }
            _ => MarketId::new(zone, exact_fit_type(units)),
        }
    }

    /// The normalization baseline in $/hour: hosting the service entirely
    /// on on-demand servers, at the *lowest* on-demand price available in
    /// the scope's zones (§4.5).
    pub fn baseline_rate(&self, catalog: &Catalog, units: u32) -> f64 {
        catalog.cheapest_on_demand_for_units(&self.zones(), units)
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            MarketScope::Single(m) => m.to_string(),
            MarketScope::MultiMarket(z) => format!("multi-market({z})"),
            MarketScope::MultiRegion(zs) => {
                let names: Vec<&str> = zs.iter().map(|z| z.name()).collect();
                format!("multi-region({})", names.join("+"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_market::types::InstanceType;

    #[test]
    fn single_scope_candidates() {
        let m = MarketId::new(Zone::UsEast1a, InstanceType::Large);
        let s = MarketScope::Single(m);
        assert_eq!(s.candidates(4), vec![m]);
        assert_eq!(s.zones(), vec![Zone::UsEast1a]);
        assert_eq!(s.on_demand_market(Zone::UsEast1a, 4), m);
    }

    #[test]
    fn multi_market_candidates_filter_by_fit() {
        let s = MarketScope::MultiMarket(Zone::UsWest1a);
        assert_eq!(s.candidates(8).len(), 4, "all sizes pack 8 units");
        assert_eq!(s.candidates(2).len(), 2, "only small+medium pack 2");
        let c1 = s.candidates(1);
        assert_eq!(c1.len(), 1);
        assert_eq!(c1[0].itype, InstanceType::Small);
    }

    #[test]
    fn multi_region_spans_zones() {
        let s = MarketScope::MultiRegion(vec![Zone::UsEast1a, Zone::EuWest1a]);
        let c = s.candidates(8);
        assert_eq!(c.len(), 8);
        assert!(c.iter().any(|m| m.zone == Zone::UsEast1a));
        assert!(c.iter().any(|m| m.zone == Zone::EuWest1a));
    }

    #[test]
    fn candidate_order_is_canonical_regardless_of_zone_order() {
        // Regression: multi-region candidate order used to follow the
        // zones Vec passed in; it is now pinned to (zone, size) order.
        let fwd = MarketScope::MultiRegion(vec![Zone::UsEast1a, Zone::EuWest1a]);
        let rev = MarketScope::MultiRegion(vec![Zone::EuWest1a, Zone::UsEast1a]);
        let c = fwd.candidates(8);
        assert_eq!(c, rev.candidates(8));
        let keys: Vec<(usize, usize)> = c
            .iter()
            .map(|m| (m.zone.index(), m.itype.index()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "must be (zone, size) ascending");
        // Duplicate zones don't duplicate markets.
        let dup = MarketScope::MultiRegion(vec![Zone::UsEast1a, Zone::UsEast1a]);
        assert_eq!(dup.candidates(8).len(), 4);
    }

    #[test]
    fn rank_by_risk_orders_multi_scopes_only() {
        let mut items = vec![("a", 0.3), ("b", 0.1), ("c", 0.2)];
        MarketScope::Single(MarketId::new(Zone::UsEast1a, InstanceType::Small))
            .rank_by_risk(&mut items, |x| x.1);
        assert_eq!(items[0].0, "a", "single scope must not reorder");
        MarketScope::MultiMarket(Zone::UsEast1a).rank_by_risk(&mut items, |x| x.1);
        let names: Vec<&str> = items.iter().map(|x| x.0).collect();
        assert_eq!(names, ["b", "c", "a"]);
    }

    #[test]
    fn on_demand_fallback_is_local_exact_fit() {
        let s = MarketScope::MultiRegion(vec![Zone::UsEast1a, Zone::EuWest1a]);
        let od = s.on_demand_market(Zone::EuWest1a, 8);
        assert_eq!(od, MarketId::new(Zone::EuWest1a, InstanceType::XLarge));
    }

    #[test]
    fn baseline_uses_cheapest_zone() {
        let catalog = Catalog::ec2_2015();
        let s = MarketScope::MultiRegion(vec![Zone::UsEast1a, Zone::EuWest1a]);
        let baseline = s.baseline_rate(&catalog, 8);
        let us_east = catalog.on_demand_price(MarketId::new(Zone::UsEast1a, InstanceType::XLarge));
        assert!((baseline - us_east).abs() < 1e-12, "us-east is cheaper");
    }

    #[test]
    fn labels() {
        assert_eq!(
            MarketScope::MultiMarket(Zone::UsEast1b).label(),
            "multi-market(us-east-1b)"
        );
        assert!(
            MarketScope::MultiRegion(vec![Zone::UsEast1a, Zone::UsWest1a])
                .label()
                .contains("us-east-1a+us-west-1a")
        );
    }
}
