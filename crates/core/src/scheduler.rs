//! The cloud scheduler as a discrete-event simulation (§3).
//!
//! One [`SimRun`] hosts one always-on service against one generated price
//! history. The service state machine:
//!
//! ```text
//!        Boot ──ready──▶ Active ◀────────────────┐
//!                        │  │ boundary decision  │ resume
//!                        │  └──▶ Migrating ──▶ switchover (becomes Active)
//!            revocation  │            │
//!              warning   ▼            │ warning on old server
//!                     Evacuating ◀────┘        (forced migration)
//!                        │
//!                        └─ pure-spot only: DownWaiting ──▶ Restoring
//! ```
//!
//! Decisions follow §3.1 exactly:
//! * **Forced migration** — the provider delivers a two-minute warning
//!   when the spot price exceeds the bid; the bounded checkpoint is
//!   flushed inside the window and the VM restores on a replacement
//!   on-demand server (or, for pure-spot, whenever the market returns).
//! * **Planned migration** — evaluated shortly before each instance-hour
//!   billing boundary (mid-hour price rises cost nothing, §2.1): if the
//!   current spot price exceeds the on-demand price, move to the cheapest
//!   attractive spot market, else to on-demand. Proactive only.
//! * **Reverse migration** — evaluated at on-demand billing boundaries:
//!   return to spot as soon as a market is cheaper than on-demand.

use crate::accounting::Accounting;
use crate::capacity::servers_needed;
use crate::config::SchedulerConfig;
use crate::policy::BiddingPolicy;
use crate::report::RunReport;
use spothost_cloudsim::{
    CloudProvider, EventQueue, InstanceId, InstanceState, RequestError, StartupModel,
    TerminationReason, REVOCATION_GRACE,
};
use spothost_market::gen::TraceSet;
use spothost_market::time::{SimDuration, SimTime, MILLIS_PER_HOUR};
use spothost_market::types::MarketId;
use spothost_virt::{
    lazy_restore, plan_migration, standard_restore, MechanismCombo, MigrationContext,
    MigrationKind, MigrationTiming, RestoreOutcome, VirtParams, VmSpec,
};

/// Cold-boot time of the hosted service from its disk volume under the
/// naive (Figure 3) recovery: OS boot plus application start.
const NAIVE_SERVICE_BOOT: SimDuration = SimDuration(60 * 1000);

/// Scheduler events. Instance ids double as generation tokens: an event
/// whose id no longer matches the current state is stale and ignored.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A requested server reaches its ready time.
    Ready(InstanceId),
    /// Revocation warning for a running spot lease.
    Warning(InstanceId),
    /// Forced termination of a revoked lease (warning + grace).
    Terminate(InstanceId),
    /// Billing-boundary decision point for the active lease.
    Boundary(InstanceId),
    /// A voluntary migration's switchover moment (id = target).
    Switchover(InstanceId),
    /// Service resumes after a forced migration / pure-spot restore
    /// (id = replacement server).
    ResumeDone(InstanceId),
    /// Pure-spot: the market has become affordable again; re-acquire.
    SpotRetry,
}

/// A running lease the service lives on.
#[derive(Debug, Clone, Copy)]
struct Lease {
    id: InstanceId,
    market: MarketId,
    is_spot: bool,
    start: SimTime,
}

/// A requested server that hasn't been switched to yet.
#[derive(Debug, Clone, Copy)]
struct Pending {
    id: InstanceId,
    market: MarketId,
    is_spot: bool,
    ready_at: SimTime,
}

impl Pending {
    fn into_lease(self) -> Lease {
        Lease {
            id: self.id,
            market: self.market,
            is_spot: self.is_spot,
            start: self.ready_at,
        }
    }
}

#[derive(Debug)]
enum St {
    /// Initial acquisition (no accounting until the service is up).
    Boot {
        target: Option<Pending>,
    },
    Active {
        lease: Lease,
    },
    /// Voluntary migration in progress.
    Migrating {
        from: Lease,
        to: Pending,
        kind: MigrationKind,
        timing: Option<MigrationTiming>,
    },
    /// Forced migration: old server dying, replacement restoring.
    Evacuating {
        to: Pending,
        degraded: SimDuration,
    },
    /// Pure-spot: down, waiting for the price to return below the bid.
    DownWaiting,
    /// Pure-spot: replacement requested, waiting for boot + restore.
    Restoring {
        target: Pending,
    },
}

/// A candidate spot market at a moment in time.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    market: MarketId,
    bid: f64,
    /// The aggregate $/hour for the whole service in this market right
    /// now, plus the stability penalty — what selection decisions
    /// compare. Equals the raw rate when `stability_weight` is zero.
    score: f64,
}

/// One simulation run of the scheduler.
pub struct SimRun<'t> {
    provider: CloudProvider<'t>,
    cfg: SchedulerConfig,
    vparams: VirtParams,
    queue: EventQueue<Ev>,
    st: St,
    acc: Accounting,
    horizon: SimTime,
    now: SimTime,
    /// Set while the service is down (downtime interval open end).
    down_since: Option<SimTime>,
    /// Decision lead before billing boundaries.
    lead: SimDuration,
    candidates: Vec<MarketId>,
    baseline_rate: f64,
}

impl<'t> SimRun<'t> {
    /// Build a run over a trace set. Panics if the traces don't cover the
    /// configured scope.
    pub fn new(traces: &'t TraceSet, cfg: &SchedulerConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid scheduler config");
        let candidates = cfg.candidates();
        for m in &candidates {
            assert!(
                traces.trace(*m).is_some(),
                "trace set missing candidate market {m}"
            );
        }
        let vparams = cfg.virt_params();
        let horizon = SimTime::ZERO + traces.horizon();
        let baseline_rate = cfg
            .scope
            .baseline_rate(traces.catalog(), cfg.capacity_units);
        let lead = compute_lead(cfg, &vparams, &candidates);
        SimRun {
            provider: CloudProvider::new(traces, seed),
            cfg: cfg.clone(),
            vparams,
            queue: EventQueue::with_capacity(1024),
            st: St::Boot { target: None },
            acc: Accounting::new(),
            horizon,
            now: SimTime::ZERO,
            down_since: None,
            lead,
            candidates,
            baseline_rate,
        }
    }

    /// Replace the startup model (tests use the deterministic one).
    pub fn with_startup_model(mut self, model: StartupModel) -> Self {
        self.provider = self.provider.with_startup_model(model);
        self
    }

    /// Execute the run to the horizon and report.
    pub fn run(mut self) -> RunReport {
        self.initial_acquire();
        while let Some((t, ev)) = self.queue.pop() {
            if t >= self.horizon {
                break;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatch(ev);
        }
        self.finish();
        RunReport::from_accounting(&self.acc, self.horizon, self.baseline_rate)
    }

    /// Expose the accounting (tests).
    pub fn into_parts(self) -> (Accounting, f64) {
        (self.acc, self.baseline_rate)
    }

    // --- helpers -----------------------------------------------------------

    fn n_servers(&self, market: MarketId) -> f64 {
        servers_needed(self.cfg.capacity_units, market.itype) as f64
    }

    fn vm_for(&self, market: MarketId) -> VmSpec {
        VmSpec::for_instance(market.itype)
    }

    fn restore_for(&self, market: MarketId) -> RestoreOutcome {
        let vm = self.vm_for(market);
        if self.cfg.mechanism.lazy_restore {
            lazy_restore(&vm, &self.vparams)
        } else {
            standard_restore(&vm, &self.vparams)
        }
    }

    /// Aggregate on-demand rate of the fallback server in `zone`.
    fn od_rate(&self, zone: spothost_market::types::Zone) -> f64 {
        let m = self
            .cfg
            .scope
            .on_demand_market(zone, self.cfg.capacity_units);
        self.provider.on_demand_price(m) * self.n_servers(m)
    }

    /// Cheapest spot candidate currently requestable (price at or below the
    /// policy bid), optionally excluding the current market.
    fn best_spot(&self, exclude: Option<MarketId>) -> Option<Candidate> {
        let catalog = self.provider.traces().catalog();
        let mut best: Option<Candidate> = None;
        for &m in &self.candidates {
            if Some(m) == exclude {
                continue;
            }
            let pon = catalog.on_demand_price(m);
            let Some(bid) = self.cfg.policy.bid(pon, catalog.max_bid(m)) else {
                continue;
            };
            let price = self
                .provider
                .spot_price(m, self.now)
                .expect("candidate trace exists");
            if price > bid {
                continue; // request would be rejected
            }
            let rate = price * self.n_servers(m);
            let score = rate + self.stability_penalty(m, pon);
            if best.is_none_or(|b: Candidate| score < b.score) {
                best = Some(Candidate {
                    market: m,
                    bid,
                    score,
                });
            }
        }
        best
    }

    /// Stability-aware penalty on a candidate market (§8 future work):
    /// the observable fraction of the trailing week spent above on-demand
    /// price — a direct revocation-risk proxy — scaled by the baseline
    /// rate and the configured weight. Zero weight = the paper's greedy
    /// cheapest-market selection.
    fn stability_penalty(&self, market: MarketId, pon: f64) -> f64 {
        if self.cfg.stability_weight == 0.0 {
            return 0.0;
        }
        let window = SimDuration::days(7);
        let from = self.now.saturating_sub(window);
        let risk = self
            .provider
            .traces()
            .trace(market)
            .expect("candidate trace exists")
            .fraction_above_in(from, self.now, pon);
        self.cfg.stability_weight * self.baseline_rate * risk
    }

    /// Close a lease (idempotent), billing it and recording time shares.
    fn close_lease(&mut self, id: InstanceId, reason: TerminationReason) {
        let Some(inst) = self.provider.instance(id) else {
            return;
        };
        if inst.is_terminated() {
            return;
        }
        let was_pending = matches!(inst.state, InstanceState::Pending { .. });
        let market = inst.market;
        let is_spot = inst.kind.is_spot();
        let start = inst.ready_at;
        let end = if was_pending {
            start
        } else {
            self.now.max(start)
        };
        let charge = self.provider.terminate(id, end, reason);
        self.acc.cost += charge * self.n_servers(market);
        if !was_pending && end > start {
            let dur = end - start;
            if is_spot {
                self.acc.spot_time += dur;
            } else {
                self.acc.on_demand_time += dur;
            }
        }
    }

    /// Schedule the next billing-boundary decision for a lease, if the
    /// policy makes boundary decisions on this lease kind.
    fn schedule_boundary(&mut self, lease: &Lease) {
        let wanted = if lease.is_spot {
            self.cfg.policy.plans_migrations()
        } else {
            // Reverse migrations happen from on-demand leases.
            self.cfg.policy.uses_spot() && self.cfg.policy.uses_on_demand_fallback()
        };
        if !wanted {
            return;
        }
        // First boundary b = start + k*1h with b - lead strictly in the
        // future.
        let elapsed = (self.now - lease.start).as_millis() + self.lead.as_millis();
        let k = elapsed / MILLIS_PER_HOUR + 1;
        let at = lease.start + SimDuration::millis(k * MILLIS_PER_HOUR) - self.lead;
        if at < self.horizon {
            self.queue.push(at, Ev::Boundary(lease.id));
        }
    }

    /// Schedule the revocation warning for a freshly activated spot lease.
    fn schedule_warning(&mut self, lease: &Lease) {
        if !lease.is_spot {
            return;
        }
        if let Some(sched) = self.provider.revocation_schedule(lease.id, self.now) {
            if sched.warning_at < self.horizon {
                self.queue.push(sched.warning_at, Ev::Warning(lease.id));
            }
        }
    }

    fn become_active(&mut self, lease: Lease) {
        if self.acc.service_start.is_none() {
            self.acc.service_start = Some(self.now);
        }
        self.schedule_warning(&lease);
        self.schedule_boundary(&lease);
        self.st = St::Active { lease };
    }

    // --- initial acquisition -----------------------------------------------

    fn initial_acquire(&mut self) {
        match self.cfg.policy {
            BiddingPolicy::OnDemandOnly => self.request_initial_od(),
            BiddingPolicy::PureSpot => {
                if !self.try_request_initial_spot() {
                    self.schedule_spot_retry();
                }
            }
            BiddingPolicy::Reactive | BiddingPolicy::Proactive { .. } => {
                if !self.try_request_initial_spot() {
                    self.request_initial_od();
                }
            }
        }
    }

    /// Request the cheapest attractive spot market; false if none is both
    /// requestable and cheaper than the on-demand alternative.
    fn try_request_initial_spot(&mut self) -> bool {
        let Some(best) = self.best_spot(None) else {
            return false;
        };
        if self.cfg.policy.uses_on_demand_fallback() && best.score >= self.baseline_rate {
            return false;
        }
        let (id, ready) = self
            .provider
            .request_spot(best.market, best.bid, self.now)
            .expect("best_spot candidates are requestable");
        let pending = Pending {
            id,
            market: best.market,
            is_spot: true,
            ready_at: ready,
        };
        self.queue.push(ready, Ev::Ready(id));
        self.st = St::Boot {
            target: Some(pending),
        };
        true
    }

    fn request_initial_od(&mut self) {
        let zone = self.cfg.scope.zones()[0];
        let m = self
            .cfg
            .scope
            .on_demand_market(zone, self.cfg.capacity_units);
        let (id, ready) = self.provider.request_on_demand(m, self.now);
        self.queue.push(ready, Ev::Ready(id));
        self.st = St::Boot {
            target: Some(Pending {
                id,
                market: m,
                is_spot: false,
                ready_at: ready,
            }),
        };
    }

    /// Pure-spot: wake up when the single market becomes affordable.
    fn schedule_spot_retry(&mut self) {
        let m = self.candidates[0];
        let catalog = self.provider.traces().catalog();
        let bid = self
            .cfg
            .policy
            .bid(catalog.on_demand_price(m), catalog.max_bid(m))
            .expect("pure-spot always bids");
        if let Some(at) = self.provider.next_time_at_or_below(m, self.now, bid) {
            let at = at.max(self.now);
            if at < self.horizon {
                self.queue.push(at, Ev::SpotRetry);
            }
        }
    }

    // --- event dispatch -----------------------------------------------------

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Ready(id) => self.on_ready(id),
            Ev::Warning(id) => self.on_warning(id),
            Ev::Terminate(id) => self.close_lease(id, TerminationReason::Revoked),
            Ev::Boundary(id) => self.on_boundary(id),
            Ev::Switchover(id) => self.on_switchover(id),
            Ev::ResumeDone(id) => self.on_resume_done(id),
            Ev::SpotRetry => self.on_spot_retry(),
        }
    }

    fn on_ready(&mut self, id: InstanceId) {
        match &self.st {
            St::Boot { target: Some(p) } if p.id == id => {
                let p = *p;
                if self.provider.activate(id, self.now) {
                    self.become_active(p.into_lease());
                } else {
                    // Spot price rose above the bid during boot.
                    match self.cfg.policy {
                        BiddingPolicy::PureSpot => {
                            self.st = St::Boot { target: None };
                            self.schedule_spot_retry();
                        }
                        _ => self.request_initial_od(),
                    }
                }
            }
            St::Migrating { to, .. } if to.id == id => {
                let to = *to;
                if self.provider.activate(id, self.now) {
                    // Target is up: compute timing and schedule switchover.
                    let (from, kind) = match &self.st {
                        St::Migrating { from, kind, .. } => (*from, *kind),
                        _ => unreachable!(),
                    };
                    let ctx = MigrationContext {
                        vm: self.vm_for(from.market),
                        from_region: from.market.zone.region(),
                        to_region: to.market.zone.region(),
                        disk_gib: self.cfg.disk_gib,
                    };
                    let timing = plan_migration(self.cfg.mechanism, kind, &ctx, &self.vparams);
                    let sw = self.now + timing.prepare;
                    self.queue.push(sw, Ev::Switchover(id));
                    // Arm the new lease's own revocation warning so a spike
                    // in the target market aborts the migration.
                    let lease = to.into_lease();
                    self.schedule_warning(&lease);
                    self.st = St::Migrating {
                        from,
                        to,
                        kind,
                        timing: Some(timing),
                    };
                } else {
                    // Target market spiked during boot: re-target to
                    // on-demand in the *current* zone.
                    let (from, kind) = match &self.st {
                        St::Migrating { from, kind, .. } => (*from, *kind),
                        _ => unreachable!(),
                    };
                    self.acc.aborted_migrations += 1;
                    if kind == MigrationKind::Reverse {
                        // We're on on-demand already; just stay.
                        self.st = St::Active { lease: from };
                        self.schedule_boundary(&from);
                    } else {
                        let m = self
                            .cfg
                            .scope
                            .on_demand_market(from.market.zone, self.cfg.capacity_units);
                        let (od, ready) = self.provider.request_on_demand(m, self.now);
                        self.queue.push(ready, Ev::Ready(od));
                        self.st = St::Migrating {
                            from,
                            to: Pending {
                                id: od,
                                market: m,
                                is_spot: false,
                                ready_at: ready,
                            },
                            kind,
                            timing: None,
                        };
                    }
                }
            }
            St::Evacuating { to, .. } if to.id == id => {
                let ok = self.provider.activate(id, self.now);
                debug_assert!(ok, "on-demand activation cannot fail");
            }
            St::Restoring { target } if target.id == id => {
                let target = *target;
                if self.provider.activate(id, self.now) {
                    let restore = self.restore_for(target.market);
                    let resume = self.now + restore.resume_latency;
                    self.queue.push(resume, Ev::ResumeDone(id));
                    // Stay in Restoring until the VM has resumed.
                } else {
                    self.st = St::DownWaiting;
                    self.schedule_spot_retry();
                }
            }
            _ => { /* stale */ }
        }
    }

    fn on_warning(&mut self, id: InstanceId) {
        match &self.st {
            St::Active { lease } if lease.id == id => {
                let lease = *lease;
                self.forced_migration(lease, None);
            }
            St::Migrating { from, to, .. } if from.id == id => {
                // The old server is being revoked mid-migration; the
                // voluntary migration becomes a forced one. Reuse the
                // target if it's an on-demand server.
                let (from, to) = (*from, *to);
                let reuse = (!to.is_spot).then_some(to);
                if reuse.is_none() {
                    // Spot target: walk away from it (it would be billed
                    // hourly while we restore onto on-demand anyway).
                    self.close_lease(to.id, TerminationReason::Voluntary);
                }
                self.forced_migration(from, reuse);
            }
            St::Migrating { from, to, .. } if to.id == id => {
                // The *target* market spiked before switchover: abort the
                // migration, let the provider revoke the target (its
                // partial hour is then free), and stay on the old server.
                let (from, to) = (*from, *to);
                self.queue
                    .push(self.now + REVOCATION_GRACE, Ev::Terminate(to.id));
                self.acc.aborted_migrations += 1;
                self.st = St::Active { lease: from };
                self.schedule_boundary(&from);
            }
            _ => { /* stale */ }
        }
    }

    /// Handle a revocation warning on `lease`: flush the bounded
    /// checkpoint, acquire (or reuse) an on-demand replacement, restore.
    fn forced_migration(&mut self, lease: Lease, reuse: Option<Pending>) {
        let terminate_at = self.now + REVOCATION_GRACE;
        self.queue.push(terminate_at, Ev::Terminate(lease.id));

        if !self.cfg.policy.uses_on_demand_fallback() {
            // Pure-spot: no replacement. Downtime runs from the suspend
            // until the market comes back and the VM restores.
            let flush = self.vparams.final_ckpt_write();
            self.down_since = Some(terminate_at.saturating_sub(flush));
            self.acc.forced_migrations += 1;
            self.st = St::DownWaiting;
            // Try again once the price is back at or below the bid; the
            // earliest sensible moment is after termination.
            let m = lease.market;
            let catalog = self.provider.traces().catalog();
            let bid = self
                .cfg
                .policy
                .bid(catalog.on_demand_price(m), catalog.max_bid(m))
                .expect("spot policies bid");
            if let Some(at) = self.provider.next_time_at_or_below(m, terminate_at, bid) {
                if at < self.horizon {
                    self.queue.push(at, Ev::SpotRetry);
                }
            }
            return;
        }

        self.acc.forced_migrations += 1;
        if self.cfg.naive_restart {
            // Figure 3: no checkpoint, no warning handling. The service
            // dies with the server; only then is an on-demand replacement
            // requested, and the service cold-boots from its network disk.
            let m = self
                .cfg
                .scope
                .on_demand_market(lease.market.zone, self.cfg.capacity_units);
            let (od, ready) = self.provider.request_on_demand(m, terminate_at);
            self.queue.push(ready, Ev::Ready(od));
            let resume = ready + NAIVE_SERVICE_BOOT;
            self.down_since = Some(terminate_at);
            self.queue.push(resume, Ev::ResumeDone(od));
            self.st = St::Evacuating {
                to: Pending {
                    id: od,
                    market: m,
                    is_spot: false,
                    ready_at: ready,
                },
                degraded: SimDuration::ZERO,
            };
            return;
        }
        let to = match reuse {
            Some(p) => p,
            None => {
                let m = self
                    .cfg
                    .scope
                    .on_demand_market(lease.market.zone, self.cfg.capacity_units);
                let (od, ready) = self.provider.request_on_demand(m, self.now);
                self.queue.push(ready, Ev::Ready(od));
                Pending {
                    id: od,
                    market: m,
                    is_spot: false,
                    ready_at: ready,
                }
            }
        };
        // Downtime: [suspend, restore-finished). The VM suspends just
        // early enough to flush the final increment before termination;
        // the restore starts once the replacement is up *and* the
        // checkpoint is complete.
        let flush = self.vparams.final_ckpt_write();
        let suspend = terminate_at.saturating_sub(flush);
        let restore = self.restore_for(lease.market);
        let restore_start = to.ready_at.max(terminate_at);
        let resume = restore_start + restore.resume_latency;
        self.down_since = Some(suspend);
        self.queue.push(resume, Ev::ResumeDone(to.id));
        self.st = St::Evacuating {
            to,
            degraded: restore.degraded,
        };
    }

    fn on_boundary(&mut self, id: InstanceId) {
        let lease = match &self.st {
            St::Active { lease } if lease.id == id => *lease,
            _ => return, // stale
        };
        // Keep the lease's billing meter caught up: every instance-hour that
        // has completed by now is charged here, so settlement at close only
        // ever handles the final partial hour.
        self.provider.advance_billing(id, self.now);
        if lease.is_spot {
            self.spot_boundary_decision(lease);
        } else {
            self.od_boundary_decision(lease);
        }
    }

    /// §3.1 planned migration, evaluated `lead` before the billing boundary.
    fn spot_boundary_decision(&mut self, lease: Lease) {
        debug_assert!(self.cfg.policy.plans_migrations());
        let price = self
            .provider
            .spot_price(lease.market, self.now)
            .expect("lease market trace exists");
        let current_rate = price * self.n_servers(lease.market);
        let pon_current = self
            .provider
            .traces()
            .catalog()
            .on_demand_price(lease.market);
        // Stability-aware: the occupied market's own risk counts too, so a
        // risky-but-cheap market can be left for a calm one.
        let current_score = current_rate + self.stability_penalty(lease.market, pon_current);
        let od = self.od_rate(lease.market.zone);
        let best = self.best_spot(Some(lease.market));

        if current_rate >= od {
            // Must leave: cheapest attractive spot market, else on-demand.
            match best.filter(|b| b.score < self.od_rate(b.market.zone)) {
                Some(b) => self.start_voluntary(lease, MigrationKind::Planned, Some(b)),
                None => self.start_voluntary(lease, MigrationKind::Planned, None),
            }
        } else if let Some(b) =
            best.filter(|b| b.score < current_score * (1.0 - self.cfg.hop_margin))
        {
            // Hop to a clearly better market (multi-market/multi-region
            // greedy step; "better" includes the stability penalty).
            self.start_voluntary(lease, MigrationKind::Planned, Some(b));
        } else {
            self.schedule_boundary(&lease);
        }
    }

    /// §3.1 reverse migration from an on-demand lease.
    fn od_boundary_decision(&mut self, lease: Lease) {
        let od = self.od_rate(lease.market.zone);
        match self.best_spot(None).filter(|b| b.score < od) {
            Some(b) => self.start_voluntary(lease, MigrationKind::Reverse, Some(b)),
            None => self.schedule_boundary(&lease),
        }
    }

    /// Kick off a voluntary migration to a spot candidate (or on-demand if
    /// `target` is `None`).
    fn start_voluntary(&mut self, from: Lease, kind: MigrationKind, target: Option<Candidate>) {
        let to = match target {
            Some(c) => {
                match self.provider.request_spot(c.market, c.bid, self.now) {
                    Ok((id, ready)) => {
                        self.queue.push(ready, Ev::Ready(id));
                        Pending {
                            id,
                            market: c.market,
                            is_spot: true,
                            ready_at: ready,
                        }
                    }
                    Err(RequestError::BidBelowPrice { .. }) => {
                        // Price moved between decision and request (cannot
                        // happen with a consistent clock, but be safe).
                        self.schedule_boundary(&from);
                        return;
                    }
                    Err(e) => panic!("unexpected request error: {e}"),
                }
            }
            None => {
                let m = self
                    .cfg
                    .scope
                    .on_demand_market(from.market.zone, self.cfg.capacity_units);
                let (id, ready) = self.provider.request_on_demand(m, self.now);
                self.queue.push(ready, Ev::Ready(id));
                Pending {
                    id,
                    market: m,
                    is_spot: false,
                    ready_at: ready,
                }
            }
        };
        self.st = St::Migrating {
            from,
            to,
            kind,
            timing: None,
        };
    }

    fn on_switchover(&mut self, target_id: InstanceId) {
        let (from, to, kind, timing) = match &self.st {
            St::Migrating {
                from,
                to,
                kind,
                timing: Some(t),
            } if to.id == target_id => (*from, *to, *kind, *t),
            _ => return, // stale (migration superseded or aborted)
        };
        // Account the switchover outage and any degraded tail.
        let down_end = self.now + timing.downtime;
        self.acc.add_downtime(self.now, down_end, self.horizon);
        self.acc
            .add_degraded(down_end, down_end + timing.degraded, self.horizon);
        match kind {
            MigrationKind::Planned => self.acc.planned_migrations += 1,
            MigrationKind::Reverse => self.acc.reverse_migrations += 1,
            MigrationKind::Forced => unreachable!("forced moves don't switch over here"),
        }
        // Release the old server; voluntary, so the started hour is billed.
        self.close_lease(from.id, TerminationReason::Voluntary);
        // The new lease has been running (and billing) since its ready
        // time; its warning was armed at activation.
        let lease = to.into_lease();
        self.schedule_boundary(&lease);
        if self.acc.service_start.is_none() {
            self.acc.service_start = Some(self.now);
        }
        self.st = St::Active { lease };
    }

    fn on_resume_done(&mut self, id: InstanceId) {
        match &self.st {
            St::Evacuating { to, degraded } if to.id == id => {
                let (to, degraded) = (*to, *degraded);
                if let Some(since) = self.down_since.take() {
                    self.acc.add_downtime(since, self.now, self.horizon);
                }
                self.acc
                    .add_degraded(self.now, self.now + degraded, self.horizon);
                self.become_active(to.into_lease());
            }
            St::Restoring { target } if target.id == id => {
                let target = *target;
                if let Some(since) = self.down_since.take() {
                    self.acc.add_downtime(since, self.now, self.horizon);
                }
                let restore = self.restore_for(target.market);
                self.acc
                    .add_degraded(self.now, self.now + restore.degraded, self.horizon);
                self.become_active(target.into_lease());
            }
            _ => { /* stale */ }
        }
    }

    fn on_spot_retry(&mut self) {
        // Only meaningful while down (pure-spot) or still booting.
        let booting = matches!(self.st, St::Boot { target: None });
        let waiting = matches!(self.st, St::DownWaiting);
        if !booting && !waiting {
            return;
        }
        let Some(best) = self.best_spot(None) else {
            self.schedule_spot_retry();
            return;
        };
        match self.provider.request_spot(best.market, best.bid, self.now) {
            Ok((id, ready)) => {
                let pending = Pending {
                    id,
                    market: best.market,
                    is_spot: true,
                    ready_at: ready,
                };
                self.queue.push(ready, Ev::Ready(id));
                if booting {
                    self.st = St::Boot {
                        target: Some(pending),
                    };
                } else {
                    self.st = St::Restoring { target: pending };
                }
            }
            Err(_) => self.schedule_spot_retry(),
        }
    }

    // --- end of run ---------------------------------------------------------

    fn finish(&mut self) {
        self.now = self.horizon;
        // Close any open downtime interval.
        if let Some(since) = self.down_since.take() {
            self.acc.add_downtime(since, self.horizon, self.horizon);
        }
        // Close all leases the state still references.
        let ids: Vec<(InstanceId, TerminationReason)> = match &self.st {
            St::Boot { target } => target
                .iter()
                .map(|p| (p.id, TerminationReason::Voluntary))
                .collect(),
            St::Active { lease } => vec![(lease.id, TerminationReason::Voluntary)],
            St::Migrating { from, to, .. } => vec![
                (from.id, TerminationReason::Voluntary),
                (to.id, TerminationReason::Voluntary),
            ],
            St::Evacuating { to, .. } => vec![(to.id, TerminationReason::Voluntary)],
            St::Restoring { target } => vec![(target.id, TerminationReason::Voluntary)],
            St::DownWaiting => vec![],
        };
        for (id, reason) in ids {
            self.close_lease(id, reason);
        }
        // A revoked lease whose Terminate event lay beyond the horizon is
        // still open in the provider; close_lease above only covers
        // state-referenced servers, and a revoked server is no longer
        // referenced — sweep any remainder through pending Terminate
        // events.
        while let Some((_, ev)) = self.queue.pop() {
            if let Ev::Terminate(id) = ev {
                self.close_lease(id, TerminationReason::Revoked);
            }
        }
    }
}

/// Decision lead before billing boundaries: enough time to boot the
/// replacement and run the migration preparation, plus slack, clamped so
/// at least one decision happens per billing hour.
///
/// The prepare bound is the worst case over *all* mechanism combos, not
/// just the configured one, so the decision schedule — and therefore
/// every bidding decision — is identical across mechanisms. Mechanisms
/// must only change downtime, never the cost structure (§5.2's
/// comparison holds the bidding fixed while varying the mechanism).
fn compute_lead(
    cfg: &SchedulerConfig,
    vparams: &VirtParams,
    candidates: &[MarketId],
) -> SimDuration {
    let startup = StartupModel::table1();
    let max_startup = candidates
        .iter()
        .map(|m| startup.spot_mean(m.zone.region()))
        .max()
        .unwrap_or(SimDuration::secs(300));
    // Worst-case preparation across candidate VM sizes and mechanism
    // combos, local moves.
    let max_prepare = candidates
        .iter()
        .flat_map(|m| {
            MechanismCombo::ALL.map(|combo| {
                let ctx = MigrationContext::local(VmSpec::for_instance(m.itype), m.zone.region());
                plan_migration(combo, MigrationKind::Planned, &ctx, vparams).prepare
            })
        })
        .max()
        .unwrap_or(SimDuration::secs(60));
    let lead = max_startup + max_prepare + cfg.lead_slack;
    lead.min(SimDuration::minutes(50))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::MarketScope;
    use spothost_market::catalog::Catalog;
    use spothost_market::gen::TraceSet;
    use spothost_market::model::SpotModelParams;
    use spothost_market::types::{InstanceType, Zone};
    use spothost_virt::MechanismCombo;

    fn market() -> MarketId {
        MarketId::new(Zone::UsEast1a, InstanceType::Small)
    }

    /// A quiet trace set: essentially flat at the calm base, no spikes.
    fn quiet_traces(days: u64) -> TraceSet {
        let catalog = Catalog::ec2_2015();
        let mut p = SpotModelParams::default_market();
        p.base_ratio = 0.2;
        p.sigma = 0.02;
        p.spike_rate_per_day = 0.0;
        p.zone_spike_rate_per_day = 0.0;
        p.elevated_base_mult = 1.001;
        TraceSet::generate_with(&catalog, &[(market(), p)], 3, SimDuration::days(days))
    }

    /// A stormy trace set: spikes several times a day, many above 4x.
    fn stormy_traces(days: u64, seed: u64) -> TraceSet {
        let catalog = Catalog::ec2_2015();
        let mut p = SpotModelParams::default_market();
        p.base_ratio = 0.2;
        p.sigma = 0.1;
        p.spike_rate_per_day = 4.0;
        p.spike_pareto_alpha = 0.9; // heavy tail: many spikes above 4x
        p.zone_spike_rate_per_day = 0.0;
        TraceSet::generate_with(&catalog, &[(market(), p)], seed, SimDuration::days(days))
    }

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::single_market(market())
    }

    #[test]
    fn quiet_market_proactive_stays_on_spot() {
        let ts = quiet_traces(10);
        let report = SimRun::new(&ts, &cfg(), 1)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert_eq!(report.forced_migrations, 0);
        assert_eq!(report.planned_migrations, 0);
        assert!(report.spot_fraction > 0.999, "{}", report.spot_fraction);
        assert_eq!(report.unavailability, 0.0);
        // Normalized cost ~ base ratio 0.2.
        assert!(
            (report.normalized_cost - 0.2).abs() < 0.05,
            "normalized cost {}",
            report.normalized_cost
        );
    }

    #[test]
    fn on_demand_only_costs_baseline() {
        let ts = quiet_traces(10);
        let c = cfg().with_policy(BiddingPolicy::OnDemandOnly);
        let report = SimRun::new(&ts, &c, 1)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert_eq!(report.unavailability, 0.0);
        assert_eq!(report.forced_migrations, 0);
        assert_eq!(report.spot_fraction, 0.0);
        // Rounding the final hour up puts the normalized cost at or just
        // above 1.
        assert!(
            (report.normalized_cost - 1.0).abs() < 0.01,
            "normalized cost {}",
            report.normalized_cost
        );
    }

    #[test]
    fn stormy_market_forces_migrations() {
        let ts = stormy_traces(30, 7);
        let report = SimRun::new(&ts, &cfg(), 7)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(report.forced_migrations > 0, "storms must revoke");
        assert!(report.unavailability > 0.0);
        assert!(
            report.reverse_migrations > 0,
            "service must return to spot after storms"
        );
        assert!(report.normalized_cost < 1.0, "spot still cheaper overall");
    }

    #[test]
    fn reactive_sees_more_forced_migrations_than_proactive() {
        let ts = stormy_traces(30, 11);
        let pro = SimRun::new(&ts, &cfg(), 11)
            .with_startup_model(StartupModel::deterministic())
            .run();
        let rea = SimRun::new(&ts, &cfg().with_policy(BiddingPolicy::Reactive), 11)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(
            rea.forced_migrations > pro.forced_migrations,
            "reactive {} vs proactive {}",
            rea.forced_migrations,
            pro.forced_migrations
        );
        assert!(rea.unavailability > pro.unavailability);
    }

    #[test]
    fn pure_spot_goes_down_during_storms() {
        let ts = stormy_traces(30, 13);
        let report = SimRun::new(&ts, &cfg().with_policy(BiddingPolicy::PureSpot), 13)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert_eq!(report.spot_fraction, 1.0, "pure spot never buys on-demand");
        assert!(
            report.unavailability > 0.001,
            "unavailability {} should be large",
            report.unavailability
        );
        let pro = SimRun::new(&ts, &cfg(), 13)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(report.unavailability > 10.0 * pro.unavailability);
    }

    #[test]
    fn runs_are_deterministic() {
        let ts = stormy_traces(20, 5);
        let a = SimRun::new(&ts, &cfg(), 5).run();
        let b = SimRun::new(&ts, &cfg(), 5).run();
        assert_eq!(a, b);
    }

    #[test]
    fn mechanism_changes_downtime_not_cost_structure() {
        let ts = stormy_traces(30, 17);
        let ckpt = SimRun::new(&ts, &cfg().with_mechanism(MechanismCombo::CKPT), 17)
            .with_startup_model(StartupModel::deterministic())
            .run();
        let lr_live = SimRun::new(&ts, &cfg().with_mechanism(MechanismCombo::CKPT_LR_LIVE), 17)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(
            ckpt.unavailability > lr_live.unavailability,
            "CKPT {} must be worse than CKPT+LR+Live {}",
            ckpt.unavailability,
            lr_live.unavailability
        );
        // Same bidding decisions, so migration counts match.
        assert_eq!(ckpt.forced_migrations, lr_live.forced_migrations);
    }

    #[test]
    fn multi_market_prefers_cheapest() {
        // Two markets in one zone, one clearly cheaper.
        let catalog = Catalog::ec2_2015();
        let zone = Zone::UsEast1a;
        let mk = |t: InstanceType, ratio: f64| {
            let mut p = SpotModelParams::default_market();
            p.base_ratio = ratio;
            p.sigma = 0.02;
            p.spike_rate_per_day = 0.0;
            p.zone_spike_rate_per_day = 0.0;
            p.elevated_base_mult = 1.001;
            (MarketId::new(zone, t), p)
        };
        let models = vec![
            mk(InstanceType::Small, 0.4),
            mk(InstanceType::Medium, 0.1),
            mk(InstanceType::Large, 0.4),
            mk(InstanceType::XLarge, 0.4),
        ];
        let ts = TraceSet::generate_with(&catalog, &models, 3, SimDuration::days(10));
        let c = SchedulerConfig::multi(MarketScope::MultiMarket(zone));
        let report = SimRun::new(&ts, &c, 3)
            .with_startup_model(StartupModel::deterministic())
            .run();
        // Should sit in the 0.1-ratio market almost the whole time.
        assert!(
            report.normalized_cost < 0.2,
            "normalized cost {}",
            report.normalized_cost
        );
    }

    #[test]
    fn proactive_single_market_has_low_unavailability_with_lr_live() {
        let ts = stormy_traces(30, 23);
        let c = cfg().with_mechanism(MechanismCombo::CKPT_LR_LIVE);
        let report = SimRun::new(&ts, &c, 23)
            .with_startup_model(StartupModel::deterministic())
            .run();
        // Even in an extreme storm market, proactive + the full mechanism
        // combo keeps unavailability below a percent.
        assert!(
            report.unavailability < 0.01,
            "unavailability {}",
            report.unavailability
        );
    }

    #[test]
    fn cost_is_positive_and_leases_accounted() {
        let ts = stormy_traces(15, 29);
        let report = SimRun::new(&ts, &cfg(), 29).run();
        assert!(report.cost > 0.0);
        assert!(report.baseline_cost > report.cost);
        assert!(report.active_span > SimDuration::days(14));
        assert!(report.spot_fraction > 0.5);
    }
}
