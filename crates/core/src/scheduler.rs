//! The cloud scheduler as a discrete-event simulation (§3).
//!
//! One [`SimRun`] hosts one always-on service against one generated price
//! history. The service state machine:
//!
//! ```text
//!        Boot ──ready──▶ Active ◀────────────────┐
//!                        │  │ boundary decision  │ resume
//!                        │  └──▶ Migrating ──▶ switchover (becomes Active)
//!            revocation  │            │
//!              warning   ▼            │ warning on old server
//!                     Evacuating ◀────┘        (forced migration)
//!                        │
//!                        └─ pure-spot only: DownWaiting ──▶ Restoring
//! ```
//!
//! Decisions follow §3.1 exactly:
//! * **Forced migration** — the provider delivers a two-minute warning
//!   when the spot price exceeds the bid; the bounded checkpoint is
//!   flushed inside the window and the VM restores on a replacement
//!   on-demand server (or, for pure-spot, whenever the market returns).
//! * **Planned migration** — evaluated shortly before each instance-hour
//!   billing boundary (mid-hour price rises cost nothing, §2.1): if the
//!   current spot price exceeds the on-demand price, move to the cheapest
//!   attractive spot market, else to on-demand. Proactive only.
//! * **Reverse migration** — evaluated at on-demand billing boundaries:
//!   return to spot as soon as a market is cheaper than on-demand.

use crate::accounting::Accounting;
use crate::capacity::servers_needed;
use crate::config::SchedulerConfig;
use crate::policy::BiddingPolicy;
use crate::report::RunReport;
use spothost_cloudsim::{
    CloudProvider, EventQueue, InstanceId, InstanceState, RequestError, StartupModel,
    TerminationReason,
};
use spothost_faults::{FaultKind, FaultPlan, StormSchedule};
use spothost_forecast::{ForecastParams, MarketForecaster};
use spothost_market::gen::{derive_seed, TraceSet};
use spothost_market::time::{SimDuration, SimTime, MILLIS_PER_HOUR};
use spothost_market::trace::TraceCursor;
use spothost_market::types::{MarketId, Zone};
use spothost_telemetry::{
    DenialReason, MigrationPhase, NullSink, SchedulerState, Sink, TelemetryEvent,
};
use spothost_virt::{
    lazy_restore, plan_migration, plan_migration_live_aborted, standard_restore, MechanismCombo,
    MigrationContext, MigrationKind, MigrationTiming, RestoreOutcome, VirtParams, VmSpec,
};

/// Cold-boot time of the hosted service from its disk volume under the
/// naive (Figure 3) recovery: OS boot plus application start.
const NAIVE_SERVICE_BOOT: SimDuration = SimDuration(60 * 1000);

/// Scheduler events. Instance ids double as generation tokens: an event
/// whose id no longer matches the current state is stale and ignored.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A requested server reaches its ready time.
    Ready(InstanceId),
    /// Revocation warning for a running spot lease. Carries the provider's
    /// termination time: a fault-delayed warning shrinks the grace window,
    /// so the receiver cannot assume `now + REVOCATION_GRACE`.
    Warning(InstanceId, SimTime),
    /// Forced termination of a revoked lease (warning + grace).
    Terminate(InstanceId),
    /// Unwarned revocation (injected warning-miss fault): the lease dies
    /// right now, with no grace window and no checkpoint flush.
    Died(InstanceId),
    /// Billing-boundary decision point for the active lease.
    Boundary(InstanceId),
    /// A voluntary migration's switchover moment (id = target).
    Switchover(InstanceId),
    /// Service resumes after a forced migration / pure-spot restore
    /// (id = replacement server).
    ResumeDone(InstanceId),
    /// Pure-spot: the market has become affordable again; re-acquire.
    SpotRetry,
    /// Retry an acquisition that failed with an injected provider fault,
    /// after a bounded backoff.
    Reacquire,
    /// A storm episode edge in a zone (telemetry only: the storm's
    /// behavioural effects flow through the provider and the schedule
    /// queries, not through this event).
    StormEdge { zone: Zone, started: bool },
}

/// A running lease the service lives on.
#[derive(Debug, Clone, Copy)]
struct Lease {
    id: InstanceId,
    market: MarketId,
    is_spot: bool,
    start: SimTime,
}

/// A requested server that hasn't been switched to yet.
#[derive(Debug, Clone, Copy)]
struct Pending {
    id: InstanceId,
    market: MarketId,
    is_spot: bool,
    ready_at: SimTime,
}

impl Pending {
    fn into_lease(self) -> Lease {
        Lease {
            id: self.id,
            market: self.market,
            is_spot: self.is_spot,
            start: self.ready_at,
        }
    }
}

#[derive(Debug)]
enum St {
    /// Initial acquisition (no accounting until the service is up).
    Boot {
        target: Option<Pending>,
    },
    Active {
        lease: Lease,
    },
    /// Voluntary migration in progress.
    Migrating {
        from: Lease,
        to: Pending,
        kind: MigrationKind,
        timing: Option<MigrationTiming>,
    },
    /// Forced migration: old server dying (or dead), replacement restoring.
    Evacuating {
        to: Pending,
        degraded: SimDuration,
        /// The market the service is moving off — sizes the restore if the
        /// replacement itself fails and recovery has to start over.
        from_market: MarketId,
        /// Recovery is a cold boot from the disk volume (no usable memory
        /// checkpoint), not a checkpoint restore.
        cold: bool,
    },
    /// Pure-spot: down, waiting for the price to return below the bid.
    DownWaiting {
        cold: bool,
    },
    /// Pure-spot: replacement requested, waiting for boot + restore.
    Restoring {
        target: Pending,
        cold: bool,
    },
    /// Down with acquisition repeatedly faulting; backing off before the
    /// next attempt.
    Reacquiring {
        zone: Zone,
        from_market: MarketId,
        cold: bool,
    },
}

/// A candidate spot market at a moment in time.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    market: MarketId,
    bid: f64,
    /// The aggregate $/hour for the whole service in this market right
    /// now, plus the stability penalty — what selection decisions
    /// compare. Equals the raw rate when `stability_weight` is zero.
    score: f64,
    /// Forecast-predicted P(revocation within the next hour) at `bid`.
    /// `None` unless the adaptive policy's forecaster produced the bid.
    risk: Option<f64>,
    /// The candidate's zone is inside a storm episode right now. Storming
    /// candidates carry a full baseline-rate score surcharge and sort
    /// after every calm candidate, so recovery prefers markets outside
    /// the storming scope.
    storm: bool,
}

/// Per-market online forecaster state for the adaptive policy (`None` on
/// every other policy — the field then adds nothing to the run).
///
/// Entries are aligned index-for-index with `SimRun::candidates`, whose
/// order `MarketScope::candidates` pins canonically, so forecaster state
/// is a deterministic function of (trace set, config) alone.
struct ForecastState<'t> {
    risk_budget: f64,
    per_market: Vec<(TraceCursor<'t>, MarketForecaster)>,
}

/// Outcome of trying to place the service on a spot market.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SpotAttempt {
    /// A server was requested; its `Ready` event is queued.
    Requested,
    /// No candidate is both requestable and attractive right now.
    Unattractive,
    /// Attractive candidates exist but every request hit an injected
    /// capacity fault — retrying on a price-based wakeup would spin.
    Faulted,
}

impl St {
    /// Telemetry label for this state.
    fn label(&self) -> SchedulerState {
        match self {
            St::Boot { .. } => SchedulerState::Boot,
            St::Active { .. } => SchedulerState::Active,
            St::Migrating { .. } => SchedulerState::Migrating,
            St::Evacuating { .. } => SchedulerState::Evacuating,
            St::DownWaiting { .. } => SchedulerState::DownWaiting,
            St::Restoring { .. } => SchedulerState::Restoring,
            St::Reacquiring { .. } => SchedulerState::Reacquiring,
        }
    }
}

/// One simulation run of the scheduler.
///
/// Generic over a telemetry [`Sink`]; the default [`NullSink`] is
/// statically disabled, so every emission site below compiles to nothing
/// and the uninstrumented run is bit-identical to a build without
/// telemetry. Attach a real sink with [`SimRun::with_sink`].
pub struct SimRun<'t, S: Sink = NullSink> {
    provider: CloudProvider<'t>,
    cfg: SchedulerConfig,
    vparams: VirtParams,
    queue: EventQueue<Ev>,
    st: St,
    acc: Accounting,
    horizon: SimTime,
    now: SimTime,
    /// Set while the service is down (downtime interval open end).
    down_since: Option<SimTime>,
    /// Decision lead before billing boundaries.
    lead: SimDuration,
    candidates: Vec<MarketId>,
    baseline_rate: f64,
    /// Mechanism-side fault draws (checkpoint/live/lazy). `None` unless
    /// fault injection is enabled; the provider holds its own plan.
    faults: Option<FaultPlan>,
    /// Correlated-failure storm schedule (a clone of the provider's: the
    /// episode timelines are identical by value, the scheduler uses only
    /// the jitter stream and the provider only the crunch stream, so the
    /// clones never diverge). `None` unless storms are configured.
    storms: Option<StormSchedule>,
    /// Per-zone end of the storm episode in which a capacity fault was
    /// last observed. Market ranking shuns a storming zone only while
    /// `now` is inside this window: a storm becomes evidence against its
    /// zone once it has actually refused capacity, not before. Mild
    /// episodes therefore keep cheap in-zone recovery; crunching ones
    /// push the scheduler toward calm zones until they blow over.
    zone_shunned_until: [SimTime; 4],
    /// Consecutive faulted acquisition attempts (drives the backoff).
    acquire_attempts: u32,
    /// Start of the current continuous `Active` stint. Leaving `Active`
    /// after at least `cfg.stable_backoff_reset` of uptime resets
    /// `acquire_attempts` to the 60 s base; shorter stints keep their
    /// escalated backoff so a brief mid-storm activation cannot re-arm
    /// the thundering herd.
    active_since: Option<SimTime>,
    /// First moment initial acquisition was blocked by a fault, while the
    /// service has never been up. Lets `finish` report a run that never
    /// started as a full outage instead of an empty span.
    boot_blocked_since: Option<SimTime>,
    /// Online per-market forecasters (adaptive policy only).
    forecast: Option<ForecastState<'t>>,
    /// Telemetry sink (the default `NullSink` compiles to nothing).
    sink: S,
}

/// Reusable per-worker scratch state for [`SimRun`]: the event queue's
/// heap allocation and the adaptive policy's forecaster buffers survive
/// from one run to the next instead of being reallocated per run.
///
/// Determinism contract: a run built with [`SimRun::with_scratch`] on
/// previously used scratch is bit-identical to one built on
/// [`SimScratch::new`] — the queue is [`EventQueue::reset`] (heap emptied,
/// tie-breaking sequence counter rewound) and every recycled forecaster is
/// [`MarketForecaster::reset`] to its freshly constructed state. Only
/// allocation capacity carries over, and capacity is not observable.
pub struct SimScratch {
    queue: EventQueue<Ev>,
    forecasters: Vec<MarketForecaster>,
}

impl SimScratch {
    /// Fresh scratch with a pre-sized event queue.
    pub fn new() -> Self {
        SimScratch {
            queue: EventQueue::with_capacity(1024),
            forecasters: Vec::new(),
        }
    }
}

impl Default for SimScratch {
    fn default() -> Self {
        Self::new()
    }
}

// `new` is defined concretely on the `NullSink` instantiation: default
// type parameters don't guide function-call inference, so this is what
// keeps every existing `SimRun::new(..)` call site compiling unchanged.
impl<'t> SimRun<'t, NullSink> {
    /// Build a run over a trace set. Panics if the traces don't cover the
    /// configured scope.
    pub fn new(traces: &'t TraceSet, cfg: &SchedulerConfig, seed: u64) -> Self {
        Self::with_scratch(traces, cfg, seed, SimScratch::new())
    }

    /// [`SimRun::new`] reusing a worker's scratch state. Bit-identical to
    /// `new` (see [`SimScratch`]); pair with [`SimRun::run_reclaim`] to
    /// recover the scratch after the run.
    pub fn with_scratch(
        traces: &'t TraceSet,
        cfg: &SchedulerConfig,
        seed: u64,
        scratch: SimScratch,
    ) -> Self {
        cfg.validate().expect("invalid scheduler config");
        let candidates = cfg.candidates();
        for m in &candidates {
            assert!(
                traces.trace(*m).is_some(),
                "trace set missing candidate market {m}"
            );
        }
        let vparams = cfg.virt_params();
        let horizon = SimTime::ZERO + traces.horizon();
        let baseline_rate = cfg
            .scope
            .baseline_rate(traces.catalog(), cfg.capacity_units);
        let lead = compute_lead(cfg, &vparams, &candidates);
        // Fault plans are split: the provider draws request/startup/warning
        // faults, the scheduler draws mechanism faults. Separate derived
        // seeds keep the two stream families independent. With faults
        // disabled neither side holds a plan, so the zero-fault run is
        // bit-identical to a build without any of this.
        let (mut provider, faults) = if cfg.faults.enabled() {
            let provider_plan =
                FaultPlan::new(cfg.faults.clone(), derive_seed(seed, "faults-provider", 0));
            let mech_plan =
                FaultPlan::new(cfg.faults.clone(), derive_seed(seed, "faults-mechanism", 0));
            (
                CloudProvider::new(traces, seed).with_faults(provider_plan),
                Some(mech_plan),
            )
        } else {
            (CloudProvider::new(traces, seed), None)
        };
        // Storms ride their own seed-derived streams, independent of the
        // fault streams above; a fleet overrides the base seed so every
        // service in it observes the same episode timeline. An effect-free
        // storm config builds no schedule at all — bit-identical to a
        // build without any of this.
        let storms = if cfg.storms.enabled() {
            let base = cfg.storm_seed.unwrap_or(seed);
            let schedule = StormSchedule::new(
                cfg.storms.clone(),
                derive_seed(base, "storms", 0),
                traces.horizon(),
                traces.spike_spans(),
            );
            provider = provider.with_storms(schedule.clone());
            Some(schedule)
        } else {
            None
        };
        let SimScratch {
            mut queue,
            mut forecasters,
        } = scratch;
        queue.reset();
        // Storm episode edges as telemetry events: the storm's behavioural
        // effects flow through provider gates and schedule queries, so
        // these extra queue entries change nothing but the event stream
        // (FIFO tie-breaking keeps same-time ordering of other events).
        if let Some(s) = &storms {
            for zone in cfg.scope.zones() {
                for ep in s.episodes(zone) {
                    if ep.start < SimTime::ZERO + traces.horizon() {
                        queue.push(
                            ep.start,
                            Ev::StormEdge {
                                zone,
                                started: true,
                            },
                        );
                    }
                    if ep.end < SimTime::ZERO + traces.horizon() {
                        queue.push(
                            ep.end,
                            Ev::StormEdge {
                                zone,
                                started: false,
                            },
                        );
                    }
                }
            }
        }
        let forecast = match cfg.policy {
            BiddingPolicy::Adaptive { risk_budget } => Some(ForecastState {
                risk_budget,
                per_market: candidates
                    .iter()
                    .map(|m| {
                        let trace = traces.trace(*m).expect("asserted above");
                        // Recycle a forecaster from the scratch pool when
                        // one is available; reset makes it bit-identical
                        // to a fresh one.
                        let fc = match forecasters.pop() {
                            Some(mut f) => {
                                f.reset(ForecastParams::default());
                                f
                            }
                            None => MarketForecaster::new(ForecastParams::default()),
                        };
                        (trace.cursor(), fc)
                    })
                    .collect(),
            }),
            _ => None,
        };
        SimRun {
            provider,
            cfg: cfg.clone(),
            vparams,
            queue,
            st: St::Boot { target: None },
            acc: Accounting::new(),
            horizon,
            now: SimTime::ZERO,
            down_since: None,
            lead,
            candidates,
            baseline_rate,
            faults,
            storms,
            zone_shunned_until: [SimTime::ZERO; 4],
            acquire_attempts: 0,
            active_since: None,
            boot_blocked_since: None,
            forecast,
            sink: NullSink,
        }
    }
}

impl<'t, S: Sink> SimRun<'t, S> {
    /// Attach a telemetry sink, rebuilding the run at the new sink type.
    /// Sinks implement `Sink` for `&mut S` too, so callers can lend a
    /// recorder and keep it: `.with_sink(&mut recorder)`.
    pub fn with_sink<S2: Sink>(self, sink: S2) -> SimRun<'t, S2> {
        SimRun {
            provider: self.provider,
            cfg: self.cfg,
            vparams: self.vparams,
            queue: self.queue,
            st: self.st,
            acc: self.acc,
            horizon: self.horizon,
            now: self.now,
            down_since: self.down_since,
            lead: self.lead,
            candidates: self.candidates,
            baseline_rate: self.baseline_rate,
            faults: self.faults,
            storms: self.storms,
            zone_shunned_until: self.zone_shunned_until,
            acquire_attempts: self.acquire_attempts,
            active_since: self.active_since,
            boot_blocked_since: self.boot_blocked_since,
            forecast: self.forecast,
            sink,
        }
    }

    /// Replace the startup model (tests use the deterministic one).
    pub fn with_startup_model(mut self, model: StartupModel) -> Self {
        self.provider = self.provider.with_startup_model(model);
        self
    }

    /// Execute the run to the horizon and report.
    pub fn run(self) -> RunReport {
        self.run_reclaim().0
    }

    /// [`SimRun::run`], additionally handing back the run's scratch state
    /// (event-queue heap, forecaster buffers) for reuse by the caller's
    /// next [`SimRun::with_scratch`].
    pub fn run_reclaim(mut self) -> (RunReport, SimScratch) {
        self.begin();
        self.step_until(SimTime::MAX);
        let horizon = self.horizon;
        self.finish_at(horizon)
    }

    // --- incremental stepping (fleet driver) --------------------------------

    /// Shift the run's starting time to `at` before [`SimRun::begin`]: the
    /// initial acquisition happens at `at` against the prices of that
    /// moment, and accounting spans `[at, horizon]`. A fleet autoscaler
    /// uses this to spin up a VM mid-simulation on the shared global
    /// clock, so every scheduler in the fleet observes the same market
    /// history at the same simulated instant.
    ///
    /// Storm-edge telemetry events queued before `at` are dropped (time
    /// must never move backwards); the storm's *behavioural* effects are
    /// query-based and unaffected.
    pub fn with_start(mut self, at: SimTime) -> Self {
        assert!(
            at <= self.horizon,
            "start {at:?} must not pass the horizon {:?}",
            self.horizon
        );
        while let Some(t) = self.queue.peek_time() {
            if t >= at {
                break;
            }
            let _ = self.queue.pop();
        }
        self.now = at;
        self
    }

    /// Start the run: perform the initial acquisition at the current
    /// simulation time. Call exactly once, before any
    /// [`SimRun::step_until`]. ([`SimRun::run_reclaim`] calls it for you.)
    pub fn begin(&mut self) {
        self.initial_acquire();
    }

    /// Advance the run, dispatching every queued event strictly before
    /// `limit`. Returns `true` when the run stopped *at* `limit` (or ran
    /// out of events) and is still live; `false` once it consumed an
    /// event at or past its own horizon — the run is over and the only
    /// valid next call is [`SimRun::finish_at`].
    ///
    /// `step_until(SimTime::MAX)` reproduces the legacy single-VM event
    /// loop exactly, including its terminal quirk: the first event at or
    /// past the horizon is *consumed* (popped, not dispatched) rather
    /// than left queued for the final sweep. The byte-identity of the
    /// whole experiment suite rides on preserving that order, so do not
    /// "fix" it.
    pub fn step_until(&mut self, limit: SimTime) -> bool {
        while let Some(t) = self.queue.peek_time() {
            if t >= limit && t < self.horizon {
                // The next event belongs to a later step window.
                return true;
            }
            let Some((t, ev)) = self.queue.pop() else {
                unreachable!("peek_time saw an event");
            };
            if t >= self.horizon {
                // Run over; the event is consumed, not dispatched (see
                // the doc comment).
                return false;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatch(ev);
        }
        true
    }

    /// Finish the run at `at` (clamped to the configured horizon),
    /// settling every open lease there and reporting as if the run's
    /// horizon had been `at` all along. This is how a fleet autoscaler
    /// releases a VM mid-simulation: the report covers `[start, at]` and
    /// the scratch state is handed back for the next spawned VM.
    ///
    /// `finish_at(horizon)` after draining the queue is exactly the tail
    /// of [`SimRun::run_reclaim`].
    pub fn finish_at(mut self, at: SimTime) -> (RunReport, SimScratch) {
        assert!(at >= self.now, "cannot finish in the past");
        self.horizon = self.horizon.min(at);
        self.finish();
        let report = RunReport::from_accounting(&self.acc, self.horizon, self.baseline_rate);
        let mut queue = self.queue;
        queue.reset();
        let forecasters = self
            .forecast
            .map(|fs| fs.per_market.into_iter().map(|(_, f)| f).collect())
            .unwrap_or_default();
        (report, SimScratch { queue, forecasters })
    }

    /// True while the hosted service is actually up: `Active`, or mid
    /// voluntary migration (the source keeps serving until switchover).
    /// Booting, evacuating, restoring, waiting and backing-off states are
    /// all down. A fleet load balancer routes users only to serving VMs.
    pub fn is_serving(&self) -> bool {
        matches!(self.st, St::Active { .. } | St::Migrating { .. })
    }

    /// Current simulation time of this run.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's horizon (end of the trace set).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Expose the accounting (tests).
    pub fn into_parts(self) -> (Accounting, f64) {
        (self.acc, self.baseline_rate)
    }

    // --- telemetry ----------------------------------------------------------

    /// Emit one event at the current simulation time. Behind the default
    /// `NullSink` the guard is a compile-time `false`: the event
    /// construction at every call site is dead code and disappears.
    #[inline(always)]
    fn emit(&mut self, ev: TelemetryEvent) {
        if S::ENABLED {
            self.sink.emit(self.now, ev);
        }
    }

    /// Move the state machine to `st`, emitting the transition.
    ///
    /// This is the single choke point for `Active` stint tracking: entry
    /// stamps `active_since`, and exit resets the reacquire backoff
    /// ladder only after a stable stint (`cfg.stable_backoff_reset`). A
    /// brief mid-storm activation therefore keeps its escalated backoff
    /// instead of re-arming the thundering herd at the 60 s base.
    fn enter(&mut self, st: St) {
        let was_active = matches!(self.st, St::Active { .. });
        let is_active = matches!(st, St::Active { .. });
        if is_active && !was_active {
            self.active_since = Some(self.now);
        } else if was_active && !is_active {
            if let Some(since) = self.active_since.take() {
                if self.now - since >= self.cfg.stable_backoff_reset {
                    self.acquire_attempts = 0;
                }
            }
        }
        if S::ENABLED {
            self.sink
                .emit(self.now, TelemetryEvent::StateChange { state: st.label() });
        }
        self.st = st;
    }

    /// `provider.request_spot` with bid/grant/denial telemetry.
    /// `predicted_risk` is the forecaster's revocation-probability
    /// estimate behind the bid (adaptive policy only).
    fn request_spot(
        &mut self,
        market: MarketId,
        bid: f64,
        predicted_risk: Option<f64>,
    ) -> Result<(InstanceId, SimTime), RequestError> {
        self.emit(TelemetryEvent::BidPlaced {
            market,
            bid: Some(bid),
            predicted_risk,
        });
        let r = self.provider.request_spot(market, bid, self.now);
        if matches!(r, Err(RequestError::InsufficientCapacity(_))) {
            self.note_capacity_fault(market.zone, self.now);
        }
        if S::ENABLED {
            match &r {
                Ok((id, ready)) => self.emit(TelemetryEvent::LeaseGranted {
                    id: *id,
                    market,
                    spot: true,
                    ready_at: *ready,
                }),
                Err(e) => {
                    if matches!(e, RequestError::InsufficientCapacity(_)) {
                        self.emit(TelemetryEvent::FaultInjected {
                            kind: FaultKind::SpotCapacity,
                        });
                    }
                    self.emit(TelemetryEvent::LeaseDenied {
                        market,
                        spot: true,
                        reason: DenialReason::from(e),
                    });
                }
            }
        }
        r
    }

    /// `provider.request_on_demand` with request/grant/denial telemetry.
    /// `at` may lie in the future (the naive-restart path requests the
    /// replacement only at termination time).
    fn request_on_demand(
        &mut self,
        market: MarketId,
        at: SimTime,
    ) -> Result<(InstanceId, SimTime), RequestError> {
        self.emit(TelemetryEvent::BidPlaced {
            market,
            bid: None,
            predicted_risk: None,
        });
        let r = self.provider.request_on_demand(market, at);
        if matches!(r, Err(RequestError::InsufficientCapacity(_))) {
            self.note_capacity_fault(market.zone, at);
        }
        if S::ENABLED {
            match &r {
                Ok((id, ready)) => self.emit(TelemetryEvent::LeaseGranted {
                    id: *id,
                    market,
                    spot: false,
                    ready_at: *ready,
                }),
                Err(e) => {
                    if matches!(e, RequestError::InsufficientCapacity(_)) {
                        self.emit(TelemetryEvent::FaultInjected {
                            kind: FaultKind::OdCapacity,
                        });
                    }
                    if matches!(e, RequestError::QuotaExhausted(_)) {
                        self.emit(TelemetryEvent::QuotaExhausted { market });
                    }
                    self.emit(TelemetryEvent::LeaseDenied {
                        market,
                        spot: false,
                        reason: DenialReason::from(e),
                    });
                }
            }
        }
        r
    }

    /// A capacity fault observed mid-storm marks the zone as shunned for
    /// the remainder of that episode: market ranking then prefers calm
    /// zones until the storm blows over. Faults outside any episode (or
    /// with storms disabled) leave ranking untouched — ordinary capacity
    /// blips are handled by the backoff ladder, not by fleeing the zone.
    fn note_capacity_fault(&mut self, zone: Zone, at: SimTime) {
        if let Some(end) = self.storms.as_ref().and_then(|s| s.episode_end(zone, at)) {
            let until = &mut self.zone_shunned_until[zone.index()];
            *until = (*until).max(end);
        }
    }

    /// Is the zone inside a storm episode that has refused capacity?
    /// Always false with storms disabled, so every shun-gated behavior
    /// collapses to the storm-free baseline bit-for-bit.
    fn zone_shunned(&self, zone: Zone) -> bool {
        self.now < self.zone_shunned_until[zone.index()]
    }

    /// `provider.activate` with activation telemetry. `doomed` must be
    /// read before activation consumes the doom marker.
    fn activate(&mut self, id: InstanceId, market: MarketId, doomed: bool) -> bool {
        let ok = self.provider.activate(id, self.now);
        if S::ENABLED {
            if ok {
                self.emit(TelemetryEvent::LeaseActivated { id, market });
            } else {
                if doomed {
                    self.emit(TelemetryEvent::FaultInjected {
                        kind: FaultKind::StartupFailure,
                    });
                }
                self.emit(TelemetryEvent::ActivationFailed { id, market, doomed });
            }
        }
        ok
    }

    /// `provider.volume_attach_delay` with fault telemetry.
    fn volume_attach_delay(&mut self) -> SimDuration {
        let d = self.provider.volume_attach_delay();
        if d > SimDuration::ZERO {
            self.emit(TelemetryEvent::FaultInjected {
                kind: FaultKind::VolumeDelay,
            });
        }
        d
    }

    /// Record (and emit) a service outage interval.
    fn add_downtime(&mut self, from: SimTime, to: SimTime) {
        if let Some((start, end)) = self.acc.add_downtime(from, to, self.horizon) {
            self.emit(TelemetryEvent::Outage { start, end });
        }
    }

    /// Record (and emit) a degraded-performance interval.
    fn add_degraded(&mut self, from: SimTime, to: SimTime) {
        if let Some((start, end)) = self.acc.add_degraded(from, to, self.horizon) {
            self.emit(TelemetryEvent::Degraded { start, end });
        }
    }

    // --- helpers -----------------------------------------------------------

    fn n_servers(&self, market: MarketId) -> f64 {
        servers_needed(self.cfg.capacity_units, market.itype) as f64
    }

    fn vm_for(&self, market: MarketId) -> VmSpec {
        VmSpec::for_instance(market.itype)
    }

    fn restore_for(&self, market: MarketId) -> RestoreOutcome {
        let vm = self.vm_for(market);
        if self.cfg.mechanism.lazy_restore {
            lazy_restore(&vm, &self.vparams)
        } else {
            standard_restore(&vm, &self.vparams)
        }
    }

    /// Restore outcome with any injected lazy-restore page-fault storm
    /// applied. Draws from the fault stream only for lazy restores.
    fn restore_with_faults(&mut self, market: MarketId) -> RestoreOutcome {
        self.set_mech_storm_mult(market.zone);
        let base = self.restore_for(market);
        if self.cfg.mechanism.lazy_restore {
            if let Some(f) = &mut self.faults {
                let k = f.lazy_degraded_factor();
                if k != 1.0 {
                    self.emit(TelemetryEvent::FaultInjected {
                        kind: FaultKind::LazyStorm,
                    });
                }
                return base.inflate_degraded(k);
            }
        }
        base
    }

    fn fault_live_aborts(&mut self) -> bool {
        self.faults
            .as_mut()
            .is_some_and(|f| f.live_migration_aborts())
    }

    /// Does the final checkpoint flush fail — because the (possibly
    /// fault-shortened) grace window before `terminate_at` cannot fit it,
    /// or because the write itself faults? Either way recovery degrades to
    /// a cold boot from the disk volume. Never fires in zero-fault runs:
    /// an on-time warning leaves the full grace window, which every
    /// configured flush bound fits.
    fn ckpt_flush_fails(&mut self, terminate_at: SimTime) -> bool {
        let flush = self.vparams.final_ckpt_write();
        let fails = self.now + flush > terminate_at
            || self.faults.as_mut().is_some_and(|f| f.ckpt_write_fails());
        if fails {
            self.acc.ckpt_faults += 1;
            self.emit(TelemetryEvent::FaultInjected {
                kind: FaultKind::CkptWriteFail,
            });
        }
        fails
    }

    /// Bounded exponential backoff between faulted acquisition attempts:
    /// 60 s doubling to a one-hour cap. Guarantees every retry loop makes
    /// real progress toward the horizon even at a 100% fault rate. Under
    /// a storm schedule the delay gains seeded multiplicative jitter so
    /// correlated victims de-synchronise instead of stampeding the
    /// market in lockstep.
    fn retry_after_backoff(&mut self) -> SimDuration {
        let delay = SimDuration::secs(60u64 << self.acquire_attempts.min(6));
        self.acquire_attempts = self.acquire_attempts.saturating_add(1);
        let delay = delay.min(SimDuration::hours(1));
        match &mut self.storms {
            Some(s) => s.jittered_backoff(delay),
            None => delay,
        }
    }

    /// Point the mechanism fault plan's storm multiplier at this zone at
    /// the current moment (no-op without storms or without faults).
    fn set_mech_storm_mult(&mut self, zone: Zone) {
        if let (Some(s), Some(f)) = (&self.storms, &mut self.faults) {
            f.set_storm_multiplier(s.fault_multiplier(zone, self.now));
        }
    }

    /// Shared backoff scheduling for faulted acquisitions: one `Reacquire`
    /// wakeup after the bounded backoff, clamped to the horizon. `from` is
    /// where the backoff starts — now, or a pending termination time when
    /// the failed request was made ahead of the server's death.
    fn schedule_reacquire(&mut self, from: SimTime) {
        let attempt = self.acquire_attempts;
        let at = from + self.retry_after_backoff();
        self.emit(TelemetryEvent::BackoffScheduled { attempt, until: at });
        if at < self.horizon {
            self.queue.push(at, Ev::Reacquire);
        }
    }

    /// Record that initial acquisition is fault-blocked (no-op once the
    /// service has been up, or after the first blockage).
    fn note_boot_blocked(&mut self) {
        if self.acc.service_start.is_none() && self.boot_blocked_since.is_none() {
            self.boot_blocked_since = Some(self.now);
        }
    }

    /// Aggregate on-demand rate of the fallback server in `zone`.
    fn od_rate(&self, zone: spothost_market::types::Zone) -> f64 {
        let m = self
            .cfg
            .scope
            .on_demand_market(zone, self.cfg.capacity_units);
        self.provider.on_demand_price(m) * self.n_servers(m)
    }

    /// Advance every forecaster to the current simulation time, feeding
    /// the price history span `[fed_to, now)` exactly once. Strictly
    /// causal: nothing at or past `now` is ever observed, so the adaptive
    /// policy sees only what a real scheduler could have seen.
    fn feed_forecasters(&mut self) {
        let Some(fs) = &mut self.forecast else {
            return;
        };
        let now = self.now;
        for (cursor, fc) in &mut fs.per_market {
            let from = fc.fed_to();
            if from < now {
                cursor.feed_segments(from, now, |seg| fc.feed(seg));
            }
        }
    }

    /// All spot candidates currently requestable (price at or below the
    /// policy bid), cheapest score first, optionally excluding the current
    /// market. The sort is stable, so ties keep forecast-ranked order
    /// (adaptive: calmer market first) and candidate-list order otherwise.
    fn ranked_spots(&mut self, exclude: Option<MarketId>) -> Vec<Candidate> {
        self.feed_forecasters();
        let catalog = self.provider.traces().catalog();
        let mut ranked = Vec::new();
        for (i, &m) in self.candidates.iter().enumerate() {
            if Some(m) == exclude {
                continue;
            }
            let pon = catalog.on_demand_price(m);
            // Adaptive: per-market forecast decision (cheapest ladder bid
            // within the risk budget). Other policies: the fixed rule.
            let (bid, risk) = match &self.forecast {
                Some(fs) => {
                    let d = fs.per_market[i]
                        .1
                        .decide_bid(pon, catalog.max_bid(m), fs.risk_budget);
                    (Some(d.bid), d.predicted_risk)
                }
                None => (self.cfg.policy.bid(pon, catalog.max_bid(m)), None),
            };
            let Some(bid) = bid else {
                continue;
            };
            let Some(price) = self.provider.spot_price(m, self.now) else {
                continue; // candidates are asserted to have traces in new()
            };
            if price > bid {
                continue; // request would be rejected
            }
            let rate = price * self.n_servers(m);
            // The risk surcharge is applied after the loop: a cold
            // forecaster's missing estimate is priced against the other
            // candidates' measurements, which aren't known until every
            // candidate has been collected.
            // A storming zone is never entered voluntarily: the surcharge
            // pushes its markets above the on-demand bar, so boundary and
            // reverse decisions wait out the episode from wherever the
            // service already is.
            let storm = self
                .storms
                .as_ref()
                .is_some_and(|s| s.is_storming(m.zone, self.now));
            let score = rate
                + self.stability_penalty(m, pon)
                + if storm { self.baseline_rate } else { 0.0 };
            ranked.push(Candidate {
                market: m,
                bid,
                score,
                risk,
                storm,
            });
        }
        // Predicted revocation risk enters the score the same way the
        // stability penalty does: as an effective-rate surcharge, so a
        // calm market beats an equally cheap jittery one. A candidate
        // whose forecaster has no estimate yet must *not* read as
        // risk-free — unknown is not safe — so it is charged a
        // conservative prior: the highest measured risk among its rivals,
        // floored at the risk budget. When no candidate has a measurement
        // (warmup, or no forecaster attached) there is nothing to rank
        // against; the prior stays zero and the scoring is bit-identical
        // to the fixed-policy path.
        let max_measured = ranked
            .iter()
            .filter_map(|c| c.risk)
            .fold(f64::NAN, f64::max);
        let prior = if max_measured.is_nan() {
            0.0
        } else {
            let floor = self.forecast.as_ref().map_or(0.0, |fs| fs.risk_budget);
            max_measured.max(floor)
        };
        for c in &mut ranked {
            c.score += c.risk.unwrap_or(prior) * self.baseline_rate;
        }
        // Forecast-driven pre-ordering (no-op for single-market scopes
        // and whenever no forecaster is attached: every key is then 0).
        // A storming zone is charged a full unit of risk on top of any
        // forecast, so calm zones always pre-rank ahead of storming ones.
        self.cfg.scope.rank_by_risk(&mut ranked, |c| {
            c.risk.unwrap_or(prior) + if c.storm { 1.0 } else { 0.0 }
        });
        ranked.sort_by(|a, b| a.score.total_cmp(&b.score));
        ranked
    }

    /// Cheapest spot candidate currently requestable, optionally excluding
    /// the current market.
    fn best_spot(&mut self, exclude: Option<MarketId>) -> Option<Candidate> {
        self.ranked_spots(exclude).into_iter().next()
    }

    /// Stability-aware penalty on a candidate market (§8 future work):
    /// the observable fraction of the trailing week spent above on-demand
    /// price — a direct revocation-risk proxy — scaled by the baseline
    /// rate and the configured weight. Zero weight = the paper's greedy
    /// cheapest-market selection.
    fn stability_penalty(&self, market: MarketId, pon: f64) -> f64 {
        if self.cfg.stability_weight == 0.0 {
            return 0.0;
        }
        let window = SimDuration::days(7);
        let from = self.now.saturating_sub(window);
        let Some(trace) = self.provider.traces().trace(market) else {
            return 0.0; // candidates are asserted to have traces in new()
        };
        let risk = trace.fraction_above_in(from, self.now, pon);
        self.cfg.stability_weight * self.baseline_rate * risk
    }

    /// Close a lease (idempotent), billing it and recording time shares.
    fn close_lease(&mut self, id: InstanceId, reason: TerminationReason) {
        let Some(inst) = self.provider.instance(id) else {
            return;
        };
        if inst.is_terminated() {
            return;
        }
        let was_pending = matches!(inst.state, InstanceState::Pending { .. });
        let market = inst.market;
        let is_spot = inst.kind.is_spot();
        let start = inst.ready_at;
        let end = if was_pending {
            start
        } else {
            self.now.max(start)
        };
        let charge = self.provider.terminate(id, end, reason);
        let cost = charge * self.n_servers(market);
        self.acc.cost += cost;
        // The settlement event carries the exact aggregate amount added to
        // the run's cost: replaying `lease_closed` in stream order is
        // bit-identical to the accounting sum.
        self.emit(TelemetryEvent::LeaseClosed {
            id,
            market,
            spot: is_spot,
            reason,
            start,
            end,
            cost,
        });
        if !was_pending && end > start {
            let dur = end - start;
            if is_spot {
                self.acc.spot_time += dur;
            } else {
                self.acc.on_demand_time += dur;
            }
        }
    }

    /// Schedule the next billing-boundary decision for a lease, if the
    /// policy makes boundary decisions on this lease kind.
    fn schedule_boundary(&mut self, lease: &Lease) {
        let wanted = if lease.is_spot {
            self.cfg.policy.plans_migrations()
        } else {
            // Reverse migrations happen from on-demand leases.
            self.cfg.policy.uses_spot() && self.cfg.policy.uses_on_demand_fallback()
        };
        if !wanted {
            return;
        }
        // First boundary b = start + k*1h with b - lead strictly in the
        // future.
        let elapsed = (self.now - lease.start).as_millis() + self.lead.as_millis();
        let k = elapsed / MILLIS_PER_HOUR + 1;
        let at = lease.start + SimDuration::millis(k * MILLIS_PER_HOUR) - self.lead;
        if at < self.horizon {
            self.queue.push(at, Ev::Boundary(lease.id));
        }
    }

    /// Schedule the revocation warning for a freshly activated spot lease.
    /// Warning faults surface here: a delayed warning fires late (carrying
    /// the unmoved termination time), a missing warning degenerates to a
    /// bare [`Ev::Died`] at termination.
    fn schedule_warning(&mut self, lease: &Lease) {
        if !lease.is_spot {
            return;
        }
        if let Some(sched) = self.provider.revocation_schedule(lease.id, self.now) {
            self.emit(TelemetryEvent::PriceCrossing {
                id: lease.id,
                market: lease.market,
                at: sched.crossing_at,
            });
            match sched.warning_at {
                Some(at) => {
                    // An on-time warning fires at the crossing; later means
                    // the fault plan delayed it into the grace window.
                    if at > sched.crossing_at {
                        self.emit(TelemetryEvent::FaultInjected {
                            kind: FaultKind::WarningDelay,
                        });
                    }
                    if at < self.horizon {
                        self.queue
                            .push(at, Ev::Warning(lease.id, sched.terminate_at));
                    }
                }
                None => {
                    self.emit(TelemetryEvent::FaultInjected {
                        kind: FaultKind::WarningMiss,
                    });
                    if sched.terminate_at < self.horizon {
                        self.queue.push(sched.terminate_at, Ev::Died(lease.id));
                    }
                }
            }
        }
    }

    fn become_active(&mut self, lease: Lease) {
        let first = self.acc.service_start.is_none();
        if first {
            self.acc.service_start = Some(self.now);
        }
        self.emit(TelemetryEvent::ServiceUp {
            id: lease.id,
            market: lease.market,
            spot: lease.is_spot,
            first,
        });
        self.schedule_warning(&lease);
        self.schedule_boundary(&lease);
        self.enter(St::Active { lease });
    }

    // --- initial acquisition -----------------------------------------------

    fn initial_acquire(&mut self) {
        match self.cfg.policy {
            BiddingPolicy::OnDemandOnly => self.request_initial_od(),
            BiddingPolicy::PureSpot => match self.try_request_initial_spot() {
                SpotAttempt::Requested => {}
                SpotAttempt::Unattractive => self.schedule_spot_retry(),
                // A capacity fault while the price is attractive: a
                // price-based wakeup would fire immediately and spin, so
                // back off in real time instead.
                SpotAttempt::Faulted => self.retry_boot_later(),
            },
            BiddingPolicy::Reactive
            | BiddingPolicy::Proactive { .. }
            | BiddingPolicy::Adaptive { .. } => match self.try_request_initial_spot() {
                SpotAttempt::Requested => {}
                SpotAttempt::Unattractive | SpotAttempt::Faulted => self.request_initial_od(),
            },
        }
    }

    /// Request the cheapest attractive spot market, walking down the
    /// ranking past capacity faults.
    fn try_request_initial_spot(&mut self) -> SpotAttempt {
        let mut faulted = false;
        for c in self.ranked_spots(None) {
            if self.cfg.policy.uses_on_demand_fallback() && c.score >= self.baseline_rate {
                break; // ranked: everything further is unattractive too
            }
            match self.request_spot(c.market, c.bid, c.risk) {
                Ok((id, ready)) => {
                    self.queue.push(ready, Ev::Ready(id));
                    self.enter(St::Boot {
                        target: Some(Pending {
                            id,
                            market: c.market,
                            is_spot: true,
                            ready_at: ready,
                        }),
                    });
                    return SpotAttempt::Requested;
                }
                Err(RequestError::InsufficientCapacity(_)) => {
                    self.acc.request_faults += 1;
                    faulted = true;
                }
                Err(_) => {}
            }
        }
        if faulted {
            SpotAttempt::Faulted
        } else {
            SpotAttempt::Unattractive
        }
    }

    fn request_initial_od(&mut self) {
        let zone = self.cfg.scope.zones()[0];
        let m = self
            .cfg
            .scope
            .on_demand_market(zone, self.cfg.capacity_units);
        match self.request_on_demand(m, self.now) {
            Ok((id, ready)) => {
                self.queue.push(ready, Ev::Ready(id));
                self.enter(St::Boot {
                    target: Some(Pending {
                        id,
                        market: m,
                        is_spot: false,
                        ready_at: ready,
                    }),
                });
            }
            Err(_) => {
                self.acc.request_faults += 1;
                self.retry_boot_later();
            }
        }
    }

    /// Initial acquisition faulted: back off, then retry from scratch.
    fn retry_boot_later(&mut self) {
        self.note_boot_blocked();
        self.schedule_reacquire(self.now);
        self.enter(St::Boot { target: None });
    }

    /// Pure-spot: wake up when the single market becomes affordable.
    fn schedule_spot_retry(&mut self) {
        let m = self.candidates[0];
        let catalog = self.provider.traces().catalog();
        let Some(bid) = self
            .cfg
            .policy
            .bid(catalog.on_demand_price(m), catalog.max_bid(m))
        else {
            return; // non-bidding policies never wait on a spot price
        };
        if let Some(at) = self.provider.next_time_at_or_below(m, self.now, bid) {
            let at = at.max(self.now);
            if at < self.horizon {
                self.queue.push(at, Ev::SpotRetry);
            }
        }
    }

    // --- event dispatch -----------------------------------------------------

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Ready(id) => self.on_ready(id),
            Ev::Warning(id, terminate_at) => self.on_warning(id, terminate_at),
            Ev::Terminate(id) => self.close_lease(id, TerminationReason::Revoked),
            Ev::Died(id) => self.on_died(id),
            Ev::Boundary(id) => self.on_boundary(id),
            Ev::Switchover(id) => self.on_switchover(id),
            Ev::ResumeDone(id) => self.on_resume_done(id),
            Ev::SpotRetry => self.on_spot_retry(),
            Ev::Reacquire => self.on_reacquire(),
            Ev::StormEdge { zone, started } => self.on_storm_edge(zone, started),
        }
    }

    fn on_storm_edge(&mut self, zone: Zone, started: bool) {
        self.emit(if started {
            TelemetryEvent::StormStarted { zone }
        } else {
            TelemetryEvent::StormEnded { zone }
        });
        if started {
            self.storm_evacuation(zone);
        }
    }

    /// Storm-safe evacuation: an episode onset in the active spot lease's
    /// zone is treated as an observable revocation-risk signal (in a real
    /// deployment: zone-wide revocation notices and correlated price
    /// jumps — the same contagion the schedule couples into the traces).
    /// Planning policies evacuate exactly the way they anticipate price
    /// crossings: to the cheapest calm-zone spot market if one is
    /// attractive, else to in-zone on-demand, which mass revocations
    /// never touch. If every escape route fails (capacity crunch, quota),
    /// the lease stays put and takes its chances — recovery then rides
    /// the jittered backoff ladder like any other loss.
    fn storm_evacuation(&mut self, zone: Zone) {
        if !self.cfg.policy.plans_migrations() {
            return; // reactive/naive baselines keep their eyes closed
        }
        let lease = match &self.st {
            St::Active { lease } if lease.is_spot && lease.market.zone == zone => *lease,
            _ => return,
        };
        let target = if self.cfg.policy.uses_on_demand_fallback() {
            // In-zone on-demand: the switchover is minutes, not the tens
            // of minutes a cross-region live migration needs, and a mass
            // revocation mid-migration *reuses* an on-demand pending
            // instead of abandoning it. The move to a calm spot market
            // happens afterwards, from safety, at the next boundary's
            // reverse decision — with the service up during the WAN
            // pre-copy. (The request can still fail to the crunch or the
            // quota; the lease then stays put and rides the storm.)
            None
        } else {
            // Pure-spot: the cheapest calm-zone market, if any.
            let now = self.now;
            let calm = self.ranked_spots(Some(lease.market)).into_iter().find(|c| {
                c.market.zone != zone
                    && self
                        .storms
                        .as_ref()
                        .is_none_or(|s| !s.is_storming(c.market.zone, now))
            });
            match calm {
                Some(c) => Some(c),
                None => return, // nowhere to go: ride the storm
            }
        };
        self.start_voluntary(lease, MigrationKind::Planned, target);
    }

    fn on_ready(&mut self, id: InstanceId) {
        // Whether an activation failure below is an injected startup fault
        // (vs a legitimate spot price rise) — must be read before
        // `activate` consumes the doom marker.
        let doomed = self.provider.is_doomed(id);
        match &self.st {
            St::Boot { target: Some(p) } if p.id == id => {
                let p = *p;
                if self.activate(id, p.market, doomed) {
                    self.become_active(p.into_lease());
                } else {
                    // Spot price rose above the bid during boot, or the
                    // startup was fault-doomed.
                    if doomed {
                        self.acc.request_faults += 1;
                        self.note_boot_blocked();
                    }
                    match self.cfg.policy {
                        BiddingPolicy::PureSpot => {
                            self.enter(St::Boot { target: None });
                            self.schedule_spot_retry();
                        }
                        _ => self.request_initial_od(),
                    }
                }
            }
            St::Migrating { to, .. } if to.id == id => {
                let to = *to;
                if self.activate(id, to.market, doomed) {
                    // Target is up: compute timing and schedule switchover.
                    let (from, kind) = match &self.st {
                        St::Migrating { from, kind, .. } => (*from, *kind),
                        _ => unreachable!("outer match arm guarantees Migrating"),
                    };
                    let ctx = MigrationContext {
                        vm: self.vm_for(from.market),
                        from_region: from.market.zone.region(),
                        to_region: to.market.zone.region(),
                        disk_gib: self.cfg.disk_gib,
                    };
                    let live = self.cfg.mechanism.live && kind.is_voluntary();
                    let mut timing = plan_migration(self.cfg.mechanism, kind, &ctx, &self.vparams);
                    let mut aborted = false;
                    self.set_mech_storm_mult(from.market.zone);
                    if live && self.fault_live_aborts() {
                        // Pre-copy aborted mid-flight: fall back to a
                        // checkpoint restore on the already-booted target.
                        self.acc.live_aborts += 1;
                        aborted = true;
                        self.emit(TelemetryEvent::FaultInjected {
                            kind: FaultKind::LiveAbort,
                        });
                        timing = plan_migration_live_aborted(
                            self.cfg.mechanism,
                            kind,
                            &ctx,
                            &self.vparams,
                        );
                    }
                    if S::ENABLED {
                        let phase = if live && !aborted {
                            MigrationPhase::LivePrecopy
                        } else {
                            MigrationPhase::Prepare
                        };
                        self.emit(TelemetryEvent::MigrationPhase {
                            phase,
                            duration: timing.prepare,
                        });
                    }
                    let sw = self.now + timing.prepare;
                    self.queue.push(sw, Ev::Switchover(id));
                    // Arm the new lease's own revocation warning so a spike
                    // in the target market aborts the migration.
                    let lease = to.into_lease();
                    self.schedule_warning(&lease);
                    self.enter(St::Migrating {
                        from,
                        to,
                        kind,
                        timing: Some(timing),
                    });
                } else {
                    // Target market spiked during boot (or the startup was
                    // fault-doomed): re-target to on-demand in the
                    // *current* zone.
                    let (from, kind) = match &self.st {
                        St::Migrating { from, kind, .. } => (*from, *kind),
                        _ => unreachable!("outer match arm guarantees Migrating"),
                    };
                    self.acc.aborted_migrations += 1;
                    self.emit(TelemetryEvent::MigrationAborted {
                        kind,
                        from: from.market,
                    });
                    if doomed {
                        self.acc.request_faults += 1;
                    }
                    if kind == MigrationKind::Reverse {
                        // We're on on-demand already; just stay.
                        self.enter(St::Active { lease: from });
                        self.schedule_boundary(&from);
                    } else {
                        let m = self
                            .cfg
                            .scope
                            .on_demand_market(from.market.zone, self.cfg.capacity_units);
                        match self.request_on_demand(m, self.now) {
                            Ok((od, ready)) => {
                                self.queue.push(ready, Ev::Ready(od));
                                self.enter(St::Migrating {
                                    from,
                                    to: Pending {
                                        id: od,
                                        market: m,
                                        is_spot: false,
                                        ready_at: ready,
                                    },
                                    kind,
                                    timing: None,
                                });
                            }
                            Err(_) => {
                                // The old server is still up: stay on it
                                // and re-decide at the next boundary.
                                self.acc.request_faults += 1;
                                self.enter(St::Active { lease: from });
                                self.schedule_boundary(&from);
                            }
                        }
                    }
                }
            }
            St::Evacuating {
                to,
                from_market,
                cold,
                ..
            } if to.id == id => {
                let (to, from_market, cold) = (*to, *from_market, *cold);
                if !self.activate(id, to.market, doomed) {
                    // The replacement itself failed to come up (injected
                    // startup fault). Its pending ResumeDone is now stale
                    // (filtered by id); re-acquire immediately — the
                    // service is already down, so there is nothing to wait
                    // for.
                    self.acc.request_faults += 1;
                    self.enter(St::Reacquiring {
                        zone: to.market.zone,
                        from_market,
                        cold,
                    });
                    self.queue.push(self.now, Ev::Reacquire);
                }
            }
            St::Restoring { target, cold } if target.id == id => {
                let (target, cold) = (*target, *cold);
                if self.activate(id, target.market, doomed) {
                    self.schedule_recovery_resume(target, target.market, cold);
                } else {
                    if doomed {
                        self.acc.request_faults += 1;
                    }
                    self.enter(St::DownWaiting { cold });
                    self.schedule_spot_retry();
                }
            }
            _ => { /* stale */ }
        }
    }

    fn on_warning(&mut self, id: InstanceId, terminate_at: SimTime) {
        match &self.st {
            St::Active { lease } if lease.id == id => {
                let lease = *lease;
                self.emit(TelemetryEvent::RevocationWarning {
                    id,
                    market: lease.market,
                    terminate_at,
                });
                self.forced_migration(lease, None, terminate_at);
            }
            St::Migrating { from, to, .. } if from.id == id => {
                // The old server is being revoked mid-migration; the
                // voluntary migration becomes a forced one. Reuse the
                // target if it's an on-demand server.
                let (from, to) = (*from, *to);
                self.emit(TelemetryEvent::RevocationWarning {
                    id,
                    market: from.market,
                    terminate_at,
                });
                let reuse = (!to.is_spot).then_some(to);
                if reuse.is_none() {
                    // Spot target: walk away from it (it would be billed
                    // hourly while we restore onto on-demand anyway).
                    self.close_lease(to.id, TerminationReason::Voluntary);
                }
                self.forced_migration(from, reuse, terminate_at);
            }
            St::Migrating { from, to, kind, .. } if to.id == id => {
                // The *target* market spiked before switchover: abort the
                // migration, let the provider revoke the target (its
                // partial hour is then free), and stay on the old server.
                let (from, to, kind) = (*from, *to, *kind);
                self.emit(TelemetryEvent::RevocationWarning {
                    id,
                    market: to.market,
                    terminate_at,
                });
                self.queue.push(terminate_at, Ev::Terminate(to.id));
                self.acc.aborted_migrations += 1;
                self.emit(TelemetryEvent::MigrationAborted {
                    kind,
                    from: from.market,
                });
                self.enter(St::Active { lease: from });
                self.schedule_boundary(&from);
            }
            _ => { /* stale */ }
        }
    }

    /// An unwarned revocation (injected warning-miss fault): the lease is
    /// gone *now* — no grace window, no final checkpoint flush. Recovery
    /// restores from the last bounded background checkpoint (the image on
    /// the volume is at most the checkpoint bound stale), or cold-boots
    /// under the naive baseline.
    fn on_died(&mut self, id: InstanceId) {
        match &self.st {
            St::Active { lease } if lease.id == id => {
                let lease = *lease;
                self.acc.forced_migrations += 1;
                self.acc.unwarned_revocations += 1;
                self.emit(TelemetryEvent::UnwarnedDeath {
                    id,
                    market: lease.market,
                });
                self.close_lease(id, TerminationReason::Revoked);
                self.down_since = Some(self.now);
                self.unwarned_recover(lease.market);
            }
            St::Migrating { from, to, .. } if from.id == id => {
                let (from, to) = (*from, *to);
                self.acc.forced_migrations += 1;
                self.acc.unwarned_revocations += 1;
                self.emit(TelemetryEvent::UnwarnedDeath {
                    id,
                    market: from.market,
                });
                self.close_lease(id, TerminationReason::Revoked);
                self.down_since = Some(self.now);
                if !to.is_spot {
                    // Reuse the already-requested on-demand target.
                    let cold = self.cfg.naive_restart;
                    self.schedule_recovery_resume(to, from.market, cold);
                } else {
                    self.close_lease(to.id, TerminationReason::Voluntary);
                    self.unwarned_recover(from.market);
                }
            }
            St::Migrating { from, to, kind, .. } if to.id == id => {
                // The migration target died unwarned: abort, stay on the
                // old server.
                let (from, to_market, kind) = (*from, to.market, *kind);
                debug_assert_eq!(to.id, id);
                self.emit(TelemetryEvent::UnwarnedDeath {
                    id,
                    market: to_market,
                });
                self.close_lease(id, TerminationReason::Revoked);
                self.acc.aborted_migrations += 1;
                self.emit(TelemetryEvent::MigrationAborted {
                    kind,
                    from: from.market,
                });
                self.enter(St::Active { lease: from });
                self.schedule_boundary(&from);
            }
            _ => {
                // Stale reference (the service moved off this lease before
                // it died): make sure the provider closes it.
                self.close_lease(id, TerminationReason::Revoked);
            }
        }
    }

    /// Pick a recovery path after an unwarned death while no replacement
    /// exists yet.
    fn unwarned_recover(&mut self, from_market: MarketId) {
        let cold = self.cfg.naive_restart;
        if !self.cfg.policy.uses_on_demand_fallback() {
            self.enter(St::DownWaiting { cold });
            self.schedule_spot_retry();
            return;
        }
        self.try_reacquire(from_market.zone, from_market, cold);
    }

    /// Request an on-demand replacement for a dead lease; on an injected
    /// request fault, back off and retry.
    fn try_reacquire(&mut self, zone: Zone, from_market: MarketId, cold: bool) {
        let m = self
            .cfg
            .scope
            .on_demand_market(zone, self.cfg.capacity_units);
        match self.request_on_demand(m, self.now) {
            Ok((id, ready)) => {
                self.queue.push(ready, Ev::Ready(id));
                let to = Pending {
                    id,
                    market: m,
                    is_spot: false,
                    ready_at: ready,
                };
                self.schedule_recovery_resume(to, from_market, cold);
            }
            Err(_) => {
                self.acc.request_faults += 1;
                self.note_boot_blocked();
                self.schedule_reacquire(self.now);
                self.enter(St::Reacquiring {
                    zone,
                    from_market,
                    cold,
                });
            }
        }
    }

    /// A replacement server is requested (or already up): schedule the
    /// service resume on it and enter `Evacuating`.
    fn schedule_recovery_resume(&mut self, to: Pending, from_market: MarketId, cold: bool) {
        let vol_delay = self.volume_attach_delay();
        let restore_start = to.ready_at.max(self.now) + vol_delay;
        let (latency, degraded) = if cold {
            (NAIVE_SERVICE_BOOT, SimDuration::ZERO)
        } else {
            let r = self.restore_with_faults(from_market);
            (r.resume_latency, r.degraded)
        };
        self.queue
            .push(restore_start + latency, Ev::ResumeDone(to.id));
        self.emit(TelemetryEvent::MigrationStarted {
            kind: MigrationKind::Forced,
            from: from_market,
            to: to.market,
        });
        if S::ENABLED {
            self.emit(TelemetryEvent::MigrationPhase {
                phase: MigrationPhase::Restore,
                duration: latency,
            });
            if degraded > SimDuration::ZERO {
                self.emit(TelemetryEvent::MigrationPhase {
                    phase: MigrationPhase::LazyFaultIn,
                    duration: degraded,
                });
            }
        }
        self.enter(St::Evacuating {
            to,
            degraded,
            from_market,
            cold,
        });
    }

    /// Handle a revocation warning on `lease`: flush the bounded
    /// checkpoint, acquire (or reuse) an on-demand replacement, restore.
    /// `terminate_at` comes from the provider's schedule — a fault-delayed
    /// warning leaves less than the full grace window before it.
    fn forced_migration(&mut self, lease: Lease, reuse: Option<Pending>, terminate_at: SimTime) {
        self.queue.push(terminate_at, Ev::Terminate(lease.id));

        if !self.cfg.policy.uses_on_demand_fallback() {
            // Pure-spot: no replacement. Downtime runs from the suspend
            // until the market comes back and the VM restores.
            let flush = self.vparams.final_ckpt_write();
            self.set_mech_storm_mult(lease.market.zone);
            let cold = self.ckpt_flush_fails(terminate_at);
            if !cold {
                self.emit(TelemetryEvent::MigrationPhase {
                    phase: MigrationPhase::CkptFlush,
                    duration: flush,
                });
            }
            self.down_since = Some(if cold {
                terminate_at
            } else {
                terminate_at.saturating_sub(flush)
            });
            self.acc.forced_migrations += 1;
            self.enter(St::DownWaiting { cold });
            // Try again once the price is back at or below the bid; the
            // earliest sensible moment is after termination.
            let m = lease.market;
            let catalog = self.provider.traces().catalog();
            let Some(bid) = self
                .cfg
                .policy
                .bid(catalog.on_demand_price(m), catalog.max_bid(m))
            else {
                return; // unreachable: spot policies bid
            };
            if let Some(at) = self.provider.next_time_at_or_below(m, terminate_at, bid) {
                if at < self.horizon {
                    self.queue.push(at, Ev::SpotRetry);
                }
            }
            return;
        }

        self.acc.forced_migrations += 1;
        if self.cfg.naive_restart {
            // Figure 3: no checkpoint, no warning handling. The service
            // dies with the server; only then is an on-demand replacement
            // requested, and the service cold-boots from its network disk.
            let m = self
                .cfg
                .scope
                .on_demand_market(lease.market.zone, self.cfg.capacity_units);
            self.down_since = Some(terminate_at);
            match self.request_on_demand(m, terminate_at) {
                Ok((od, ready)) => {
                    self.queue.push(ready, Ev::Ready(od));
                    let resume = ready + NAIVE_SERVICE_BOOT;
                    self.queue.push(resume, Ev::ResumeDone(od));
                    self.emit(TelemetryEvent::MigrationStarted {
                        kind: MigrationKind::Forced,
                        from: lease.market,
                        to: m,
                    });
                    self.emit(TelemetryEvent::MigrationPhase {
                        phase: MigrationPhase::Restore,
                        duration: NAIVE_SERVICE_BOOT,
                    });
                    self.enter(St::Evacuating {
                        to: Pending {
                            id: od,
                            market: m,
                            is_spot: false,
                            ready_at: ready,
                        },
                        degraded: SimDuration::ZERO,
                        from_market: lease.market,
                        cold: true,
                    });
                }
                Err(_) => {
                    self.acc.request_faults += 1;
                    self.schedule_reacquire(terminate_at);
                    self.enter(St::Reacquiring {
                        zone: lease.market.zone,
                        from_market: lease.market,
                        cold: true,
                    });
                }
            }
            return;
        }
        // Checkpoint path. The VM suspends just early enough to flush the
        // final increment before termination — unless the flush fails (or
        // no longer fits a fault-shortened window), in which case the
        // instance runs to termination and recovery cold-boots.
        let flush = self.vparams.final_ckpt_write();
        self.set_mech_storm_mult(lease.market.zone);
        let cold = self.ckpt_flush_fails(terminate_at);
        if !cold {
            self.emit(TelemetryEvent::MigrationPhase {
                phase: MigrationPhase::CkptFlush,
                duration: flush,
            });
        }
        let suspend = if cold {
            terminate_at
        } else {
            terminate_at.saturating_sub(flush)
        };
        self.down_since = Some(suspend);
        let to = match reuse {
            Some(p) => Some(p),
            None => {
                let m = self
                    .cfg
                    .scope
                    .on_demand_market(lease.market.zone, self.cfg.capacity_units);
                match self.request_on_demand(m, self.now) {
                    Ok((od, ready)) => {
                        self.queue.push(ready, Ev::Ready(od));
                        Some(Pending {
                            id: od,
                            market: m,
                            is_spot: false,
                            ready_at: ready,
                        })
                    }
                    Err(_) => {
                        self.acc.request_faults += 1;
                        // Storm-aware fallback: when the refusal is storm
                        // backpressure (the zone's episode has demonstrably
                        // crunched — the request above just marked it), a
                        // backoff window is pure downtime the service need
                        // not pay. Grab a spot server wherever capacity
                        // remains; ranking shuns the crunched zone, so calm
                        // markets come first. Ordinary fault blips keep the
                        // plain backoff ladder below.
                        if self.zone_shunned(lease.market.zone) && self.cfg.policy.uses_spot() {
                            self.try_acquire_any_spot()
                        } else {
                            None
                        }
                    }
                }
            }
        };
        match to {
            Some(to) => {
                // Downtime: [suspend, restore-finished). The restore starts
                // once the replacement is up, the old server has
                // terminated, and the checkpoint volume is attached.
                let vol_delay = self.volume_attach_delay();
                let restore_start = to.ready_at.max(terminate_at) + vol_delay;
                let (latency, degraded) = if cold {
                    (NAIVE_SERVICE_BOOT, SimDuration::ZERO)
                } else {
                    let r = self.restore_with_faults(lease.market);
                    (r.resume_latency, r.degraded)
                };
                self.queue
                    .push(restore_start + latency, Ev::ResumeDone(to.id));
                self.emit(TelemetryEvent::MigrationStarted {
                    kind: MigrationKind::Forced,
                    from: lease.market,
                    to: to.market,
                });
                if S::ENABLED {
                    self.emit(TelemetryEvent::MigrationPhase {
                        phase: MigrationPhase::Restore,
                        duration: latency,
                    });
                    if degraded > SimDuration::ZERO {
                        self.emit(TelemetryEvent::MigrationPhase {
                            phase: MigrationPhase::LazyFaultIn,
                            duration: degraded,
                        });
                    }
                }
                self.enter(St::Evacuating {
                    to,
                    degraded,
                    from_market: lease.market,
                    cold,
                });
            }
            None => {
                self.schedule_reacquire(terminate_at);
                self.enter(St::Reacquiring {
                    zone: lease.market.zone,
                    from_market: lease.market,
                    cold,
                });
            }
        }
    }

    fn on_boundary(&mut self, id: InstanceId) {
        let lease = match &self.st {
            St::Active { lease } if lease.id == id => *lease,
            _ => return, // stale
        };
        // Keep the lease's billing meter caught up: every instance-hour that
        // has completed by now is charged here, so settlement at close only
        // ever handles the final partial hour.
        self.provider.advance_billing(id, self.now);
        if lease.is_spot {
            self.spot_boundary_decision(lease);
        } else {
            self.od_boundary_decision(lease);
        }
    }

    /// §3.1 planned migration, evaluated `lead` before the billing boundary.
    fn spot_boundary_decision(&mut self, lease: Lease) {
        debug_assert!(self.cfg.policy.plans_migrations());
        let Some(price) = self.provider.spot_price(lease.market, self.now) else {
            // Unreachable (the lease's market has a trace); keep the lease
            // running and re-decide next boundary rather than panic.
            self.schedule_boundary(&lease);
            return;
        };
        let current_rate = price * self.n_servers(lease.market);
        let pon_current = self
            .provider
            .traces()
            .catalog()
            .on_demand_price(lease.market);
        // Stability-aware: the occupied market's own risk counts too, so a
        // risky-but-cheap market can be left for a calm one.
        let current_score = current_rate + self.stability_penalty(lease.market, pon_current);
        let od = self.od_rate(lease.market.zone);
        let best = self.best_spot(Some(lease.market));

        if current_rate >= od {
            // Must leave: cheapest attractive spot market, else on-demand.
            match best.filter(|b| b.score < self.od_rate(b.market.zone)) {
                Some(b) => self.start_voluntary(lease, MigrationKind::Planned, Some(b)),
                None => self.start_voluntary(lease, MigrationKind::Planned, None),
            }
        } else if let Some(b) =
            best.filter(|b| b.score < current_score * (1.0 - self.cfg.hop_margin))
        {
            // Hop to a clearly better market (multi-market/multi-region
            // greedy step; "better" includes the stability penalty).
            self.start_voluntary(lease, MigrationKind::Planned, Some(b));
        } else {
            self.schedule_boundary(&lease);
        }
    }

    /// §3.1 reverse migration from an on-demand lease.
    fn od_boundary_decision(&mut self, lease: Lease) {
        let od = self.od_rate(lease.market.zone);
        match self.best_spot(None).filter(|b| b.score < od) {
            Some(b) => self.start_voluntary(lease, MigrationKind::Reverse, Some(b)),
            None => self.schedule_boundary(&lease),
        }
    }

    /// One spot request; `Err(true)` means an injected capacity fault,
    /// `Err(false)` any other rejection (price moved under us).
    fn try_spot_request(&mut self, c: Candidate) -> Result<Pending, bool> {
        match self.request_spot(c.market, c.bid, c.risk) {
            Ok((id, ready)) => {
                self.queue.push(ready, Ev::Ready(id));
                Ok(Pending {
                    id,
                    market: c.market,
                    is_spot: true,
                    ready_at: ready,
                })
            }
            Err(RequestError::InsufficientCapacity(_)) => {
                self.acc.request_faults += 1;
                Err(true)
            }
            Err(_) => Err(false),
        }
    }

    /// Request the chosen voluntary-migration target; on a capacity fault,
    /// fall through the remaining attractive markets cheapest-first.
    fn request_voluntary_spot(&mut self, from: &Lease, c: Candidate) -> Option<Pending> {
        match self.try_spot_request(c) {
            Ok(p) => Some(p),
            Err(false) => None,
            Err(true) => {
                let first = c.market;
                let exclude = from.is_spot.then_some(from.market);
                for cand in self.ranked_spots(exclude) {
                    if cand.market == first {
                        continue;
                    }
                    // Still require each fallback to beat its zone's
                    // on-demand rate — otherwise staying put (or the
                    // caller's on-demand plan) is the better move.
                    if cand.score >= self.od_rate(cand.market.zone) {
                        continue;
                    }
                    match self.try_spot_request(cand) {
                        Ok(p) => return Some(p),
                        Err(_) => continue,
                    }
                }
                None
            }
        }
    }

    /// Kick off a voluntary migration to a spot candidate (or on-demand if
    /// `target` is `None`).
    fn start_voluntary(&mut self, from: Lease, kind: MigrationKind, target: Option<Candidate>) {
        let to = match target {
            Some(c) => match self.request_voluntary_spot(&from, c) {
                Some(p) => p,
                None => {
                    // Price moved between decision and request, or every
                    // candidate hit a capacity fault: stay put and
                    // re-decide at the next boundary.
                    self.schedule_boundary(&from);
                    return;
                }
            },
            None => {
                let m = self
                    .cfg
                    .scope
                    .on_demand_market(from.market.zone, self.cfg.capacity_units);
                match self.request_on_demand(m, self.now) {
                    Ok((id, ready)) => {
                        self.queue.push(ready, Ev::Ready(id));
                        Pending {
                            id,
                            market: m,
                            is_spot: false,
                            ready_at: ready,
                        }
                    }
                    Err(_) => {
                        // The current server still runs; losing the planned
                        // move costs money, not availability.
                        self.acc.request_faults += 1;
                        self.schedule_boundary(&from);
                        return;
                    }
                }
            }
        };
        self.emit(TelemetryEvent::MigrationStarted {
            kind,
            from: from.market,
            to: to.market,
        });
        self.enter(St::Migrating {
            from,
            to,
            kind,
            timing: None,
        });
    }

    fn on_switchover(&mut self, target_id: InstanceId) {
        let (from, to, kind, timing) = match &self.st {
            St::Migrating {
                from,
                to,
                kind,
                timing: Some(t),
            } if to.id == target_id => (*from, *to, *kind, *t),
            _ => return, // stale (migration superseded or aborted)
        };
        // Account the switchover outage and any degraded tail.
        let down_end = self.now + timing.downtime;
        self.add_downtime(self.now, down_end);
        self.add_degraded(down_end, down_end + timing.degraded);
        match kind {
            MigrationKind::Planned => self.acc.planned_migrations += 1,
            MigrationKind::Reverse => self.acc.reverse_migrations += 1,
            MigrationKind::Forced => unreachable!("forced moves don't switch over here"),
        }
        self.emit(TelemetryEvent::MigrationCompleted {
            kind,
            from: from.market,
            to: to.market,
            downtime: timing.downtime,
            degraded: timing.degraded,
        });
        // Release the old server; voluntary, so the started hour is billed.
        self.close_lease(from.id, TerminationReason::Voluntary);
        // The new lease has been running (and billing) since its ready
        // time; its warning was armed at activation.
        let lease = to.into_lease();
        self.schedule_boundary(&lease);
        let first = self.acc.service_start.is_none();
        if first {
            self.acc.service_start = Some(self.now);
        }
        self.emit(TelemetryEvent::ServiceUp {
            id: lease.id,
            market: lease.market,
            spot: lease.is_spot,
            first,
        });
        self.enter(St::Active { lease });
    }

    fn on_resume_done(&mut self, id: InstanceId) {
        match &self.st {
            St::Evacuating {
                to,
                degraded,
                from_market,
                ..
            } if to.id == id => {
                let (to, degraded, from_market) = (*to, *degraded, *from_market);
                let since = self.down_since.take();
                if let Some(s) = since {
                    self.add_downtime(s, self.now);
                }
                self.add_degraded(self.now, self.now + degraded);
                if S::ENABLED {
                    let downtime = since.map_or(SimDuration::ZERO, |s| self.now - s);
                    self.emit(TelemetryEvent::MigrationCompleted {
                        kind: MigrationKind::Forced,
                        from: from_market,
                        to: to.market,
                        downtime,
                        degraded,
                    });
                }
                self.become_active(to.into_lease());
            }
            _ => { /* stale */ }
        }
    }

    fn on_spot_retry(&mut self) {
        // Only meaningful while down (pure-spot) or still booting.
        let booting = matches!(self.st, St::Boot { target: None });
        let (waiting, cold) = match self.st {
            St::DownWaiting { cold } => (true, cold),
            _ => (false, false),
        };
        if !booting && !waiting {
            return;
        }
        let Some(best) = self.best_spot(None) else {
            self.schedule_spot_retry();
            return;
        };
        match self.request_spot(best.market, best.bid, best.risk) {
            Ok((id, ready)) => {
                let pending = Pending {
                    id,
                    market: best.market,
                    is_spot: true,
                    ready_at: ready,
                };
                self.queue.push(ready, Ev::Ready(id));
                if booting {
                    self.enter(St::Boot {
                        target: Some(pending),
                    });
                } else {
                    self.enter(St::Restoring {
                        target: pending,
                        cold,
                    });
                }
            }
            Err(RequestError::InsufficientCapacity(_)) => {
                // Capacity fault while the price is attractive: a
                // price-based wakeup would fire right now again, so back
                // off in real time.
                self.acc.request_faults += 1;
                if booting {
                    self.note_boot_blocked();
                }
                let attempt = self.acquire_attempts;
                let at = self.now + self.retry_after_backoff();
                self.emit(TelemetryEvent::BackoffScheduled { attempt, until: at });
                if at < self.horizon {
                    self.queue.push(at, Ev::SpotRetry);
                }
            }
            Err(_) => self.schedule_spot_retry(),
        }
    }

    /// Backoff expired after faulted acquisitions: try again. A down
    /// service takes any server it can get — if the policy bids on spot at
    /// all, a currently-affordable spot market beats staying down waiting
    /// for on-demand capacity to return.
    fn on_reacquire(&mut self) {
        match &self.st {
            St::Reacquiring {
                zone,
                from_market,
                cold,
            } => {
                let (zone, from_market, cold) = (*zone, *from_market, *cold);
                if self.cfg.policy.uses_spot() {
                    if let Some(pending) = self.try_acquire_any_spot() {
                        self.schedule_recovery_resume(pending, from_market, cold);
                        return;
                    }
                }
                self.try_reacquire(zone, from_market, cold);
            }
            St::Boot { target: None } => self.initial_acquire(),
            _ => { /* stale */ }
        }
    }

    /// Grab any currently requestable spot market, ignoring the on-demand
    /// price comparison — while the service is down, any server beats
    /// none.
    fn try_acquire_any_spot(&mut self) -> Option<Pending> {
        for c in self.ranked_spots(None) {
            match self.try_spot_request(c) {
                Ok(p) => return Some(p),
                Err(_) => continue,
            }
        }
        None
    }

    // --- end of run ---------------------------------------------------------

    fn finish(&mut self) {
        self.now = self.horizon;
        // A service that never came up because acquisition kept faulting
        // is a full outage, not an empty measurement span: report honestly.
        if self.acc.service_start.is_none() {
            if let Some(t0) = self.boot_blocked_since {
                self.acc.service_start = Some(t0);
                self.add_downtime(t0, self.horizon);
            }
        }
        // Close any open downtime interval.
        if let Some(since) = self.down_since.take() {
            self.add_downtime(since, self.horizon);
        }
        // Close all leases the state still references.
        let ids: Vec<(InstanceId, TerminationReason)> = match &self.st {
            St::Boot { target } => target
                .iter()
                .map(|p| (p.id, TerminationReason::Voluntary))
                .collect(),
            St::Active { lease } => vec![(lease.id, TerminationReason::Voluntary)],
            St::Migrating { from, to, .. } => vec![
                (from.id, TerminationReason::Voluntary),
                (to.id, TerminationReason::Voluntary),
            ],
            St::Evacuating { to, .. } => vec![(to.id, TerminationReason::Voluntary)],
            St::Restoring { target, .. } => vec![(target.id, TerminationReason::Voluntary)],
            St::DownWaiting { .. } | St::Reacquiring { .. } => vec![],
        };
        for (id, reason) in ids {
            self.close_lease(id, reason);
        }
        // A revoked lease whose Terminate/Died event lay beyond the
        // horizon is still open in the provider; close_lease above only
        // covers state-referenced servers, and a revoked server is no
        // longer referenced — sweep any remainder through pending events.
        while let Some((_, ev)) = self.queue.pop() {
            if let Ev::Terminate(id) | Ev::Died(id) = ev {
                self.close_lease(id, TerminationReason::Revoked);
            }
        }
    }
}

/// Decision lead before billing boundaries: enough time to boot the
/// replacement and run the migration preparation, plus slack, clamped so
/// at least one decision happens per billing hour.
///
/// The prepare bound is the worst case over *all* mechanism combos, not
/// just the configured one, so the decision schedule — and therefore
/// every bidding decision — is identical across mechanisms. Mechanisms
/// must only change downtime, never the cost structure (§5.2's
/// comparison holds the bidding fixed while varying the mechanism).
fn compute_lead(
    cfg: &SchedulerConfig,
    vparams: &VirtParams,
    candidates: &[MarketId],
) -> SimDuration {
    let startup = StartupModel::table1();
    let max_startup = candidates
        .iter()
        .map(|m| startup.spot_mean(m.zone.region()))
        .max()
        .unwrap_or(SimDuration::secs(300));
    // Worst-case preparation across candidate VM sizes and mechanism
    // combos, local moves.
    let max_prepare = candidates
        .iter()
        .flat_map(|m| {
            MechanismCombo::ALL.map(|combo| {
                let ctx = MigrationContext::local(VmSpec::for_instance(m.itype), m.zone.region());
                plan_migration(combo, MigrationKind::Planned, &ctx, vparams).prepare
            })
        })
        .max()
        .unwrap_or(SimDuration::secs(60));
    let lead = max_startup + max_prepare + cfg.lead_slack;
    lead.min(SimDuration::minutes(50))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::MarketScope;
    use spothost_faults::FaultConfig;
    use spothost_market::catalog::Catalog;
    use spothost_market::gen::TraceSet;
    use spothost_market::model::SpotModelParams;
    use spothost_market::types::{InstanceType, Zone};
    use spothost_virt::MechanismCombo;

    fn market() -> MarketId {
        MarketId::new(Zone::UsEast1a, InstanceType::Small)
    }

    /// A quiet trace set: essentially flat at the calm base, no spikes.
    fn quiet_traces(days: u64) -> TraceSet {
        let catalog = Catalog::ec2_2015();
        let mut p = SpotModelParams::default_market();
        p.base_ratio = 0.2;
        p.sigma = 0.02;
        p.spike_rate_per_day = 0.0;
        p.zone_spike_rate_per_day = 0.0;
        p.elevated_base_mult = 1.001;
        TraceSet::generate_with(&catalog, &[(market(), p)], 3, SimDuration::days(days))
    }

    /// A stormy trace set: spikes several times a day, many above 4x.
    fn stormy_traces(days: u64, seed: u64) -> TraceSet {
        let catalog = Catalog::ec2_2015();
        let mut p = SpotModelParams::default_market();
        p.base_ratio = 0.2;
        p.sigma = 0.1;
        p.spike_rate_per_day = 4.0;
        p.spike_pareto_alpha = 0.9; // heavy tail: many spikes above 4x
        p.zone_spike_rate_per_day = 0.0;
        TraceSet::generate_with(&catalog, &[(market(), p)], seed, SimDuration::days(days))
    }

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::single_market(market())
    }

    #[test]
    fn cold_forecast_must_not_outrank_known_low_risk_market() {
        // Regression: `ranked_spots` used to score a forecaster with no
        // estimate yet (`risk == None`) as zero revocation risk, letting
        // an unknown market outrank a known, cheap, low-measured-risk
        // one. A cold forecast must be charged a conservative prior (the
        // max measured rival risk, floored at the risk budget) instead.
        use spothost_market::trace::{PricePoint, PriceTrace, Segment};
        let catalog = Catalog::ec2_2015();
        let a = MarketId::new(Zone::UsEast1a, InstanceType::Small);
        let b = MarketId::new(Zone::UsEast1a, InstanceType::Medium);
        let horizon = SimDuration::days(3);
        let end = SimTime::ZERO + horizon;
        let flat = |price: f64| {
            PriceTrace::new(
                vec![PricePoint {
                    at: SimTime::ZERO,
                    price,
                }],
                end,
            )
        };
        // 2 capacity units: Small runs 2 servers, Medium runs 1. The cold
        // market is marginally cheaper in aggregate ($0.039 vs $0.040).
        let ts = TraceSet::from_traces(&catalog, vec![(a, flat(0.020)), (b, flat(0.039))], horizon);
        let c = SchedulerConfig::multi(MarketScope::MultiMarket(Zone::UsEast1a))
            .with_capacity_units(2)
            .with_policy(BiddingPolicy::Adaptive { risk_budget: 0.05 });
        let mut run = SimRun::new(&ts, &c, 1);
        // Warm only market A's forecaster: two days of calm history gives
        // it a measured (near-zero) risk; B stays cold (`None`).
        let fs = run.forecast.as_mut().expect("adaptive attaches forecast");
        fs.per_market[0].1.feed(Segment {
            start: SimTime::ZERO,
            end: SimTime::ZERO + SimDuration::days(2),
            price: 0.020,
        });
        assert!(fs.per_market[0].1.warmed_up());
        assert!(!fs.per_market[1].1.warmed_up());
        let ranked = run.ranked_spots(None);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].risk.is_some(), "known market must rank first");
        assert_eq!(
            ranked[0].market, a,
            "cold market must not beat the cheap low-measured-risk one"
        );
    }

    #[test]
    fn quiet_market_proactive_stays_on_spot() {
        let ts = quiet_traces(10);
        let report = SimRun::new(&ts, &cfg(), 1)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert_eq!(report.forced_migrations, 0);
        assert_eq!(report.planned_migrations, 0);
        assert!(report.spot_fraction > 0.999, "{}", report.spot_fraction);
        assert_eq!(report.unavailability, 0.0);
        // Normalized cost ~ base ratio 0.2.
        assert!(
            (report.normalized_cost - 0.2).abs() < 0.05,
            "normalized cost {}",
            report.normalized_cost
        );
    }

    #[test]
    fn on_demand_only_costs_baseline() {
        let ts = quiet_traces(10);
        let c = cfg().with_policy(BiddingPolicy::OnDemandOnly);
        let report = SimRun::new(&ts, &c, 1)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert_eq!(report.unavailability, 0.0);
        assert_eq!(report.forced_migrations, 0);
        assert_eq!(report.spot_fraction, 0.0);
        // Rounding the final hour up puts the normalized cost at or just
        // above 1.
        assert!(
            (report.normalized_cost - 1.0).abs() < 0.01,
            "normalized cost {}",
            report.normalized_cost
        );
    }

    #[test]
    fn stormy_market_forces_migrations() {
        let ts = stormy_traces(30, 7);
        let report = SimRun::new(&ts, &cfg(), 7)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(report.forced_migrations > 0, "storms must revoke");
        assert!(report.unavailability > 0.0);
        assert!(
            report.reverse_migrations > 0,
            "service must return to spot after storms"
        );
        assert!(report.normalized_cost < 1.0, "spot still cheaper overall");
    }

    #[test]
    fn stepped_run_is_bit_identical_to_run_reclaim() {
        // The fleet driver advances runs in bounded windows
        // (`begin`/`step_until`/`finish_at`); the window size must never
        // be observable in the report.
        for (ts, seed) in [(stormy_traces(20, 7), 7), (quiet_traces(20), 1)] {
            let whole = SimRun::new(&ts, &cfg(), seed).run();
            let mut run = SimRun::new(&ts, &cfg(), seed);
            run.begin();
            let horizon = run.horizon();
            let mut t = SimTime::ZERO;
            let mut live = true;
            while live && t < horizon {
                t += SimDuration::hours(5);
                live = run.step_until(t);
            }
            if live {
                live = run.step_until(SimTime::MAX);
            }
            assert!(!live || run.now() <= horizon);
            let (stepped, _) = run.finish_at(horizon);
            assert_eq!(whole, stepped, "stepping granularity leaked");
        }
    }

    #[test]
    fn with_start_shifts_the_accounting_span() {
        let ts = quiet_traces(10);
        let start = SimTime::ZERO + SimDuration::days(4);
        let mut run = SimRun::new(&ts, &cfg(), 1)
            .with_startup_model(StartupModel::deterministic())
            .with_start(start);
        run.begin();
        assert!(run.now() >= start);
        run.step_until(SimTime::MAX);
        let horizon = run.horizon();
        let (report, _) = run.finish_at(horizon);
        // The run only spans the last 6 days (minus boot).
        assert!(report.active_span <= SimDuration::days(6));
        assert!(report.active_span >= SimDuration::days(5));
        assert_eq!(report.unavailability, 0.0);
        assert!(report.cost > 0.0);
        // Deterministic: an identical late-started run reports identically.
        let mut again = SimRun::new(&ts, &cfg(), 1)
            .with_startup_model(StartupModel::deterministic())
            .with_start(start);
        again.begin();
        again.step_until(SimTime::MAX);
        assert_eq!(report, again.finish_at(horizon).0);
    }

    #[test]
    fn early_release_settles_open_leases() {
        let ts = quiet_traces(10);
        let release = SimTime::ZERO + SimDuration::days(3);
        let mut run = SimRun::new(&ts, &cfg(), 1).with_startup_model(StartupModel::deterministic());
        run.begin();
        let live = run.step_until(release);
        assert!(live, "run must still be live at an early release point");
        assert!(run.is_serving(), "quiet market keeps the service up");
        let (report, _) = run.finish_at(release);
        // The report covers only the released span, leases settled there.
        assert!(report.active_span <= SimDuration::days(3));
        assert!(report.cost > 0.0);
        let full = SimRun::new(&ts, &cfg(), 1)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(report.cost < full.cost, "3 days must cost less than 10");
    }

    #[test]
    fn reactive_sees_more_forced_migrations_than_proactive() {
        let ts = stormy_traces(30, 11);
        let pro = SimRun::new(&ts, &cfg(), 11)
            .with_startup_model(StartupModel::deterministic())
            .run();
        let rea = SimRun::new(&ts, &cfg().with_policy(BiddingPolicy::Reactive), 11)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(
            rea.forced_migrations > pro.forced_migrations,
            "reactive {} vs proactive {}",
            rea.forced_migrations,
            pro.forced_migrations
        );
        assert!(rea.unavailability > pro.unavailability);
    }

    #[test]
    fn pure_spot_goes_down_during_storms() {
        let ts = stormy_traces(30, 13);
        let report = SimRun::new(&ts, &cfg().with_policy(BiddingPolicy::PureSpot), 13)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert_eq!(report.spot_fraction, 1.0, "pure spot never buys on-demand");
        assert!(
            report.unavailability > 0.001,
            "unavailability {} should be large",
            report.unavailability
        );
        let pro = SimRun::new(&ts, &cfg(), 13)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(report.unavailability > 10.0 * pro.unavailability);
    }

    #[test]
    fn runs_are_deterministic() {
        let ts = stormy_traces(20, 5);
        let a = SimRun::new(&ts, &cfg(), 5).run();
        let b = SimRun::new(&ts, &cfg(), 5).run();
        assert_eq!(a, b);
    }

    #[test]
    fn mechanism_changes_downtime_not_cost_structure() {
        let ts = stormy_traces(30, 17);
        let ckpt = SimRun::new(&ts, &cfg().with_mechanism(MechanismCombo::CKPT), 17)
            .with_startup_model(StartupModel::deterministic())
            .run();
        let lr_live = SimRun::new(&ts, &cfg().with_mechanism(MechanismCombo::CKPT_LR_LIVE), 17)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(
            ckpt.unavailability > lr_live.unavailability,
            "CKPT {} must be worse than CKPT+LR+Live {}",
            ckpt.unavailability,
            lr_live.unavailability
        );
        // Same bidding decisions, so migration counts match.
        assert_eq!(ckpt.forced_migrations, lr_live.forced_migrations);
    }

    #[test]
    fn multi_market_prefers_cheapest() {
        // Two markets in one zone, one clearly cheaper.
        let catalog = Catalog::ec2_2015();
        let zone = Zone::UsEast1a;
        let mk = |t: InstanceType, ratio: f64| {
            let mut p = SpotModelParams::default_market();
            p.base_ratio = ratio;
            p.sigma = 0.02;
            p.spike_rate_per_day = 0.0;
            p.zone_spike_rate_per_day = 0.0;
            p.elevated_base_mult = 1.001;
            (MarketId::new(zone, t), p)
        };
        let models = vec![
            mk(InstanceType::Small, 0.4),
            mk(InstanceType::Medium, 0.1),
            mk(InstanceType::Large, 0.4),
            mk(InstanceType::XLarge, 0.4),
        ];
        let ts = TraceSet::generate_with(&catalog, &models, 3, SimDuration::days(10));
        let c = SchedulerConfig::multi(MarketScope::MultiMarket(zone));
        let report = SimRun::new(&ts, &c, 3)
            .with_startup_model(StartupModel::deterministic())
            .run();
        // Should sit in the 0.1-ratio market almost the whole time.
        assert!(
            report.normalized_cost < 0.2,
            "normalized cost {}",
            report.normalized_cost
        );
    }

    #[test]
    fn proactive_single_market_has_low_unavailability_with_lr_live() {
        let ts = stormy_traces(30, 23);
        let c = cfg().with_mechanism(MechanismCombo::CKPT_LR_LIVE);
        let report = SimRun::new(&ts, &c, 23)
            .with_startup_model(StartupModel::deterministic())
            .run();
        // Even in an extreme storm market, proactive + the full mechanism
        // combo keeps unavailability below a percent.
        assert!(
            report.unavailability < 0.01,
            "unavailability {}",
            report.unavailability
        );
    }

    #[test]
    fn zero_rate_fault_config_is_bit_identical() {
        let ts = stormy_traces(30, 7);
        let base = SimRun::new(&ts, &cfg(), 7).run();
        let zero = SimRun::new(&ts, &cfg().with_faults(FaultConfig::uniform(0.0)), 7).run();
        assert_eq!(base, zero);
        assert_eq!(base.request_faults, 0);
        assert_eq!(base.unwarned_revocations, 0);
        assert_eq!(base.ckpt_faults, 0);
        assert_eq!(base.live_aborts, 0);
    }

    #[test]
    fn full_od_request_failure_terminates_and_reports_outage() {
        // Acceptance check: at a 100% on-demand request-failure rate the
        // run must terminate cleanly and report the whole horizon as an
        // outage — no panic, no hang, no empty span.
        let ts = quiet_traces(10);
        let mut f = FaultConfig::none();
        f.od_capacity_rate = 1.0;
        let c = cfg()
            .with_policy(BiddingPolicy::OnDemandOnly)
            .with_faults(f);
        let report = SimRun::new(&ts, &c, 1)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(
            (report.unavailability - 1.0).abs() < 1e-9,
            "unavailability {}",
            report.unavailability
        );
        assert!(report.request_faults > 0);
        assert_eq!(report.cost, 0.0);
        assert_eq!(report.active_span, SimDuration::days(10));
    }

    #[test]
    fn missing_warnings_cause_unwarned_downtime() {
        let ts = stormy_traces(30, 7);
        let mut f = FaultConfig::none();
        f.warning_miss_rate = 1.0;
        let faulty = SimRun::new(&ts, &cfg().with_faults(f), 7)
            .with_startup_model(StartupModel::deterministic())
            .run();
        let clean = SimRun::new(&ts, &cfg(), 7)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert!(faulty.unwarned_revocations > 0);
        assert_eq!(faulty.unwarned_revocations, faulty.forced_migrations);
        // No warning means no grace window: every recovery starts from the
        // kill, so unavailability can only be worse.
        assert!(
            faulty.unavailability > clean.unavailability,
            "faulty {} vs clean {}",
            faulty.unavailability,
            clean.unavailability
        );
        // The checkpoint flush path is never reached without a warning.
        assert_eq!(faulty.ckpt_faults, 0);
    }

    #[test]
    fn fault_runs_are_deterministic_and_sane() {
        let ts = stormy_traces(30, 9);
        let c = cfg().with_faults(FaultConfig::uniform(0.2));
        let a = SimRun::new(&ts, &c, 9).run();
        let b = SimRun::new(&ts, &c, 9).run();
        assert_eq!(a, b);
        assert!(a.request_faults > 0);
        assert!(a.downtime <= a.active_span);
        assert!(a.cost.is_finite() && a.cost >= 0.0);
    }

    #[test]
    fn cost_is_positive_and_leases_accounted() {
        let ts = stormy_traces(15, 29);
        let report = SimRun::new(&ts, &cfg(), 29).run();
        assert!(report.cost > 0.0);
        assert!(report.baseline_cost > report.cost);
        assert!(report.active_span > SimDuration::days(14));
        assert!(report.spot_fraction > 0.5);
    }

    #[test]
    fn adaptive_runs_are_deterministic() {
        let ts = stormy_traces(20, 5);
        let c = cfg().with_policy(BiddingPolicy::adaptive_default());
        let a = SimRun::new(&ts, &c, 5).run();
        let b = SimRun::new(&ts, &c, 5).run();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_on_a_quiet_market_matches_proactive_cost() {
        // On a calm trace the forecaster's cheap bids never get revoked,
        // and spot bills the hour-start price either way — so adaptive
        // must land on proactive's cost, not above it.
        let ts = quiet_traces(10);
        let adp = SimRun::new(
            &ts,
            &cfg().with_policy(BiddingPolicy::adaptive_default()),
            1,
        )
        .with_startup_model(StartupModel::deterministic())
        .run();
        let pro = SimRun::new(&ts, &cfg(), 1)
            .with_startup_model(StartupModel::deterministic())
            .run();
        assert_eq!(adp.forced_migrations, 0);
        assert_eq!(adp.unavailability, 0.0);
        assert!(
            (adp.normalized_cost - pro.normalized_cost).abs() < 1e-9,
            "adaptive {} vs proactive {}",
            adp.normalized_cost,
            pro.normalized_cost
        );
    }

    #[test]
    fn adaptive_stays_available_in_storms() {
        let ts = stormy_traces(30, 7);
        let adp = SimRun::new(
            &ts,
            &cfg()
                .with_policy(BiddingPolicy::adaptive_default())
                .with_mechanism(MechanismCombo::CKPT_LR_LIVE),
            7,
        )
        .with_startup_model(StartupModel::deterministic())
        .run();
        // The risk budget keeps revocations rare enough for the same
        // sub-percent availability proactive achieves in this market.
        assert!(
            adp.unavailability < 0.01,
            "unavailability {}",
            adp.unavailability
        );
        assert!(adp.normalized_cost < 1.0, "{}", adp.normalized_cost);
        assert!(adp.spot_fraction > 0.5, "{}", adp.spot_fraction);
    }

    #[test]
    fn adaptive_costs_no_more_than_the_fixed_cap_in_storms() {
        // Paired comparison on the same traces: bidding below the cap
        // cannot raise the price paid (hour-start billing) and revoked
        // partial hours are free, so adaptive's cost must come in at or
        // below proactive k=4, within a small on-demand-fallback margin.
        let mut worse = 0usize;
        for seed in [7u64, 11, 13] {
            let ts = stormy_traces(30, seed);
            let adp = SimRun::new(
                &ts,
                &cfg().with_policy(BiddingPolicy::adaptive_default()),
                seed,
            )
            .with_startup_model(StartupModel::deterministic())
            .run();
            let pro = SimRun::new(&ts, &cfg(), seed)
                .with_startup_model(StartupModel::deterministic())
                .run();
            if adp.normalized_cost > pro.normalized_cost * 1.02 {
                worse += 1;
            }
        }
        assert_eq!(worse, 0, "adaptive must not lose to the fixed cap");
    }

    #[test]
    fn effect_free_storm_config_builds_no_schedule() {
        let ts = stormy_traces(10, 5);
        assert!(!spothost_faults::StormConfig::intensity(0.0).enabled());
        let run = SimRun::new(&ts, &cfg(), 5);
        assert!(run.storms.is_none());
        let run = SimRun::new(
            &ts,
            &cfg().with_storms(spothost_faults::StormConfig::intensity(0.0)),
            5,
        );
        assert!(run.storms.is_none());
    }

    #[test]
    fn zero_intensity_storms_are_bit_identical() {
        // The storm analogue of `zero_rate_fault_config_is_bit_identical`:
        // a zero-intensity config builds no schedule at all, and even a
        // *built* but neutral schedule (no episodes, zero jitter, an
        // unreachable quota) never advances a stream — both runs must be
        // bit-identical to a simulation with no storms configured.
        use spothost_faults::StormConfig;
        let ts = stormy_traces(30, 7);
        let c = cfg().with_faults(FaultConfig::uniform(0.1));
        let base = SimRun::new(&ts, &c, 7).run();
        let zero = SimRun::new(&ts, &c.clone().with_storms(StormConfig::intensity(0.0)), 7).run();
        assert_eq!(base, zero);
        let mut neutral = StormConfig::none();
        neutral.od_quota = 10_000; // enabled() — a schedule IS built
        let built = SimRun::new(&ts, &c.clone().with_storms(neutral), 7).run();
        assert_eq!(base, built);
    }

    #[test]
    fn storm_runs_are_deterministic_and_disruptive() {
        use spothost_faults::StormConfig;
        let ts = stormy_traces(30, 7);
        let c = cfg()
            .with_faults(FaultConfig::uniform(0.05))
            .with_storms(StormConfig::intensity(0.6));
        let a = SimRun::new(&ts, &c, 7).run();
        let b = SimRun::new(&ts, &c, 7).run();
        assert_eq!(a, b);
        let calm = SimRun::new(&ts, &cfg().with_faults(FaultConfig::uniform(0.05)), 7).run();
        // Crunch rejections push the service onto on-demand (fewer spot
        // revocations to migrate from), so migration counts can legally
        // *drop* — the invariant is that downtime and fault pressure rise.
        assert!(
            a.unavailability > calm.unavailability,
            "storm {} vs calm {}",
            a.unavailability,
            calm.unavailability
        );
        assert!(
            a.request_faults > calm.request_faults,
            "the storm multiplier must elevate fault draws: storm {} vs calm {}",
            a.request_faults,
            calm.request_faults
        );
    }

    #[test]
    fn backoff_ladder_resets_only_after_stable_uptime() {
        // Regression: `become_active` used to reset `acquire_attempts`
        // unconditionally, so a lease that survived only seconds mid-storm
        // re-armed the 60 s base backoff and the thundering herd with it.
        // The ladder must persist across short stints and reset only after
        // `stable_backoff_reset` of continuous uptime.
        let ts = quiet_traces(3);
        let c = cfg();
        let mut run = SimRun::new(&ts, &c, 1);
        let lease = Lease {
            id: InstanceId(1),
            market: market(),
            is_spot: true,
            start: SimTime::ZERO,
        };
        run.acquire_attempts = 4;
        run.now = SimTime::hours(1);
        run.enter(St::Active { lease });
        run.now = SimTime::hours(1) + SimDuration::minutes(5);
        run.enter(St::DownWaiting { cold: false });
        assert_eq!(run.acquire_attempts, 4, "short stint must keep the ladder");
        run.now = SimTime::hours(2);
        run.enter(St::Active { lease });
        run.now = SimTime::hours(2) + c.stable_backoff_reset;
        run.enter(St::DownWaiting { cold: false });
        assert_eq!(
            run.acquire_attempts, 0,
            "stable stint must reset the ladder"
        );
    }
}
