//! Run accounting: cost, downtime, migrations, time shares.

use spothost_market::time::{SimDuration, SimTime};

/// Mutable accumulator the scheduler writes into during a run.
#[derive(Debug, Clone, Default)]
pub struct Accounting {
    /// When the service first came up; metrics are measured from here.
    pub service_start: Option<SimTime>,
    /// Total dollars spent across all leases (aggregated over the packed
    /// servers).
    pub cost: f64,
    /// Total service outage.
    pub downtime: SimDuration,
    /// Total degraded-performance time (lazy-restore fault-in windows).
    pub degraded: SimDuration,
    /// Provider-forced migrations (revocations handled).
    pub forced_migrations: u32,
    /// Voluntary planned migrations (spot -> on-demand or spot -> spot).
    pub planned_migrations: u32,
    /// Voluntary reverse migrations (on-demand -> spot).
    pub reverse_migrations: u32,
    /// Planned migrations aborted because the target was revoked while
    /// booting (diagnostic).
    pub aborted_migrations: u32,
    /// Lease time spent on spot servers.
    pub spot_time: SimDuration,
    /// Lease time spent on on-demand servers.
    pub on_demand_time: SimDuration,
    /// Acquisition requests the provider failed (injected capacity faults
    /// or fault-doomed startups). Zero unless fault injection is enabled.
    pub request_faults: u32,
    /// Revocations whose warning never arrived (injected warning-miss
    /// faults): the instance died with no grace window.
    pub unwarned_revocations: u32,
    /// Final checkpoint writes that failed or did not fit the remaining
    /// grace window, forcing a cold restart (injected mechanism faults).
    pub ckpt_faults: u32,
    /// Live migrations aborted mid-pre-copy and downgraded to a
    /// checkpoint/restore (injected mechanism faults).
    pub live_aborts: u32,
}

impl Accounting {
    /// Fresh all-zero accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a service outage `[from, to)`, clamped to the horizon.
    /// Returns the clamped interval actually accumulated (`None` when it
    /// is empty) — the single source of truth telemetry emits from, so an
    /// exported event stream replays to the same downtime total exactly.
    pub fn add_downtime(
        &mut self,
        from: SimTime,
        to: SimTime,
        horizon: SimTime,
    ) -> Option<(SimTime, SimTime)> {
        let from = from.min(horizon);
        let to = to.min(horizon);
        if to > from {
            self.downtime += to - from;
            Some((from, to))
        } else {
            None
        }
    }

    /// Record a degraded window `[from, to)`, clamped to the horizon.
    /// Returns the clamped interval actually accumulated, as
    /// [`Accounting::add_downtime`] does.
    pub fn add_degraded(
        &mut self,
        from: SimTime,
        to: SimTime,
        horizon: SimTime,
    ) -> Option<(SimTime, SimTime)> {
        let from = from.min(horizon);
        let to = to.min(horizon);
        if to > from {
            self.degraded += to - from;
            Some((from, to))
        } else {
            None
        }
    }

    /// The span over which availability is measured.
    pub fn active_span(&self, horizon: SimTime) -> SimDuration {
        match self.service_start {
            Some(s) => horizon.since(s),
            None => SimDuration::ZERO,
        }
    }

    /// Forced + planned + reverse migrations.
    pub fn total_migrations(&self) -> u32 {
        self.forced_migrations + self.planned_migrations + self.reverse_migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downtime_clamps_to_horizon() {
        let mut a = Accounting::new();
        let horizon = SimTime::hours(10);
        let clamped = a.add_downtime(SimTime::hours(9), SimTime::hours(12), horizon);
        assert_eq!(a.downtime, SimDuration::hours(1));
        // The returned interval is the clamped one actually accumulated.
        assert_eq!(clamped, Some((SimTime::hours(9), SimTime::hours(10))));
        // Fully past the horizon: nothing.
        assert_eq!(
            a.add_downtime(SimTime::hours(11), SimTime::hours(12), horizon),
            None
        );
        assert_eq!(a.downtime, SimDuration::hours(1));
        // Inverted interval: nothing.
        assert_eq!(
            a.add_downtime(SimTime::hours(5), SimTime::hours(5), horizon),
            None
        );
        assert_eq!(a.downtime, SimDuration::hours(1));
    }

    #[test]
    fn active_span_needs_service_start() {
        let mut a = Accounting::new();
        assert_eq!(a.active_span(SimTime::hours(5)), SimDuration::ZERO);
        a.service_start = Some(SimTime::hours(1));
        assert_eq!(a.active_span(SimTime::hours(5)), SimDuration::hours(4));
    }

    #[test]
    fn migration_totals() {
        let mut a = Accounting::new();
        a.forced_migrations = 2;
        a.planned_migrations = 3;
        a.reverse_migrations = 4;
        assert_eq!(a.total_migrations(), 9);
    }
}
