//! `trajectory` — record the repo's end-to-end performance trajectory.
//!
//! Runs every experiment in-process (the same work as `repro all`),
//! measures wall-clock and peak RSS, times the two kernel benches
//! (`billing_hot`, `sweep_grid`) with a hand-rolled median, and appends
//! one JSON entry to `BENCH_trajectory.json`. The committed file is the
//! performance history of the codebase, one entry per recorded point.
//!
//! ```text
//! trajectory --label pr6            # full settings, append an entry
//! trajectory --quick --label pr6    # quick settings (CI-sized)
//! trajectory --quick --check        # no write: fail if the quick
//!                                   # wall-clock regressed >20% vs the
//!                                   # last committed quick entry
//! ```

use spothost_bench::{experiments, ExpSettings};
use std::time::Instant;

const DEFAULT_OUT: &str = "BENCH_trajectory.json";
/// `--check` fails when measured wall-clock exceeds baseline by this factor.
const REGRESSION_FACTOR: f64 = 1.2;
/// `--check` fails when attaching a `ColumnarStore` to the small fleet
/// run costs more than this percentage of wall-clock.
const STORE_OVERHEAD_LIMIT_PCT: f64 = 20.0;

/// Peak resident set size (VmHWM) in kB from `/proc/self/status`;
/// 0 where the proc file is unavailable (non-Linux).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Run every experiment (the `repro all` workload) and return the total
/// wall-clock plus the fleet and jobs experiments' own wall-clocks, in
/// seconds. The fleet simulator is the single heaviest experiment and
/// the jobs sweep drives a separate simulator core, so their shares are
/// tracked (and regression-gated) separately from the aggregate.
/// Rendered reports are black-boxed, not printed.
fn run_all_experiments(settings: &ExpSettings) -> (f64, f64, f64) {
    let start = Instant::now();
    let mut fleet_s = 0.0;
    let mut jobs_s = 0.0;
    for (name, _) in experiments::ALL {
        let t0 = Instant::now();
        let out = experiments::run_with_csv(name, settings).expect("known experiment");
        std::hint::black_box(out.0.len());
        match name {
            "fleet" => fleet_s = t0.elapsed().as_secs_f64(),
            "jobs" => jobs_s = t0.elapsed().as_secs_f64(),
            _ => {}
        }
        eprintln!("[{name} done at {:.1}s]", start.elapsed().as_secs_f64());
    }
    (start.elapsed().as_secs_f64(), fleet_s, jobs_s)
}

/// The `billing_hot` meter kernel: settle one long spot lease with hourly
/// `advance_to` calls over a dense 60-day calibrated trace. Median of 15.
fn bench_billing_hot_ns() -> u128 {
    use spothost_cloudsim::billing::SpotLeaseMeter;
    use spothost_market::prelude::*;

    let catalog = Catalog::ec2_2015();
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let traces = TraceSet::generate(&catalog, &[market], 0, SimDuration::days(60));
    let trace = traces.trace(market).expect("trace generated");
    let start = SimTime::minutes(7);
    let end = SimTime::days(59);

    let samples = (0..15)
        .map(|_| {
            let t0 = Instant::now();
            let mut meter = SpotLeaseMeter::new(trace, start);
            let mut t = start;
            while t < end {
                meter.advance_to(t);
                t += SimDuration::hours(1);
            }
            std::hint::black_box(meter.close(end, false));
            t0.elapsed().as_nanos()
        })
        .collect();
    median_ns(samples)
}

/// The `sweep_grid` kernel: the flattened `run_grid` over the scaled-down
/// Figure 6 grid (4 sizes x 2 policies, 4 seeds, 10 days). Median of 5.
fn bench_sweep_grid_ns() -> u128 {
    use spothost_core::prelude::*;
    use spothost_market::prelude::*;

    let mut cfgs = Vec::new();
    for size in InstanceType::ALL {
        let market = MarketId::new(Zone::UsEast1a, size);
        for policy in [BiddingPolicy::Reactive, BiddingPolicy::proactive_default()] {
            cfgs.push(SchedulerConfig::single_market(market).with_policy(policy));
        }
    }
    let horizon = SimDuration::days(10);

    let samples = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            let aggs = run_grid(std::hint::black_box(&cfgs), 0, 4, horizon);
            std::hint::black_box(aggs.iter().map(|a| a.normalized_cost.mean).sum::<f64>());
            t0.elapsed().as_nanos()
        })
        .collect();
    median_ns(samples)
}

/// Columnar-sink overhead on a small fleet run: wall-clock of the same
/// `(config, seed, horizon)` fleet simulation with a `ColumnarStore`
/// factory (writing to a discarding stream) versus the uninstrumented
/// `NullSinkFactory` run, as a percentage. Median of 5 each; alternated
/// so ambient noise hits both sides. The ISSUE's acceptance bar is <10%;
/// `--check` gates at 20% to leave headroom for shared-runner noise.
fn bench_store_overhead_pct() -> f64 {
    use spothost_eventstore::ColumnarStore;
    use spothost_fleet::sim::{run_fleet_sim, run_fleet_sim_with, FleetSimConfig};
    use spothost_market::time::SimDuration;
    use spothost_workload::traffic::TrafficConfig;

    let cfg = FleetSimConfig {
        min_vms: 2,
        max_vms: 12,
        control_interval: SimDuration::minutes(15),
        traffic: TrafficConfig {
            base_users: 600.0,
            ..TrafficConfig::diurnal_default()
        },
        ..FleetSimConfig::default()
    };
    let horizon = SimDuration::days(3);
    // Warm the trace arena so neither side pays generation.
    std::hint::black_box(run_fleet_sim(&cfg, 17, horizon));

    let mut null_ns = Vec::new();
    let mut col_ns = Vec::new();
    for _ in 0..5 {
        let t0 = Instant::now();
        std::hint::black_box(run_fleet_sim(&cfg, 17, horizon));
        null_ns.push(t0.elapsed().as_nanos());

        let store = ColumnarStore::to_writer(Box::new(std::io::sink()));
        let t0 = Instant::now();
        std::hint::black_box(run_fleet_sim_with(&cfg, 17, horizon, store.clone()));
        col_ns.push(t0.elapsed().as_nanos());
        store.finish().expect("discarding writer cannot fail");
    }
    let (null, col) = (median_ns(null_ns) as f64, median_ns(col_ns) as f64);
    100.0 * (col - null) / null
}

/// Render one trajectory entry as a single JSON line (no serde — the
/// schema is flat and the file must stay trivially greppable).
#[allow(clippy::too_many_arguments)]
fn entry_json(
    label: &str,
    mode: &str,
    wall_s: f64,
    fleet_s: f64,
    jobs_s: f64,
    rss_kb: u64,
    bill_ns: u128,
    grid_ns: u128,
    store_pct: f64,
) -> String {
    format!(
        "{{\"label\":\"{}\",\"mode\":\"{}\",\"repro_all_wall_s\":{:.3},\"fleet_wall_s\":{:.3},\"jobs_wall_s\":{:.3},\"peak_rss_kb\":{},\"billing_hot_median_ns\":{},\"sweep_grid_median_ms\":{:.3},\"store_overhead_pct\":{:.2}}}",
        label.replace(['"', '\\'], "_"),
        mode,
        wall_s,
        fleet_s,
        jobs_s,
        rss_kb,
        bill_ns,
        grid_ns as f64 / 1e6,
        store_pct,
    )
}

/// Append an entry to the trajectory file, keeping the format "JSON array,
/// one entry per line" so `--check` can scan it without a JSON parser.
fn append_entry(path: &str, entry: &str) {
    let mut entries: Vec<String> = match std::fs::read_to_string(path) {
        Ok(s) => s
            .lines()
            .map(|l| l.trim().trim_end_matches(',').to_string())
            .filter(|l| !l.is_empty() && l != "[" && l != "]")
            .collect(),
        Err(_) => Vec::new(),
    };
    entries.push(entry.to_string());
    let body = entries.join(",\n");
    std::fs::write(path, format!("[\n{body}\n]\n")).expect("write trajectory file");
}

/// Numeric `field` of the last committed entry for `mode`, scanned
/// textually. `None` when no entry for the mode exists or the entry
/// predates the field (older entries lack `fleet_wall_s`).
fn last_field(path: &str, mode: &str, field: &str) -> Option<f64> {
    let s = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"mode\":\"{mode}\"");
    s.lines()
        .rfind(|l| l.contains(&needle))?
        .split(&format!("\"{field}\":"))
        .nth(1)?
        .split([',', '}'])
        .next()?
        .parse()
        .ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut check = false;
    let mut label = String::from("dev");
    let mut out = String::from(DEFAULT_OUT);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--label" => match it.next() {
                Some(l) => label = l.clone(),
                None => {
                    eprintln!("--label expects a value");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: trajectory [--quick] [--check] [--label L] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let (settings, mode) = if quick {
        (ExpSettings::quick(), "quick")
    } else {
        (ExpSettings::full(), "full")
    };
    eprintln!(
        "trajectory: running all experiments ({mode}: {} seeds x {})",
        settings.seeds, settings.horizon
    );
    let (wall_s, fleet_s, jobs_s) = run_all_experiments(&settings);

    if check {
        // Regression gate only: compare against the committed baseline,
        // skip the kernel benches, write nothing. The aggregate plus the
        // fleet and jobs experiments' own wall-clocks are gated (the
        // per-experiment gates only once a committed entry carries the
        // corresponding field).
        let Some(baseline) = last_field(&out, mode, "repro_all_wall_s") else {
            eprintln!("trajectory --check: no committed {mode} entry in {out}");
            std::process::exit(2);
        };
        let limit = baseline * REGRESSION_FACTOR;
        println!(
            "trajectory --check ({mode}): wall {wall_s:.2}s vs baseline {baseline:.2}s (limit {limit:.2}s)"
        );
        if wall_s > limit {
            eprintln!(
                "FAIL: repro --{mode} all regressed >{:.0}% ({wall_s:.2}s > {limit:.2}s)",
                (REGRESSION_FACTOR - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        if let Some(fleet_base) = last_field(&out, mode, "fleet_wall_s") {
            let fleet_limit = fleet_base * REGRESSION_FACTOR;
            println!(
                "trajectory --check ({mode}): fleet {fleet_s:.2}s vs baseline {fleet_base:.2}s (limit {fleet_limit:.2}s)"
            );
            if fleet_s > fleet_limit {
                eprintln!(
                    "FAIL: fleet experiment regressed >{:.0}% ({fleet_s:.2}s > {fleet_limit:.2}s)",
                    (REGRESSION_FACTOR - 1.0) * 100.0
                );
                std::process::exit(1);
            }
        }
        if let Some(jobs_base) = last_field(&out, mode, "jobs_wall_s") {
            let jobs_limit = jobs_base * REGRESSION_FACTOR;
            println!(
                "trajectory --check ({mode}): jobs {jobs_s:.2}s vs baseline {jobs_base:.2}s (limit {jobs_limit:.2}s)"
            );
            if jobs_s > jobs_limit {
                eprintln!(
                    "FAIL: jobs experiment regressed >{:.0}% ({jobs_s:.2}s > {jobs_limit:.2}s)",
                    (REGRESSION_FACTOR - 1.0) * 100.0
                );
                std::process::exit(1);
            }
        }
        // Columnar-sink overhead is gated absolutely (not vs baseline):
        // instrumentation must stay cheap relative to the simulation.
        let store_pct = bench_store_overhead_pct();
        println!("trajectory --check ({mode}): columnar store overhead {store_pct:.1}% (limit {STORE_OVERHEAD_LIMIT_PCT:.0}%)");
        if store_pct > STORE_OVERHEAD_LIMIT_PCT {
            eprintln!(
                "FAIL: ColumnarStore fleet instrumentation overhead {store_pct:.1}% > {STORE_OVERHEAD_LIMIT_PCT:.0}%"
            );
            std::process::exit(1);
        }
        println!("OK: within budget");
        return;
    }

    eprintln!("trajectory: timing billing_hot kernel");
    let bill_ns = bench_billing_hot_ns();
    eprintln!("trajectory: timing sweep_grid kernel");
    let grid_ns = bench_sweep_grid_ns();
    eprintln!("trajectory: measuring columnar store overhead");
    let store_pct = bench_store_overhead_pct();
    let rss_kb = peak_rss_kb();

    let entry = entry_json(
        &label, mode, wall_s, fleet_s, jobs_s, rss_kb, bill_ns, grid_ns, store_pct,
    );
    append_entry(&out, &entry);
    println!("{entry}");
    println!("[appended to {out}]");
}
