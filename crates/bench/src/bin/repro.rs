//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all             # every experiment, paper-fidelity settings
//! repro fig6 fig7       # selected experiments
//! repro --quick all     # smaller Monte-Carlo settings (CI smoke)
//! repro --list          # list experiment names
//! repro --csv out/ all  # also write CSV artifacts for the figures
//! repro --trace out/ fig6  # also dump one representative seed's
//!                          # telemetry event stream per experiment
//! repro --trace-cap 0 all  # unbounded trace arena (default bounds
//!                          # residency to 64 traces, ~50 MB)
//! ```

use spothost_bench::experiments;
use spothost_bench::ExpSettings;
use std::time::Instant;

/// Default trace-arena residency bound. Seed sweeps walk seeds
/// monotonically, so FIFO eviction keeps only the seeds in flight; 64
/// traces (~50 MB at the 60-day horizon) comfortably covers the widest
/// per-seed market union in the suite while keeping `repro all` flat in
/// memory instead of accumulating every (seed, market) trace generated.
const DEFAULT_TRACE_CAP: u64 = 64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut csv_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut trace_cap = DEFAULT_TRACE_CAP;
    let mut names: Vec<String> = Vec::new();
    let mut args_iter = args.iter().peekable();
    while let Some(a) = args_iter.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--csv" => {
                let Some(dir) = args_iter.next() else {
                    eprintln!("--csv expects a directory");
                    std::process::exit(2);
                };
                csv_dir = Some(dir.clone());
            }
            "--trace" => {
                let Some(dir) = args_iter.next() else {
                    eprintln!("--trace expects a directory");
                    std::process::exit(2);
                };
                trace_dir = Some(dir.clone());
            }
            "--trace-cap" => {
                let cap = args_iter.next().and_then(|v| v.parse().ok());
                let Some(cap) = cap else {
                    eprintln!("--trace-cap expects a trace count (0 = unbounded)");
                    std::process::exit(2);
                };
                trace_cap = cap;
            }
            "--list" => {
                for (name, desc) in experiments::ALL {
                    println!("{name:<12} {desc}");
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!("usage: repro [--quick] [--list] <experiment...|all>");
                return;
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        eprintln!("usage: repro [--quick] [--list] <experiment...|all>");
        eprintln!(
            "experiments: {}",
            experiments::ALL.map(|(n, _)| n).join(", ")
        );
        std::process::exit(2);
    }
    if names.iter().any(|n| n == "all") {
        names = experiments::ALL
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
    }

    let settings = if quick {
        ExpSettings::quick()
    } else {
        ExpSettings::full()
    };
    spothost_market::TraceArena::global().set_trace_capacity(trace_cap);
    println!(
        "spothost repro — seeds {} x horizon {} ({} mode)\n",
        settings.seeds,
        settings.horizon,
        if quick { "quick" } else { "full" }
    );

    let total = Instant::now();
    for name in &names {
        let start = Instant::now();
        match experiments::run_with_csv(name, &settings) {
            Some((report, artifacts)) => {
                println!("{}", "=".repeat(78));
                println!("{report}");
                if let Some(dir) = &csv_dir {
                    std::fs::create_dir_all(dir).expect("create csv dir");
                    for (file, contents) in &artifacts {
                        let path = std::path::Path::new(dir).join(file);
                        std::fs::write(&path, contents).expect("write csv");
                        println!("[wrote {}]", path.display());
                    }
                }
                if let Some(dir) = &trace_dir {
                    if let Some(rec) = experiments::representative_recording(name, &settings) {
                        std::fs::create_dir_all(dir).expect("create trace dir");
                        let path = std::path::Path::new(dir).join(format!("{name}.trace.jsonl"));
                        let mut out = std::io::BufWriter::new(
                            std::fs::File::create(&path).expect("create trace file"),
                        );
                        rec.write_jsonl(&mut out).expect("write trace");
                        println!("[wrote {} ({} events)]", path.display(), rec.len());
                        // The same stream as a columnar store, ready for
                        // `spothost query --store`.
                        let col_path = std::path::Path::new(dir).join(format!("{name}.col"));
                        let store = spothost_eventstore::ColumnarStore::create(&col_path)
                            .expect("create columnar store");
                        let mut sink = store.sink();
                        for &(t, ev) in rec.events() {
                            spothost_core::telemetry::Sink::emit(&mut sink, t, ev);
                        }
                        drop(sink);
                        store.finish().expect("flush columnar store");
                        println!(
                            "[wrote {} ({} blocks)]",
                            col_path.display(),
                            store.blocks_written()
                        );
                    }
                }
                println!("[{name} done in {:.1}s]\n", start.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment '{name}' (try --list)");
                std::process::exit(2);
            }
        }
    }
    println!("total: {:.1}s", total.elapsed().as_secs_f64());
}
