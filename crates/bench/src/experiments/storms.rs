//! Correlated failure storms: unavailability versus storm intensity, per
//! migration-mechanism combo on a single market and per market scope at
//! CKPT LR+Live — the 21st experiment (`repro storms`).
//!
//! The sweep turns one knob, [`spothost_core::StormConfig::intensity`],
//! which scales every storm mechanism together: zone-scoped episode
//! frequency and length, the fault-rate multiplier, mass revocations
//! (every active lease in the zone's markets revoked at once), capacity
//! crunches, and price-spike contagion. A small uniform baseline fault
//! rate gives the storm multiplier something to amplify.
//!
//! Two summaries quantify the paper-level claim that market
//! diversification — not recovery machinery alone — is what survives
//! correlated revocation:
//!
//! * the **four-nines break intensity** per series (first intensity at
//!   which mean unavailability exceeds 0.01%, interpolated), and
//! * the **diversification win**: the trapezoidal area under each scope's
//!   unavailability curve across the sweep, reported as the reduction
//!   relative to single-market hosting.

use crate::settings::ExpSettings;
use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_analysis::stats::{auc, first_sustained_crossing};
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use std::fmt::Write as _;

/// Storm intensities swept ([`StormConfig::intensity`] input). Zero is
/// the storm-free baseline (bit-identical to no schedule at all, which
/// CI guards); 1.0 is a hostile market living a third of its life inside
/// episodes with 10x fault rates and hourly mass revocations.
pub const INTENSITIES: [f64; 6] = [0.0, 0.1, 0.2, 0.4, 0.7, 1.0];

/// Four nines of availability, as an unavailability percentage.
pub const FOUR_NINES_PCT: f64 = 0.01;

/// Baseline uniform fault rate under the sweep — small enough to leave
/// clear headroom under four nines storm-free (so the break point is
/// driven by the storms, not the baseline), large enough that the storm
/// multiplier bites.
pub const BASE_FAULT_RATE: f64 = 0.01;

/// Seed multiplier over [`ExpSettings::seeds`]. A four-nines budget over
/// a quick horizon is ~180 s of downtime per run while one cold forced
/// migration costs ~140 s, so per-seed noise is a large fraction of the
/// bar; the sweep is cheap (the arena shares one trace pool per seed)
/// and buys the extra samples instead of living with the noise.
const SEED_SCALE: u64 = 8;

const SCOPES: [&str; 3] = ["Single market", "Multi-market", "Multi-region"];

fn scope_by_name(name: &str) -> MarketScope {
    match name {
        "Single market" => MarketScope::Single(small()),
        "Multi-market" => MarketScope::MultiMarket(Zone::UsEast1a),
        "Multi-region" => {
            MarketScope::MultiRegion(vec![Zone::UsEast1a, Zone::UsWest1a, Zone::EuWest1a])
        }
        other => unreachable!("unknown scope label {other}"),
    }
}

fn small() -> MarketId {
    MarketId::new(Zone::UsEast1a, InstanceType::Small)
}

#[derive(Debug, Clone)]
pub struct Storms {
    /// Unavailability percent per mechanism combo (single market,
    /// proactive), one value per entry of [`INTENSITIES`].
    pub mech: Vec<(MechanismCombo, Vec<f64>)>,
    /// Unavailability percent per market scope (CKPT LR+Live, one
    /// capacity unit so scope is the only axis), per intensity.
    pub scope: Vec<(&'static str, Vec<f64>)>,
}

pub fn run(settings: &ExpSettings) -> Storms {
    // One flat grid: the single-market rows share one trace per seed, the
    // scope rows share the union pool, and every config at one seed sees
    // the *same* storm timeline (storms derive from the run seed).
    let mech_cfgs = MechanismCombo::ALL.iter().flat_map(|&combo| {
        INTENSITIES.into_iter().map(move |x| {
            SchedulerConfig::single_market(small())
                .with_policy(BiddingPolicy::proactive_default())
                .with_mechanism(combo)
                .with_faults(FaultConfig::uniform(BASE_FAULT_RATE))
                .with_storms(StormConfig::intensity(x))
        })
    });
    let scope_cfgs = SCOPES.iter().flat_map(|name| {
        INTENSITIES.into_iter().map(move |x| {
            SchedulerConfig::multi(scope_by_name(name))
                .with_capacity_units(1)
                .with_policy(BiddingPolicy::proactive_default())
                .with_mechanism(MechanismCombo::CKPT_LR_LIVE)
                .with_faults(FaultConfig::uniform(BASE_FAULT_RATE))
                .with_storms(StormConfig::intensity(x))
        })
    });
    let cfgs: Vec<SchedulerConfig> = mech_cfgs.chain(scope_cfgs).collect();
    let aggs = run_grid(
        &cfgs,
        settings.seed0,
        settings.seeds * SEED_SCALE,
        settings.horizon,
    );

    let mut chunks = aggs.chunks(INTENSITIES.len());
    let mech = MechanismCombo::ALL
        .iter()
        .map(|&combo| {
            let row = chunks.next().expect("one chunk per combo");
            (combo, row.iter().map(|a| a.unavailability_pct()).collect())
        })
        .collect();
    let scope = SCOPES
        .iter()
        .map(|&name| {
            let row = chunks.next().expect("one chunk per scope");
            (name, row.iter().map(|a| a.unavailability_pct()).collect())
        })
        .collect();
    Storms { mech, scope }
}

impl Storms {
    /// Storm intensity past which a series stays above the four-nines
    /// bar for the rest of the sweep, interpolated; `None` if it still
    /// holds at full intensity. Sustained (not first) crossing: a single
    /// noisy sample poking over the bar and dipping back is not a break.
    pub fn break_intensity(pcts: &[f64]) -> Option<f64> {
        first_sustained_crossing(&INTENSITIES, pcts, FOUR_NINES_PCT)
    }

    /// Area under a series' unavailability curve over the sweep — the
    /// scalar the diversification win is computed from.
    pub fn exposure(pcts: &[f64]) -> f64 {
        auc(&INTENSITIES, pcts)
    }

    fn labeled(&self) -> impl Iterator<Item = (String, &Vec<f64>)> {
        let mech = self
            .mech
            .iter()
            .map(|(combo, pcts)| (combo.name().to_string(), pcts));
        let scope = self
            .scope
            .iter()
            .map(|(name, pcts)| (format!("{name} (CKPT LR+Live)"), pcts));
        mech.chain(scope)
    }

    pub fn as_series(&self) -> SeriesSet {
        let mut s = SeriesSet::new(INTENSITIES.iter().map(|x| format!("{x}")));
        for (label, pcts) in self.labeled() {
            s.push(LabeledSeries::new(label, pcts.clone()));
        }
        s
    }

    pub fn to_csv(&self) -> String {
        self.as_series().to_csv()
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "Correlated failure storms: unavailability (%) vs storm intensity\n\
             (mechanism rows: small us-east-1a, proactive; scope rows:\n\
             CKPT LR+Live, one capacity unit; uniform baseline fault rate\n\
             {BASE_FAULT_RATE} amplified by the storm multiplier during episodes)\n\n",
        );
        out.push_str(&self.as_series().to_text(|v| format!("{v:.4}")));
        let _ = writeln!(
            out,
            "\nfour-nines break intensity (unavailability > {FOUR_NINES_PCT}%):"
        );
        for (label, pcts) in self.labeled() {
            match Self::break_intensity(pcts) {
                Some(x) => {
                    let _ = writeln!(out, "  {label:<28} {x:.3}");
                }
                None => {
                    let _ = writeln!(out, "  {label:<28} never (holds through the sweep)");
                }
            }
        }
        let single = Self::exposure(&self.scope[0].1);
        let _ = writeln!(
            out,
            "\ndiversification win (storm exposure = area under the curve):"
        );
        for (name, pcts) in &self.scope {
            let e = Self::exposure(pcts);
            let win = if single > 0.0 {
                100.0 * (1.0 - e / single)
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {name:<16} exposure {e:8.4}   win vs single {win:5.1}%"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Storms {
        run(&ExpSettings::quick())
    }

    #[test]
    fn storms_degrade_availability_and_break_four_nines_on_one_market() {
        let f = fig();
        for (combo, pcts) in &f.mech {
            assert!(
                *pcts.last().unwrap() > pcts[0],
                "{}: full-intensity {} vs storm-free {}",
                combo.name(),
                pcts.last().unwrap(),
                pcts[0]
            );
        }
        let single = &f.scope[0].1;
        assert!(
            Storms::break_intensity(single).is_some(),
            "single-market hosting must break four nines inside the sweep: {single:?}"
        );
    }

    #[test]
    fn diversification_strictly_dominates_single_market_recovery() {
        // The acceptance claim: under correlated revocation, widening the
        // market scope beats staying put — lower total storm exposure AND
        // a strictly later (or never-reached) four-nines break point.
        let f = fig();
        let single = &f.scope[0].1;
        let multi_region = &f.scope[2].1;
        assert!(
            Storms::exposure(multi_region) < Storms::exposure(single),
            "multi-region exposure {} must undercut single-market {}",
            Storms::exposure(multi_region),
            Storms::exposure(single)
        );
        let sb = Storms::break_intensity(single).expect("single breaks");
        match Storms::break_intensity(multi_region) {
            None => {}
            Some(mb) => assert!(mb > sb, "multi-region breaks at {mb}, single at {sb}"),
        }
    }
}
