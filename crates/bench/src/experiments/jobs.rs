//! Deadline batch jobs on spot: $/job, deadline-miss rate, and wasted
//! work across the checkpoint/restart policy ladder — the 23rd
//! experiment (`repro jobs`).
//!
//! Where the hosting experiments keep one always-on service alive, this
//! one schedules a queue of *finite* jobs with deadlines onto the same
//! spot markets (the Voorsluys & Buyya regime the paper's related work
//! cites). Three policies climb a ladder of sophistication:
//!
//! * **greedy-spot** — cheapest bid, restart from scratch on every
//!   revocation;
//! * **checkpoint-spot** — periodic checkpoints at Young's interval,
//!   driven by the forecaster's predicted revocation risk; and
//! * **on-demand-fallback** — checkpointing, plus escalation to
//!   on-demand once remaining slack no longer covers the predicted
//!   restart loss.
//!
//! The sweep crosses the policies with a uniform injected fault rate and
//! with correlated failure storms, and reports per cell the pooled
//! deadline-miss rate, dollars per finished job, and the wasted fraction
//! of compute. The summary break analysis mirrors the four-nines style
//! of `faults`/`storms`: the interpolated fault rate at which each
//! policy's miss rate first exceeds [`MISS_BAR_PCT`].

use crate::settings::ExpSettings;
use spothost_analysis::mc::par_map_chunks;
use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_analysis::stats::first_crossing;
use spothost_core::telemetry::NullSink;
use spothost_faults::{FaultConfig, StormConfig};
use spothost_jobs::{run_jobs_on, JobPolicy, JobsConfig, JobsScratch};
use spothost_market::catalog::Catalog;
use spothost_market::gen::TraceSet;
use std::fmt::Write as _;

/// Uniform per-draw fault rates swept by the experiment (same grid as
/// the `faults` experiment, so break rates are comparable).
pub const RATES: [f64; 7] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];

/// Storm intensities of the calm and stormy halves of the sweep. The
/// stormy half sits past the single-market four-nines break intensity
/// of the `storms` experiment.
pub const STORM_LEVELS: [f64; 2] = [0.0, 0.6];

/// Deadline-miss bar for the break analysis: the fault rate at which a
/// policy first misses more than a quarter of deadlines (the
/// batch-queue analogue of the hosting experiments' four-nines
/// availability bar). The bar sits well above the fault-free queueing
/// baseline (~7–15% of deadlines are missed to queue waits alone), so
/// crossing it is attributable to faults, and the three rungs cross at
/// visibly different rates.
pub const MISS_BAR_PCT: f64 = 25.0;

/// One policy's pooled outcomes across the fault-rate sweep, at one
/// storm intensity. Each vector holds one value per entry of [`RATES`].
#[derive(Debug, Clone)]
pub struct JobsRow {
    /// Storm intensity this row ran under.
    pub storm: f64,
    /// Scheduling policy.
    pub policy: JobPolicy,
    /// Pooled deadline-miss percentage.
    pub miss_pct: Vec<f64>,
    /// Pooled dollars per job.
    pub cost_per_job: Vec<f64>,
    /// Pooled wasted fraction of compute, as a percentage.
    pub wasted_pct: Vec<f64>,
}

impl JobsRow {
    /// Display label, e.g. `"checkpoint-spot, storm"`.
    pub fn label(&self) -> String {
        if self.storm > 0.0 {
            format!("{}, storm", self.policy)
        } else {
            self.policy.to_string()
        }
    }
}

/// The rendered experiment: one row per storm level x policy.
#[derive(Debug, Clone)]
pub struct JobsExp {
    pub rows: Vec<JobsRow>,
    /// Total jobs simulated per cell (all seeds pooled).
    pub jobs_per_cell: u32,
}

/// Per-run tallies pooled across seeds into one sweep cell.
#[derive(Debug, Clone, Copy, Default)]
struct CellTally {
    jobs: u64,
    missed: u64,
    cost: f64,
    useful_ms: u64,
    wasted_ms: u64,
}

impl CellTally {
    fn absorb(&mut self, other: &CellTally) {
        self.jobs += other.jobs;
        self.missed += other.missed;
        self.cost += other.cost;
        self.useful_ms += other.useful_ms;
        self.wasted_ms += other.wasted_ms;
    }

    fn miss_pct(&self) -> f64 {
        100.0 * self.missed as f64 / self.jobs.max(1) as f64
    }

    fn cost_per_job(&self) -> f64 {
        self.cost / self.jobs.max(1) as f64
    }

    fn wasted_pct(&self) -> f64 {
        let total = (self.useful_ms + self.wasted_ms).max(1);
        100.0 * self.wasted_ms as f64 / total as f64
    }
}

fn config_for(policy: JobPolicy, rate: f64, storm: f64) -> JobsConfig {
    let cfg = JobsConfig::new(policy).with_faults(FaultConfig::uniform(rate));
    if storm > 0.0 {
        cfg.with_storms(StormConfig::intensity(storm))
    } else {
        cfg
    }
}

pub fn run(settings: &ExpSettings) -> JobsExp {
    // One flat (config, seed) grid, seed-major within each cell so a
    // chunk of `seeds` runs covers exactly one sweep cell and can share
    // a scratch. Every cell uses the same single market, so the
    // arena-backed traces are generated once per seed for the whole
    // sweep.
    let mut cells = Vec::new();
    for &storm in &STORM_LEVELS {
        for &policy in &JobPolicy::ALL {
            for rate in RATES {
                cells.push(config_for(policy, rate, storm));
            }
        }
    }
    let runs: Vec<(JobsConfig, u64)> = cells
        .iter()
        .flat_map(|cfg| {
            (settings.seed0..settings.seed0 + settings.seeds).map(move |seed| (cfg.clone(), seed))
        })
        .collect();

    let catalog = Catalog::ec2_2015();
    let horizon = settings.horizon;
    let tallies: Vec<CellTally> = par_map_chunks(runs, settings.seeds as usize, |chunk| {
        let mut scratch = JobsScratch::new();
        chunk
            .iter()
            .map(|(cfg, seed)| {
                let traces = TraceSet::generate(&catalog, &[cfg.market], *seed, horizon);
                let run = run_jobs_on(cfg, &traces, *seed, &mut NullSink, &mut scratch);
                let r = &run.report;
                CellTally {
                    jobs: u64::from(r.jobs),
                    missed: u64::from(r.missed),
                    cost: r.total_cost,
                    useful_ms: r.useful.as_millis(),
                    wasted_ms: r.wasted.as_millis(),
                }
            })
            .collect()
    });

    let mut pooled = tallies.chunks(settings.seeds as usize).map(|per_seed| {
        let mut cell = CellTally::default();
        for t in per_seed {
            cell.absorb(t);
        }
        cell
    });

    let mut rows = Vec::new();
    let mut jobs_per_cell = 0u32;
    for &storm in &STORM_LEVELS {
        for &policy in &JobPolicy::ALL {
            let mut miss_pct = Vec::with_capacity(RATES.len());
            let mut cost_per_job = Vec::with_capacity(RATES.len());
            let mut wasted_pct = Vec::with_capacity(RATES.len());
            for _ in RATES {
                let cell = pooled.next().expect("one pooled cell per rate");
                jobs_per_cell = cell.jobs as u32;
                miss_pct.push(cell.miss_pct());
                cost_per_job.push(cell.cost_per_job());
                wasted_pct.push(cell.wasted_pct());
            }
            rows.push(JobsRow {
                storm,
                policy,
                miss_pct,
                cost_per_job,
                wasted_pct,
            });
        }
    }
    JobsExp {
        rows,
        jobs_per_cell,
    }
}

impl JobsExp {
    /// Fault rate at which a row's miss rate first exceeds the
    /// [`MISS_BAR_PCT`] bar, linearly interpolated; `None` if it holds
    /// across the whole sweep.
    pub fn break_rate(miss_pcts: &[f64]) -> Option<f64> {
        first_crossing(&RATES, miss_pcts, MISS_BAR_PCT)
    }

    /// The row for one (storm, policy) cell.
    pub fn row(&self, storm: f64, policy: JobPolicy) -> &JobsRow {
        self.rows
            .iter()
            .find(|r| r.storm == storm && r.policy == policy)
            .expect("every storm x policy cell has a row")
    }

    fn series(&self, metric: impl Fn(&JobsRow) -> &Vec<f64>) -> SeriesSet {
        let mut s = SeriesSet::new(RATES.iter().map(|r| format!("{r}")));
        for row in &self.rows {
            s.push(LabeledSeries::new(row.label(), metric(row).clone()));
        }
        s
    }

    pub fn to_csv(&self) -> String {
        let mut out = String::from("storm,policy,fault_rate,miss_pct,cost_per_job,wasted_pct\n");
        for row in &self.rows {
            for (i, rate) in RATES.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{},{},{:.4},{:.6},{:.4}",
                    row.storm,
                    row.policy,
                    rate,
                    row.miss_pct[i],
                    row.cost_per_job[i],
                    row.wasted_pct[i],
                );
            }
        }
        out
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "Deadline batch jobs on spot (large, us-east-1a; {} jobs per cell):\n\
             policy ladder x uniform fault rate, calm and storm-0.6 halves\n\n\
             deadline misses (%) vs fault rate:\n",
            self.jobs_per_cell,
        );
        out.push_str(&self.series(|r| &r.miss_pct).to_text(|v| format!("{v:.2}")));
        out.push_str("\ndollars per job vs fault rate:\n");
        out.push_str(
            &self
                .series(|r| &r.cost_per_job)
                .to_text(|v| format!("{v:.3}")),
        );
        out.push_str("\nwasted compute (%) vs fault rate:\n");
        out.push_str(
            &self
                .series(|r| &r.wasted_pct)
                .to_text(|v| format!("{v:.2}")),
        );
        let _ = writeln!(
            out,
            "\nmiss-rate break point (misses > {MISS_BAR_PCT}% of deadlines):"
        );
        for row in &self.rows {
            match Self::break_rate(&row.miss_pct) {
                Some(r) => {
                    let _ = writeln!(out, "  {:<28} {r:.3}", row.label());
                }
                None => {
                    let _ = writeln!(out, "  {:<28} never (holds through the sweep)", row.label());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> JobsExp {
        run(&ExpSettings::quick())
    }

    /// Sum of a row's metric over an index range of [`RATES`].
    fn pooled(
        row: &JobsRow,
        metric: impl Fn(&JobsRow) -> &Vec<f64>,
        idx: std::ops::Range<usize>,
    ) -> f64 {
        metric(row)[idx].iter().sum()
    }

    #[test]
    fn fallback_misses_fewer_deadlines_than_greedy_under_faults() {
        // The acceptance bar: at nonzero fault rates (excluding the
        // saturated 1.0 endpoint where nothing ever boots), escalating
        // to on-demand strictly beats restart-from-scratch on misses.
        let e = exp();
        for &storm in &STORM_LEVELS {
            let greedy = pooled(e.row(storm, JobPolicy::GreedySpot), |r| &r.miss_pct, 1..6);
            let fallback = pooled(
                e.row(storm, JobPolicy::OnDemandFallback),
                |r| &r.miss_pct,
                1..6,
            );
            assert!(
                fallback < greedy,
                "storm {storm}: fallback pooled miss {fallback} !< greedy {greedy}"
            );
        }
    }

    #[test]
    fn checkpointing_is_cheaper_than_escalation_at_low_fault_rates() {
        // At low fault rates the forecaster rarely predicts enough risk
        // to justify on-demand hours, so staying on spot with
        // checkpoints costs less per job.
        let e = exp();
        let ckpt = pooled(
            e.row(0.0, JobPolicy::CheckpointSpot),
            |r| &r.cost_per_job,
            0..3,
        );
        let fallback = pooled(
            e.row(0.0, JobPolicy::OnDemandFallback),
            |r| &r.cost_per_job,
            0..3,
        );
        assert!(
            ckpt < fallback,
            "checkpoint-spot pooled $/job {ckpt} !< on-demand-fallback {fallback}"
        );
    }

    #[test]
    fn total_outage_misses_every_deadline() {
        // At a 100% uniform fault rate no server ever boots, so every
        // policy misses everything and the break analysis must find a
        // crossing inside the sweep.
        let e = exp();
        for row in &e.rows {
            let last = *row.miss_pct.last().unwrap();
            assert!(last > 99.9, "{}: rate-1.0 miss {last}%", row.label());
            let r = JobsExp::break_rate(&row.miss_pct)
                .unwrap_or_else(|| panic!("{} never breaks the miss bar", row.label()));
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn fault_free_spot_jobs_cost_pennies_and_mostly_finish() {
        let e = exp();
        for &policy in &JobPolicy::ALL {
            let row = e.row(0.0, policy);
            assert!(
                row.miss_pct[0] < 20.0,
                "{policy}: fault-free miss rate {}%",
                row.miss_pct[0]
            );
            assert!(
                row.cost_per_job[0] > 0.0 && row.cost_per_job[0] < 5.0,
                "{policy}: fault-free $/job {}",
                row.cost_per_job[0]
            );
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(exp().render(), exp().render());
    }
}
