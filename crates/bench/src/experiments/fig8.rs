//! Figure 8: multi-market bidding within a zone vs the average of the
//! four single-market schemes — cost (a), intra-zone price correlation
//! (b), unavailability (c).

use crate::settings::ExpSettings;
use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use spothost_market::stats;
use std::fmt::Write as _;

#[derive(Debug, Clone)]
pub struct Fig8Row {
    pub zone: Zone,
    pub avg_single_cost_pct: f64,
    pub multi_cost_pct: f64,
    pub avg_single_unavail_pct: f64,
    pub multi_unavail_pct: f64,
    pub intra_zone_correlation: f64,
}

impl Fig8Row {
    /// Cost reduction of multi-market over the average single-market.
    pub fn cost_reduction_pct(&self) -> f64 {
        (1.0 - self.multi_cost_pct / self.avg_single_cost_pct) * 100.0
    }
}

#[derive(Debug, Clone)]
pub struct Fig8 {
    pub rows: Vec<Fig8Row>,
}

pub fn run(settings: &ExpSettings) -> Fig8 {
    let catalog = Catalog::ec2_2015();
    // One flat grid: every zone's four single-market runs (same mechanism
    // combo as multi-market, so the comparison isolates bidding scope)
    // plus its multi-market run, all in a single parallel sweep. Results
    // are bit-identical to the per-cell `run_many` calls.
    let mut cfgs = Vec::new();
    for &zone in &Zone::ALL {
        for size in InstanceType::ALL {
            cfgs.push(
                SchedulerConfig::single_market(MarketId::new(zone, size))
                    .with_mechanism(MechanismCombo::CKPT_LR_LIVE),
            );
        }
        cfgs.push(SchedulerConfig::multi(MarketScope::MultiMarket(zone)));
    }
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let per_zone = InstanceType::ALL.len() + 1;
    let rows = Zone::ALL
        .iter()
        .zip(aggs.chunks(per_zone))
        .map(|(&zone, chunk)| {
            let (singles, multi) = chunk.split_at(InstanceType::ALL.len());
            let avg_cost =
                singles.iter().map(|a| a.normalized_cost_pct()).sum::<f64>() / singles.len() as f64;
            let avg_unavail =
                singles.iter().map(|a| a.unavailability_pct()).sum::<f64>() / singles.len() as f64;
            // Correlation measured on one representative trace set.
            let set = TraceSet::generate(
                &catalog,
                &MarketId::all_in_zone(zone),
                settings.seed0,
                settings.horizon,
            );
            Fig8Row {
                zone,
                avg_single_cost_pct: avg_cost,
                multi_cost_pct: multi[0].normalized_cost_pct(),
                avg_single_unavail_pct: avg_unavail,
                multi_unavail_pct: multi[0].unavailability_pct(),
                intra_zone_correlation: stats::avg_intra_zone_correlation(&set, zone),
            }
        })
        .collect();
    Fig8 { rows }
}

impl Fig8 {
    pub fn row(&self, zone: Zone) -> &Fig8Row {
        self.rows.iter().find(|r| r.zone == zone).unwrap()
    }

    pub fn as_series(&self) -> SeriesSet {
        let mut s = SeriesSet::new(self.rows.iter().map(|r| r.zone.name()));
        s.push(LabeledSeries::new(
            "Average Single-Market",
            self.rows.iter().map(|r| r.avg_single_cost_pct).collect(),
        ));
        s.push(LabeledSeries::new(
            "Multi-Market",
            self.rows.iter().map(|r| r.multi_cost_pct).collect(),
        ));
        s
    }

    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "zone,avg_single_cost_pct,multi_cost_pct,avg_single_unavail_pct,multi_unavail_pct,intra_zone_correlation\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.zone.name(),
                r.avg_single_cost_pct,
                r.multi_cost_pct,
                r.avg_single_unavail_pct,
                r.multi_unavail_pct,
                r.intra_zone_correlation
            ));
        }
        out
    }

    pub fn render(&self) -> String {
        let mut out = String::from("Figure 8: multi-market bidding within a zone\n\n");
        let _ = writeln!(out, "(a) Normalized cost (% of on-demand baseline):");
        out.push_str(&self.as_series().to_text(|v| format!("{v:.1}")));
        let _ = writeln!(out, "\n(b) Average intra-zone price correlation:");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "  {:<12} {:.3}",
                r.zone.name(),
                r.intra_zone_correlation
            );
        }
        let _ = writeln!(out, "\n(c) Unavailability (%):");
        let mut s = SeriesSet::new(self.rows.iter().map(|r| r.zone.name()));
        s.push(LabeledSeries::new(
            "Average Single-Market",
            self.rows.iter().map(|r| r.avg_single_unavail_pct).collect(),
        ));
        s.push(LabeledSeries::new(
            "Multi-Market",
            self.rows.iter().map(|r| r.multi_unavail_pct).collect(),
        ));
        out.push_str(&s.to_text(|v| format!("{v:.5}")));
        let _ = writeln!(
            out,
            "\ncost reduction vs avg single-market: {}",
            self.rows
                .iter()
                .map(|r| format!("{} {:.0}%", r.zone.name(), r.cost_reduction_pct()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        out.push_str(
            "paper: reductions of 8% (us-west-1a) to 52% (us-east-1b); low correlations\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig8 {
        run(&ExpSettings::quick())
    }

    #[test]
    fn multi_market_cheaper_everywhere() {
        let f = fig();
        for r in &f.rows {
            assert!(
                r.multi_cost_pct < r.avg_single_cost_pct,
                "{}: multi {} vs single {}",
                r.zone,
                r.multi_cost_pct,
                r.avg_single_cost_pct
            );
        }
    }

    #[test]
    fn reduction_band_roughly_matches_paper() {
        // Paper: 8%..52%. Allow headroom for the quick settings.
        let f = fig();
        for r in &f.rows {
            let red = r.cost_reduction_pct();
            assert!((4.0..65.0).contains(&red), "{}: {red}%", r.zone);
        }
        // us-east-1b (most uneven size pricing) gains the most.
        let east_b = f.row(Zone::UsEast1b).cost_reduction_pct();
        for r in &f.rows {
            assert!(east_b >= r.cost_reduction_pct() - 1e-9, "{}", r.zone);
        }
    }

    #[test]
    fn intra_zone_correlation_low() {
        let f = fig();
        for r in &f.rows {
            assert!(
                (-0.05..0.7).contains(&r.intra_zone_correlation),
                "{}: {}",
                r.zone,
                r.intra_zone_correlation
            );
        }
    }

    #[test]
    fn multi_market_unavailability_not_worse_in_busy_zones() {
        // Figure 8(c): multi-market lowers unavailability; the effect is
        // strongest where elevated-price regimes make escape valuable.
        let f = fig();
        let r = f.row(Zone::UsEast1a);
        assert!(
            r.multi_unavail_pct <= r.avg_single_unavail_pct * 1.25,
            "us-east-1a: multi {} vs single {}",
            r.multi_unavail_pct,
            r.avg_single_unavail_pct
        );
    }
}
