//! Figure 1: spot prices over a month in Amazon's us-east region, for a
//! small and a large server. The paper's takeaway: prices sit far below
//! on-demand for long stretches and spike sharply — to several dollars on
//! the large market — and different markets are not strongly correlated.

use crate::settings::ExpSettings;
use spothost_analysis::table::TextTable;
use spothost_market::prelude::*;
use spothost_market::stats;
use std::fmt::Write as _;

/// Daily price summary for one market.
#[derive(Debug, Clone)]
pub struct MarketMonth {
    pub market: MarketId,
    pub on_demand: f64,
    pub daily_mean: Vec<f64>,
    pub daily_max: Vec<f64>,
    pub overall_mean: f64,
    pub overall_max: f64,
    pub fraction_above_on_demand: f64,
}

#[derive(Debug, Clone)]
pub struct Fig1 {
    pub small: MarketMonth,
    pub large: MarketMonth,
    pub correlation: f64,
}

fn summarize(set: &TraceSet, market: MarketId, days: u64) -> MarketMonth {
    let trace = set.trace(market).expect("generated");
    let pon = set.catalog().on_demand_price(market);
    let mut daily_mean = Vec::with_capacity(days as usize);
    let mut daily_max = Vec::with_capacity(days as usize);
    for d in 0..days {
        let from = SimTime::days(d);
        let to = SimTime::days(d + 1);
        daily_mean.push(trace.time_weighted_mean_in(from, to));
        let max = trace
            .segments_in(from, to)
            .iter()
            .map(|s| s.price)
            .fold(0.0, f64::max);
        daily_max.push(max);
    }
    MarketMonth {
        market,
        on_demand: pon,
        overall_mean: trace.time_weighted_mean(),
        overall_max: trace.max_price(),
        fraction_above_on_demand: trace.fraction_above(pon),
        daily_mean,
        daily_max,
    }
}

pub fn run(settings: &ExpSettings) -> Fig1 {
    let days = 28;
    let catalog = Catalog::ec2_2015();
    let small = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let large = MarketId::new(Zone::UsEast1a, InstanceType::Large);
    let set = TraceSet::generate(
        &catalog,
        &[small, large],
        settings.seed0,
        SimDuration::days(days),
    );
    let correlation = stats::trace_correlation(
        set.trace(small).unwrap(),
        set.trace(large).unwrap(),
        stats::CORRELATION_GRID,
    );
    Fig1 {
        small: summarize(&set, small, days),
        large: summarize(&set, large, days),
        correlation,
    }
}

fn sparkline(values: &[f64], ceiling: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let idx = ((v / ceiling) * 7.0).round().clamp(0.0, 7.0) as usize;
            BARS[idx]
        })
        .collect()
}

impl Fig1 {
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 1: one month of spot prices, us-east-1a (28 daily max samples)\n\n",
        );
        for m in [&self.small, &self.large] {
            let _ = writeln!(
                out,
                "{:<22} daily max: {}",
                m.market.to_string(),
                sparkline(&m.daily_max, m.overall_max)
            );
        }
        out.push('\n');
        let mut t = TextTable::new([
            "market",
            "on-demand $/h",
            "mean $/h",
            "max $/h",
            "% time > on-demand",
        ]);
        for m in [&self.small, &self.large] {
            t.row([
                m.market.to_string(),
                format!("{:.3}", m.on_demand),
                format!("{:.4}", m.overall_mean),
                format!("{:.3}", m.overall_max),
                format!("{:.2}%", m.fraction_above_on_demand * 100.0),
            ]);
        }
        out.push_str(&t.render());
        let _ = writeln!(
            out,
            "\nsmall/large price correlation: {:.3} (paper: \"not strongly correlated\")",
            self.correlation
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_has_28_daily_samples() {
        let f = run(&ExpSettings::quick());
        assert_eq!(f.small.daily_mean.len(), 28);
        assert_eq!(f.large.daily_max.len(), 28);
    }

    #[test]
    fn prices_cheap_with_spikes() {
        let f = run(&ExpSettings::quick());
        for m in [&f.small, &f.large] {
            assert!(m.overall_mean < 0.5 * m.on_demand, "{}", m.market);
            assert!(m.overall_max > m.on_demand, "{} must spike", m.market);
        }
        // Large server spikes reach dollars (paper: up to ~$3/hr).
        assert!(
            f.large.overall_max > 0.5,
            "large max {}",
            f.large.overall_max
        );
    }

    #[test]
    fn markets_not_strongly_correlated() {
        let f = run(&ExpSettings::quick());
        assert!(f.correlation < 0.6, "correlation {}", f.correlation);
    }

    #[test]
    fn render_contains_both_markets() {
        let s = run(&ExpSettings::quick()).render();
        assert!(s.contains("us-east-1a/small"));
        assert!(s.contains("us-east-1a/large"));
    }
}
