//! EXTENSION: forecast-driven adaptive bidding versus the paper's fixed
//! policies, single market (us-east-1a), four instance sizes, CKPT+LR.
//!
//! Two questions the paper's fixed bid multiples leave open:
//!
//! 1. Does picking the bid *per market from observed price history*
//!    (cheapest ladder bid whose predicted hourly revocation probability
//!    clears a risk budget) match the cost of the best fixed multiple
//!    while staying inside the four-nines availability budget?
//! 2. Are the online quantile forecasts behind that decision actually
//!    calibrated? A walk-forward backtest (train on a prefix, score the
//!    suffix, reveal history only after scoring) reports pinball loss
//!    and empirical coverage per quantile level.
//!
//! All policies for a given size share the same generated traces
//! (`run_grid` pairs them per seed), so cost deltas are paired
//! comparisons, not trace noise.

use crate::settings::ExpSettings;
use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_analysis::table::TextTable;
use spothost_core::prelude::*;
use spothost_forecast::{walk_forward, BacktestParams, QuantileScore};
use spothost_market::prelude::*;
use std::fmt::Write as _;

pub const ZONE: Zone = Zone::UsEast1a;

/// Policy axis of the sweep: the paper's reactive baseline, a fixed-bid
/// ladder, and the adaptive policy under test.
pub const POLICIES: [(&str, BiddingPolicy); 5] = [
    ("Reactive", BiddingPolicy::Reactive),
    ("Proactive-1x", BiddingPolicy::Proactive { bid_mult: 1.0 }),
    ("Proactive-2x", BiddingPolicy::Proactive { bid_mult: 2.0 }),
    ("Proactive-4x", BiddingPolicy::Proactive { bid_mult: 4.0 }),
    ("Adaptive", BiddingPolicy::Adaptive { risk_budget: 0.001 }),
];

#[derive(Debug, Clone)]
pub struct AdaptiveCell {
    pub size: InstanceType,
    pub policy: &'static str,
    pub agg: AggregateReport,
}

/// Walk-forward calibration of the forecaster on one market's trace.
#[derive(Debug, Clone)]
pub struct Calibration {
    pub size: InstanceType,
    pub samples: usize,
    pub scores: Vec<QuantileScore>,
}

#[derive(Debug, Clone)]
pub struct Adaptive {
    pub cells: Vec<AdaptiveCell>,
    pub calibration: Vec<Calibration>,
}

pub fn run(settings: &ExpSettings) -> Adaptive {
    // One flat grid: every size x policy cell shares the thread pool, and
    // all policies for a size reuse the same traces per seed.
    let mut labels = Vec::new();
    let mut cfgs = Vec::new();
    for size in InstanceType::ALL {
        let market = MarketId::new(ZONE, size);
        for (policy_name, policy) in POLICIES {
            labels.push((size, policy_name));
            cfgs.push(SchedulerConfig::single_market(market).with_policy(policy));
        }
    }
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let cells = labels
        .into_iter()
        .zip(aggs)
        .map(|((size, policy), agg)| AdaptiveCell { size, policy, agg })
        .collect();

    // Calibration backtest on the first seed's traces, the same generator
    // the simulations above consume.
    let catalog = Catalog::ec2_2015();
    let params = BacktestParams::default();
    let calibration = InstanceType::ALL
        .iter()
        .map(|&size| {
            let market = MarketId::new(ZONE, size);
            let set = TraceSet::generate(&catalog, &[market], settings.seed0, settings.horizon);
            let trace = set.trace(market).expect("generated");
            let report = walk_forward(trace, &params).expect("horizon exceeds training prefix");
            Calibration {
                size,
                samples: report.samples,
                scores: report.scores,
            }
        })
        .collect();
    Adaptive { cells, calibration }
}

impl Adaptive {
    pub fn cell(&self, size: InstanceType, policy: &str) -> &AdaptiveCell {
        self.cells
            .iter()
            .find(|c| c.size == size && c.policy == policy)
            .expect("cell exists")
    }

    fn series(&self, metric: impl Fn(&AggregateReport) -> f64) -> SeriesSet {
        let mut s = SeriesSet::new(InstanceType::ALL.iter().map(|t| t.name()));
        for (policy, _) in POLICIES {
            let values = InstanceType::ALL
                .iter()
                .map(|&t| metric(&self.cell(t, policy).agg))
                .collect();
            s.push(LabeledSeries::new(policy, values));
        }
        s
    }

    pub fn cost_pct(&self) -> SeriesSet {
        self.series(|a| a.normalized_cost_pct())
    }

    pub fn unavailability_pct(&self) -> SeriesSet {
        self.series(|a| a.unavailability_pct())
    }

    pub fn forced_per_hour(&self) -> SeriesSet {
        self.series(|a| a.forced_per_hour.mean)
    }

    /// Cost/unavailability panels plus the calibration table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("panel,size,reactive,proactive_1x,proactive_2x,proactive_4x,adaptive\n");
        for (panel, set) in [
            ("cost_pct", self.cost_pct()),
            ("unavailability_pct", self.unavailability_pct()),
            ("forced_per_hour", self.forced_per_hour()),
        ] {
            for (i, x) in set.x_labels.iter().enumerate() {
                let _ = write!(out, "{panel},{x}");
                for s in &set.series {
                    let _ = write!(out, ",{}", s.values[i]);
                }
                out.push('\n');
            }
        }
        for c in &self.calibration {
            for s in &c.scores {
                let _ = writeln!(
                    out,
                    "calibration,{},q{},{},{},,",
                    c.size.name(),
                    s.q,
                    s.mean_pinball,
                    s.coverage
                );
            }
        }
        out
    }

    pub fn render(&self) -> String {
        let mut out = String::from(
            "Adaptive bidding (EXTENSION): forecast-driven bids vs fixed multiples,\n\
             us-east-1a single market, CKPT+LR\n\n",
        );
        let _ = writeln!(out, "(a) Normalized cost (% of on-demand baseline):");
        out.push_str(&self.cost_pct().to_text(|v| format!("{v:.1}")));
        let _ = writeln!(out, "\n(b) Unavailability (%):");
        out.push_str(&self.unavailability_pct().to_text(|v| format!("{v:.5}")));
        let _ = writeln!(out, "\n(c) Forced migrations per hour:");
        out.push_str(&self.forced_per_hour().to_text(|v| format!("{v:.4}")));
        let _ = writeln!(
            out,
            "\n(d) Walk-forward forecast calibration (train 3d, step 1h, first seed):"
        );
        let mut t = TextTable::new(["market", "samples", "level", "pinball", "coverage"]);
        for c in &self.calibration {
            for s in &c.scores {
                t.row([
                    format!("{ZONE}/{}", c.size.name()),
                    c.samples.to_string(),
                    format!("p{:.0}", s.q * 100.0),
                    format!("{:.5}", s.mean_pinball),
                    format!("{:.3}", s.coverage),
                ]);
            }
        }
        out.push_str(&t.render());
        out.push_str(
            "\nexpect: adaptive cost <= proactive-4x with unavailability inside the\n\
             four-nines budget; coverage close to its quantile level when calibrated.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> Adaptive {
        run(&ExpSettings::quick())
    }

    #[test]
    fn adaptive_cost_at_most_the_fixed_cap() {
        let f = exp();
        for size in InstanceType::ALL {
            let adp = f.cell(size, "Adaptive").agg.normalized_cost.mean;
            let pro = f.cell(size, "Proactive-4x").agg.normalized_cost.mean;
            assert!(adp <= pro * 1.02, "{size}: adaptive {adp} vs 4x {pro}");
        }
    }

    #[test]
    fn adaptive_meets_four_nines_typically() {
        let f = exp();
        for size in InstanceType::ALL {
            let u = f.cell(size, "Adaptive").agg.unavailability.mean;
            assert!(u < 3e-4, "{size}: unavailability {u}");
        }
    }

    #[test]
    fn adaptive_beats_reactive_on_forced_migrations() {
        let f = exp();
        for size in InstanceType::ALL {
            let adp = f.cell(size, "Adaptive").agg.forced_per_hour.mean;
            let rea = f.cell(size, "Reactive").agg.forced_per_hour.mean;
            assert!(rea > 2.0 * adp, "{size}: reactive {rea} vs adaptive {adp}");
        }
    }

    #[test]
    fn calibration_covers_all_sizes_and_levels() {
        let f = exp();
        assert_eq!(f.calibration.len(), InstanceType::ALL.len());
        for c in &f.calibration {
            assert!(c.samples > 100, "{}: {} samples", c.size, c.samples);
            assert_eq!(c.scores.len(), 3);
            // The p99 forecast should cover the overwhelming majority of
            // realized prices on these spiky-but-mostly-flat traces.
            let p99 = c.scores.last().expect("levels");
            assert!(
                p99.coverage > 0.9,
                "{}: p99 coverage {}",
                c.size,
                p99.coverage
            );
        }
    }

    #[test]
    fn csv_has_all_panels() {
        let csv = exp().to_csv();
        assert!(csv.contains("cost_pct,small"));
        assert!(csv.contains("unavailability_pct,"));
        assert!(csv.contains("forced_per_hour,"));
        assert!(csv.contains("calibration,small,q0.5"));
    }

    #[test]
    fn render_mentions_every_policy() {
        let s = exp().render();
        for (name, _) in POLICIES {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("calibration"), "calibration table present");
    }
}
