//! Figure 10: spot-price standard deviation per market — us-east prices
//! are more variable than us-west or eu-west.

use crate::settings::ExpSettings;
use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_analysis::stats::mean;
use spothost_market::prelude::*;

#[derive(Debug, Clone)]
pub struct Fig10 {
    /// std dev in $ per (zone, size), averaged over seeds.
    pub std: [[f64; 4]; 4],
}

pub fn run(settings: &ExpSettings) -> Fig10 {
    let catalog = Catalog::ec2_2015();
    let mut std = [[0.0f64; 4]; 4];
    let per_seed: Vec<[[f64; 4]; 4]> = (settings.seed0..settings.seed0 + settings.seeds)
        .map(|seed| {
            let set = TraceSet::generate(&catalog, &MarketId::all(), seed, settings.horizon);
            let mut out = [[0.0f64; 4]; 4];
            for (zi, &zone) in Zone::ALL.iter().enumerate() {
                for (ti, &size) in InstanceType::ALL.iter().enumerate() {
                    out[zi][ti] = set
                        .trace(MarketId::new(zone, size))
                        .unwrap()
                        .time_weighted_std();
                }
            }
            out
        })
        .collect();
    for zi in 0..4 {
        for ti in 0..4 {
            let xs: Vec<f64> = per_seed.iter().map(|m| m[zi][ti]).collect();
            std[zi][ti] = mean(&xs);
        }
    }
    Fig10 { std }
}

impl Fig10 {
    pub fn std_of(&self, zone: Zone, size: InstanceType) -> f64 {
        self.std[zone.index()][size.index()]
    }

    pub fn as_series(&self) -> SeriesSet {
        let mut s = SeriesSet::new(Zone::ALL.iter().map(|z| z.name()));
        for (ti, &size) in InstanceType::ALL.iter().enumerate() {
            s.push(LabeledSeries::new(
                size.name(),
                (0..4).map(|zi| self.std[zi][ti]).collect(),
            ));
        }
        s
    }

    pub fn to_csv(&self) -> String {
        self.as_series().to_csv()
    }

    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 10: spot price standard deviation ($) by zone and size\n\n");
        out.push_str(&self.as_series().to_text(|v| format!("{v:.4}")));
        out.push_str("\npaper: us-east prices more variable than us-west or eu-west\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig10 {
        run(&ExpSettings::quick())
    }

    #[test]
    fn us_east_most_variable_per_size() {
        let f = fig();
        for size in InstanceType::ALL {
            let east = f
                .std_of(Zone::UsEast1a, size)
                .max(f.std_of(Zone::UsEast1b, size));
            assert!(
                east > f.std_of(Zone::UsWest1a, size),
                "{size}: east {east} vs us-west {}",
                f.std_of(Zone::UsWest1a, size)
            );
            assert!(
                east > f.std_of(Zone::EuWest1a, size),
                "{size}: east {east} vs eu-west {}",
                f.std_of(Zone::EuWest1a, size)
            );
        }
    }

    #[test]
    fn std_grows_with_size() {
        // Absolute dollar volatility scales with the price level.
        let f = fig();
        for zone in Zone::ALL {
            assert!(
                f.std_of(zone, InstanceType::XLarge) > f.std_of(zone, InstanceType::Small),
                "{zone}"
            );
        }
    }

    #[test]
    fn all_positive() {
        let f = fig();
        for row in &f.std {
            for &v in row {
                assert!(v > 0.0);
            }
        }
    }
}
