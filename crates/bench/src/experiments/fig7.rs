//! Figure 7: service unavailability of the four migration-mechanism
//! combinations under proactive bidding (small, us-east-1a), in the
//! typical and pessimistic parameter regimes.

use crate::settings::ExpSettings;
use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use std::fmt::Write as _;

#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Unavailability percent per combo, `[typical, pessimistic]`.
    pub rows: Vec<(MechanismCombo, f64, f64)>,
}

pub fn run(settings: &ExpSettings) -> Fig7 {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    // All eight configurations share one market, so `run_grid` generates
    // its trace once per seed for the whole figure.
    let cfgs: Vec<SchedulerConfig> = MechanismCombo::ALL
        .iter()
        .flat_map(|&combo| {
            [ParamRegime::Typical, ParamRegime::Pessimistic]
                .into_iter()
                .map(move |regime| {
                    SchedulerConfig::single_market(market)
                        .with_mechanism(combo)
                        .with_regime(regime)
                })
        })
        .collect();
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let rows = MechanismCombo::ALL
        .iter()
        .zip(aggs.chunks(2))
        .map(|(&combo, pair)| {
            (
                combo,
                pair[0].unavailability_pct(),
                pair[1].unavailability_pct(),
            )
        })
        .collect();
    Fig7 { rows }
}

impl Fig7 {
    pub fn typical(&self, combo: MechanismCombo) -> f64 {
        self.rows.iter().find(|(c, _, _)| *c == combo).unwrap().1
    }

    pub fn pessimistic(&self, combo: MechanismCombo) -> f64 {
        self.rows.iter().find(|(c, _, _)| *c == combo).unwrap().2
    }

    pub fn as_series(&self) -> SeriesSet {
        let mut s = SeriesSet::new(self.rows.iter().map(|(c, _, _)| c.name()));
        s.push(LabeledSeries::new(
            "Typical",
            self.rows.iter().map(|r| r.1).collect(),
        ));
        s.push(LabeledSeries::new(
            "Pessimistic",
            self.rows.iter().map(|r| r.2).collect(),
        ));
        s
    }

    pub fn to_csv(&self) -> String {
        self.as_series().to_csv()
    }

    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 7: unavailability (%) by migration mechanism combo\n(small, us-east-1a, proactive bidding)\n\n",
        );
        out.push_str(&self.as_series().to_text(|v| format!("{v:.4}")));
        let _ = writeln!(
            out,
            "\npaper (typical):     CKPT 0.0177, CKPT LR 0.0042, CKPT+Live 0.0095, CKPT LR+Live 0.0022"
        );
        let _ = writeln!(
            out,
            "paper (pessimistic): CKPT 0.266,  CKPT LR 0.0264, CKPT+Live 0.142,  CKPT LR+Live 0.0137"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig7 {
        run(&ExpSettings::quick())
    }

    #[test]
    fn typical_ordering_matches_paper() {
        // CKPT > CKPT+Live > CKPT LR > CKPT LR+Live.
        let f = fig();
        let ckpt = f.typical(MechanismCombo::CKPT);
        let lr = f.typical(MechanismCombo::CKPT_LR);
        let live = f.typical(MechanismCombo::CKPT_LIVE);
        let lr_live = f.typical(MechanismCombo::CKPT_LR_LIVE);
        assert!(ckpt > live, "CKPT {ckpt} vs CKPT+Live {live}");
        assert!(live > lr, "CKPT+Live {live} vs CKPT LR {lr}");
        assert!(lr > lr_live, "CKPT LR {lr} vs CKPT LR+Live {lr_live}");
    }

    #[test]
    fn pessimistic_uniformly_worse() {
        let f = fig();
        for (combo, typical, pessimistic) in &f.rows {
            assert!(
                pessimistic > typical,
                "{combo}: pessimistic {pessimistic} vs typical {typical}"
            );
        }
    }

    #[test]
    fn best_combo_meets_always_on_bar() {
        // CKPT LR + Live keeps typical unavailability in the viable range
        // (the paper's bar: around a basis point).
        let f = fig();
        let u = f.typical(MechanismCombo::CKPT_LR_LIVE);
        assert!(u < 0.03, "typical CKPT LR+Live unavailability {u}%");
    }

    #[test]
    fn live_roughly_halves_lazy_restore_unavailability() {
        // Paper: "the addition of live migration halves the unavailability".
        let f = fig();
        let lr = f.typical(MechanismCombo::CKPT_LR);
        let lr_live = f.typical(MechanismCombo::CKPT_LR_LIVE);
        let ratio = lr / lr_live;
        assert!((1.2..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn magnitudes_same_order_as_paper() {
        let f = fig();
        // Typical CKPT within [0.005%, 0.05%] (paper 0.0177%).
        let ckpt = f.typical(MechanismCombo::CKPT);
        assert!((0.005..0.05).contains(&ckpt), "CKPT {ckpt}");
        // Pessimistic CKPT within [0.05%, 0.6%] (paper 0.266%).
        let p = f.pessimistic(MechanismCombo::CKPT);
        assert!((0.05..0.6).contains(&p), "pessimistic CKPT {p}");
    }
}
