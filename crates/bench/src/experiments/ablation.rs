//! Ablations of the scheduler's design parameters (DESIGN.md): the
//! proactive bid multiple, the multi-market hop hysteresis, and the Yank
//! checkpoint bound.

use crate::settings::ExpSettings;
use spothost_analysis::table::TextTable;
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use spothost_virt::{BoundedCheckpointer, VirtParams, VmSpec};

// ---------------------------------------------------------------------------
// Bid multiple: why "bid the cap" is right.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct BidRow {
    pub bid_mult: f64,
    pub cost_pct: f64,
    pub unavail_pct: f64,
    pub forced_per_hour: f64,
}

#[derive(Debug, Clone)]
pub struct BidAblation {
    pub rows: Vec<BidRow>,
}

pub const BID_MULTS: [f64; 5] = [1.25, 1.5, 2.0, 3.0, 4.0];

pub fn run_bid(settings: &ExpSettings) -> BidAblation {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let cfgs: Vec<SchedulerConfig> = BID_MULTS
        .iter()
        .map(|&bid_mult| {
            SchedulerConfig::single_market(market)
                .with_policy(BiddingPolicy::Proactive { bid_mult })
        })
        .collect();
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let rows = BID_MULTS
        .iter()
        .zip(aggs)
        .map(|(&bid_mult, agg)| BidRow {
            bid_mult,
            cost_pct: agg.normalized_cost_pct(),
            unavail_pct: agg.unavailability_pct(),
            forced_per_hour: agg.forced_per_hour.mean,
        })
        .collect();
    BidAblation { rows }
}

impl BidAblation {
    pub fn render(&self) -> String {
        let mut out = String::from("Ablation: proactive bid multiple k (small, us-east-1a)\n\n");
        let mut t = TextTable::new([
            "k (bid = k x on-demand)",
            "cost %",
            "unavail %",
            "forced/hr",
        ]);
        for r in &self.rows {
            t.row([
                format!("{}", r.bid_mult),
                format!("{:.1}", r.cost_pct),
                format!("{:.5}", r.unavail_pct),
                format!("{:.4}", r.forced_per_hour),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "\nbidding higher costs nothing (spot bills the market price, not the bid)\n\
             but steadily removes revocations — the rationale for bidding the 4x cap.\n",
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Hop hysteresis: migration churn vs arbitrage.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct HopRow {
    pub margin: f64,
    pub cost_pct: f64,
    pub unavail_pct: f64,
    pub planned_reverse_per_hour: f64,
}

#[derive(Debug, Clone)]
pub struct HopAblation {
    pub rows: Vec<HopRow>,
}

pub const HOP_MARGINS: [f64; 5] = [0.02, 0.10, 0.25, 0.50, 0.90];

pub fn run_hop(settings: &ExpSettings) -> HopAblation {
    let cfgs: Vec<SchedulerConfig> = HOP_MARGINS
        .iter()
        .map(|&margin| {
            let mut cfg = SchedulerConfig::multi(MarketScope::MultiMarket(Zone::UsEast1b));
            cfg.hop_margin = margin;
            cfg
        })
        .collect();
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let rows = HOP_MARGINS
        .iter()
        .zip(aggs)
        .map(|(&margin, agg)| HopRow {
            margin,
            cost_pct: agg.normalized_cost_pct(),
            unavail_pct: agg.unavailability_pct(),
            planned_reverse_per_hour: agg.planned_reverse_per_hour.mean,
        })
        .collect();
    HopAblation { rows }
}

impl HopAblation {
    pub fn render(&self) -> String {
        let mut out =
            String::from("Ablation: multi-market hop hysteresis (us-east-1b, all sizes)\n\n");
        let mut t = TextTable::new(["hop margin", "cost %", "unavail %", "voluntary migr/hr"]);
        for r in &self.rows {
            t.row([
                format!("{:.0}%", r.margin * 100.0),
                format!("{:.1}", r.cost_pct),
                format!("{:.5}", r.unavail_pct),
                format!("{:.4}", r.planned_reverse_per_hour),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "\ntight margins churn migrations for marginal price gains; very wide margins\n\
             forgo the arbitrage that makes multi-market bidding pay.\n",
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Yank bound: forced-migration downtime vs background overhead.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct YankRow {
    pub tau_secs: u64,
    pub unavail_pct: f64,
    pub ckpt_bandwidth_util: f64,
    pub ckpt_period_secs: f64,
}

#[derive(Debug, Clone)]
pub struct YankAblation {
    pub rows: Vec<YankRow>,
}

pub const YANK_BOUNDS_SECS: [u64; 5] = [2, 5, 10, 30, 60];

pub fn run_yank(settings: &ExpSettings) -> YankAblation {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let vm = VmSpec::for_instance(InstanceType::Small);
    let params: Vec<VirtParams> = YANK_BOUNDS_SECS
        .iter()
        .map(|&tau| {
            let mut vp = VirtParams::typical();
            vp.yank_bound = SimDuration::secs(tau);
            vp
        })
        .collect();
    let cfgs: Vec<SchedulerConfig> = params
        .iter()
        .map(|vp| {
            SchedulerConfig::single_market(market)
                .with_mechanism(MechanismCombo::CKPT_LR)
                .with_virt_params(vp.clone())
        })
        .collect();
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let rows = YANK_BOUNDS_SECS
        .iter()
        .zip(params.iter().zip(aggs))
        .map(|(&tau, (vp, agg))| {
            let ckpt = BoundedCheckpointer::new(&vm, vp);
            YankRow {
                tau_secs: tau,
                unavail_pct: agg.unavailability_pct(),
                ckpt_bandwidth_util: ckpt.background_write_utilization(),
                ckpt_period_secs: ckpt
                    .checkpoint_period()
                    .map_or(f64::INFINITY, |p| p.as_secs_f64()),
            }
        })
        .collect();
    YankAblation { rows }
}

impl YankAblation {
    pub fn render(&self) -> String {
        let mut out =
            String::from("Ablation: Yank checkpoint bound tau (small, us-east-1a, CKPT+LR)\n\n");
        let mut t = TextTable::new([
            "tau (s)",
            "unavail %",
            "ckpt period (s)",
            "volume-write utilization",
        ]);
        for r in &self.rows {
            t.row([
                format!("{}", r.tau_secs),
                format!("{:.5}", r.unavail_pct),
                format!("{:.0}", r.ckpt_period_secs),
                format!("{:.1}%", r.ckpt_bandwidth_util * 100.0),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "\nsmaller bounds shorten the final flush (less forced downtime) but force\n\
             more frequent background checkpoints (more volume-write bandwidth).\n\
             the bound must stay well under the 120 s revocation grace.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_bids_mean_fewer_revocations() {
        let a = run_bid(&ExpSettings::quick());
        let first = a.rows.first().unwrap();
        let last = a.rows.last().unwrap();
        assert!(
            last.forced_per_hour < first.forced_per_hour,
            "k=4 {} vs k=1.25 {}",
            last.forced_per_hour,
            first.forced_per_hour
        );
        assert!(last.unavail_pct < first.unavail_pct);
    }

    #[test]
    fn bid_multiple_does_not_change_cost_much() {
        // Spot bills the market price, not the bid.
        let a = run_bid(&ExpSettings::quick());
        let costs: Vec<f64> = a.rows.iter().map(|r| r.cost_pct).collect();
        let min = costs.iter().cloned().fold(f64::MAX, f64::min);
        let max = costs.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min < 5.0, "cost spread {min}..{max}");
    }

    #[test]
    fn tight_hop_margins_churn_migrations() {
        let a = run_hop(&ExpSettings::quick());
        let tight = a.rows.first().unwrap();
        let wide = a.rows.last().unwrap();
        assert!(tight.planned_reverse_per_hour > wide.planned_reverse_per_hour);
    }

    #[test]
    fn wide_hop_margins_cost_more() {
        let a = run_hop(&ExpSettings::quick());
        let mid = &a.rows[1]; // 10%
        let wide = a.rows.last().unwrap(); // 90%
        assert!(
            wide.cost_pct >= mid.cost_pct,
            "90% margin {} vs 10% margin {}",
            wide.cost_pct,
            mid.cost_pct
        );
    }

    #[test]
    fn yank_tradeoff_is_monotone() {
        let a = run_yank(&ExpSettings::quick());
        for w in a.rows.windows(2) {
            // Larger tau -> longer flush -> at least as much downtime...
            assert!(w[1].unavail_pct >= w[0].unavail_pct * 0.9);
            // ...but lower background overhead.
            assert!(w[1].ckpt_bandwidth_util <= w[0].ckpt_bandwidth_util);
            assert!(w[1].ckpt_period_secs >= w[0].ckpt_period_secs);
        }
    }

    #[test]
    fn yank_bounds_fit_the_grace_window() {
        for tau in YANK_BOUNDS_SECS {
            assert!(tau < 120);
        }
    }
}
