//! One module per paper table/figure (see DESIGN.md's experiment index).

pub mod ablation;
pub mod adaptive;
pub mod cost_impact;
pub mod faults;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet_sim;
pub mod jobs;
pub mod naive;
pub mod stability;
pub mod storms;
pub mod tab1;
pub mod tab2;
pub mod tab3;
pub mod tab4;

use crate::settings::ExpSettings;

/// Every experiment, by its CLI name, with a one-line description.
pub const ALL: [(&str, &str); 23] = [
    (
        "fig1",
        "Spot price traces over a month (small & large, us-east)",
    ),
    ("tab1", "Startup time of on-demand and spot instances"),
    ("tab2", "Overhead of migration mechanisms"),
    (
        "fig6",
        "Proactive vs reactive bidding (cost, unavailability, migrations)",
    ),
    (
        "fig7",
        "Migration mechanism combinations (typical & pessimistic)",
    ),
    ("fig8", "Multi-market bidding within a zone"),
    ("fig9", "Multi-region vs single-region bidding"),
    ("fig10", "Spot price volatility by zone and size"),
    ("fig11", "Proactive vs pure-spot hosting"),
    ("tab3", "Cost/availability trade-off summary"),
    ("tab4", "Nested vs native VM I/O throughput"),
    ("fig12", "TPC-W response time under nested virtualization"),
    (
        "cost_impact",
        "Impact of nested CPU overhead on cost savings (§6.3)",
    ),
    (
        "naive",
        "MOTIVATION: Figure 3's naive recovery vs the scheduler's mechanisms",
    ),
    (
        "stability",
        "EXTENSION: stability-aware multi-region bidding (§8 future work)",
    ),
    ("ablation_bid", "ABLATION: proactive bid multiple sweep"),
    (
        "ablation_hop",
        "ABLATION: multi-market hop hysteresis sweep",
    ),
    ("ablation_yank", "ABLATION: Yank checkpoint bound sweep"),
    (
        "faults",
        "ROBUSTNESS: unavailability vs injected fault rate (four-nines break point)",
    ),
    (
        "adaptive",
        "EXTENSION: forecast-driven adaptive bidding vs reactive/proactive",
    ),
    (
        "storms",
        "ROBUSTNESS: correlated failure storms vs market diversification (four-nines break intensity)",
    ),
    (
        "fleet",
        "FLEET: autoscaled spot fleet vs static on-demand peak (cost, availability, p99)",
    ),
    (
        "jobs",
        "JOBS: deadline batch scheduling on spot with checkpoint/restart economics",
    ),
];

/// Run one experiment and also return CSV artifacts where the experiment
/// has a natural tabular form: `(rendered text, vec of (filename, csv))`.
pub fn run_with_csv(name: &str, settings: &ExpSettings) -> Option<(String, Vec<(String, String)>)> {
    Some(match name {
        "fig6" => {
            let f = fig6::run(settings);
            (f.render(), vec![("fig6.csv".into(), f.to_csv())])
        }
        "fig7" => {
            let f = fig7::run(settings);
            (f.render(), vec![("fig7.csv".into(), f.to_csv())])
        }
        "fig8" => {
            let f = fig8::run(settings);
            (f.render(), vec![("fig8.csv".into(), f.to_csv())])
        }
        "fig9" => {
            let f = fig9::run(settings);
            (f.render(), vec![("fig9.csv".into(), f.to_csv())])
        }
        "fig10" => {
            let f = fig10::run(settings);
            (f.render(), vec![("fig10.csv".into(), f.to_csv())])
        }
        "fig11" => {
            let f = fig11::run(settings);
            (f.render(), vec![("fig11.csv".into(), f.to_csv())])
        }
        "fig12" => {
            let f = fig12::run();
            (f.render(), vec![("fig12.csv".into(), f.to_csv())])
        }
        "faults" => {
            let f = faults::run(settings);
            (f.render(), vec![("faults.csv".into(), f.to_csv())])
        }
        "adaptive" => {
            let f = adaptive::run(settings);
            (f.render(), vec![("adaptive.csv".into(), f.to_csv())])
        }
        "storms" => {
            let f = storms::run(settings);
            (f.render(), vec![("storms.csv".into(), f.to_csv())])
        }
        "fleet" => {
            let f = fleet_sim::run(settings);
            (f.render(), vec![("fleet.csv".into(), f.to_csv())])
        }
        "jobs" => {
            let f = jobs::run(settings);
            (f.render(), vec![("jobs.csv".into(), f.to_csv())])
        }
        other => (run_by_name(other, settings)?, vec![]),
    })
}

/// A representative scheduler configuration for an experiment, used to
/// dump one seed's telemetry event stream alongside the figures (`repro
/// --trace DIR`). `None` for analytic experiments that run no
/// simulation (or, like fig1/fig10, only analyze raw price traces).
pub fn representative_config(name: &str) -> Option<spothost_core::SchedulerConfig> {
    use spothost_core::prelude::*;
    use spothost_market::prelude::*;
    use spothost_virt::MechanismCombo;
    let small = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    Some(match name {
        "fig6" => {
            SchedulerConfig::single_market(small).with_policy(BiddingPolicy::proactive_default())
        }
        "fig7" => {
            SchedulerConfig::single_market(small).with_mechanism(MechanismCombo::CKPT_LR_LIVE)
        }
        "fig8" => SchedulerConfig::multi(MarketScope::MultiMarket(Zone::UsEast1b)),
        "fig9" | "stability" => SchedulerConfig::multi(MarketScope::MultiRegion(vec![
            Zone::UsEast1b,
            Zone::EuWest1a,
        ])),
        "fig11" => SchedulerConfig::single_market(small).with_policy(BiddingPolicy::PureSpot),
        "tab3" | "cost_impact" | "ablation_bid" | "ablation_hop" | "ablation_yank" => {
            SchedulerConfig::single_market(small)
        }
        "naive" => SchedulerConfig::single_market(small)
            .with_policy(BiddingPolicy::Reactive)
            .with_naive_restart(),
        "faults" => SchedulerConfig::single_market(small)
            .with_policy(BiddingPolicy::proactive_default())
            .with_faults(FaultConfig::uniform(0.2)),
        "adaptive" => {
            SchedulerConfig::single_market(small).with_policy(BiddingPolicy::adaptive_default())
        }
        "storms" => SchedulerConfig::single_market(small)
            .with_policy(BiddingPolicy::proactive_default())
            .with_faults(FaultConfig::uniform(storms::BASE_FAULT_RATE))
            .with_storms(spothost_core::StormConfig::intensity(0.5)),
        // One of the fleet's per-VM schedulers (the fleet itself is not a
        // single SchedulerConfig).
        "fleet" => SchedulerConfig::multi(MarketScope::MultiMarket(Zone::UsEast1a)).with_storms(
            spothost_core::StormConfig::intensity(fleet_sim::STORM_INTENSITY),
        ),
        _ => return None,
    })
}

/// One representative seed's full telemetry recording for an
/// experiment, used to dump event streams alongside the figures
/// (`repro --trace DIR`). Scheduler experiments replay their
/// [`representative_config`]; `jobs` records the batch-job simulator
/// (checkpointing rung under faults, so the job lifecycle vocabulary —
/// start/checkpoint/restart/finish — all appears). `None` for analytic
/// experiments that run no simulation.
pub fn representative_recording(
    name: &str,
    settings: &ExpSettings,
) -> Option<spothost_core::telemetry::Recorder> {
    use spothost_core::telemetry::Recorder;
    if name == "jobs" {
        use spothost_jobs::{run_jobs_on, JobPolicy, JobsConfig, JobsScratch};
        use spothost_market::catalog::Catalog;
        use spothost_market::gen::TraceSet;
        let cfg = JobsConfig::new(JobPolicy::CheckpointSpot)
            .with_faults(spothost_faults::FaultConfig::uniform(0.1));
        let traces = TraceSet::generate(
            &Catalog::ec2_2015(),
            &[cfg.market],
            settings.seed0,
            settings.horizon,
        );
        let mut rec = Recorder::new();
        run_jobs_on(
            &cfg,
            &traces,
            settings.seed0,
            &mut rec,
            &mut JobsScratch::new(),
        );
        return Some(rec);
    }
    let cfg = representative_config(name)?;
    let (_, rec) = spothost_core::run_one_recorded(&cfg, settings.seed0, settings.horizon);
    Some(rec)
}

/// Run one experiment by name and return its rendered report.
pub fn run_by_name(name: &str, settings: &ExpSettings) -> Option<String> {
    Some(match name {
        "fig1" => fig1::run(settings).render(),
        "tab1" => tab1::run(settings).render(),
        "tab2" => tab2::run().render(),
        "fig6" => fig6::run(settings).render(),
        "fig7" => fig7::run(settings).render(),
        "fig8" => fig8::run(settings).render(),
        "fig9" => fig9::run(settings).render(),
        "fig10" => fig10::run(settings).render(),
        "fig11" => fig11::run(settings).render(),
        "tab3" => tab3::run(settings).render(),
        "tab4" => tab4::run(settings).render(),
        "fig12" => fig12::run().render(),
        "cost_impact" => cost_impact::run(settings).render(),
        "naive" => naive::run(settings).render(),
        "stability" => stability::run(settings).render(),
        "ablation_bid" => ablation::run_bid(settings).render(),
        "ablation_hop" => ablation::run_hop(settings).render(),
        "ablation_yank" => ablation::run_yank(settings).render(),
        "faults" => faults::run(settings).render(),
        "adaptive" => adaptive::run(settings).render(),
        "storms" => storms::run(settings).render(),
        "fleet" => fleet_sim::run(settings).render(),
        "jobs" => jobs::run(settings).render(),
        _ => return None,
    })
}
