//! Extension (§8 future work): stability-aware multi-region bidding.
//!
//! Figure 9(c) shows the greedy scheduler chasing cheap-but-volatile
//! markets and paying in availability; the paper closes by proposing
//! "bidding strategies that take spot price stability into account". We
//! implement exactly that: candidate markets are penalised by the
//! (observable) fraction of the trailing week they spent above their
//! on-demand price, weighted by `stability_weight`. This experiment sweeps
//! the weight on the worst pairing of Figure 9(c) — cheap/volatile
//! us-east-1b with stable eu-west-1a.

use crate::settings::ExpSettings;
use spothost_analysis::table::TextTable;
use spothost_core::prelude::*;
use spothost_market::prelude::*;

#[derive(Debug, Clone)]
pub struct StabilityRow {
    pub weight: f64,
    pub cost_pct: f64,
    pub unavail_pct: f64,
    pub forced_per_hour: f64,
}

#[derive(Debug, Clone)]
pub struct Stability {
    pub rows: Vec<StabilityRow>,
    /// The stable zone alone, for reference.
    pub stable_zone_unavail_pct: f64,
}

pub const WEIGHTS: [f64; 4] = [0.0, 2.0, 8.0, 32.0];

pub fn run(settings: &ExpSettings) -> Stability {
    let scope = MarketScope::MultiRegion(vec![Zone::UsEast1b, Zone::EuWest1a]);
    // One flat grid: the four weight sweeps share a candidate-market set
    // (so their traces are generated once per seed, not four times) and
    // the stable-zone reference rides along in the same parallel sweep.
    let mut cfgs: Vec<SchedulerConfig> = WEIGHTS
        .iter()
        .map(|&weight| SchedulerConfig::multi(scope.clone()).with_stability_weight(weight))
        .collect();
    cfgs.push(SchedulerConfig::multi(MarketScope::MultiMarket(
        Zone::EuWest1a,
    )));
    let mut aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let stable = aggs.pop().expect("stable-zone reference present");
    let rows = WEIGHTS
        .iter()
        .zip(&aggs)
        .map(|(&weight, agg)| StabilityRow {
            weight,
            cost_pct: agg.normalized_cost_pct(),
            unavail_pct: agg.unavailability_pct(),
            forced_per_hour: agg.forced_per_hour.mean,
        })
        .collect();
    Stability {
        rows,
        stable_zone_unavail_pct: stable.unavailability_pct(),
    }
}

impl Stability {
    pub fn row(&self, weight: f64) -> &StabilityRow {
        self.rows
            .iter()
            .find(|r| (r.weight - weight).abs() < 1e-12)
            .unwrap()
    }

    pub fn render(&self) -> String {
        let mut out = String::from(
            "Extension (paper §8): stability-aware bidding, us-east-1b + eu-west-1a\n\n",
        );
        let mut t = TextTable::new([
            "stability weight",
            "cost %",
            "unavailability %",
            "forced/hr",
        ]);
        for r in &self.rows {
            t.row([
                if r.weight == 0.0 {
                    "0 (paper's greedy)".to_string()
                } else {
                    format!("{}", r.weight)
                },
                format!("{:.1}", r.cost_pct),
                format!("{:.5}", r.unavail_pct),
                format!("{:.4}", r.forced_per_hour),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "\nreference: eu-west-1a alone has {:.5}% unavailability.\n\
             weighting volatility recovers most of the availability lost to greedy\n\
             multi-region bidding at a modest cost premium.\n",
            self.stable_zone_unavail_pct
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> Stability {
        run(&ExpSettings::quick())
    }

    #[test]
    fn stability_weight_reduces_unavailability() {
        let e = exp();
        let greedy = e.row(0.0);
        let stable = e.row(32.0);
        assert!(
            stable.unavail_pct < greedy.unavail_pct,
            "weighted {} vs greedy {}",
            stable.unavail_pct,
            greedy.unavail_pct
        );
    }

    #[test]
    fn stability_costs_a_premium_but_stays_cheap() {
        let e = exp();
        let greedy = e.row(0.0);
        let stable = e.row(32.0);
        assert!(stable.cost_pct >= greedy.cost_pct * 0.98);
        // Still far below on-demand hosting.
        assert!(stable.cost_pct < 40.0, "{}", stable.cost_pct);
    }

    #[test]
    fn unavailability_monotone_in_weight_roughly() {
        let e = exp();
        let first = e.rows.first().unwrap().unavail_pct;
        let last = e.rows.last().unwrap().unavail_pct;
        assert!(last <= first);
    }
}
