//! Fault sensitivity (fig-7 style): unavailability versus uniform
//! injected fault rate, per migration-mechanism combo under proactive
//! bidding and per bidding policy at CKPT LR (small, us-east-1a).
//!
//! The summary line per series reports the *four-nines break rate*: the
//! interpolated fault rate at which mean unavailability first exceeds
//! 0.01% (99.99% availability), the paper's always-on bar.

use crate::settings::ExpSettings;
use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_analysis::stats::first_crossing;
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use std::fmt::Write as _;

/// Uniform per-draw fault rates swept by the experiment. The endpoint
/// 1.0 is the total-outage case: every request is refused, so the run
/// must still terminate and report ~100% unavailability honestly.
pub const RATES: [f64; 7] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];

/// Four nines of availability, as an unavailability percentage.
pub const FOUR_NINES_PCT: f64 = 0.01;

const POLICIES: [&str; 3] = ["Reactive", "Proactive", "On-demand only"];

fn policy_by_name(name: &str) -> BiddingPolicy {
    match name {
        "Reactive" => BiddingPolicy::Reactive,
        "Proactive" => BiddingPolicy::proactive_default(),
        "On-demand only" => BiddingPolicy::OnDemandOnly,
        other => unreachable!("unknown policy label {other}"),
    }
}

#[derive(Debug, Clone)]
pub struct Faults {
    /// Unavailability percent per combo (proactive bidding), one value
    /// per entry of [`RATES`].
    pub mech: Vec<(MechanismCombo, Vec<f64>)>,
    /// Unavailability percent per bidding policy (CKPT LR), one value
    /// per entry of [`RATES`].
    pub policy: Vec<(&'static str, Vec<f64>)>,
}

pub fn run(settings: &ExpSettings) -> Faults {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    // Every configuration shares the one market, so `run_grid` generates
    // the price trace once per seed for the whole sweep.
    let mech_cfgs = MechanismCombo::ALL.iter().flat_map(|&combo| {
        RATES.into_iter().map(move |rate| {
            SchedulerConfig::single_market(market)
                .with_policy(BiddingPolicy::proactive_default())
                .with_mechanism(combo)
                .with_faults(FaultConfig::uniform(rate))
        })
    });
    let policy_cfgs = POLICIES.iter().flat_map(|name| {
        RATES.into_iter().map(move |rate| {
            SchedulerConfig::single_market(market)
                .with_policy(policy_by_name(name))
                .with_mechanism(MechanismCombo::CKPT_LR)
                .with_faults(FaultConfig::uniform(rate))
        })
    });
    let cfgs: Vec<SchedulerConfig> = mech_cfgs.chain(policy_cfgs).collect();
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);

    let mut chunks = aggs.chunks(RATES.len());
    let mech = MechanismCombo::ALL
        .iter()
        .map(|&combo| {
            let row = chunks.next().expect("one chunk per combo");
            (combo, row.iter().map(|a| a.unavailability_pct()).collect())
        })
        .collect();
    let policy = POLICIES
        .iter()
        .map(|&name| {
            let row = chunks.next().expect("one chunk per policy");
            (name, row.iter().map(|a| a.unavailability_pct()).collect())
        })
        .collect();
    Faults { mech, policy }
}

impl Faults {
    /// Fault rate at which a series first exceeds the four-nines bar,
    /// linearly interpolated; `None` if it holds across the whole sweep.
    pub fn break_rate(pcts: &[f64]) -> Option<f64> {
        first_crossing(&RATES, pcts, FOUR_NINES_PCT)
    }

    fn labeled(&self) -> impl Iterator<Item = (String, &Vec<f64>)> {
        let mech = self
            .mech
            .iter()
            .map(|(combo, pcts)| (combo.name().to_string(), pcts));
        let policy = self
            .policy
            .iter()
            .map(|(name, pcts)| (format!("{name} (CKPT LR)"), pcts));
        mech.chain(policy)
    }

    pub fn as_series(&self) -> SeriesSet {
        let mut s = SeriesSet::new(RATES.iter().map(|r| format!("{r}")));
        for (label, pcts) in self.labeled() {
            s.push(LabeledSeries::new(label, pcts.clone()));
        }
        s
    }

    pub fn to_csv(&self) -> String {
        self.as_series().to_csv()
    }

    pub fn render(&self) -> String {
        let mut out = String::from(
            "Fault sensitivity: unavailability (%) vs uniform fault rate\n\
             (small, us-east-1a; mechanism rows use proactive bidding,\n\
             policy rows use CKPT LR)\n\n",
        );
        out.push_str(&self.as_series().to_text(|v| format!("{v:.4}")));
        let _ = writeln!(
            out,
            "\nfour-nines break rate (unavailability > {FOUR_NINES_PCT}%):"
        );
        for (label, pcts) in self.labeled() {
            match Self::break_rate(pcts) {
                Some(r) => {
                    let _ = writeln!(out, "  {label:<22} {r:.3}");
                }
                None => {
                    let _ = writeln!(out, "  {label:<22} never (holds through the sweep)");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Faults {
        run(&ExpSettings::quick())
    }

    #[test]
    fn faults_degrade_availability_monotonically_in_the_large() {
        // Each series must end worse than it starts, and the rate-1.0
        // endpoint is a total outage: nothing ever boots.
        let f = fig();
        for (label, pcts) in f.labeled() {
            let first = pcts[0];
            let last = *pcts.last().unwrap();
            assert!(
                last > first,
                "{label}: rate-1.0 unavailability {last} vs fault-free {first}"
            );
            assert!(
                last > 99.9,
                "{label}: rate-1.0 should be a full outage, got {last}%"
            );
        }
    }

    #[test]
    fn zero_rate_column_matches_fault_free_fig7() {
        // The 0.0 column is the no-faults simulation, so proactive CKPT
        // LR+Live must sit in fig-7's typical range.
        let f = fig();
        let (_, pcts) = f
            .mech
            .iter()
            .find(|(c, _)| *c == MechanismCombo::CKPT_LR_LIVE)
            .unwrap();
        assert!(pcts[0] < 0.03, "fault-free CKPT LR+Live {}", pcts[0]);
    }

    #[test]
    fn every_series_eventually_breaks_four_nines() {
        // At a 100% uniform fault rate nothing keeps four nines, so the
        // interpolated break rate exists and lies inside the sweep.
        let f = fig();
        for (label, pcts) in f.labeled() {
            let r = Faults::break_rate(pcts)
                .unwrap_or_else(|| panic!("{label} never breaks four nines"));
            assert!(
                (0.0..=1.0).contains(&r),
                "{label}: break rate {r} outside sweep"
            );
        }
    }
}
