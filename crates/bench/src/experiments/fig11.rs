//! Figure 11 (§5): proactive scheduling vs using pure spot instances —
//! similar cost, drastically different availability.

use crate::settings::ExpSettings;
use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use std::fmt::Write as _;

#[derive(Debug, Clone)]
pub struct Fig11Cell {
    pub size: InstanceType,
    pub policy: &'static str,
    pub cost_pct: f64,
    pub unavail_pct: f64,
}

#[derive(Debug, Clone)]
pub struct Fig11 {
    pub cells: Vec<Fig11Cell>,
}

pub fn run(settings: &ExpSettings) -> Fig11 {
    let mut labels = Vec::new();
    let mut cfgs = Vec::new();
    for size in InstanceType::ALL {
        let market = MarketId::new(Zone::UsEast1a, size);
        for (name, policy) in [
            ("Proactive", BiddingPolicy::proactive_default()),
            ("Pure Spot", BiddingPolicy::PureSpot),
        ] {
            labels.push((size, name));
            cfgs.push(SchedulerConfig::single_market(market).with_policy(policy));
        }
    }
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let cells = labels
        .into_iter()
        .zip(aggs)
        .map(|((size, name), agg)| Fig11Cell {
            size,
            policy: name,
            cost_pct: agg.normalized_cost_pct(),
            unavail_pct: agg.unavailability_pct(),
        })
        .collect();
    Fig11 { cells }
}

impl Fig11 {
    pub fn cell(&self, size: InstanceType, policy: &str) -> &Fig11Cell {
        self.cells
            .iter()
            .find(|c| c.size == size && c.policy == policy)
            .unwrap()
    }

    fn series(&self, metric: impl Fn(&Fig11Cell) -> f64) -> SeriesSet {
        let mut s = SeriesSet::new(InstanceType::ALL.iter().map(|t| t.name()));
        for policy in ["Proactive", "Pure Spot"] {
            s.push(LabeledSeries::new(
                policy,
                InstanceType::ALL
                    .iter()
                    .map(|&t| metric(self.cell(t, policy)))
                    .collect(),
            ));
        }
        s
    }

    pub fn to_csv(&self) -> String {
        let mut out = String::from("size,proactive_cost_pct,pure_spot_cost_pct,proactive_unavail_pct,pure_spot_unavail_pct\n");
        for size in spothost_market::types::InstanceType::ALL {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                size.name(),
                self.cell(size, "Proactive").cost_pct,
                self.cell(size, "Pure Spot").cost_pct,
                self.cell(size, "Proactive").unavail_pct,
                self.cell(size, "Pure Spot").unavail_pct
            ));
        }
        out
    }

    pub fn render(&self) -> String {
        let mut out = String::from("Figure 11: proactive vs pure-spot, us-east-1a\n\n");
        let _ = writeln!(out, "(a) Normalized cost (% of on-demand baseline):");
        out.push_str(&self.series(|c| c.cost_pct).to_text(|v| format!("{v:.1}")));
        let _ = writeln!(
            out,
            "\n(b) Unavailability (%, note the paper plots log-scale):"
        );
        out.push_str(
            &self
                .series(|c| c.unavail_pct)
                .to_text(|v| format!("{v:.4}")),
        );
        out.push_str(
            "\npaper: pure spot slightly cheaper but >1% unavailable on small/medium/large —\n\
             unusable for always-on services; proactive keeps availability while staying cheap.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig11 {
        run(&ExpSettings::quick())
    }

    #[test]
    fn pure_spot_at_most_marginally_cheaper() {
        let f = fig();
        for size in InstanceType::ALL {
            let pure = f.cell(size, "Pure Spot").cost_pct;
            let pro = f.cell(size, "Proactive").cost_pct;
            assert!(pure <= pro * 1.05, "{size}: pure {pure} vs proactive {pro}");
        }
    }

    #[test]
    fn pure_spot_unavailability_over_one_percent_small_to_large() {
        let f = fig();
        use InstanceType::*;
        // >1% in the paper; allow sampling slack at quick settings.
        for size in [Small, Medium, Large] {
            let u = f.cell(size, "Pure Spot").unavail_pct;
            assert!(u > 0.85, "{size}: {u}%");
        }
        // xlarge stays below 1% (the paper's figure shows it lowest).
        let u = f.cell(XLarge, "Pure Spot").unavail_pct;
        assert!(u < 1.5, "xlarge: {u}%");
    }

    #[test]
    fn proactive_orders_of_magnitude_more_available() {
        let f = fig();
        for size in InstanceType::ALL {
            let pure = f.cell(size, "Pure Spot").unavail_pct;
            let pro = f.cell(size, "Proactive").unavail_pct;
            assert!(pure > 30.0 * pro, "{size}: pure {pure} vs proactive {pro}");
        }
    }
}
