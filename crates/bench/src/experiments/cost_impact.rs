//! §6.3: impact of nested-virtualization CPU overhead on the cost savings.
//!
//! The scheduler's savings assume a nested VM serves as much load as a
//! native one. For disk/network-bound services that holds (Table 4). For
//! CPU-bound services the worst-case 50% overhead halves throughput, so
//! twice the capacity must be bought and the normalized cost doubles —
//! the paper's 17–33% range becomes 34–66% of baseline in the worst case.

use crate::settings::ExpSettings;
use spothost_analysis::table::TextTable;
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use spothost_virt::NestedOverheadModel;
use std::fmt::Write as _;

#[derive(Debug, Clone)]
pub struct CostImpact {
    /// Measured proactive normalized cost range across sizes (fractions).
    pub base_min: f64,
    pub base_max: f64,
    /// (cpu-bound fraction, effective min %, effective max %).
    pub rows: Vec<(f64, f64, f64)>,
}

pub fn run(settings: &ExpSettings) -> CostImpact {
    let mut base_min = f64::MAX;
    let mut base_max: f64 = 0.0;
    for size in InstanceType::ALL {
        let cfg = SchedulerConfig::single_market(MarketId::new(Zone::UsEast1a, size));
        let agg = run_many(&cfg, settings.seed0, settings.seeds, settings.horizon);
        base_min = base_min.min(agg.normalized_cost.mean);
        base_max = base_max.max(agg.normalized_cost.mean);
    }
    let model = NestedOverheadModel::xen_blanket();
    let rows = [0.0, 0.25, 0.5, 0.75, 1.0]
        .into_iter()
        .map(|f| {
            (
                f,
                model.effective_cost_ratio(base_min, f) * 100.0,
                model.effective_cost_ratio(base_max, f) * 100.0,
            )
        })
        .collect();
    CostImpact {
        base_min,
        base_max,
        rows,
    }
}

impl CostImpact {
    pub fn render(&self) -> String {
        let mut out = String::from("Section 6.3: nested CPU overhead vs cost savings\n\n");
        let _ = writeln!(
            out,
            "measured proactive cost range (us-east-1a, all sizes): {:.1}%-{:.1}% of baseline\n",
            self.base_min * 100.0,
            self.base_max * 100.0
        );
        let mut t = TextTable::new([
            "CPU-bound fraction",
            "effective cost (cheapest size)",
            "effective cost (priciest size)",
        ]);
        for (f, lo, hi) in &self.rows {
            t.row([
                format!("{:.0}%", f * 100.0),
                format!("{lo:.1}%"),
                format!("{hi:.1}%"),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "\npaper: worst case (fully CPU-bound) halves performance, doubling the 17-33%\n\
             baseline cost; I/O-bound services keep the full savings.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> CostImpact {
        run(&ExpSettings::quick())
    }

    #[test]
    fn io_bound_keeps_savings() {
        let e = exp();
        let (f, lo, hi) = e.rows[0];
        assert_eq!(f, 0.0);
        assert!((lo - e.base_min * 100.0).abs() < 1e-9);
        assert!((hi - e.base_max * 100.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_bound_doubles_cost() {
        let e = exp();
        let (f, lo, hi) = *e.rows.last().unwrap();
        assert_eq!(f, 1.0);
        assert!((lo - e.base_min * 200.0).abs() < 1e-9);
        assert!((hi - e.base_max * 200.0).abs() < 1e-9);
        // Even worst case still beats on-demand hosting.
        assert!(hi < 100.0, "worst-case cost {hi}% must stay below baseline");
    }

    #[test]
    fn monotone_in_cpu_fraction() {
        let e = exp();
        for w in e.rows.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].2 >= w[0].2);
        }
    }
}
