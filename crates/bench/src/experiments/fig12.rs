//! Figure 12 (§6.2): TPC-W average response time vs number of emulated
//! browsers, native vs nested, with and without locally served images.

use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_workload::response::{response_curve, ResponsePoint, FIGURE12_EBS};
use spothost_workload::tpcw::TpcwConfig;
use std::fmt::Write as _;

#[derive(Debug, Clone)]
pub struct Fig12 {
    pub with_images: Vec<ResponsePoint>,
    pub no_images: Vec<ResponsePoint>,
}

pub fn run() -> Fig12 {
    Fig12 {
        with_images: response_curve(TpcwConfig::WithImages, &FIGURE12_EBS),
        no_images: response_curve(TpcwConfig::NoImages, &FIGURE12_EBS),
    }
}

fn to_series(points: &[ResponsePoint]) -> SeriesSet {
    let mut s = SeriesSet::new(points.iter().map(|p| p.ebs.to_string()));
    s.push(LabeledSeries::new(
        "Amazon VM",
        points.iter().map(|p| p.native_ms).collect(),
    ));
    s.push(LabeledSeries::new(
        "Nested VM",
        points.iter().map(|p| p.nested_ms).collect(),
    ));
    s
}

impl Fig12 {
    pub fn to_csv(&self) -> String {
        let mut out = String::from("config,ebs,native_ms,nested_ms\n");
        for (name, points) in [
            ("with_images", &self.with_images),
            ("no_images", &self.no_images),
        ] {
            for p in points {
                out.push_str(&format!(
                    "{name},{},{},{}\n",
                    p.ebs, p.native_ms, p.nested_ms
                ));
            }
        }
        out
    }

    pub fn render(&self) -> String {
        let mut out = String::from("Figure 12: TPC-W average response time (ms) vs EBs\n\n");
        let _ = writeln!(
            out,
            "(a) Browsers fetch images from the server (I/O-bound):"
        );
        out.push_str(&to_series(&self.with_images).to_text(|v| format!("{v:.0}")));
        let _ = writeln!(out, "\n(b) Images served by a CDN (CPU-bound):");
        out.push_str(&to_series(&self.no_images).to_text(|v| format!("{v:.0}")));
        let last = self.no_images.last().unwrap();
        let _ = writeln!(
            out,
            "\nnested/native at 400 EBs (CPU-bound): {:.2}x",
            last.overhead_ratio()
        );
        out.push_str(
            "paper: (a) nested no worse than native; (b) nested up to ~50% CPU overhead,\n\
             visible as a growing response-time gap under load.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_a_overlaps_panel_b_diverges() {
        let f = run();
        for p in &f.with_images {
            assert!(
                p.overhead_ratio() < 1.1,
                "at {} EBs: {}",
                p.ebs,
                p.overhead_ratio()
            );
        }
        let last = f.no_images.last().unwrap();
        assert!(last.overhead_ratio() > 1.3, "{}", last.overhead_ratio());
    }

    #[test]
    fn seven_points_each() {
        let f = run();
        assert_eq!(f.with_images.len(), 7);
        assert_eq!(f.no_images.len(), 7);
    }
}
