//! Table 3 (§5): the qualitative cost/availability trade-off —
//! on-demand-only (high cost, high availability), spot-only (low cost,
//! low availability), and the paper's migration-based scheduler (low
//! cost, high availability) — backed by measured numbers.

use crate::settings::ExpSettings;
use spothost_analysis::table::TextTable;
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use spothost_workload::slo;
use std::fmt::Write as _;

#[derive(Debug, Clone)]
pub struct Tab3Row {
    pub scheme: &'static str,
    pub cost_pct: f64,
    pub availability_pct: f64,
    pub cost_class: &'static str,
    pub availability_class: &'static str,
}

#[derive(Debug, Clone)]
pub struct Tab3 {
    pub rows: Vec<Tab3Row>,
}

fn classify_cost(cost_pct: f64) -> &'static str {
    if cost_pct > 70.0 {
        "High"
    } else {
        "Low"
    }
}

fn classify_availability(unavail_fraction: f64) -> &'static str {
    // The always-on bar is around a basis point; an order of magnitude
    // above that is a coin-flip for an e-commerce site; percent-level
    // downtime is squarely "Low".
    if slo::meets_nines(unavail_fraction, 3) {
        "High"
    } else {
        "Low"
    }
}

pub fn run(settings: &ExpSettings) -> Tab3 {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let schemes = [
        ("Only On-demand", BiddingPolicy::OnDemandOnly),
        ("Only Spot", BiddingPolicy::PureSpot),
        (
            "Using migration mechanisms",
            BiddingPolicy::proactive_default(),
        ),
    ];
    let cfgs: Vec<SchedulerConfig> = schemes
        .iter()
        .map(|(_, policy)| {
            SchedulerConfig::single_market(market)
                .with_policy(*policy)
                .with_mechanism(MechanismCombo::CKPT_LR_LIVE)
        })
        .collect();
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let rows = schemes
        .into_iter()
        .zip(aggs)
        .map(|((scheme, _), agg)| Tab3Row {
            scheme,
            cost_pct: agg.normalized_cost_pct(),
            availability_pct: 100.0 - agg.unavailability_pct(),
            cost_class: classify_cost(agg.normalized_cost_pct()),
            availability_class: classify_availability(agg.unavailability.mean),
        })
        .collect();
    Tab3 { rows }
}

impl Tab3 {
    pub fn row(&self, scheme: &str) -> &Tab3Row {
        self.rows.iter().find(|r| r.scheme == scheme).unwrap()
    }

    pub fn render(&self) -> String {
        let mut out = String::from("Table 3: cost vs availability by hosting scheme\n\n");
        let mut t = TextTable::new(["Scheme", "Cost", "Availability", "cost %", "avail %"]);
        for r in &self.rows {
            t.row([
                r.scheme.to_string(),
                r.cost_class.to_string(),
                r.availability_class.to_string(),
                format!("{:.1}", r.cost_pct),
                format!("{:.4}", r.availability_pct),
            ]);
        }
        out.push_str(&t.render());
        let _ = writeln!(
            out,
            "\npaper: On-demand High/High, Spot Low/Low, Migration Low/High"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tab() -> Tab3 {
        run(&ExpSettings::quick())
    }

    #[test]
    fn matches_paper_classification() {
        let t = tab();
        let od = t.row("Only On-demand");
        assert_eq!(od.cost_class, "High");
        assert_eq!(od.availability_class, "High");
        let spot = t.row("Only Spot");
        assert_eq!(spot.cost_class, "Low");
        assert_eq!(spot.availability_class, "Low");
        let mig = t.row("Using migration mechanisms");
        assert_eq!(mig.cost_class, "Low");
        assert_eq!(mig.availability_class, "High");
    }

    #[test]
    fn migration_scheme_combines_both_advantages() {
        let t = tab();
        let od = t.row("Only On-demand");
        let spot = t.row("Only Spot");
        let mig = t.row("Using migration mechanisms");
        assert!(mig.cost_pct < od.cost_pct / 2.0);
        assert!(mig.availability_pct > spot.availability_pct);
    }
}
