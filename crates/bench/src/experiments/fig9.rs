//! Figure 9: multi-region bidding on zone pairs vs the average of the two
//! single-region (multi-market) schemes — cost (a), cross-region price
//! correlation (b), unavailability (c).

use crate::settings::ExpSettings;
use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use spothost_market::stats;
use std::fmt::Write as _;

#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub pair: (Zone, Zone),
    pub avg_single_region_cost_pct: f64,
    pub multi_region_cost_pct: f64,
    pub avg_single_region_unavail_pct: f64,
    pub multi_region_unavail_pct: f64,
    pub cross_correlation: f64,
}

impl Fig9Row {
    pub fn label(&self) -> String {
        format!("{} + {}", self.pair.0.name(), self.pair.1.name())
    }

    pub fn cost_reduction_pct(&self) -> f64 {
        (1.0 - self.multi_region_cost_pct / self.avg_single_region_cost_pct) * 100.0
    }
}

#[derive(Debug, Clone)]
pub struct Fig9 {
    pub rows: Vec<Fig9Row>,
}

pub fn run(settings: &ExpSettings) -> Fig9 {
    let catalog = Catalog::ec2_2015();
    let pairs = Zone::all_pairs();
    // One flat grid: each zone's single-region scheme runs ONCE (the old
    // per-pair loop re-ran it for every pair containing the zone — three
    // times each) plus one multi-region configuration per pair, all in a
    // single parallel sweep. Per-configuration results are bit-identical
    // to the per-pair `run_many` calls.
    let mut cfgs: Vec<SchedulerConfig> = Zone::ALL
        .iter()
        .map(|&z| SchedulerConfig::multi(MarketScope::MultiMarket(z)))
        .collect();
    for &(a, b) in &pairs {
        cfgs.push(SchedulerConfig::multi(MarketScope::MultiRegion(vec![a, b])));
    }
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let (singles, multis) = aggs.split_at(Zone::ALL.len());
    let single = |z: Zone| {
        let agg = &singles[Zone::ALL.iter().position(|&x| x == z).expect("zone in ALL")];
        (agg.normalized_cost_pct(), agg.unavailability_pct())
    };
    let rows = pairs
        .into_iter()
        .zip(multis)
        .map(|((a, b), agg)| {
            let (ca, ua) = single(a);
            let (cb, ub) = single(b);
            let markets: Vec<MarketId> = MarketId::all_in_zone(a)
                .into_iter()
                .chain(MarketId::all_in_zone(b))
                .collect();
            let set = TraceSet::generate(&catalog, &markets, settings.seed0, settings.horizon);
            Fig9Row {
                pair: (a, b),
                avg_single_region_cost_pct: (ca + cb) / 2.0,
                multi_region_cost_pct: agg.normalized_cost_pct(),
                avg_single_region_unavail_pct: (ua + ub) / 2.0,
                multi_region_unavail_pct: agg.unavailability_pct(),
                cross_correlation: stats::avg_cross_zone_correlation(&set, a, b),
            }
        })
        .collect();
    Fig9 { rows }
}

impl Fig9 {
    pub fn row(&self, a: Zone, b: Zone) -> &Fig9Row {
        self.rows
            .iter()
            .find(|r| r.pair == (a, b) || r.pair == (b, a))
            .unwrap()
    }

    pub fn as_series(&self) -> SeriesSet {
        let mut s = SeriesSet::new(self.rows.iter().map(|r| r.label()));
        s.push(LabeledSeries::new(
            "Average Single-Region",
            self.rows
                .iter()
                .map(|r| r.avg_single_region_cost_pct)
                .collect(),
        ));
        s.push(LabeledSeries::new(
            "Multi-Region",
            self.rows.iter().map(|r| r.multi_region_cost_pct).collect(),
        ));
        s
    }

    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "pair,avg_single_region_cost_pct,multi_region_cost_pct,avg_single_region_unavail_pct,multi_region_unavail_pct,cross_correlation\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.label().replace(' ', ""),
                r.avg_single_region_cost_pct,
                r.multi_region_cost_pct,
                r.avg_single_region_unavail_pct,
                r.multi_region_unavail_pct,
                r.cross_correlation
            ));
        }
        out
    }

    pub fn render(&self) -> String {
        let mut out = String::from("Figure 9: multi-region vs single-region bidding\n\n");
        let _ = writeln!(
            out,
            "(a) Normalized cost (% of cheapest on-demand baseline):"
        );
        out.push_str(&self.as_series().to_text(|v| format!("{v:.1}")));
        let _ = writeln!(out, "\n(b) Cross-region price correlation:");
        for r in &self.rows {
            let _ = writeln!(out, "  {:<28} {:.3}", r.label(), r.cross_correlation);
        }
        let _ = writeln!(out, "\n(c) Unavailability (%):");
        let mut s = SeriesSet::new(self.rows.iter().map(|r| r.label()));
        s.push(LabeledSeries::new(
            "Average Single-Region",
            self.rows
                .iter()
                .map(|r| r.avg_single_region_unavail_pct)
                .collect(),
        ));
        s.push(LabeledSeries::new(
            "Multi-Region",
            self.rows
                .iter()
                .map(|r| r.multi_region_unavail_pct)
                .collect(),
        ));
        out.push_str(&s.to_text(|v| format!("{v:.5}")));
        out.push_str(
            "\npaper: multi-region reaches 12-17% of baseline (5-28% below single-region);\n\
             correlations low; unavailability can *rise* when cheap volatile markets attract the scheduler.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig9 {
        run(&ExpSettings::quick())
    }

    #[test]
    fn six_pairs() {
        assert_eq!(fig().rows.len(), 6);
    }

    #[test]
    fn multi_region_cheaper_than_single_region_average() {
        let f = fig();
        for r in &f.rows {
            assert!(
                r.multi_region_cost_pct < r.avg_single_region_cost_pct,
                "{}: {} vs {}",
                r.label(),
                r.multi_region_cost_pct,
                r.avg_single_region_cost_pct
            );
        }
    }

    #[test]
    fn cost_band_near_paper() {
        // Paper: 12-17% of baseline. Allow a broad band for quick settings
        // and our calibration (the stable-zone pair lands low 20s).
        let f = fig();
        for r in &f.rows {
            assert!(
                (8.0..27.0).contains(&r.multi_region_cost_pct),
                "{}: {}%",
                r.label(),
                r.multi_region_cost_pct
            );
        }
    }

    #[test]
    fn cross_region_correlation_lower_than_intra() {
        let f = fig();
        for r in &f.rows {
            assert!(
                (-0.2..0.5).contains(&r.cross_correlation),
                "{}: {}",
                r.label(),
                r.cross_correlation
            );
        }
    }

    #[test]
    fn volatile_cheap_pairing_can_raise_unavailability() {
        // Figure 9(c)'s caveat: pairing a stable zone with cheap/volatile
        // us-east draws the service into us-east, raising unavailability
        // above the pair average.
        let f = fig();
        let r = f.row(Zone::UsEast1b, Zone::EuWest1a);
        assert!(
            r.multi_region_unavail_pct > r.avg_single_region_unavail_pct,
            "expected increase: multi {} vs single-avg {}",
            r.multi_region_unavail_pct,
            r.avg_single_region_unavail_pct
        );
    }
}
