//! Motivation baseline: the paper's Figure 3 *naive approach* — spot
//! hosting with no migration mechanisms at all. On revocation the memory
//! state is lost and the service is unavailable from termination until an
//! on-demand replacement boots it from disk. This experiment quantifies
//! what the scheduler's mechanisms buy.

use crate::settings::ExpSettings;
use spothost_analysis::table::TextTable;
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use spothost_workload::slo;

#[derive(Debug, Clone)]
pub struct NaiveRow {
    pub scheme: &'static str,
    pub cost_pct: f64,
    pub unavail_pct: f64,
    pub downtime_per_month_s: f64,
}

#[derive(Debug, Clone)]
pub struct Naive {
    pub rows: Vec<NaiveRow>,
}

pub fn run(settings: &ExpSettings) -> Naive {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let schemes: [(&'static str, SchedulerConfig); 3] = [
        (
            "naive (Figure 3)",
            SchedulerConfig::single_market(market)
                .with_policy(BiddingPolicy::Reactive)
                .with_naive_restart(),
        ),
        (
            "reactive + CKPT LR",
            SchedulerConfig::single_market(market).with_policy(BiddingPolicy::Reactive),
        ),
        (
            "proactive + CKPT LR + Live",
            SchedulerConfig::single_market(market).with_mechanism(MechanismCombo::CKPT_LR_LIVE),
        ),
    ];
    let cfgs: Vec<SchedulerConfig> = schemes.iter().map(|(_, cfg)| cfg.clone()).collect();
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let rows = schemes
        .into_iter()
        .zip(aggs)
        .map(|((scheme, _), agg)| NaiveRow {
            scheme,
            cost_pct: agg.normalized_cost_pct(),
            unavail_pct: agg.unavailability_pct(),
            downtime_per_month_s: slo::downtime_per_month(agg.unavailability.mean),
        })
        .collect();
    Naive { rows }
}

impl Naive {
    pub fn row(&self, scheme: &str) -> &NaiveRow {
        self.rows.iter().find(|r| r.scheme == scheme).unwrap()
    }

    pub fn render(&self) -> String {
        let mut out = String::from(
            "Motivation (Figure 3): naive spot recovery vs the scheduler's mechanisms\n(small, us-east-1a)\n\n",
        );
        let mut t = TextTable::new(["scheme", "cost %", "unavail %", "downtime/month"]);
        for r in &self.rows {
            t.row([
                r.scheme.to_string(),
                format!("{:.1}", r.cost_pct),
                format!("{:.5}", r.unavail_pct),
                format!("{:.0}s", r.downtime_per_month_s),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "\nthe naive approach keeps the cost advantage but loses memory state on every\n\
             revocation and is down for server-boot + service-boot each time — the gap to\n\
             the bottom row is what bounded checkpointing, lazy restore and live migration buy.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> Naive {
        run(&ExpSettings::quick())
    }

    #[test]
    fn naive_is_much_less_available_than_mechanisms() {
        let e = exp();
        let naive = e.row("naive (Figure 3)");
        let reactive = e.row("reactive + CKPT LR");
        let proactive = e.row("proactive + CKPT LR + Live");
        assert!(
            naive.unavail_pct > 3.0 * reactive.unavail_pct,
            "naive {} vs reactive {}",
            naive.unavail_pct,
            reactive.unavail_pct
        );
        assert!(naive.unavail_pct > 10.0 * proactive.unavail_pct);
    }

    #[test]
    fn naive_keeps_the_cost_advantage() {
        let e = exp();
        let naive = e.row("naive (Figure 3)");
        assert!(naive.cost_pct < 40.0, "{}", naive.cost_pct);
    }

    #[test]
    fn naive_misses_four_nines() {
        let e = exp();
        let naive = e.row("naive (Figure 3)");
        assert!(
            !spothost_workload::slo::meets_nines(naive.unavail_pct / 100.0, 4),
            "naive unexpectedly met four nines at {}%",
            naive.unavail_pct
        );
    }
}
