//! Table 2: overhead of the migration mechanisms for a 2 GB nested VM —
//! live migration within and across regions, memory checkpointing, and
//! cross-region disk copy.

use spothost_analysis::table::TextTable;
use spothost_market::types::Region;
use spothost_virt::wan::{disk_copy_s_per_gib, wan_live_migration};
use spothost_virt::{live_migration, RegionPair, VirtParams, VmSpec};

#[derive(Debug, Clone)]
pub struct Tab2 {
    /// (scope label, live migrate s, ckpt s/GiB, disk copy s/GiB).
    pub rows: Vec<(String, f64, Option<f64>, Option<f64>)>,
}

pub fn run() -> Tab2 {
    let vm = VmSpec::paper_2gib();
    let params = VirtParams::typical();
    let mut rows = Vec::new();
    // Intra-region: live migration + checkpointing, no disk copy (network
    // volumes re-attach).
    for region in Region::ALL {
        let live = live_migration(&vm, &params).total.as_secs_f64();
        rows.push((
            format!("Inside {}", region.name()),
            live,
            Some(params.ckpt_write_s_per_gib),
            None,
        ));
    }
    // Cross-region pairs: WAN live migration + disk copy rate.
    for (a, b) in [
        (Region::UsEast1, Region::UsWest1),
        (Region::UsEast1, Region::EuWest1),
        (Region::UsWest1, Region::EuWest1),
    ] {
        let pair = RegionPair::new(a, b);
        let live = wan_live_migration(&vm, &params, pair).total.as_secs_f64();
        rows.push((
            format!("{} to {}", a.name(), b.name()),
            live,
            None,
            Some(disk_copy_s_per_gib(pair)),
        ));
    }
    Tab2 { rows }
}

impl Tab2 {
    pub fn render(&self) -> String {
        let mut out = String::from("Table 2: migration mechanism overheads (2 GiB nested VM)\n\n");
        let mut t = TextTable::new([
            "Scope",
            "Live migrate (s)",
            "Memory ckpt (s/GiB)",
            "Disk copy (s/GiB)",
        ]);
        for (label, live, ckpt, disk) in &self.rows {
            t.row([
                label.clone(),
                format!("{live:.1}"),
                ckpt.map_or("-".into(), |v| format!("{v:.1}")),
                disk.map_or("-".into(), |v| format!("{v:.1}")),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "\npaper: LAN live 57.1-58.5s; ckpt 28s/GB; WAN live 73.7/74.6/140.2s; disk 122.4/140.5/171.6 s/GB\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows() {
        assert_eq!(run().rows.len(), 6);
    }

    #[test]
    fn lan_live_near_58s() {
        for (label, live, _, _) in &run().rows[..3] {
            assert!((49.0..68.0).contains(live), "{label}: {live}");
        }
    }

    #[test]
    fn wan_rows_match_table_within_15_percent() {
        let t = run();
        let expect = [(73.7, 122.4), (74.6, 140.5), (140.2, 171.6)];
        for ((label, live, _, disk), (e_live, e_disk)) in t.rows[3..].iter().zip(expect) {
            assert!((live - e_live).abs() / e_live < 0.15, "{label} live {live}");
            assert!((disk.unwrap() - e_disk).abs() < 1e-9, "{label}");
        }
    }

    #[test]
    fn checkpoint_rate_is_28s_per_gib() {
        for (_, _, ckpt, _) in &run().rows[..3] {
            assert_eq!(ckpt.unwrap(), 28.0);
        }
    }
}
