//! Table 4 (§6.1): network and disk I/O performance of nested VMs vs
//! Amazon's native VMs.

use crate::settings::ExpSettings;
use spothost_analysis::table::TextTable;
use spothost_workload::iobench::{iobench_mean, IoBenchRow};

#[derive(Debug, Clone)]
pub struct Tab4 {
    pub rows: Vec<IoBenchRow>,
}

pub fn run(settings: &ExpSettings) -> Tab4 {
    Tab4 {
        rows: iobench_mean(settings.seed0, (settings.seeds * 10).max(20)),
    }
}

impl Tab4 {
    pub fn render(&self) -> String {
        let mut out = String::from("Table 4: I/O performance, native vs nested VM\n\n");
        let mut t = TextTable::new(["", "Amazon VM (Mbps)", "Nested VM (Mbps)", "degradation"]);
        for r in &self.rows {
            t.row([
                r.metric.to_string(),
                format!("{:.1}", r.native_mbps),
                format!("{:.1}", r.nested_mbps),
                format!("{:.1}%", r.degradation() * 100.0),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "\npaper: TX 304/304, RX 316/314, disk read 304.6/297.6, disk write 280.4/274.2\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_degradation_about_two_percent() {
        let t = run(&ExpSettings::quick());
        for r in &t.rows[2..] {
            let d = r.degradation() * 100.0;
            assert!((1.0..4.0).contains(&d), "{}: {d}%", r.metric);
        }
    }

    #[test]
    fn network_effectively_native() {
        let t = run(&ExpSettings::quick());
        for r in &t.rows[..2] {
            assert!(r.degradation().abs() < 0.015, "{}", r.metric);
        }
    }

    #[test]
    fn render_has_all_metrics() {
        let s = run(&ExpSettings::quick()).render();
        for m in ["Network TX", "Network RX", "Disk Read", "Disk Write"] {
            assert!(s.contains(m));
        }
    }
}
