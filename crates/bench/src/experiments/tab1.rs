//! Table 1: average start-up time of on-demand and spot instances per
//! region (~1.5 minutes on-demand, 3.5–4.5 minutes spot).

use crate::settings::ExpSettings;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use spothost_analysis::table::TextTable;
use spothost_cloudsim::StartupModel;
use spothost_market::types::Region;

#[derive(Debug, Clone)]
pub struct Tab1 {
    /// (region, mean on-demand secs, mean spot secs), measured over samples.
    pub rows: Vec<(Region, f64, f64)>,
    pub samples: u64,
}

pub fn run(settings: &ExpSettings) -> Tab1 {
    let model = StartupModel::table1();
    let samples = (settings.seeds * 200).max(200);
    let mut rng = ChaCha12Rng::seed_from_u64(settings.seed0);
    let rows = Region::ALL
        .iter()
        .map(|&region| {
            let od: f64 = (0..samples)
                .map(|_| model.sample_on_demand(&mut rng, region).as_secs_f64())
                .sum::<f64>()
                / samples as f64;
            let spot: f64 = (0..samples)
                .map(|_| model.sample_spot(&mut rng, region).as_secs_f64())
                .sum::<f64>()
                / samples as f64;
            (region, od, spot)
        })
        .collect();
    Tab1 { rows, samples }
}

impl Tab1 {
    pub fn render(&self) -> String {
        let mut out = format!(
            "Table 1: average start-up time (s), {} samples per cell\n\n",
            self.samples
        );
        let mut t = TextTable::new(["Instance type", "US east (s)", "US west (s)", "EU west (s)"]);
        for (label, pick) in [("On-demand", 1usize), ("Spot", 2usize)] {
            let cell = |region: Region| {
                let row = self.rows.iter().find(|(r, _, _)| *r == region).unwrap();
                let v = if pick == 1 { row.1 } else { row.2 };
                format!("{v:.2}")
            };
            t.row([
                label.to_string(),
                cell(Region::UsEast1),
                cell(Region::UsWest1),
                cell(Region::EuWest1),
            ]);
        }
        out.push_str(&t.render());
        out.push_str("\npaper: on-demand 94.85 / 93.63 / 98.08; spot 281.47 / 219.77 / 233.37\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_means_match_paper_within_five_percent() {
        let t = run(&ExpSettings::quick());
        let expect = [(94.85, 281.47), (93.63, 219.77), (98.08, 233.37)];
        for ((region, od, spot), (e_od, e_spot)) in t.rows.iter().zip(expect) {
            assert!((od - e_od).abs() / e_od < 0.05, "{region} od {od}");
            assert!(
                (spot - e_spot).abs() / e_spot < 0.05,
                "{region} spot {spot}"
            );
        }
    }

    #[test]
    fn spot_slower_everywhere() {
        let t = run(&ExpSettings::quick());
        for (region, od, spot) in &t.rows {
            assert!(spot > od, "{region}");
        }
    }

    #[test]
    fn render_has_both_rows() {
        let s = run(&ExpSettings::quick()).render();
        assert!(s.contains("On-demand"));
        assert!(s.contains("Spot"));
    }
}
