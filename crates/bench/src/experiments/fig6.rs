//! Figure 6: proactive versus reactive bidding, single market (us-east-1a),
//! four instance sizes, checkpointing with lazy restore.
//!
//! Panels: (a) normalized cost, (b) unavailability, (c) forced
//! migrations/hour, (d) planned+reverse migrations/hour.

use crate::settings::ExpSettings;
use spothost_analysis::series::{LabeledSeries, SeriesSet};
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use std::fmt::Write as _;

#[derive(Debug, Clone)]
pub struct Fig6Cell {
    pub size: InstanceType,
    pub policy: &'static str,
    pub agg: AggregateReport,
}

#[derive(Debug, Clone)]
pub struct Fig6 {
    pub cells: Vec<Fig6Cell>,
}

pub const ZONE: Zone = Zone::UsEast1a;

pub fn run(settings: &ExpSettings) -> Fig6 {
    // One flat grid sweep: all size x policy cells share the thread pool
    // (no per-cell barrier), and the two policies for each size reuse the
    // same generated traces. Results are bit-identical to per-cell
    // `run_many` calls.
    let mut labels = Vec::new();
    let mut cfgs = Vec::new();
    for size in InstanceType::ALL {
        let market = MarketId::new(ZONE, size);
        for (policy_name, policy) in [
            ("Reactive", BiddingPolicy::Reactive),
            ("Proactive", BiddingPolicy::proactive_default()),
        ] {
            labels.push((size, policy_name));
            cfgs.push(SchedulerConfig::single_market(market).with_policy(policy));
        }
    }
    let aggs = run_grid(&cfgs, settings.seed0, settings.seeds, settings.horizon);
    let cells = labels
        .into_iter()
        .zip(aggs)
        .map(|((size, policy), agg)| Fig6Cell { size, policy, agg })
        .collect();
    Fig6 { cells }
}

impl Fig6 {
    pub fn cell(&self, size: InstanceType, policy: &str) -> &Fig6Cell {
        self.cells
            .iter()
            .find(|c| c.size == size && c.policy == policy)
            .expect("cell exists")
    }

    fn series(&self, metric: impl Fn(&AggregateReport) -> f64) -> SeriesSet {
        let mut s = SeriesSet::new(InstanceType::ALL.iter().map(|t| t.name()));
        for policy in ["Reactive", "Proactive"] {
            let values = InstanceType::ALL
                .iter()
                .map(|&t| metric(&self.cell(t, policy).agg))
                .collect();
            s.push(LabeledSeries::new(policy, values));
        }
        s
    }

    pub fn cost_pct(&self) -> SeriesSet {
        self.series(|a| a.normalized_cost_pct())
    }

    pub fn unavailability_pct(&self) -> SeriesSet {
        self.series(|a| a.unavailability_pct())
    }

    pub fn forced_per_hour(&self) -> SeriesSet {
        self.series(|a| a.forced_per_hour.mean)
    }

    pub fn planned_reverse_per_hour(&self) -> SeriesSet {
        self.series(|a| a.planned_reverse_per_hour.mean)
    }

    /// All four panels as one CSV (panel column + series columns).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("panel,size,reactive,proactive\n");
        for (panel, set) in [
            ("cost_pct", self.cost_pct()),
            ("unavailability_pct", self.unavailability_pct()),
            ("forced_per_hour", self.forced_per_hour()),
            ("planned_reverse_per_hour", self.planned_reverse_per_hour()),
        ] {
            for (i, x) in set.x_labels.iter().enumerate() {
                out.push_str(&format!(
                    "{panel},{x},{},{}\n",
                    set.series[0].values[i], set.series[1].values[i]
                ));
            }
        }
        out
    }

    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 6: proactive vs reactive, us-east-1a single market, CKPT+LR\n\n");
        let _ = writeln!(out, "(a) Normalized cost (% of on-demand baseline):");
        out.push_str(&self.cost_pct().to_text(|v| format!("{v:.1}")));
        let _ = writeln!(out, "\n(b) Unavailability (%):");
        out.push_str(&self.unavailability_pct().to_text(|v| format!("{v:.5}")));
        let _ = writeln!(out, "\n(c) Forced migrations per hour:");
        out.push_str(&self.forced_per_hour().to_text(|v| format!("{v:.4}")));
        let _ = writeln!(out, "\n(d) Planned/reverse migrations per hour:");
        out.push_str(
            &self
                .planned_reverse_per_hour()
                .to_text(|v| format!("{v:.4}")),
        );
        out.push_str(
            "\npaper: cost 17-33% of baseline; proactive unavailability 2.5-18x lower;\n\
             reactive forced migrations 0.01-0.09/hr; planned/reverse rates similar.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig6 {
        run(&ExpSettings::quick())
    }

    #[test]
    fn cost_in_paper_band() {
        // 17-33% of baseline, with slack for the quick settings.
        let f = fig();
        for c in &f.cells {
            let pct = c.agg.normalized_cost_pct();
            assert!(
                (12.0..40.0).contains(&pct),
                "{} {}: {pct}%",
                c.size,
                c.policy
            );
        }
    }

    #[test]
    fn proactive_cheaper_or_equal() {
        let f = fig();
        for size in InstanceType::ALL {
            let pro = f.cell(size, "Proactive").agg.normalized_cost.mean;
            let rea = f.cell(size, "Reactive").agg.normalized_cost.mean;
            assert!(pro <= rea * 1.02, "{size}: pro {pro} vs rea {rea}");
        }
    }

    #[test]
    fn proactive_unavailability_much_lower() {
        let f = fig();
        for size in InstanceType::ALL {
            let pro = f.cell(size, "Proactive").agg.unavailability.mean;
            let rea = f.cell(size, "Reactive").agg.unavailability.mean;
            assert!(
                rea > 2.0 * pro,
                "{size}: reactive {rea} must be >2x proactive {pro}"
            );
        }
    }

    #[test]
    fn forced_migration_rates() {
        let f = fig();
        for size in InstanceType::ALL {
            let pro = f.cell(size, "Proactive").agg.forced_per_hour.mean;
            let rea = f.cell(size, "Reactive").agg.forced_per_hour.mean;
            assert!((0.005..0.09).contains(&rea), "{size}: reactive {rea}");
            assert!(rea > 3.0 * pro, "{size}: {rea} vs {pro}");
        }
    }

    #[test]
    fn planned_reverse_rates_similar_between_policies() {
        let f = fig();
        for size in InstanceType::ALL {
            let pro = f.cell(size, "Proactive").agg.planned_reverse_per_hour.mean;
            let rea = f.cell(size, "Reactive").agg.planned_reverse_per_hour.mean;
            let ratio = rea / pro.max(1e-9);
            assert!((0.5..3.0).contains(&ratio), "{size}: ratio {ratio}");
        }
    }

    #[test]
    fn proactive_meets_four_nines_typically() {
        let f = fig();
        for size in InstanceType::ALL {
            let u = f.cell(size, "Proactive").agg.unavailability.mean;
            assert!(u < 3e-4, "{size}: unavailability {u}");
        }
    }
}
