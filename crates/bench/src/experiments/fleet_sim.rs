//! Fleet-scale hosting: cost, availability, and tail latency of an
//! autoscaled spot fleet over a simulated month — the 22nd experiment
//! (`repro fleet`).
//!
//! Where every other experiment prices a *single* server, this one asks
//! the paper's question at the scale the introduction poses it: an
//! online service whose fleet breathes between ~50 and ~2000 VMs with a
//! diurnal demand curve and occasional flash crowds. Each VM is a full
//! `spothost-core` scheduler (bidding, migration, fault recovery); a
//! least-loaded balancer plus the fleet-level MVA model turn the offered
//! user load into per-VM utilisation, response times, and SLO
//! violations; a target-tracking autoscaler acquires and releases VMs
//! every control interval.
//!
//! Two axes are compared, calm and under a half-intensity storm:
//!
//! * **single-zone multi-market** — all VMs bid across the markets of
//!   one availability zone, and
//! * **cross-region** — VMs diversify across three regions' spot pools.
//!
//! The headline number is *normalized cost*: fleet dollars as a fraction
//! of the textbook alternative, a static on-demand deployment
//! provisioned for the observed peak. Autoscaling and spot each
//! contribute a multiplicative share of that saving, which the report
//! separates (`same-hours on-demand` isolates the spot win).

use crate::settings::ExpSettings;
use spothost_faults::StormConfig;
use spothost_fleet::{run_fleet_sim, FleetSimConfig, FleetSimReport};
use spothost_market::time::SimDuration;
use spothost_market::types::Zone;
use spothost_workload::TrafficConfig;
use std::fmt::Write as _;

/// Storm intensity of the stormy rows: well past the single-market
/// four-nines break point of the `storms` sweep, so scope has something
/// to prove.
pub const STORM_INTENSITY: f64 = 0.5;

/// One fleet variant's outcome.
#[derive(Debug, Clone)]
pub struct FleetRow {
    pub label: &'static str,
    pub report: FleetSimReport,
}

/// The rendered experiment: one row per scope x storm variant.
#[derive(Debug, Clone)]
pub struct FleetExp {
    pub rows: Vec<FleetRow>,
    /// Simulated horizon shared by every row.
    pub horizon: SimDuration,
}

fn scopes() -> [(&'static str, Vec<Zone>); 2] {
    [
        ("single-zone multi-market", vec![Zone::UsEast1a]),
        (
            "cross-region",
            vec![Zone::UsEast1a, Zone::UsWest1a, Zone::EuWest1a],
        ),
    ]
}

/// Build the fleet config for one variant at the settings' scale. Full
/// settings host the paper-scale fleet (floor 50, cap 2000, ~60k users
/// at the diurnal base) over a month; quick settings shrink the fleet
/// 10x and ride the quick horizon so CI stays fast.
pub fn config_for(settings: &ExpSettings, zones: Vec<Zone>, storm: f64) -> FleetSimConfig {
    let full = settings.horizon >= SimDuration::days(30);
    let (min_vms, max_vms, base_users) = if full {
        (50, 2000, 60_000.0)
    } else {
        (5, 200, 6_000.0)
    };
    FleetSimConfig {
        zones,
        storms: if storm > 0.0 {
            StormConfig::intensity(storm)
        } else {
            StormConfig::none()
        },
        traffic: TrafficConfig {
            base_users,
            ..TrafficConfig::diurnal_default()
        },
        min_vms,
        max_vms,
        ..FleetSimConfig::default()
    }
}

/// Horizon the fleet simulates: a month at full settings, else the
/// settings' own (quick) horizon.
pub fn horizon_for(settings: &ExpSettings) -> SimDuration {
    settings.horizon.min(SimDuration::days(30))
}

pub fn run(settings: &ExpSettings) -> FleetExp {
    let horizon = horizon_for(settings);
    let mut rows = Vec::new();
    for storm in [0.0, STORM_INTENSITY] {
        for (name, zones) in scopes() {
            let cfg = config_for(settings, zones, storm);
            let report = run_fleet_sim(&cfg, settings.seed0, horizon);
            let label: &'static str = match (name, storm > 0.0) {
                ("single-zone multi-market", false) => "single-zone multi-market",
                ("cross-region", false) => "cross-region",
                ("single-zone multi-market", true) => "single-zone multi-market, storm",
                ("cross-region", true) => "cross-region, storm",
                _ => unreachable!("unknown variant"),
            };
            rows.push(FleetRow { label, report });
        }
    }
    FleetExp { rows, horizon }
}

impl FleetExp {
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "variant,normalized_cost,spot_cost_ratio,service_availability,\
             slo_violation_frac,worst_p99_s,mean_response_s,peak_vms,vm_hours,\
             vm_unavailability,spot_fraction,forced_migrations\n",
        );
        for row in &self.rows {
            let r = &row.report;
            let _ = writeln!(
                out,
                "{},{:.6},{:.6},{:.6},{:.6},{:.4},{:.4},{},{:.1},{:.6},{:.6},{}",
                row.label,
                r.normalized_cost(),
                r.spot_cost_ratio(),
                r.service_availability(),
                r.slo_violation_frac,
                r.worst_p99_s,
                r.mean_response_s,
                r.peak_vms,
                r.vm_hours,
                r.vm_unavailability,
                r.spot_fraction,
                r.forced_migrations,
            );
        }
        out
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "Fleet-scale hosting over {:.0} simulated days: autoscaled spot fleet\n\
             vs static peak-provisioned on-demand (diurnal + flash-crowd demand,\n\
             TPC-W per-VM model, storm rows at intensity {STORM_INTENSITY})\n\n",
            self.horizon.as_hours_f64() / 24.0,
        );
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>8} {:>9} {:>8} {:>8} {:>6}",
            "variant", "cost%", "spot%", "avail%", "SLOviol%", "p99 ms", "peak"
        );
        for row in &self.rows {
            let r = &row.report;
            let _ = writeln!(
                out,
                "{:<34} {:>7.1}% {:>7.1}% {:>8.4}% {:>7.3}% {:>8.0} {:>6}",
                row.label,
                100.0 * r.normalized_cost(),
                100.0 * r.spot_cost_ratio(),
                100.0 * r.service_availability(),
                100.0 * r.slo_violation_frac,
                1_000.0 * r.worst_p99_s,
                r.peak_vms,
            );
        }
        out.push('\n');
        for row in &self.rows {
            let _ = writeln!(out, "-- {} --", row.label);
            out.push_str(&row.report.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> FleetExp {
        run(&ExpSettings::quick())
    }

    #[test]
    fn fleet_undercuts_static_peak_everywhere() {
        let f = exp();
        assert_eq!(f.rows.len(), 4);
        for row in &f.rows {
            assert!(
                row.report.normalized_cost() < 0.6,
                "{}: normalized {}",
                row.label,
                row.report.normalized_cost()
            );
            assert!(row.report.total_cost > 0.0, "{}: zero cost", row.label);
        }
    }

    #[test]
    fn diversification_helps_under_storms() {
        let f = exp();
        let single_storm = &f.rows[2].report;
        let cross_storm = &f.rows[3].report;
        assert!(
            cross_storm.vm_unavailability <= single_storm.vm_unavailability,
            "cross-region VM unavailability {} vs single-zone {}",
            cross_storm.vm_unavailability,
            single_storm.vm_unavailability
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = exp().render();
        let b = exp().render();
        assert_eq!(a, b);
    }
}
