//! # spothost-bench
//!
//! The reproduction harness: one module per table and figure of the
//! paper's evaluation, each exposing a structured result plus a rendered
//! text block. The `repro` binary drives them (`repro all`), Criterion
//! benches time the underlying simulation kernels, and integration tests
//! assert the paper's qualitative claims against the structured results.

pub mod experiments;
pub mod settings;

pub use settings::ExpSettings;
