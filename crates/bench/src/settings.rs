//! Shared experiment settings.

use spothost_market::time::SimDuration;

/// Monte-Carlo breadth and horizon for the simulation-backed experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExpSettings {
    /// First seed of the Monte-Carlo range.
    pub seed0: u64,
    /// Number of Monte-Carlo repetitions per configuration.
    pub seeds: u64,
    /// Simulated horizon per run.
    pub horizon: SimDuration,
}

impl ExpSettings {
    /// Paper-fidelity settings: 12 seeds over 60 simulated days each.
    pub fn full() -> Self {
        ExpSettings {
            seed0: 0,
            seeds: 12,
            horizon: SimDuration::days(60),
        }
    }

    /// Quick settings for smoke tests and CI: 3 seeds over 21 days.
    pub fn quick() -> Self {
        ExpSettings {
            seed0: 0,
            seeds: 3,
            horizon: SimDuration::days(21),
        }
    }
}

impl Default for ExpSettings {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = ExpSettings::quick();
        let f = ExpSettings::full();
        assert!(q.seeds < f.seeds);
        assert!(q.horizon < f.horizon);
    }
}
