//! Criterion bench for Figure 1's kernel: generating a month of spot
//! prices for one market and computing its trace statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_market::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::ec2_2015();
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let mut group = c.benchmark_group("fig1");
    group.sample_size(20);

    group.bench_function("generate_month_trace", |b| {
        b.iter(|| {
            TraceSet::generate(
                black_box(&catalog),
                &[market],
                black_box(42),
                SimDuration::days(28),
            )
        })
    });

    let set = TraceSet::generate(&catalog, &[market], 42, SimDuration::days(28));
    let trace = set.trace(market).unwrap();
    group.bench_function("trace_statistics", |b| {
        b.iter(|| {
            (
                black_box(trace).time_weighted_mean(),
                trace.time_weighted_std(),
                trace.fraction_above(0.06),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
