//! Criterion bench for Figure 10's kernel: time-weighted standard
//! deviation across all sixteen markets.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_market::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::ec2_2015();
    let traces = TraceSet::generate(&catalog, &MarketId::all(), 0, SimDuration::days(28));
    c.bench_function("fig10/std_all_markets", |b| {
        b.iter(|| {
            MarketId::all()
                .into_iter()
                .map(|m| black_box(&traces).trace(m).unwrap().time_weighted_std())
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
