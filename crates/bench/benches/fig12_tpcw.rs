//! Criterion bench for Figure 12's kernel: MVA solves of the TPC-W closed
//! network across the EB sweep, including the nested fixed point.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_workload::response::{response_curve, FIGURE12_EBS};
use spothost_workload::tpcw::{tpcw_network, NestedPenalties, Platform, TpcwConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.bench_function("mva_solve_400", |b| {
        let net = tpcw_network(
            TpcwConfig::NoImages,
            Platform::Native,
            &NestedPenalties::xen_blanket(),
            400,
        );
        b.iter(|| black_box(&net).solve(400))
    });
    group.bench_function("nested_fixed_point_400", |b| {
        b.iter(|| {
            tpcw_network(
                TpcwConfig::NoImages,
                Platform::Nested,
                &NestedPenalties::xen_blanket(),
                black_box(400),
            )
        })
    });
    group.bench_function("full_curve_both_configs", |b| {
        b.iter(|| {
            (
                response_curve(TpcwConfig::WithImages, &FIGURE12_EBS),
                response_curve(TpcwConfig::NoImages, &FIGURE12_EBS),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
