//! End-to-end sweep bench: a scaled-down Figure 6/Figure 8 style grid
//! (sizes x policies over Monte-Carlo seeds), comparing the per-cell
//! `run_many` loop against the flattened `run_grid` sweep that shares
//! trace sets and removes per-cell fork/join barriers.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_core::prelude::*;
use spothost_market::prelude::*;
use std::hint::black_box;

fn grid_cfgs() -> Vec<SchedulerConfig> {
    let mut cfgs = Vec::new();
    for size in InstanceType::ALL {
        let market = MarketId::new(Zone::UsEast1a, size);
        for policy in [BiddingPolicy::Reactive, BiddingPolicy::proactive_default()] {
            cfgs.push(SchedulerConfig::single_market(market).with_policy(policy));
        }
    }
    cfgs
}

fn bench(c: &mut Criterion) {
    let cfgs = grid_cfgs();
    let horizon = SimDuration::days(10);
    let seeds = 4;

    let mut g = c.benchmark_group("sweep_fig6_grid");
    g.sample_size(10);
    g.bench_function("per_cell_run_many", |b| {
        b.iter(|| {
            black_box(&cfgs)
                .iter()
                .map(|cfg| run_many(cfg, 0, seeds, horizon).normalized_cost.mean)
                .sum::<f64>()
        })
    });
    g.bench_function("flat_run_grid", |b| {
        b.iter(|| {
            run_grid(black_box(&cfgs), 0, seeds, horizon)
                .iter()
                .map(|a| a.normalized_cost.mean)
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
