//! Criterion bench for Table 4's kernel: the simulated I/O microbenchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_workload::iobench::{iobench_mean, simulate_iobench};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab4");
    group.bench_function("single_run", |b| b.iter(|| simulate_iobench(black_box(7))));
    group.bench_function("mean_of_50", |b| b.iter(|| iobench_mean(black_box(0), 50)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
