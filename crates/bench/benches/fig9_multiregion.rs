//! Criterion bench for Figure 9's kernel: a multi-region scheduler run
//! over an eight-market zone pair.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_core::prelude::*;
use spothost_core::SimRun;
use spothost_market::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::ec2_2015();
    let markets: Vec<MarketId> = MarketId::all_in_zone(Zone::UsEast1a)
        .into_iter()
        .chain(MarketId::all_in_zone(Zone::EuWest1a))
        .collect();
    let traces = TraceSet::generate(&catalog, &markets, 0, SimDuration::days(7));
    let cfg = SchedulerConfig::multi(MarketScope::MultiRegion(vec![
        Zone::UsEast1a,
        Zone::EuWest1a,
    ]));
    let mut group = c.benchmark_group("fig9");
    group.sample_size(20);
    group.bench_function("multi_region_week", |b| {
        b.iter(|| SimRun::new(black_box(&traces), &cfg, 0).run())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
