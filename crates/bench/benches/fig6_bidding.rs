//! Criterion bench for Figure 6's kernel: one proactive and one reactive
//! scheduler run over a week of prices.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_core::prelude::*;
use spothost_core::SimRun;
use spothost_market::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let catalog = Catalog::ec2_2015();
    let traces = TraceSet::generate(&catalog, &[market], 0, SimDuration::days(7));
    let mut group = c.benchmark_group("fig6");
    group.sample_size(30);
    for (name, policy) in [
        ("proactive_week", BiddingPolicy::proactive_default()),
        ("reactive_week", BiddingPolicy::Reactive),
    ] {
        let cfg = SchedulerConfig::single_market(market).with_policy(policy);
        group.bench_function(name, |b| {
            b.iter(|| SimRun::new(black_box(&traces), &cfg, 0).run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
