//! Criterion bench for Table 3's kernel: the three hosting schemes
//! compared on the same trace.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_core::prelude::*;
use spothost_core::SimRun;
use spothost_market::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let catalog = Catalog::ec2_2015();
    let traces = TraceSet::generate(&catalog, &[market], 0, SimDuration::days(7));
    let mut group = c.benchmark_group("tab3");
    group.sample_size(20);
    group.bench_function("three_schemes_week", |b| {
        b.iter(|| {
            for policy in [
                BiddingPolicy::OnDemandOnly,
                BiddingPolicy::PureSpot,
                BiddingPolicy::proactive_default(),
            ] {
                let cfg = SchedulerConfig::single_market(market).with_policy(policy);
                black_box(SimRun::new(&traces, &cfg, 0).run());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
