//! Criterion bench for Figure 8's kernel: a multi-market scheduler run
//! over a four-market zone.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_core::prelude::*;
use spothost_core::SimRun;
use spothost_market::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::ec2_2015();
    let markets = MarketId::all_in_zone(Zone::UsEast1b);
    let traces = TraceSet::generate(&catalog, &markets, 0, SimDuration::days(7));
    let cfg = SchedulerConfig::multi(MarketScope::MultiMarket(Zone::UsEast1b));
    let mut group = c.benchmark_group("fig8");
    group.sample_size(20);
    group.bench_function("multi_market_week", |b| {
        b.iter(|| SimRun::new(black_box(&traces), &cfg, 0).run())
    });
    group.bench_function("generate_zone_traces", |b| {
        b.iter(|| TraceSet::generate(&catalog, &markets, black_box(1), SimDuration::days(7)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
