//! Criterion bench for Figure 11's kernel: a pure-spot scheduler run.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_core::prelude::*;
use spothost_core::SimRun;
use spothost_market::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let catalog = Catalog::ec2_2015();
    let traces = TraceSet::generate(&catalog, &[market], 0, SimDuration::days(7));
    let cfg = SchedulerConfig::single_market(market).with_policy(BiddingPolicy::PureSpot);
    let mut group = c.benchmark_group("fig11");
    group.sample_size(30);
    group.bench_function("pure_spot_week", |b| {
        b.iter(|| SimRun::new(black_box(&traces), &cfg, 0).run())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
