//! Criterion bench for Table 1's kernel: startup-latency sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use spothost_cloudsim::StartupModel;
use spothost_market::types::Region;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = StartupModel::table1();
    let mut rng = ChaCha12Rng::seed_from_u64(0);
    c.bench_function("tab1/sample_startup_pair", |b| {
        b.iter(|| {
            let od = model.sample_on_demand(&mut rng, black_box(Region::UsEast1));
            let spot = model.sample_spot(&mut rng, black_box(Region::UsEast1));
            (od, spot)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
